//! Tables 9 and 18: antivirus detection of smishing URLs (§4.7).

use crate::enrich::{EnrichedRecord, MissingField};
use crate::pipeline::PipelineOutput;
use crate::table::{count_pct, TextTable};
use smishing_avscan::TransparencyVerdict;
use smishing_stats::FirstClaim;

/// VirusTotal threshold rows (Table 9).
#[derive(Debug, Clone, Copy, Default)]
pub struct VtThresholds {
    /// URLs scanned.
    pub n: usize,
    /// Clean: no malicious, no suspicious.
    pub clean: usize,
    /// Malicious ≥ 1 / 3 / 5 / 10 / 15.
    pub mal_ge: [usize; 5],
    /// Suspicious ≥ 1 / 3 / 5.
    pub susp_ge: [usize; 3],
}

/// GSB verdict counts (Table 18).
#[derive(Debug, Clone, Copy, Default)]
pub struct GsbCounts {
    /// URLs checked.
    pub n: usize,
    /// Unsafe per the public API.
    pub api_unsafe: usize,
    /// GSB-on-VirusTotal unsafe.
    pub vt_listed_unsafe: usize,
    /// Transparency website: unsafe / partially / undetected / no-data /
    /// not-queried.
    pub transparency: [usize; 5],
}

/// AV measurements over unique URLs.
#[derive(Debug, Clone, Copy)]
pub struct AvDetection {
    /// Table 9.
    pub vt: VtThresholds,
    /// Table 18.
    pub gsb: GsbCounts,
    /// URLs whose VirusTotal scan failed after retries — excluded from
    /// the Table 9 tallies rather than miscounted as clean.
    pub vt_unresolved: usize,
    /// URLs with incomplete GSB coverage (any of the three views failed)
    /// — excluded from the Table 18 tallies.
    pub gsb_unresolved: usize,
}

/// Compute AV detection stats (a fold of [`AvAcc`]).
pub fn av_detection(out: &PipelineOutput<'_>) -> AvDetection {
    let mut acc = AvAcc::new();
    for r in &out.records {
        acc.add_record(r);
    }
    acc.finish()
}

/// The AV verdicts one record would contribute for its unique URL.
#[derive(Debug, Clone, Copy)]
struct AvClaim {
    clean: bool,
    malicious: u32,
    suspicious: u32,
    gsb_api_unsafe: bool,
    gsb_vt_listed: bool,
    transparency: TransparencyVerdict,
    vt_missing: bool,
    gsb_missing: bool,
}

/// Incremental form of [`av_detection`]: per-URL first-claims folded at
/// finish.
#[derive(Debug, Clone, Default)]
pub struct AvAcc {
    claims: FirstClaim<String, AvClaim>,
}

impl AvAcc {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one unique record.
    pub fn add_record(&mut self, r: &EnrichedRecord) {
        let Some(url) = &r.url else { return };
        self.claims.add(
            url.parsed.to_url_string(),
            r.curated.post_id.0,
            AvClaim {
                clean: url.vt.is_clean(),
                malicious: url.vt.malicious,
                suspicious: url.vt.suspicious,
                gsb_api_unsafe: url.gsb_api_unsafe,
                gsb_vt_listed: url.gsb_vt_listed,
                transparency: url.gsb_transparency,
                vt_missing: r.is_missing(MissingField::VirusTotal),
                gsb_missing: r.is_missing(MissingField::GsbApi)
                    || r.is_missing(MissingField::GsbTransparency)
                    || r.is_missing(MissingField::GsbVtListing),
            },
        );
    }

    /// Retract a record previously folded in.
    pub fn sub_record(&mut self, r: &EnrichedRecord) {
        let Some(url) = &r.url else { return };
        self.claims
            .sub(&url.parsed.to_url_string(), r.curated.post_id.0);
    }

    /// Absorb another shard's accumulator.
    pub fn merge(&mut self, other: AvAcc) {
        self.claims.merge(other.claims);
    }

    /// Produce the batch result.
    pub fn finish(&self) -> AvDetection {
        let mut vt = VtThresholds::default();
        let mut gsb = GsbCounts::default();
        let mut vt_unresolved = 0;
        let mut gsb_unresolved = 0;
        for (_, _, claim) in self.claims.winners() {
            if claim.vt_missing {
                vt_unresolved += 1;
            } else {
                vt.n += 1;
                if claim.clean {
                    vt.clean += 1;
                }
                for (i, th) in [1, 3, 5, 10, 15].into_iter().enumerate() {
                    if claim.malicious >= th {
                        vt.mal_ge[i] += 1;
                    }
                }
                for (i, th) in [1, 3, 5].into_iter().enumerate() {
                    if claim.suspicious >= th {
                        vt.susp_ge[i] += 1;
                    }
                }
            }
            if claim.gsb_missing {
                gsb_unresolved += 1;
            } else {
                gsb.n += 1;
                if claim.gsb_api_unsafe {
                    gsb.api_unsafe += 1;
                }
                if claim.gsb_vt_listed {
                    gsb.vt_listed_unsafe += 1;
                }
                let idx = match claim.transparency {
                    TransparencyVerdict::Unsafe => 0,
                    TransparencyVerdict::PartiallyUnsafe => 1,
                    TransparencyVerdict::Undetected => 2,
                    TransparencyVerdict::NoData => 3,
                    TransparencyVerdict::NotQueried => 4,
                };
                gsb.transparency[idx] += 1;
            }
        }
        AvDetection {
            vt,
            gsb,
            vt_unresolved,
            gsb_unresolved,
        }
    }
}

impl AvDetection {
    /// Render Table 9.
    pub fn to_table9(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 9: VirusTotal detection results for smishing URLs",
            &["VirusTotal results", "URLs"],
        );
        let n = self.vt.n as u64;
        t.row(&[
            "Malicious = 0 and Suspicious = 0".into(),
            count_pct(self.vt.clean as u64, n),
        ]);
        for (i, th) in [1, 3, 5, 10, 15].into_iter().enumerate() {
            t.row(&[
                format!("Malicious >= {th}"),
                count_pct(self.vt.mal_ge[i] as u64, n),
            ]);
        }
        for (i, th) in [1, 3, 5].into_iter().enumerate() {
            t.row(&[
                format!("Suspicious >= {th}"),
                count_pct(self.vt.susp_ge[i] as u64, n),
            ]);
        }
        if self.vt_unresolved > 0 {
            t.row(&["(unresolved)".into(), self.vt_unresolved.to_string()]);
        }
        t
    }

    /// Render Table 18.
    pub fn to_table18(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 18: Google Safe Browsing results (three views)",
            &[
                "View",
                "Unsafe",
                "Partially",
                "Undetected",
                "No data",
                "Not queried",
            ],
        );
        let n = self.gsb.n as u64;
        t.row(&[
            "API".into(),
            count_pct(self.gsb.api_unsafe as u64, n),
            "-".into(),
            count_pct((self.gsb.n - self.gsb.api_unsafe) as u64, n),
            "-".into(),
            "-".into(),
        ]);
        let tr = self.gsb.transparency;
        t.row(&[
            "Transparency Report".into(),
            count_pct(tr[0] as u64, n),
            count_pct(tr[1] as u64, n),
            count_pct(tr[2] as u64, n),
            count_pct(tr[3] as u64, n),
            count_pct(tr[4] as u64, n),
        ]);
        t.row(&[
            "on VirusTotal".into(),
            count_pct(self.gsb.vt_listed_unsafe as u64, n),
            "-".into(),
            count_pct((self.gsb.n - self.gsb.vt_listed_unsafe) as u64, n),
            "-".into(),
            "-".into(),
        ]);
        if self.gsb_unresolved > 0 {
            t.row(&[
                "(unresolved)".into(),
                self.gsb_unresolved.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testfix;

    #[test]
    fn table9_shape() {
        let av = av_detection(testfix::output());
        let n = av.vt.n as f64;
        assert!(n > 400.0, "{n}");
        let clean = av.vt.clean as f64 / n;
        let m1 = av.vt.mal_ge[0] as f64 / n;
        let m15 = av.vt.mal_ge[4] as f64 / n;
        // Paper: 44.9% clean, 49.6% ≥1, 0.3% ≥15.
        assert!((0.30..0.60).contains(&clean), "clean {clean}");
        assert!((0.35..0.65).contains(&m1), "m1 {m1}");
        assert!(m15 < 0.03, "m15 {m15}");
        // Monotone decreasing thresholds.
        for w in av.vt.mal_ge.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(av.vt.susp_ge[2] <= av.vt.susp_ge[0]);
    }

    #[test]
    fn table18_inconsistencies() {
        let av = av_detection(testfix::output());
        let n = av.gsb.n as f64;
        let api = av.gsb.api_unsafe as f64 / n;
        let vt = av.gsb.vt_listed_unsafe as f64 / n;
        let not_queried = av.gsb.transparency[4] as f64 / n;
        // Paper: API 1%, VT-listed 1.6%, not-queried 50.1%.
        assert!(api < 0.05, "api {api}");
        assert!(vt > api, "VT listing exceeds the live API");
        assert!((0.40..0.60).contains(&not_queried), "{not_queried}");
        // The transparency site flags more than the API (8.1% vs 1%).
        let transparency_unsafe = av.gsb.transparency[0] as f64 / n;
        assert!(transparency_unsafe > api, "{transparency_unsafe} vs {api}");
    }

    #[test]
    fn tables_render() {
        let av = av_detection(testfix::output());
        assert_eq!(av.to_table9().len(), 9);
        assert_eq!(av.to_table18().len(), 3);
    }
}
