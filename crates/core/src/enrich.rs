//! Enrichment: curated messages → fully annotated records (§3.3, Fig. 1).
//!
//! Per unique message:
//!
//! - sender classification (phone / email / alphanumeric) and, for phones,
//!   an HLR lookup (§3.3.1),
//! - URL parsing, shortener detection, TLD/registrable-domain extraction,
//!   WHOIS, CT-log, passive-DNS + ASN mapping (§3.3.3),
//! - VirusTotal and GSB verdicts (§3.3.4),
//! - text annotation: scam type, brand, lures, language (§3.3.6).
//!
//! All external-service calls go through a [`ResilientClient`]: bounded
//! retries with deterministic exponential backoff + jitter, per-service
//! circuit breakers for sustained outages, and graceful degradation — a
//! record whose enrichment ultimately fails is *kept*, tagged
//! [`EnrichmentStatus::Partial`] with the list of missing fields, instead
//! of being dropped. The paper's own tables have exactly this shape: HLR
//! and WHOIS coverage is explicitly incomplete.
//!
//! Retry timing is virtual: the computed backoff is recorded in the
//! `enrich.backoff_ns` histogram but never slept, so fault runs stay fast
//! and fully deterministic.

use crate::curation::CuratedMessage;
use smishing_avscan::{GsbApi, TransparencyVerdict, VtApi, VtResult};
use smishing_fault::ServiceKind;
use smishing_obs::{Counter, Histogram, Obs};
use smishing_telecom::{classify_sender, parse_phone, HlrApi, HlrRecord, RawSenderKind};
use smishing_textnlp::annotator::{Annotation, Annotator, PipelineAnnotator};
use smishing_types::{CallCtx, SenderId, ServiceError};
use smishing_webinfra::{
    free_hosting_site, parse_url, registrable_domain, CertRecord, CtApi, IpInfo, IpInfoApi,
    ParsedUrl, PdnsApi, Resolution, ShortenerCatalog, WhoisApi,
};
use smishing_worldsim::World;
use std::cell::Cell;
use std::net::Ipv4Addr;
use std::time::Instant;

/// Everything the trend/AV analyses need about one URL.
#[derive(Debug, Clone)]
pub struct UrlIntel {
    /// The parsed URL as collected (short link when shortened).
    pub parsed: ParsedUrl,
    /// Shortening service, if the host is one (§4.2).
    pub shortener: Option<&'static str>,
    /// Whether this is a WhatsApp click-to-chat link.
    pub whatsapp: bool,
    /// Registrable domain / free-hosting site of a *direct* URL
    /// (None for shortened links — the destination is hidden, §3.3.5).
    pub domain: Option<String>,
    /// Whether the site sits on a free website builder (§4.3).
    pub free_hosted: bool,
    /// WHOIS registrar of `domain`.
    pub registrar: Option<&'static str>,
    /// CT-log certificates issued for `domain`.
    pub certs: Vec<CertRecord>,
    /// Passive-DNS resolutions with AS attribution.
    pub resolutions: Vec<(Resolution, Option<IpInfo>)>,
    /// VirusTotal verdict for the collected URL.
    pub vt: VtResult,
    /// GSB public-API verdict.
    pub gsb_api_unsafe: bool,
    /// GSB transparency-report verdict.
    pub gsb_transparency: TransparencyVerdict,
    /// GSB's listing on VirusTotal.
    pub gsb_vt_listed: bool,
}

/// A field that could not be enriched because its service call failed
/// after all retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissingField {
    /// HLR lookup failed — `hlr` is `None`.
    Hlr,
    /// WHOIS failed — `registrar` is `None`.
    Registrar,
    /// CT-log query failed — `certs` is empty.
    Certs,
    /// Passive-DNS query failed — `resolutions` is empty.
    Resolutions,
    /// At least one IP-metadata lookup failed — some `resolutions` carry
    /// `None` info.
    IpInfo,
    /// VirusTotal scan failed — `vt` is the zero verdict.
    VirusTotal,
    /// GSB Lookup API failed — `gsb_api_unsafe` defaulted to `false`.
    GsbApi,
    /// GSB Transparency Report failed — `gsb_transparency` is `NotQueried`.
    GsbTransparency,
    /// GSB-on-VirusTotal check failed — `gsb_vt_listed` defaulted to `false`.
    GsbVtListing,
}

impl MissingField {
    /// Stable lowercase label for display and metrics.
    pub fn label(self) -> &'static str {
        match self {
            MissingField::Hlr => "hlr",
            MissingField::Registrar => "registrar",
            MissingField::Certs => "certs",
            MissingField::Resolutions => "resolutions",
            MissingField::IpInfo => "ipinfo",
            MissingField::VirusTotal => "virustotal",
            MissingField::GsbApi => "gsb_api",
            MissingField::GsbTransparency => "gsb_transparency",
            MissingField::GsbVtListing => "gsb_vt_listing",
        }
    }
}

/// How completely a record was enriched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnrichmentStatus {
    /// Every service call succeeded.
    Full,
    /// Some service calls failed after retries; the record is kept with
    /// default values in the listed fields.
    Partial {
        /// Which fields are missing, in enrichment order.
        missing: Vec<MissingField>,
    },
}

/// A fully enriched record.
#[derive(Debug, Clone)]
pub struct EnrichedRecord {
    /// The curated message.
    pub curated: CuratedMessage,
    /// Parsed sender, when present and parseable as *something*.
    pub sender: Option<SenderId>,
    /// HLR record for phone senders.
    pub hlr: Option<HlrRecord>,
    /// URL intelligence, when the message carried a URL.
    pub url: Option<UrlIntel>,
    /// Text annotation (scam type, brand, lures, language).
    pub annotation: Annotation,
    /// Whether every service call behind this record succeeded.
    pub status: EnrichmentStatus,
}

impl EnrichedRecord {
    /// Whether enrichment was degraded by service failures.
    pub fn is_degraded(&self) -> bool {
        matches!(self.status, EnrichmentStatus::Partial { .. })
    }

    /// The missing fields (empty for fully enriched records).
    pub fn missing(&self) -> &[MissingField] {
        match &self.status {
            EnrichmentStatus::Full => &[],
            EnrichmentStatus::Partial { missing } => missing,
        }
    }

    /// Whether a specific field is missing due to a service failure.
    pub fn is_missing(&self, field: MissingField) -> bool {
        self.missing().contains(&field)
    }
}

/// Cached call meters for the seven external-service simulators, under the
/// `enrich.<service>.{calls,latency_ns}` naming convention. Resolve once
/// per batch or per shard ([`ServiceMeters::new`]) and record lock-free;
/// built from a no-op [`Obs`], every meter is inert and enrichment runs
/// exactly the uninstrumented code path.
///
/// Successful calls record wall time in the unlabeled
/// `enrich.<service>.latency_ns` series. Failed calls — which earlier
/// versions silently dropped from the histograms, hiding exactly the slow
/// tail that matters — record into `enrich.<service>.latency_ns{outcome=…}`
/// with the *virtual* cost of the failure (the full timeout budget for
/// timeouts, the advertised wait for rate limits), plus an
/// `enrich.<service>.errors{outcome=…}` counter. Error series are resolved
/// lazily so fault-free runs export exactly the historical key set.
pub struct ServiceMeters {
    obs: Obs,
    meters: [Meter; 7],
}

#[derive(Default)]
struct Meter {
    calls: Counter,
    latency: Histogram,
}

impl Meter {
    fn new(obs: &Obs, service: &str) -> Meter {
        Meter {
            calls: obs.counter(&format!("enrich.{service}.calls"), &[]),
            latency: obs.histogram(&format!("enrich.{service}.latency_ns"), &[]),
        }
    }
}

impl ServiceMeters {
    /// Resolve the per-service meters against an observability handle.
    pub fn new(obs: &Obs) -> ServiceMeters {
        if !obs.is_enabled() {
            return ServiceMeters::disabled();
        }
        ServiceMeters {
            obs: obs.clone(),
            meters: std::array::from_fn(|i| Meter::new(obs, ServiceKind::ALL[i].name())),
        }
    }

    /// Inert meters: every call runs unobserved.
    pub fn disabled() -> ServiceMeters {
        ServiceMeters {
            obs: Obs::noop(),
            meters: std::array::from_fn(|_| Meter::default()),
        }
    }

    fn meter(&self, kind: ServiceKind) -> &Meter {
        &self.meters[kind as usize]
    }

    /// Account one failed call: an `errors{outcome}` counter plus an
    /// outcome-labeled latency sample carrying the failure's virtual cost.
    fn record_failure(
        &self,
        kind: ServiceKind,
        err: &ServiceError,
        measured_ns: u64,
        policy: &RetryPolicy,
    ) {
        if !self.obs.is_enabled() {
            return;
        }
        let labels = [("outcome", err.kind())];
        self.obs
            .counter(&format!("enrich.{}.errors", kind.name()), &labels)
            .inc();
        let ns = match err {
            ServiceError::Timeout => policy.timeout_budget_ns,
            ServiceError::RateLimited { retry_after_ms } => u64::from(*retry_after_ms) * 1_000_000,
            _ => measured_ns,
        };
        self.obs
            .histogram(&format!("enrich.{}.latency_ns", kind.name()), &labels)
            .record(ns);
    }
}

/// Retry budget and virtual timing for the resilient client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call (first try + retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in (virtual) nanoseconds.
    pub base_backoff_ns: u64,
    /// Backoff cap.
    pub max_backoff_ns: u64,
    /// Virtual cost charged to a timed-out call.
    pub timeout_budget_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 100_000_000,      // 100 ms
            max_backoff_ns: 5_000_000_000,     // 5 s
            timeout_budget_ns: 10_000_000_000, // 10 s
        }
    }
}

impl RetryPolicy {
    /// Deterministic exponential backoff with jitter in the upper half of
    /// the exponential window — a pure function of (attempt, tick), so the
    /// recorded backoff histogram replays exactly.
    pub fn backoff_ns(&self, attempt: u32, tick: u64) -> u64 {
        let exp = self
            .base_backoff_ns
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_backoff_ns);
        let mut h = tick
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt))
            .wrapping_mul(0x100_0000_01b3);
        h ^= h >> 29;
        exp / 2 + h % (exp / 2 + 1)
    }
}

/// A fault-tolerant front for the seven enrichment services.
///
/// Wraps every service call in bounded retries (deterministic exponential
/// backoff + jitter, recorded but never slept) and a per-service circuit
/// breaker. The breaker only arms on [`ServiceError::Outage`], which
/// carries its exact virtual-clock window: skipping a call whose tick
/// falls inside the window is *provably* identical to making it, so the
/// breaker changes no outcome — batch and stream runs stay byte-equal —
/// while still counting the work it saved (`enrich.breaker_open`).
///
/// One client per worker: it is `Send` but deliberately not shared, so
/// breaker state needs no locks.
pub struct ResilientClient {
    policy: RetryPolicy,
    meters: ServiceMeters,
    retries: Counter,
    breaker_open: Counter,
    degraded: Counter,
    backoff: Histogram,
    timing: bool,
    breakers: [Cell<Option<(u64, u64)>>; 7],
}

impl ResilientClient {
    /// Build against an observability handle with the default policy.
    pub fn new(obs: &Obs) -> ResilientClient {
        ResilientClient::with_policy(obs, RetryPolicy::default())
    }

    /// Build with an explicit retry policy.
    pub fn with_policy(obs: &Obs, policy: RetryPolicy) -> ResilientClient {
        ResilientClient {
            policy,
            meters: ServiceMeters::new(obs),
            retries: obs.counter("enrich.retries", &[]),
            breaker_open: obs.counter("enrich.breaker_open", &[]),
            degraded: obs.counter("enrich.degraded_records", &[]),
            backoff: obs.histogram("enrich.backoff_ns", &[]),
            timing: obs.is_enabled(),
            breakers: Default::default(),
        }
    }

    /// An unobserved client (used by the plain [`enrich`] helpers).
    pub fn disabled() -> ResilientClient {
        ResilientClient::new(&Obs::noop())
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Run one service call through breaker + retry loop.
    fn call<T>(
        &self,
        svc: ServiceKind,
        tick: u64,
        mut f: impl FnMut(CallCtx) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        if let Some((from, until)) = self.breakers[svc as usize].get() {
            if tick >= from && tick < until {
                self.breaker_open.inc();
                return Err(ServiceError::Outage {
                    from_tick: from,
                    until_tick: until,
                });
            }
        }
        let meter = self.meters.meter(svc);
        let mut ctx = CallCtx::first(tick);
        loop {
            meter.calls.inc();
            let start = self.timing.then(Instant::now);
            let result = f(ctx);
            let measured_ns = start.map_or(0, |s| s.elapsed().as_nanos() as u64);
            match result {
                Ok(v) => {
                    if start.is_some() {
                        meter.latency.record(measured_ns);
                    }
                    return Ok(v);
                }
                Err(e) => {
                    self.meters
                        .record_failure(svc, &e, measured_ns, &self.policy);
                    if let ServiceError::Outage {
                        from_tick,
                        until_tick,
                    } = e
                    {
                        self.breakers[svc as usize].set(Some((from_tick, until_tick)));
                        return Err(e);
                    }
                    if !e.is_retryable() || ctx.attempt + 1 >= self.policy.max_attempts {
                        return Err(e);
                    }
                    self.retries.inc();
                    if self.timing {
                        self.backoff
                            .record(self.policy.backoff_ns(ctx.attempt, tick));
                    }
                    ctx = ctx.retry();
                }
            }
        }
    }

    /// Enrich one curated message, degrading gracefully on service
    /// failures (the record is kept with [`EnrichmentStatus::Partial`]).
    pub fn enrich(&self, curated: CuratedMessage, world: &World) -> EnrichedRecord {
        let tick = curated.post_id.0;
        let mut missing: Vec<MissingField> = Vec::new();
        let sender = curated.sender_raw.as_deref().and_then(parse_sender);
        let hlr = sender.as_ref().and_then(|s| {
            match self.call(ServiceKind::Hlr, tick, |ctx| {
                world.services.hlr.hlr_lookup(ctx, s)
            }) {
                Ok(r) => r,
                Err(_) => {
                    missing.push(MissingField::Hlr);
                    None
                }
            }
        });
        let url = curated
            .url_raw
            .as_deref()
            .and_then(|u| self.enrich_url(u, world, tick, &mut missing));
        let annotation = PipelineAnnotator::new().annotate(&curated.text);
        let status = if missing.is_empty() {
            EnrichmentStatus::Full
        } else {
            self.degraded.inc();
            EnrichmentStatus::Partial { missing }
        };
        EnrichedRecord {
            curated,
            sender,
            hlr,
            url,
            annotation,
            status,
        }
    }

    fn enrich_url(
        &self,
        raw: &str,
        world: &World,
        tick: u64,
        missing: &mut Vec<MissingField>,
    ) -> Option<UrlIntel> {
        let parsed = parse_url(raw)?;
        let catalog = ShortenerCatalog::new();
        let shortener = catalog.service_of(&parsed);
        let whatsapp = catalog.is_whatsapp_link(&parsed);
        let (domain, free_hosted) = if shortener.is_some() || whatsapp {
            (None, false)
        } else if let Some(site) = free_hosting_site(&parsed.host) {
            (Some(site), true)
        } else {
            (registrable_domain(&parsed.host), false)
        };

        let services = &world.services;
        let registrar = domain
            .as_deref()
            .filter(|_| !free_hosted)
            .and_then(|d| {
                match self.call(ServiceKind::Whois, tick, |ctx| {
                    services.whois.whois_lookup(ctx, d)
                }) {
                    Ok(r) => r,
                    Err(_) => {
                        missing.push(MissingField::Registrar);
                        None
                    }
                }
            })
            .map(|r| r.registrar);
        let certs = domain
            .as_deref()
            .map(|d| {
                self.call(ServiceKind::CtLog, tick, |ctx| {
                    services.ctlog.ct_lookup(ctx, d)
                })
                .unwrap_or_else(|_| {
                    missing.push(MissingField::Certs);
                    Vec::new()
                })
            })
            .unwrap_or_default();
        let mut ipinfo_failed = false;
        let resolutions: Vec<(Resolution, Option<IpInfo>)> = domain
            .as_deref()
            .map(|d| {
                self.call(ServiceKind::Pdns, tick, |ctx| {
                    services.pdns.pdns_lookup(ctx, d, world.now)
                })
                .unwrap_or_else(|_| {
                    missing.push(MissingField::Resolutions);
                    Vec::new()
                })
            })
            .unwrap_or_default()
            .into_iter()
            .map(|r| {
                let info = match self.call(ServiceKind::IpInfo, tick, |ctx| {
                    services.asn.ip_lookup(ctx, r.ip)
                }) {
                    Ok(i) => i,
                    Err(_) => {
                        ipinfo_failed = true;
                        None
                    }
                };
                (r, info)
            })
            .collect();
        if ipinfo_failed {
            missing.push(MissingField::IpInfo);
        }

        let url_string = parsed.to_url_string();
        let vt = self
            .call(ServiceKind::VirusTotal, tick, |ctx| {
                services.virustotal.vt_scan(ctx, &url_string)
            })
            .unwrap_or_else(|_| {
                missing.push(MissingField::VirusTotal);
                VtResult::default()
            });
        let gsb_api_unsafe = self
            .call(ServiceKind::Gsb, tick, |ctx| {
                services.gsb.gsb_api_unsafe(ctx, &url_string)
            })
            .unwrap_or_else(|_| {
                missing.push(MissingField::GsbApi);
                false
            });
        let gsb_transparency = self
            .call(ServiceKind::Gsb, tick, |ctx| {
                services.gsb.gsb_transparency(ctx, &url_string)
            })
            .unwrap_or_else(|_| {
                missing.push(MissingField::GsbTransparency);
                TransparencyVerdict::NotQueried
            });
        let gsb_vt_listed = self
            .call(ServiceKind::Gsb, tick, |ctx| {
                services.gsb.gsb_vt_listed(ctx, &url_string)
            })
            .unwrap_or_else(|_| {
                missing.push(MissingField::GsbVtListing);
                false
            });

        Some(UrlIntel {
            vt,
            gsb_api_unsafe,
            gsb_transparency,
            gsb_vt_listed,
            parsed,
            shortener,
            whatsapp,
            domain,
            free_hosted,
            registrar,
            certs,
            resolutions,
        })
    }
}

/// Parse a raw sender string into a [`SenderId`].
pub fn parse_sender(raw: &str) -> Option<SenderId> {
    match classify_sender(raw) {
        RawSenderKind::Empty => None,
        RawSenderKind::EmailLike => Some(SenderId::Email(raw.trim().to_string())),
        RawSenderKind::AlphanumericLike => Some(SenderId::Alphanumeric(raw.trim().to_string())),
        RawSenderKind::PhoneLike => Some(parse_phone(raw)),
    }
}

/// Enrich one curated message.
pub fn enrich(curated: CuratedMessage, world: &World) -> EnrichedRecord {
    ResilientClient::disabled().enrich(curated, world)
}

/// Enrich a batch (serial; enrichment is cheap next to curation).
pub fn enrich_all(curated: Vec<CuratedMessage>, world: &World) -> Vec<EnrichedRecord> {
    enrich_all_observed(curated, world, &Obs::noop())
}

/// Enrich a batch with per-service call accounting and fault tolerance.
pub fn enrich_all_observed(
    curated: Vec<CuratedMessage>,
    world: &World,
    obs: &Obs,
) -> Vec<EnrichedRecord> {
    let client = ResilientClient::new(obs);
    curated
        .into_iter()
        .map(|c| client.enrich(c, world))
        .collect()
}

/// Distinct resolved IPs of a record set (§4.6).
pub fn distinct_ips(records: &[EnrichedRecord]) -> Vec<Ipv4Addr> {
    let mut ips: Vec<Ipv4Addr> = records
        .iter()
        .filter_map(|r| r.url.as_ref())
        .flat_map(|u| u.resolutions.iter().map(|(r, _)| r.ip))
        .collect();
    ips.sort_unstable();
    ips.dedup();
    ips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curation::{curate_posts, dedup, CurationOptions, DedupMode};
    use smishing_fault::{FaultPlan, FaultProfile, TickWindow};
    use smishing_types::{ScamType, SenderKind};
    use smishing_worldsim::{Post, WorldConfig};

    fn records() -> (World, Vec<EnrichedRecord>) {
        let world = World::generate(WorldConfig {
            scale: 0.06,
            seed: 71,
            ..WorldConfig::default()
        });
        let refs: Vec<&Post> = world.posts.iter().collect();
        let curated = curate_posts(&refs, &CurationOptions::default());
        let unique = dedup(&curated, DedupMode::Normalized);
        let recs = enrich_all(unique, &world);
        (world, recs)
    }

    #[test]
    fn sender_kinds_cover_all_three() {
        let (_, recs) = records();
        let mut kinds = std::collections::HashSet::new();
        for r in &recs {
            if let Some(s) = &r.sender {
                kinds.insert(s.kind());
            }
        }
        assert!(kinds.contains(&SenderKind::Phone));
        assert!(kinds.contains(&SenderKind::Alphanumeric));
        assert!(kinds.contains(&SenderKind::Email), "{kinds:?}");
    }

    #[test]
    fn phone_senders_get_hlr_records() {
        let (_, recs) = records();
        let mut phones = 0;
        for r in &recs {
            if matches!(r.sender, Some(SenderId::Phone(_))) {
                assert!(r.hlr.is_some());
                phones += 1;
            }
        }
        assert!(phones > 20, "{phones}");
    }

    #[test]
    fn shortened_urls_hide_their_domains() {
        let (_, recs) = records();
        let mut shortened = 0;
        for r in &recs {
            if let Some(u) = &r.url {
                if u.shortener.is_some() {
                    shortened += 1;
                    assert!(u.domain.is_none(), "{:?}", u.parsed);
                    assert!(u.certs.is_empty());
                }
            }
        }
        assert!(shortened > 10, "{shortened}");
    }

    #[test]
    fn direct_urls_resolve_infrastructure() {
        let (_, recs) = records();
        let mut with_registrar = 0;
        let mut with_certs = 0;
        for r in &recs {
            if let Some(u) = &r.url {
                if u.domain.is_some() && !u.free_hosted {
                    if u.registrar.is_some() {
                        with_registrar += 1;
                    }
                    if !u.certs.is_empty() {
                        with_certs += 1;
                    }
                }
            }
        }
        assert!(with_registrar > 20, "{with_registrar}");
        assert!(with_certs > 20, "{with_certs}");
    }

    #[test]
    fn annotations_recover_scam_types() {
        let (world, recs) = records();
        let mut hits = 0;
        let mut total = 0;
        for r in &recs {
            let Some(mid) = r.curated.truth_message else {
                continue;
            };
            let truth = &world.messages[mid.0 as usize].truth;
            total += 1;
            if r.annotation.scam_type == truth.scam_type {
                hits += 1;
            }
        }
        let acc = hits as f64 / total as f64;
        assert!(acc > 0.75, "scam-type accuracy {acc}");
    }

    #[test]
    fn banking_dominates_annotations() {
        let (_, recs) = records();
        let banking = recs
            .iter()
            .filter(|r| r.annotation.scam_type == ScamType::Banking)
            .count();
        assert!(
            banking as f64 / recs.len() as f64 > 0.3,
            "{banking}/{}",
            recs.len()
        );
    }

    #[test]
    fn parse_sender_handles_all_shapes() {
        assert!(parse_sender("+447911123456").unwrap().phone().is_some());
        assert_eq!(
            parse_sender("SBIBNK").unwrap().kind(),
            SenderKind::Alphanumeric
        );
        assert_eq!(parse_sender("a@b.co").unwrap().kind(), SenderKind::Email);
        assert!(parse_sender("  ").is_none());
    }

    #[test]
    fn fault_free_records_are_fully_enriched() {
        let (_, recs) = records();
        assert!(recs.iter().all(|r| !r.is_degraded()));
    }

    #[test]
    fn faults_degrade_records_instead_of_dropping_them() {
        let mut world = World::generate(WorldConfig {
            scale: 0.02,
            seed: 71,
            ..WorldConfig::default()
        });
        let refs: Vec<&Post> = world.posts.iter().collect();
        let curated = curate_posts(&refs, &CurationOptions::default());
        let unique = dedup(&curated, DedupMode::Normalized);
        let baseline = enrich_all(unique.clone(), &world).len();

        world.set_fault_plan(&FaultPlan::harsh(13));
        let recs = enrich_all(unique, &world);
        assert_eq!(recs.len(), baseline, "no record may be dropped");
        let degraded = recs.iter().filter(|r| r.is_degraded()).count();
        assert!(degraded > 0, "harsh faults must degrade some records");
        for r in &recs {
            if r.is_missing(MissingField::Registrar) {
                assert!(r.url.as_ref().is_some_and(|u| u.registrar.is_none()));
            }
        }
    }

    #[test]
    fn retries_clear_soft_faults_and_are_counted() {
        let mut world = World::generate(WorldConfig {
            scale: 0.02,
            seed: 71,
            ..WorldConfig::default()
        });
        let refs: Vec<&Post> = world.posts.iter().collect();
        let curated = curate_posts(&refs, &CurationOptions::default());
        let unique = dedup(&curated, DedupMode::Normalized);

        // Soft-only faults: every faulted key clears within the retry
        // budget, so nothing degrades but retries are recorded.
        let mut plan = FaultPlan::none();
        plan.seed = 5;
        for kind in ServiceKind::ALL {
            plan.set_profile(
                kind,
                FaultProfile {
                    transient: 0.3,
                    hard: 0.0,
                    ..FaultProfile::default()
                },
            );
        }
        world.set_fault_plan(&plan);
        let obs = Obs::enabled();
        let recs = enrich_all_observed(unique, &world, &obs);
        assert!(recs.iter().all(|r| !r.is_degraded()));
        let report = obs.report().unwrap();
        let retries = report
            .counters
            .iter()
            .find(|(id, _)| id.name == "enrich.retries")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(retries > 0, "transient faults must be retried");
    }

    #[test]
    fn breaker_skips_calls_inside_an_outage_window_only() {
        let mut world = World::generate(WorldConfig {
            scale: 0.02,
            seed: 71,
            ..WorldConfig::default()
        });
        let plan = FaultPlan::none().with_outage(
            smishing_fault::ServiceKind::Whois,
            TickWindow {
                from: 0,
                until: u64::MAX,
            },
        );
        world.set_fault_plan(&plan);
        let refs: Vec<&Post> = world.posts.iter().collect();
        let curated = curate_posts(&refs, &CurationOptions::default());
        let unique = dedup(&curated, DedupMode::Normalized);
        let obs = Obs::enabled();
        let recs = enrich_all_observed(unique, &world, &obs);
        // Whois info is gone everywhere, nothing else affected.
        for r in &recs {
            if let Some(u) = &r.url {
                assert!(u.registrar.is_none());
            }
        }
        let report = obs.report().unwrap();
        let breaker = report
            .counters
            .iter()
            .find(|(id, _)| id.name == "enrich.breaker_open")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(breaker > 0, "breaker must absorb the outage after arming");
        // The breaker only ever skipped calls that were doomed anyway:
        // whois calls = attempts that actually reached the service.
        let whois_errors: u64 = report
            .counters
            .iter()
            .filter(|(id, _)| id.name == "enrich.whois.errors")
            .map(|(_, v)| *v)
            .sum();
        assert!(whois_errors > 0);
    }
}
