//! Enrichment: curated messages → fully annotated records (§3.3, Fig. 1).
//!
//! Per unique message:
//!
//! - sender classification (phone / email / alphanumeric) and, for phones,
//!   an HLR lookup (§3.3.1),
//! - URL parsing, shortener detection, TLD/registrable-domain extraction,
//!   WHOIS, CT-log, passive-DNS + ASN mapping (§3.3.3),
//! - VirusTotal and GSB verdicts (§3.3.4),
//! - text annotation: scam type, brand, lures, language (§3.3.6).

use crate::curation::CuratedMessage;
use smishing_avscan::{TransparencyVerdict, VtResult};
use smishing_obs::{Counter, Histogram, Obs};
use smishing_telecom::{classify_sender, parse_phone, HlrLookup, HlrRecord, RawSenderKind};
use smishing_textnlp::annotator::{Annotation, Annotator, PipelineAnnotator};
use smishing_types::SenderId;
use smishing_webinfra::{
    free_hosting_site, parse_url, registrable_domain, CertRecord, IpInfo, ParsedUrl, Resolution,
    ShortenerCatalog,
};
use smishing_worldsim::World;
use std::net::Ipv4Addr;

/// Everything the trend/AV analyses need about one URL.
#[derive(Debug, Clone)]
pub struct UrlIntel {
    /// The parsed URL as collected (short link when shortened).
    pub parsed: ParsedUrl,
    /// Shortening service, if the host is one (§4.2).
    pub shortener: Option<&'static str>,
    /// Whether this is a WhatsApp click-to-chat link.
    pub whatsapp: bool,
    /// Registrable domain / free-hosting site of a *direct* URL
    /// (None for shortened links — the destination is hidden, §3.3.5).
    pub domain: Option<String>,
    /// Whether the site sits on a free website builder (§4.3).
    pub free_hosted: bool,
    /// WHOIS registrar of `domain`.
    pub registrar: Option<&'static str>,
    /// CT-log certificates issued for `domain`.
    pub certs: Vec<CertRecord>,
    /// Passive-DNS resolutions with AS attribution.
    pub resolutions: Vec<(Resolution, Option<IpInfo>)>,
    /// VirusTotal verdict for the collected URL.
    pub vt: VtResult,
    /// GSB public-API verdict.
    pub gsb_api_unsafe: bool,
    /// GSB transparency-report verdict.
    pub gsb_transparency: TransparencyVerdict,
    /// GSB's listing on VirusTotal.
    pub gsb_vt_listed: bool,
}

/// A fully enriched record.
#[derive(Debug, Clone)]
pub struct EnrichedRecord {
    /// The curated message.
    pub curated: CuratedMessage,
    /// Parsed sender, when present and parseable as *something*.
    pub sender: Option<SenderId>,
    /// HLR record for phone senders.
    pub hlr: Option<HlrRecord>,
    /// URL intelligence, when the message carried a URL.
    pub url: Option<UrlIntel>,
    /// Text annotation (scam type, brand, lures, language).
    pub annotation: Annotation,
}

/// Cached call meters for the seven external-service simulators, under the
/// `enrich.<service>.{calls,latency_ns}` naming convention. Resolve once
/// per batch or per shard ([`ServiceMeters::new`]) and record lock-free;
/// built from a no-op [`Obs`], every meter is inert and enrichment runs
/// exactly the uninstrumented code path.
pub struct ServiceMeters {
    hlr: Meter,
    whois: Meter,
    ctlog: Meter,
    pdns: Meter,
    ipinfo: Meter,
    virustotal: Meter,
    gsb: Meter,
}

#[derive(Default)]
struct Meter {
    calls: Counter,
    latency: Histogram,
}

impl Meter {
    fn new(obs: &Obs, service: &str) -> Meter {
        Meter {
            calls: obs.counter(&format!("enrich.{service}.calls"), &[]),
            latency: obs.histogram(&format!("enrich.{service}.latency_ns"), &[]),
        }
    }

    /// Count and time one service call.
    fn call<T>(&self, f: impl FnOnce() -> T) -> T {
        self.calls.inc();
        self.latency.time(f)
    }
}

impl ServiceMeters {
    /// Resolve the per-service meters against an observability handle.
    pub fn new(obs: &Obs) -> ServiceMeters {
        if !obs.is_enabled() {
            return ServiceMeters::disabled();
        }
        ServiceMeters {
            hlr: Meter::new(obs, "hlr"),
            whois: Meter::new(obs, "whois"),
            ctlog: Meter::new(obs, "ctlog"),
            pdns: Meter::new(obs, "pdns"),
            ipinfo: Meter::new(obs, "ipinfo"),
            virustotal: Meter::new(obs, "virustotal"),
            gsb: Meter::new(obs, "gsb"),
        }
    }

    /// Inert meters: every call runs unobserved.
    pub fn disabled() -> ServiceMeters {
        ServiceMeters {
            hlr: Meter::default(),
            whois: Meter::default(),
            ctlog: Meter::default(),
            pdns: Meter::default(),
            ipinfo: Meter::default(),
            virustotal: Meter::default(),
            gsb: Meter::default(),
        }
    }
}

/// Parse a raw sender string into a [`SenderId`].
pub fn parse_sender(raw: &str) -> Option<SenderId> {
    match classify_sender(raw) {
        RawSenderKind::Empty => None,
        RawSenderKind::EmailLike => Some(SenderId::Email(raw.trim().to_string())),
        RawSenderKind::AlphanumericLike => Some(SenderId::Alphanumeric(raw.trim().to_string())),
        RawSenderKind::PhoneLike => Some(parse_phone(raw)),
    }
}

fn enrich_url(raw: &str, world: &World, meters: &ServiceMeters) -> Option<UrlIntel> {
    let parsed = parse_url(raw)?;
    let catalog = ShortenerCatalog::new();
    let shortener = catalog.service_of(&parsed);
    let whatsapp = catalog.is_whatsapp_link(&parsed);
    let (domain, free_hosted) = if shortener.is_some() || whatsapp {
        (None, false)
    } else if let Some(site) = free_hosting_site(&parsed.host) {
        (Some(site), true)
    } else {
        (registrable_domain(&parsed.host), false)
    };

    let services = &world.services;
    let registrar = domain
        .as_deref()
        .filter(|_| !free_hosted)
        .and_then(|d| meters.whois.call(|| services.whois.query(d)))
        .map(|r| r.registrar);
    let certs = domain
        .as_deref()
        .map(|d| meters.ctlog.call(|| services.ctlog.query(d)))
        .unwrap_or_default();
    let resolutions: Vec<(Resolution, Option<IpInfo>)> = domain
        .as_deref()
        .map(|d| meters.pdns.call(|| services.pdns.query(d, world.now)))
        .unwrap_or_default()
        .into_iter()
        .map(|r| {
            let info = meters.ipinfo.call(|| services.asn.lookup(r.ip));
            (r, info)
        })
        .collect();

    let url_string = parsed.to_url_string();
    Some(UrlIntel {
        vt: meters
            .virustotal
            .call(|| services.virustotal.scan(&url_string)),
        gsb_api_unsafe: meters.gsb.call(|| services.gsb.api_unsafe(&url_string)),
        gsb_transparency: meters.gsb.call(|| services.gsb.transparency(&url_string)),
        gsb_vt_listed: meters
            .gsb
            .call(|| services.gsb.vt_listed_unsafe(&url_string)),
        parsed,
        shortener,
        whatsapp,
        domain,
        free_hosted,
        registrar,
        certs,
        resolutions,
    })
}

/// Enrich one curated message.
pub fn enrich(curated: CuratedMessage, world: &World) -> EnrichedRecord {
    enrich_observed(curated, world, &ServiceMeters::disabled())
}

/// Enrich one curated message, accounting every external-service call
/// through `meters`.
pub fn enrich_observed(
    curated: CuratedMessage,
    world: &World,
    meters: &ServiceMeters,
) -> EnrichedRecord {
    let sender = curated.sender_raw.as_deref().and_then(parse_sender);
    let hlr = sender
        .as_ref()
        .and_then(|s| meters.hlr.call(|| world.services.hlr.lookup(s)));
    let url = curated
        .url_raw
        .as_deref()
        .and_then(|u| enrich_url(u, world, meters));
    let annotation = PipelineAnnotator::new().annotate(&curated.text);
    EnrichedRecord {
        curated,
        sender,
        hlr,
        url,
        annotation,
    }
}

/// Enrich a batch (serial; enrichment is cheap next to curation).
pub fn enrich_all(curated: Vec<CuratedMessage>, world: &World) -> Vec<EnrichedRecord> {
    enrich_all_observed(curated, world, &Obs::noop())
}

/// Enrich a batch with per-service call accounting.
pub fn enrich_all_observed(
    curated: Vec<CuratedMessage>,
    world: &World,
    obs: &Obs,
) -> Vec<EnrichedRecord> {
    let meters = ServiceMeters::new(obs);
    curated
        .into_iter()
        .map(|c| enrich_observed(c, world, &meters))
        .collect()
}

/// Distinct resolved IPs of a record set (§4.6).
pub fn distinct_ips(records: &[EnrichedRecord]) -> Vec<Ipv4Addr> {
    let mut ips: Vec<Ipv4Addr> = records
        .iter()
        .filter_map(|r| r.url.as_ref())
        .flat_map(|u| u.resolutions.iter().map(|(r, _)| r.ip))
        .collect();
    ips.sort_unstable();
    ips.dedup();
    ips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curation::{curate_posts, dedup, CurationOptions, DedupMode};
    use smishing_types::{ScamType, SenderKind};
    use smishing_worldsim::{Post, WorldConfig};

    fn records() -> (World, Vec<EnrichedRecord>) {
        let world = World::generate(WorldConfig {
            scale: 0.06,
            seed: 71,
            ..WorldConfig::default()
        });
        let refs: Vec<&Post> = world.posts.iter().collect();
        let curated = curate_posts(&refs, &CurationOptions::default());
        let unique = dedup(&curated, DedupMode::Normalized);
        let recs = enrich_all(unique, &world);
        (world, recs)
    }

    #[test]
    fn sender_kinds_cover_all_three() {
        let (_, recs) = records();
        let mut kinds = std::collections::HashSet::new();
        for r in &recs {
            if let Some(s) = &r.sender {
                kinds.insert(s.kind());
            }
        }
        assert!(kinds.contains(&SenderKind::Phone));
        assert!(kinds.contains(&SenderKind::Alphanumeric));
        assert!(kinds.contains(&SenderKind::Email), "{kinds:?}");
    }

    #[test]
    fn phone_senders_get_hlr_records() {
        let (_, recs) = records();
        let mut phones = 0;
        for r in &recs {
            if matches!(r.sender, Some(SenderId::Phone(_))) {
                assert!(r.hlr.is_some());
                phones += 1;
            }
        }
        assert!(phones > 20, "{phones}");
    }

    #[test]
    fn shortened_urls_hide_their_domains() {
        let (_, recs) = records();
        let mut shortened = 0;
        for r in &recs {
            if let Some(u) = &r.url {
                if u.shortener.is_some() {
                    shortened += 1;
                    assert!(u.domain.is_none(), "{:?}", u.parsed);
                    assert!(u.certs.is_empty());
                }
            }
        }
        assert!(shortened > 10, "{shortened}");
    }

    #[test]
    fn direct_urls_resolve_infrastructure() {
        let (_, recs) = records();
        let mut with_registrar = 0;
        let mut with_certs = 0;
        for r in &recs {
            if let Some(u) = &r.url {
                if u.domain.is_some() && !u.free_hosted {
                    if u.registrar.is_some() {
                        with_registrar += 1;
                    }
                    if !u.certs.is_empty() {
                        with_certs += 1;
                    }
                }
            }
        }
        assert!(with_registrar > 20, "{with_registrar}");
        assert!(with_certs > 20, "{with_certs}");
    }

    #[test]
    fn annotations_recover_scam_types() {
        let (world, recs) = records();
        let mut hits = 0;
        let mut total = 0;
        for r in &recs {
            let Some(mid) = r.curated.truth_message else {
                continue;
            };
            let truth = &world.messages[mid.0 as usize].truth;
            total += 1;
            if r.annotation.scam_type == truth.scam_type {
                hits += 1;
            }
        }
        let acc = hits as f64 / total as f64;
        assert!(acc > 0.75, "scam-type accuracy {acc}");
    }

    #[test]
    fn banking_dominates_annotations() {
        let (_, recs) = records();
        let banking = recs
            .iter()
            .filter(|r| r.annotation.scam_type == ScamType::Banking)
            .count();
        assert!(
            banking as f64 / recs.len() as f64 > 0.3,
            "{banking}/{}",
            recs.len()
        );
    }

    #[test]
    fn parse_sender_handles_all_shapes() {
        assert!(parse_sender("+447911123456").unwrap().phone().is_some());
        assert_eq!(
            parse_sender("SBIBNK").unwrap().kind(),
            SenderKind::Alphanumeric
        );
        assert_eq!(parse_sender("a@b.co").unwrap().kind(), SenderKind::Email);
        assert!(parse_sender("  ").is_none());
    }
}
