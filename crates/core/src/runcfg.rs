//! One run configuration for every frontend.
//!
//! `smish`, `repro`, and integration harnesses all build the same
//! [`RunConfig`]: world parameters (scale/seed), curation options, an
//! [`ExecPlan`] for the execution core, a deterministic
//! [`FaultPlan`](smishing_fault::FaultPlan), and the observability sinks.
//! The shared [`RunConfig::parse_flag`] gives every binary the same
//! flag vocabulary — a flag documented for one tool means the same thing
//! everywhere — and the helpers ([`world`](RunConfig::world),
//! [`obs`](RunConfig::obs), [`pipeline`](RunConfig::pipeline),
//! [`emit_metrics`](RunConfig::emit_metrics)) keep per-command plumbing
//! out of `main`.

use crate::curation::CurationOptions;
use crate::exec::ExecPlan;
use crate::pipeline::Pipeline;
use smishing_fault::FaultPlan;
use smishing_obs::{obs_info, Level, Obs};
use smishing_types::AdversaryPlan;
use smishing_worldsim::{World, WorldConfig};
use std::io::Write;

/// Where a run's observability output goes.
#[derive(Debug, Clone)]
pub struct ObsSinks {
    /// Write the JSON run report (schema `smishing-obs/v1`) here.
    pub metrics_json: Option<String>,
    /// Print a Prometheus-style text exposition to stdout on completion.
    pub metrics_text: bool,
    /// Logger level (stderr).
    pub level: Level,
}

impl Default for ObsSinks {
    fn default() -> Self {
        ObsSinks {
            metrics_json: None,
            metrics_text: false,
            level: Level::Info,
        }
    }
}

/// Everything a run needs: what world, how to curate, how to execute,
/// which faults to inject, and where observability goes.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// World scale factor (1.0 = the paper's dataset size).
    pub scale: f64,
    /// World seed.
    pub seed: u64,
    /// Curation options (extractor, dedup mode).
    pub curation: CurationOptions,
    /// Worker topology for the execution core.
    pub exec: ExecPlan,
    /// Deterministic service-fault plan (default: none).
    pub faults: FaultPlan,
    /// Observability sinks.
    pub sinks: ObsSinks,
    /// Triage workers for the serve plane (0 = answer inline on one
    /// thread, the default).
    pub serve_workers: usize,
    /// Bounded admission queue for the serve worker plane; a full queue
    /// sheds requests instead of blocking the intake loop.
    pub queue_depth: usize,
    /// Aging window (seconds) for the serve plane's intel snapshots:
    /// entries whose dedup group was last reported more than this long
    /// before the newest report are evicted at republish. `None` (the
    /// default) keeps everything forever.
    pub intel_window_secs: Option<u64>,
    /// Adversarial campaign-evolution plan (default: empty, which leaves
    /// every output byte-identical to a plan-free run).
    pub adversary: AdversaryPlan,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            scale: 0.1,
            seed: 0xF15F,
            curation: CurationOptions::default(),
            exec: ExecPlan::default(),
            faults: FaultPlan::none(),
            sinks: ObsSinks::default(),
            serve_workers: 0,
            queue_depth: 1024,
            intel_window_secs: None,
            adversary: AdversaryPlan::none(),
        }
    }
}

/// Parse a seed: decimal, or hex with an `0x` prefix.
pub fn parse_seed(s: &str) -> Result<u64, String> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())
    } else {
        s.parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }
}

impl RunConfig {
    /// The flag vocabulary [`parse_flag`](Self::parse_flag) accepts, for
    /// usage strings.
    pub const FLAGS_USAGE: &'static str = "[--scale S] [--seed N] [--shards N] [--curators N] \
         [--channel-capacity N] [--serve-workers N] [--queue-depth N] [--intel-window SECS] \
         [--adversary PROFILE[:SEED]] [--fault-profile none|mild|harsh[:SEED]] \
         [--metrics-json PATH] [--metrics-text] [--log-level LEVEL] [--quiet]";

    /// Try to consume one shared flag. Returns `Ok(true)` if `flag` was
    /// recognized (its value, when needed, pulled via `next`), `Ok(false)`
    /// if the caller should handle it, and `Err` on a malformed value so
    /// every binary reports bad input the same way.
    pub fn parse_flag(
        &mut self,
        flag: &str,
        next: &mut dyn FnMut() -> Option<String>,
    ) -> Result<bool, String> {
        let mut take = |name: &str| -> Result<String, String> {
            next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--scale" => self.scale = take("--scale")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => self.seed = parse_seed(&take("--seed")?)?,
            "--shards" => {
                self.exec.shards = take("--shards")?.parse().map_err(|e| format!("{e}"))?
            }
            "--curators" => {
                self.exec.curators = take("--curators")?.parse().map_err(|e| format!("{e}"))?
            }
            "--channel-capacity" => {
                self.exec.channel_capacity = take("--channel-capacity")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--serve-workers" => {
                self.serve_workers = take("--serve-workers")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--queue-depth" => {
                self.queue_depth = take("--queue-depth")?.parse().map_err(|e| format!("{e}"))?
            }
            "--intel-window" => {
                self.intel_window_secs = Some(
                    take("--intel-window")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--adversary" => self.adversary = take("--adversary")?.parse()?,
            "--fault-profile" => self.faults = take("--fault-profile")?.parse()?,
            "--metrics-json" => self.sinks.metrics_json = Some(take("--metrics-json")?),
            "--metrics-text" => self.sinks.metrics_text = true,
            "--log-level" => self.sinks.level = take("--log-level")?.parse()?,
            "--quiet" => self.sinks.level = Level::Error,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Build the observability handle for this run.
    pub fn obs(&self) -> Obs {
        Obs::with_level(self.sinks.level)
    }

    /// Generate the world and install the fault plan (after generation, so
    /// only the query-side services misbehave — the world itself is
    /// unaffected).
    pub fn world(&self, obs: &Obs) -> World {
        let mut world = World::generate(WorldConfig {
            scale: self.scale,
            seed: self.seed,
            adversary: self.adversary.clone(),
            ..WorldConfig::default()
        });
        if !self.faults.is_none() {
            world.set_fault_plan(&self.faults);
            obs_info!(
                obs,
                "fault plan installed (seed {:#x}) — degraded records will be \
                 reported, never dropped",
                self.faults.seed
            );
        }
        world
    }

    /// The batch pipeline this configuration describes.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline {
            curation: self.curation,
            exec: self.exec.clone(),
        }
    }

    /// Emit the configured run reports once the command finished.
    pub fn emit_metrics(&self, obs: &Obs) -> Result<(), String> {
        if let Some(path) = &self.sinks.metrics_json {
            let json = obs.json_report();
            std::fs::File::create(path)
                .and_then(|mut f| f.write_all(json.as_bytes()))
                .map_err(|e| format!("failed to write metrics report to {path}: {e}"))?;
            obs_info!(obs, "wrote metrics report to {path}");
        }
        if self.sinks.metrics_text {
            print!("{}", obs.text_exposition());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(cfg: &mut RunConfig, argv: &[&str]) -> Result<(), String> {
        let mut it = argv.iter().map(|s| s.to_string());
        while let Some(flag) = it.next() {
            let handled = cfg.parse_flag(&flag, &mut || it.next())?;
            assert!(handled, "unhandled flag {flag}");
        }
        Ok(())
    }

    #[test]
    fn shared_flags_cover_world_exec_faults_and_sinks() {
        let mut cfg = RunConfig::default();
        parse(
            &mut cfg,
            &[
                "--scale",
                "0.02",
                "--seed",
                "0xBEEF",
                "--shards",
                "8",
                "--curators",
                "3",
                "--channel-capacity",
                "64",
                "--serve-workers",
                "4",
                "--queue-depth",
                "256",
                "--intel-window",
                "86400",
                "--adversary",
                "rotation:0x5EED",
                "--fault-profile",
                "mild:7",
                "--metrics-json",
                "out.json",
                "--quiet",
            ],
        )
        .unwrap();
        assert_eq!(cfg.scale, 0.02);
        assert_eq!(cfg.seed, 0xBEEF);
        assert_eq!(cfg.exec.shards, 8);
        assert_eq!(cfg.exec.curators, 3);
        assert_eq!(cfg.exec.channel_capacity, 64);
        assert_eq!(cfg.serve_workers, 4);
        assert_eq!(cfg.queue_depth, 256);
        assert_eq!(cfg.intel_window_secs, Some(86400));
        assert_eq!(cfg.adversary.profile, "rotation");
        assert_eq!(cfg.adversary.seed, 0x5EED);
        assert!(cfg.adversary.rotate_url && cfg.adversary.rotate_sender);
        assert!(!cfg.faults.is_none());
        assert_eq!(cfg.sinks.metrics_json.as_deref(), Some("out.json"));
        assert_eq!(cfg.sinks.level, Level::Error);
    }

    #[test]
    fn unknown_flags_are_left_to_the_caller() {
        let mut cfg = RunConfig::default();
        let handled = cfg.parse_flag("--out", &mut || None).unwrap();
        assert!(!handled);
    }

    #[test]
    fn malformed_values_error_instead_of_defaulting() {
        let mut cfg = RunConfig::default();
        assert!(parse(&mut cfg, &["--shards", "many"]).is_err());
        assert!(parse(&mut cfg, &["--seed"]).is_err());
        assert!(parse(&mut cfg, &["--serve-workers", "lots"]).is_err());
        assert!(parse(&mut cfg, &["--queue-depth"]).is_err());
        assert!(parse(&mut cfg, &["--intel-window", "forever"]).is_err());
        assert!(parse(&mut cfg, &["--intel-window"]).is_err());
        assert!(parse(&mut cfg, &["--adversary", "bogus"]).is_err());
        assert!(parse(&mut cfg, &["--adversary", "rotation:banana"]).is_err());
    }

    #[test]
    fn seeds_parse_decimal_and_hex() {
        assert_eq!(parse_seed("10").unwrap(), 10);
        assert_eq!(parse_seed("0xF15F").unwrap(), 0xF15F);
        assert!(parse_seed("0xZZ").is_err());
    }
}
