//! The released dataset artifact (Appendix C).
//!
//! The paper publishes a pseudo-anonymized dataset with one row per
//! message: anonymized sender, HLR-derived type/operator/country, the text
//! with PII removed, translation, shortener, brand, scam category, lures
//! and language. This module builds, serializes (JSON via serde / CSV by
//! hand) and re-imports that artifact.

use crate::enrich::EnrichedRecord;
use serde::{Deserialize, Serialize};
use smishing_types::{Language, Lure, ScamType};

/// One row of the released dataset (field-for-field the Appendix C schema).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetRow {
    /// Anonymized sender ID ("phone number", "email", "alphanumeric" or a
    /// masked number keeping the country prefix).
    pub sender_id: Option<String>,
    /// HLR number type label, where the sender was a phone number.
    pub sender_id_type: Option<String>,
    /// Original mobile network operator.
    pub sender_original_mno: Option<String>,
    /// Origin country (alpha-3).
    pub sender_origin_country: Option<String>,
    /// Message text with PII (URLs, phone numbers) masked.
    pub text_message: String,
    /// English translation (when the original is not English).
    pub translated_text: Option<String>,
    /// Abused URL shortener, if any.
    pub url_shortener: Option<String>,
    /// Impersonated brand.
    pub brand_impersonated: Option<String>,
    /// Scam category label.
    pub scam_category: String,
    /// Lure principles.
    pub lure_principles: Vec<String>,
    /// ISO 639-1 language code.
    pub language: String,
}

/// Mask PII inside a message text: URLs and phone-number-looking tokens.
pub fn mask_pii(text: &str) -> String {
    text.split_whitespace()
        .map(|tok| {
            if smishing_textnlp::tokenize::looks_like_url(tok) {
                "<URL>"
            } else if is_phoneish(tok) {
                "<PHONE>"
            } else if has_long_digit_run(tok) {
                // Tracking numbers, account fragments, OTPs.
                "<ID>"
            } else {
                tok
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn is_phoneish(tok: &str) -> bool {
    let digits = tok.chars().filter(|c| c.is_ascii_digit()).count();
    digits >= 8 && digits as f64 / tok.chars().count() as f64 > 0.7
}

fn has_long_digit_run(tok: &str) -> bool {
    let mut run = 0;
    for c in tok.chars() {
        if c.is_ascii_digit() {
            run += 1;
            if run >= 6 {
                return true;
            }
        } else {
            run = 0;
        }
    }
    false
}

/// Build the dataset from enriched records.
pub fn build_dataset(records: &[EnrichedRecord]) -> Vec<DatasetRow> {
    records
        .iter()
        .map(|r| {
            let language = r.annotation.language.unwrap_or(Language::English);
            DatasetRow {
                sender_id: r.sender.as_ref().map(|s| s.anonymized()),
                sender_id_type: r.hlr.as_ref().map(|h| h.number_type.label().to_string()),
                sender_original_mno: r
                    .hlr
                    .as_ref()
                    .and_then(|h| h.original_operator)
                    .map(str::to_string),
                sender_origin_country: r
                    .hlr
                    .as_ref()
                    .and_then(|h| h.origin_country)
                    .map(|c| c.alpha3().to_string()),
                text_message: mask_pii(&r.curated.text),
                translated_text: if language == Language::English {
                    None
                } else {
                    Some(mask_pii(&r.curated.english))
                },
                url_shortener: r.url.as_ref().and_then(|u| u.shortener).map(str::to_string),
                brand_impersonated: r.annotation.brand.clone(),
                scam_category: r.annotation.scam_type.label().to_string(),
                lure_principles: r
                    .annotation
                    .lures
                    .iter()
                    .map(|l| l.label().to_string())
                    .collect(),
                language: language.code().to_string(),
            }
        })
        .collect()
}

/// Serialize to pretty JSON.
pub fn to_json(rows: &[DatasetRow]) -> serde_json::Result<String> {
    serde_json::to_string_pretty(rows)
}

/// Parse back from JSON.
pub fn from_json(s: &str) -> serde_json::Result<Vec<DatasetRow>> {
    serde_json::from_str(s)
}

/// Serialize to CSV (RFC-4180-style quoting; lures joined with `;`).
pub fn to_csv(rows: &[DatasetRow]) -> String {
    fn esc(s: &str) -> String {
        if s.contains([',', '"', '\n']) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::from(
        "sender_id,sender_id_type,sender_original_mno,sender_origin_country,text_message,translated_text,url_shortener,brand_impersonated,scam_category,lure_principles,language\n",
    );
    for r in rows {
        let cells = [
            r.sender_id.clone().unwrap_or_default(),
            r.sender_id_type.clone().unwrap_or_default(),
            r.sender_original_mno.clone().unwrap_or_default(),
            r.sender_origin_country.clone().unwrap_or_default(),
            r.text_message.clone(),
            r.translated_text.clone().unwrap_or_default(),
            r.url_shortener.clone().unwrap_or_default(),
            r.brand_impersonated.clone().unwrap_or_default(),
            r.scam_category.clone(),
            r.lure_principles.join(";"),
            r.language.clone(),
        ];
        out.push_str(&cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Validate the anonymization contract of Appendix A/C: no full URLs or
/// long digit runs survive in released text.
pub fn validate_anonymization(rows: &[DatasetRow]) -> Result<(), String> {
    for (i, r) in rows.iter().enumerate() {
        for text in [Some(&r.text_message), r.translated_text.as_ref()]
            .into_iter()
            .flatten()
        {
            if text.contains("http://") || text.contains("https://") {
                return Err(format!("row {i}: URL leaked: {text}"));
            }
            let mut run = 0;
            for c in text.chars() {
                if c.is_ascii_digit() {
                    run += 1;
                    if run >= 8 {
                        return Err(format!("row {i}: digit run leaked: {text}"));
                    }
                } else {
                    run = 0;
                }
            }
        }
    }
    Ok(())
}

/// The scam categories and lures that may legally appear (schema check).
pub fn schema_labels() -> (Vec<&'static str>, Vec<&'static str>) {
    (
        ScamType::ALL.iter().map(|s| s.label()).collect(),
        Lure::ALL.iter().map(|l| l.label()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testfix;

    fn rows() -> Vec<DatasetRow> {
        build_dataset(&testfix::output().records)
    }

    #[test]
    fn dataset_covers_all_records() {
        let r = rows();
        assert_eq!(r.len(), testfix::output().records.len());
    }

    #[test]
    fn anonymization_holds() {
        let r = rows();
        validate_anonymization(&r).expect("no PII in released rows");
        // Senders never appear verbatim.
        for row in &r {
            if let Some(s) = &row.sender_id {
                assert!(
                    s.contains('X')
                        || s == "alphanumeric"
                        || s == "email"
                        || s.contains("bad format"),
                    "{s}"
                );
            }
        }
    }

    #[test]
    fn json_round_trips() {
        let r = rows();
        let json = to_json(&r[..50.min(r.len())]).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(&r[..back.len()], &back[..]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = rows();
        let csv = to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("sender_id,"));
        assert_eq!(lines.len(), r.len() + 1);
        // Every line has the same comma count outside quotes (spot check a
        // few simple rows).
        for line in lines.iter().take(5) {
            assert!(line.matches(',').count() >= 10, "{line}");
        }
    }

    #[test]
    fn labels_obey_schema() {
        let (scams, lures) = schema_labels();
        for row in rows() {
            assert!(
                scams.contains(&row.scam_category.as_str()),
                "{}",
                row.scam_category
            );
            for l in &row.lure_principles {
                assert!(lures.contains(&l.as_str()), "{l}");
            }
        }
    }
}
