//! Brand sectors.
//!
//! The brand *catalog* (names, aliases, home countries) lives in
//! `smishing-textnlp::brands`; this module only defines the sector taxonomy
//! shared between the generator and the analyses (Table 12 maps each brand
//! to the scam category it is typically impersonated for).

use crate::scam::ScamType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Business sector of an impersonated brand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Sector {
    /// Banks, payment apps, financial institutions.
    Banking,
    /// Postal and parcel companies.
    Delivery,
    /// Government agencies (tax, toll, benefits).
    Government,
    /// Mobile network operators and ISPs.
    Telecom,
    /// Tech/streaming/marketplace companies (Netflix, Amazon, Facebook...).
    Tech,
    /// Cryptocurrency exchanges and wallets.
    Crypto,
    /// Everything else (retail, charities...).
    Other,
}

impl Sector {
    /// All sectors.
    pub const ALL: &'static [Sector] = &[
        Sector::Banking,
        Sector::Delivery,
        Sector::Government,
        Sector::Telecom,
        Sector::Tech,
        Sector::Crypto,
        Sector::Other,
    ];

    /// The scam category a brand of this sector is typically impersonated
    /// for. Tech/crypto/other impersonation lands in `Others` (§5.2).
    pub fn typical_scam_type(self) -> ScamType {
        match self {
            Sector::Banking => ScamType::Banking,
            Sector::Delivery => ScamType::Delivery,
            Sector::Government => ScamType::Government,
            Sector::Telecom => ScamType::Telecom,
            Sector::Tech | Sector::Crypto | Sector::Other => ScamType::Others,
        }
    }

    /// Display label (matches the "Category" column of Table 12).
    pub fn label(self) -> &'static str {
        match self {
            Sector::Banking => "Banking",
            Sector::Delivery => "Delivery",
            Sector::Government => "Government",
            Sector::Telecom => "Telecom",
            Sector::Tech => "Others",
            Sector::Crypto => "Others",
            Sector::Other => "Others",
        }
    }
}

impl fmt::Display for Sector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_to_scam_type() {
        assert_eq!(Sector::Banking.typical_scam_type(), ScamType::Banking);
        assert_eq!(Sector::Tech.typical_scam_type(), ScamType::Others);
    }

    #[test]
    fn table12_labels_tech_as_others() {
        // Amazon and Netflix appear in Table 12 with category "Others".
        assert_eq!(Sector::Tech.label(), "Others");
    }
}
