//! Sender identities (§3.3.1, §4.1).
//!
//! A smish arrives from one of three sender-ID kinds: a phone number, an
//! email address (iMessage via an iCloud account), or an alphanumeric
//! shortcode (spoofed through SMS aggregators). Reporters sometimes redact
//! the sender before posting, which the model represents explicitly.

use crate::phone::PhoneNumber;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a sender ID — the three-way split of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SenderKind {
    /// A phone number (possibly spoofed / badly formatted).
    Phone,
    /// An email address.
    Email,
    /// An alphanumeric shortcode like `SBIBNK` or `GOV-UK`.
    Alphanumeric,
}

impl SenderKind {
    /// All kinds, in the §4.1 reporting order.
    pub const ALL: &'static [SenderKind] = &[
        SenderKind::Phone,
        SenderKind::Email,
        SenderKind::Alphanumeric,
    ];

    /// Label as used in prose and the released dataset (Appendix C).
    pub fn label(self) -> &'static str {
        match self {
            SenderKind::Phone => "phone number",
            SenderKind::Email => "email",
            SenderKind::Alphanumeric => "alphanumeric",
        }
    }
}

impl fmt::Display for SenderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A sender ID exactly as extracted from a report.
///
/// `Phone` keeps both the parsed number *and* the raw string as displayed,
/// because spoofed senders often fail to parse (Table 3 "Bad Format") and
/// the raw form is what HLR lookups and dataset exports need to reason about.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SenderId {
    /// A parseable phone number.
    Phone(PhoneNumber),
    /// A digit string that looks like a phone number but parses under no
    /// numbering plan (too many digits, invalid prefix, ...). Kept verbatim.
    MalformedPhone(String),
    /// An email address.
    Email(String),
    /// An alphanumeric shortcode.
    Alphanumeric(String),
}

impl SenderId {
    /// The coarse kind. Malformed phone strings still count as `Phone` —
    /// the paper's Table 3 classifies them as "Bad Format" phone numbers.
    pub fn kind(&self) -> SenderKind {
        match self {
            SenderId::Phone(_) | SenderId::MalformedPhone(_) => SenderKind::Phone,
            SenderId::Email(_) => SenderKind::Email,
            SenderId::Alphanumeric(_) => SenderKind::Alphanumeric,
        }
    }

    /// The sender as the messaging app would display it.
    pub fn display_string(&self) -> String {
        match self {
            SenderId::Phone(p) => p.e164(),
            SenderId::MalformedPhone(s) => s.clone(),
            SenderId::Email(e) => e.clone(),
            SenderId::Alphanumeric(a) => a.clone(),
        }
    }

    /// Pseudo-anonymized form for dataset release (Appendix C): the released
    /// dataset replaces the actual identity with its kind label, except that
    /// phone numbers keep their country prefix (needed for Table 14).
    pub fn anonymized(&self) -> String {
        match self {
            SenderId::Phone(p) => p.anonymized(),
            SenderId::MalformedPhone(_) => "phone number (bad format)".to_string(),
            SenderId::Email(_) => "email".to_string(),
            SenderId::Alphanumeric(_) => "alphanumeric".to_string(),
        }
    }

    /// The parsed phone number, if this is a well-formed phone sender.
    pub fn phone(&self) -> Option<&PhoneNumber> {
        match self {
            SenderId::Phone(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for SenderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert_eq!(
            SenderId::Phone(PhoneNumber::new(44, "7900000001")).kind(),
            SenderKind::Phone
        );
        assert_eq!(
            SenderId::MalformedPhone("12345678901234567".into()).kind(),
            SenderKind::Phone
        );
        assert_eq!(
            SenderId::Email("a@icloud.com".into()).kind(),
            SenderKind::Email
        );
        assert_eq!(
            SenderId::Alphanumeric("SBIBNK".into()).kind(),
            SenderKind::Alphanumeric
        );
    }

    #[test]
    fn anonymization_never_leaks_identity() {
        let e = SenderId::Email("victim-target@icloud.com".into());
        assert!(!e.anonymized().contains("victim"));
        let a = SenderId::Alphanumeric("SBIBNK".into());
        assert_eq!(a.anonymized(), "alphanumeric");
        let p = SenderId::Phone(PhoneNumber::new(91, "9876543210"));
        assert!(!p.anonymized().contains("876543210"));
    }

    #[test]
    fn display_matches_app_rendering() {
        let p = SenderId::Phone(PhoneNumber::new(1, "2025550147"));
        assert_eq!(p.to_string(), "+12025550147");
    }
}
