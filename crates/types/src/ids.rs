//! Opaque identifiers threaded through the pipeline.
//!
//! The generator stamps every smish with the campaign that produced it and
//! every forum post with the message it reports. The *pipeline never reads
//! these* — they exist so tests and EXPERIMENTS.md can compare what the
//! pipeline recovered against ground truth.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty)) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "#{}"), self.0)
            }
        }
    };
}

id_type! {
    /// Identifies a smishing campaign in the generated world.
    CampaignId(u32)
}

id_type! {
    /// Identifies a single smish *send* (one message to one victim).
    MessageId(u64)
}

id_type! {
    /// Identifies a forum post/report.
    PostId(u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_type_and_value() {
        assert_eq!(CampaignId(7).to_string(), "CampaignId#7");
        assert_eq!(MessageId(42).to_string(), "MessageId#42");
        assert_eq!(PostId(9).to_string(), "PostId#9");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(MessageId(1) < MessageId(2));
    }
}
