//! Countries relevant to the smishing ecosystem.
//!
//! The paper reports sender-ID origin countries (Table 14), MNO operating
//! countries (Table 4) and AS host countries (Table 8). We model the ~60
//! countries that appear anywhere in the paper's tables plus the major
//! telephony markets needed by the numbering-plan substrate.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! countries {
    ($( $variant:ident => ($a2:literal, $a3:literal, $name:literal, $cc:literal) ),+ $(,)?) => {
        /// A country, identified by its ISO 3166-1 codes.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum Country {
            $($variant),+
        }

        impl Country {
            /// Every country known to the model, in declaration order.
            pub const ALL: &'static [Country] = &[$(Country::$variant),+];

            /// ISO 3166-1 alpha-2 code (e.g. `"GB"`).
            pub fn alpha2(self) -> &'static str {
                match self { $(Country::$variant => $a2),+ }
            }

            /// ISO 3166-1 alpha-3 code (e.g. `"GBR"`), the form used in the paper's tables.
            pub fn alpha3(self) -> &'static str {
                match self { $(Country::$variant => $a3),+ }
            }

            /// English short name.
            pub fn name(self) -> &'static str {
                match self { $(Country::$variant => $name),+ }
            }

            /// ITU E.164 country calling code (e.g. `44` for the UK).
            ///
            /// Note several countries share a calling code (NANP members all
            /// use `1`); resolving a number to a country therefore needs the
            /// numbering plan in `smishing-telecom`, not just this code.
            pub fn calling_code(self) -> u16 {
                match self { $(Country::$variant => $cc),+ }
            }

            /// Look a country up by either its alpha-2 or alpha-3 code
            /// (case-insensitive).
            pub fn from_code(code: &str) -> Option<Country> {
                let up = code.trim().to_ascii_uppercase();
                Country::ALL.iter().copied().find(|c| c.alpha2() == up || c.alpha3() == up)
            }
        }
    };
}

countries! {
    // Core markets that dominate the paper's tables.
    India => ("IN", "IND", "India", 91),
    UnitedStates => ("US", "USA", "United States of America", 1),
    UnitedKingdom => ("GB", "GBR", "United Kingdom", 44),
    Netherlands => ("NL", "NLD", "Netherlands", 31),
    Spain => ("ES", "ESP", "Spain", 34),
    Australia => ("AU", "AUS", "Australia", 61),
    France => ("FR", "FRA", "France", 33),
    Belgium => ("BE", "BEL", "Belgium", 32),
    Indonesia => ("ID", "IDN", "Indonesia", 62),
    Germany => ("DE", "DEU", "Germany", 49),
    // Vodafone / Airtel / Lycamobile footprints (Table 4).
    Czechia => ("CZ", "CZE", "Czechia", 420),
    Ghana => ("GH", "GHA", "Ghana", 233),
    Hungary => ("HU", "HUN", "Hungary", 36),
    Ireland => ("IE", "IRL", "Ireland", 353),
    Italy => ("IT", "ITA", "Italy", 39),
    NewZealand => ("NZ", "NZL", "New Zealand", 64),
    Portugal => ("PT", "PRT", "Portugal", 351),
    Qatar => ("QA", "QAT", "Qatar", 974),
    Romania => ("RO", "ROU", "Romania", 40),
    Turkey => ("TR", "TUR", "Turkey", 90),
    Ukraine => ("UA", "UKR", "Ukraine", 380),
    SouthAfrica => ("ZA", "ZAF", "South Africa", 27),
    DrCongo => ("CD", "COD", "DR Congo", 243),
    Kenya => ("KE", "KEN", "Kenya", 254),
    SriLanka => ("LK", "LKA", "Sri Lanka", 94),
    Malawi => ("MW", "MWI", "Malawi", 265),
    Nigeria => ("NG", "NGA", "Nigeria", 234),
    Guadeloupe => ("GP", "GLP", "Guadeloupe", 590),
    // Hosting / AS countries (Table 8) and language markets.
    Japan => ("JP", "JPN", "Japan", 81),
    China => ("CN", "CHN", "China", 86),
    HongKong => ("HK", "HKG", "Hong Kong", 852),
    Luxembourg => ("LU", "LUX", "Luxembourg", 352),
    Russia => ("RU", "RUS", "Russia", 7),
    Morocco => ("MA", "MAR", "Morocco", 212),
    Brazil => ("BR", "BRA", "Brazil", 55),
    Mexico => ("MX", "MEX", "Mexico", 52),
    Argentina => ("AR", "ARG", "Argentina", 54),
    Colombia => ("CO", "COL", "Colombia", 57),
    Philippines => ("PH", "PHL", "Philippines", 63),
    Pakistan => ("PK", "PAK", "Pakistan", 92),
    Bangladesh => ("BD", "BGD", "Bangladesh", 880),
    Malaysia => ("MY", "MYS", "Malaysia", 60),
    Singapore => ("SG", "SGP", "Singapore", 65),
    Thailand => ("TH", "THA", "Thailand", 66),
    Vietnam => ("VN", "VNM", "Vietnam", 84),
    SouthKorea => ("KR", "KOR", "South Korea", 82),
    Poland => ("PL", "POL", "Poland", 48),
    Sweden => ("SE", "SWE", "Sweden", 46),
    Norway => ("NO", "NOR", "Norway", 47),
    Denmark => ("DK", "DNK", "Denmark", 45),
    Finland => ("FI", "FIN", "Finland", 358),
    Switzerland => ("CH", "CHE", "Switzerland", 41),
    Austria => ("AT", "AUT", "Austria", 43),
    Greece => ("GR", "GRC", "Greece", 30),
    Canada => ("CA", "CAN", "Canada", 1),
    Egypt => ("EG", "EGY", "Egypt", 20),
    SaudiArabia => ("SA", "SAU", "Saudi Arabia", 966),
    UnitedArabEmirates => ("AE", "ARE", "United Arab Emirates", 971),
    Israel => ("IL", "ISR", "Israel", 972),
    Taiwan => ("TW", "TWN", "Taiwan", 886),
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.alpha3())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn codes_are_unique() {
        let a2: HashSet<_> = Country::ALL.iter().map(|c| c.alpha2()).collect();
        let a3: HashSet<_> = Country::ALL.iter().map(|c| c.alpha3()).collect();
        assert_eq!(a2.len(), Country::ALL.len());
        assert_eq!(a3.len(), Country::ALL.len());
    }

    #[test]
    fn lookup_by_either_code() {
        assert_eq!(Country::from_code("gb"), Some(Country::UnitedKingdom));
        assert_eq!(Country::from_code("GBR"), Some(Country::UnitedKingdom));
        assert_eq!(Country::from_code(" ind "), Some(Country::India));
        assert_eq!(Country::from_code("xx"), None);
    }

    #[test]
    fn alpha_code_shapes() {
        for c in Country::ALL {
            assert_eq!(c.alpha2().len(), 2, "{c:?}");
            assert_eq!(c.alpha3().len(), 3, "{c:?}");
            assert!(c.calling_code() > 0);
        }
    }

    #[test]
    fn nanp_members_share_calling_code() {
        assert_eq!(Country::UnitedStates.calling_code(), 1);
        assert_eq!(Country::Canada.calling_code(), 1);
    }

    #[test]
    fn display_uses_alpha3_like_the_paper() {
        assert_eq!(Country::UnitedKingdom.to_string(), "GBR");
    }
}
