//! The scam taxonomy the paper annotates messages with.
//!
//! - [`ScamType`]: the seven scam categories plus spam (§5.2, Table 10),
//!   following the categorization of Agarwal et al. (IMC'24 poster).
//! - [`Lure`]: the seven lure principles of Stajano & Wilson (§5.5, Table 13).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scam category of a smishing message (Table 10).
///
/// `Spam` is not a scam — the paper keeps it as a category precisely to show
/// that user-report mining needs a spam/scam distinction (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScamType {
    /// Impersonates a bank or financial institution.
    Banking,
    /// Impersonates a parcel/delivery company.
    Delivery,
    /// Impersonates a government organization (tax agency, toll authority...).
    Government,
    /// Impersonates a mobile network operator.
    Telecom,
    /// Conversation opener pretending to have texted the wrong person.
    WrongNumber,
    /// "Hey mum/dad" family-impersonation conversation scam.
    HeyMumDad,
    /// Anything else: crypto, job offers, tech-company impersonation, OTP call-backs...
    Others,
    /// Unsolicited marketing — annoying but not directly fraudulent.
    Spam,
}

impl ScamType {
    /// All categories, in the paper's Table 10 order.
    pub const ALL: &'static [ScamType] = &[
        ScamType::Banking,
        ScamType::Delivery,
        ScamType::Government,
        ScamType::Telecom,
        ScamType::WrongNumber,
        ScamType::HeyMumDad,
        ScamType::Others,
        ScamType::Spam,
    ];

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ScamType::Banking => "Banking",
            ScamType::Delivery => "Delivery",
            ScamType::Government => "Government",
            ScamType::Telecom => "Telecom",
            ScamType::WrongNumber => "Wrong number",
            ScamType::HeyMumDad => "Hey mum/dad",
            ScamType::Others => "Others",
            ScamType::Spam => "Spam",
        }
    }

    /// Single-letter key used in Tables 5 and 13 (B/D/G/T/W/H); `None` for
    /// Others and Spam, which those tables omit.
    pub fn short_key(self) -> Option<char> {
        match self {
            ScamType::Banking => Some('B'),
            ScamType::Delivery => Some('D'),
            ScamType::Government => Some('G'),
            ScamType::Telecom => Some('T'),
            ScamType::WrongNumber => Some('W'),
            ScamType::HeyMumDad => Some('H'),
            _ => None,
        }
    }

    /// Conversation scams lure the victim into *replying* rather than
    /// clicking (§5.5): "Hey mum/dad" and "Wrong number".
    pub fn is_conversational(self) -> bool {
        matches!(self, ScamType::WrongNumber | ScamType::HeyMumDad)
    }

    /// Whether the category is an actual scam (financially harmful), as
    /// opposed to generic spam.
    pub fn is_scam(self) -> bool {
        !matches!(self, ScamType::Spam)
    }
}

impl fmt::Display for ScamType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A lure principle from Stajano & Wilson's typology (Table 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Lure {
    /// References to trusted third parties so users comply without question.
    Authority,
    /// Invites users willingly and knowingly into a fraudulent action.
    Dishonesty,
    /// Provides unrelated details to distract the user.
    Distraction,
    /// Leverages greed: attractive (monetary) benefits.
    NeedAndGreed,
    /// Convinces the victim that others have taken the same risk and won.
    Herd,
    /// Leverages people's willingness to help others.
    Kindness,
    /// Time pressure towards an irrational decision.
    TimeUrgency,
}

impl Lure {
    /// All lures, in Table 13 order.
    pub const ALL: &'static [Lure] = &[
        Lure::Authority,
        Lure::Dishonesty,
        Lure::Distraction,
        Lure::NeedAndGreed,
        Lure::Herd,
        Lure::Kindness,
        Lure::TimeUrgency,
    ];

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Lure::Authority => "Authority",
            Lure::Dishonesty => "Dishonesty",
            Lure::Distraction => "Distraction",
            Lure::NeedAndGreed => "Need & Greed",
            Lure::Herd => "Herd",
            Lure::Kindness => "Kindness",
            Lure::TimeUrgency => "Time & Urgency",
        }
    }

    /// Stajano & Wilson's one-line definition, as phrased in Table 13.
    pub fn definition(self) -> &'static str {
        match self {
            Lure::Authority => {
                "Scammers refer to trusted third parties to convince users to comply"
            }
            Lure::Dishonesty => {
                "Scammers invite users willingly and knowingly into taking fraudulent action"
            }
            Lure::Distraction => "Scammers provide unrelated details to distract the user",
            Lure::NeedAndGreed => "Scammers leverage users' greed and offer attractive benefits",
            Lure::Herd => "Scammers convince that others have won taking the same risk",
            Lure::Kindness => "Scammers leverage the willingness of people to help others",
            Lure::TimeUrgency => {
                "Scammers put time pressure on users so they make an irrational decision"
            }
        }
    }
}

impl fmt::Display for Lure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A set of lures attached to one message, stored as a bitmask.
///
/// Lure annotation is multi-label (§3.3.6): a single banking smish typically
/// carries both `Authority` and `TimeUrgency`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct LureSet(u8);

impl LureSet {
    /// The empty set.
    pub const EMPTY: LureSet = LureSet(0);

    fn bit(lure: Lure) -> u8 {
        1 << (Lure::ALL
            .iter()
            .position(|&l| l == lure)
            .expect("lure in ALL") as u8)
    }

    /// Build a set from a slice of lures.
    pub fn from_slice(lures: &[Lure]) -> LureSet {
        let mut s = LureSet::EMPTY;
        for &l in lures {
            s.insert(l);
        }
        s
    }

    /// Insert a lure.
    pub fn insert(&mut self, lure: Lure) {
        self.0 |= Self::bit(lure);
    }

    /// Remove a lure.
    pub fn remove(&mut self, lure: Lure) {
        self.0 &= !Self::bit(lure);
    }

    /// Membership test.
    pub fn contains(self, lure: Lure) -> bool {
        self.0 & Self::bit(lure) != 0
    }

    /// Number of lures in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate the lures in `Lure::ALL` order.
    pub fn iter(self) -> impl Iterator<Item = Lure> {
        Lure::ALL.iter().copied().filter(move |&l| self.contains(l))
    }

    /// Set union.
    pub fn union(self, other: LureSet) -> LureSet {
        LureSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: LureSet) -> LureSet {
        LureSet(self.0 & other.0)
    }
}

impl FromIterator<Lure> for LureSet {
    fn from_iter<I: IntoIterator<Item = Lure>>(iter: I) -> Self {
        let mut s = LureSet::EMPTY;
        for l in iter {
            s.insert(l);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_categories_seven_lures() {
        assert_eq!(ScamType::ALL.len(), 8);
        assert_eq!(Lure::ALL.len(), 7);
    }

    #[test]
    fn short_keys_match_table5_header() {
        let keys: String = ScamType::ALL.iter().filter_map(|s| s.short_key()).collect();
        assert_eq!(keys, "BDGTWH");
    }

    #[test]
    fn conversational_flags() {
        assert!(ScamType::HeyMumDad.is_conversational());
        assert!(ScamType::WrongNumber.is_conversational());
        assert!(!ScamType::Banking.is_conversational());
    }

    #[test]
    fn spam_is_not_a_scam() {
        assert!(!ScamType::Spam.is_scam());
        assert!(ScamType::Others.is_scam());
    }

    #[test]
    fn lureset_roundtrip() {
        let mut s = LureSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Lure::Authority);
        s.insert(Lure::TimeUrgency);
        s.insert(Lure::Authority); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(Lure::Authority));
        assert!(!s.contains(Lure::Herd));
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![Lure::Authority, Lure::TimeUrgency]);
        s.remove(Lure::Authority);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lureset_set_ops() {
        let a = LureSet::from_slice(&[Lure::Authority, Lure::Herd]);
        let b = LureSet::from_slice(&[Lure::Herd, Lure::Kindness]);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(a.intersection(b).contains(Lure::Herd));
    }

    #[test]
    fn lureset_from_iterator() {
        let s: LureSet = [Lure::Distraction, Lure::Kindness].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
