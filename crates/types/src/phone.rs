//! Phone numbers as they appear in sender IDs.
//!
//! This type is deliberately *syntactic*: it stores a country calling code
//! and national digits. Whether the number is a valid mobile, a landline, a
//! spoofed bad-format string, etc. is decided by the numbering plans in
//! `smishing-telecom` (§3.3.1), not here.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A phone number split into E.164 components.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhoneNumber {
    /// ITU country calling code (1–3 digits, e.g. 44).
    pub country_code: u16,
    /// National significant number, digits only (no leading trunk zero).
    pub national: String,
}

impl PhoneNumber {
    /// Construct from parts. `national` must be all ASCII digits.
    pub fn new(country_code: u16, national: impl Into<String>) -> PhoneNumber {
        let national = national.into();
        debug_assert!(national.bytes().all(|b| b.is_ascii_digit()));
        PhoneNumber {
            country_code,
            national,
        }
    }

    /// Full digit string including the country code (no `+`).
    pub fn digits(&self) -> String {
        format!("{}{}", self.country_code, self.national)
    }

    /// E.164 representation (`+919876543210`).
    pub fn e164(&self) -> String {
        format!("+{}{}", self.country_code, self.national)
    }

    /// Total digit count (country code + national).
    pub fn len(&self) -> usize {
        count_digits(self.country_code) + self.national.len()
    }

    /// Never true for a constructed number, provided for completeness.
    pub fn is_empty(&self) -> bool {
        self.national.is_empty()
    }

    /// Pseudo-anonymize for dataset release: keep country code and the first
    /// digit of the national number, mask the rest (Appendix C).
    pub fn anonymized(&self) -> String {
        let mut masked = String::with_capacity(self.national.len());
        for (i, c) in self.national.chars().enumerate() {
            masked.push(if i == 0 { c } else { 'X' });
        }
        format!("+{}{}", self.country_code, masked)
    }
}

fn count_digits(mut n: u16) -> usize {
    if n == 0 {
        return 1;
    }
    let mut c = 0;
    while n > 0 {
        n /= 10;
        c += 1;
    }
    c
}

impl fmt::Display for PhoneNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.e164())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e164_formatting() {
        let p = PhoneNumber::new(44, "7911123456");
        assert_eq!(p.e164(), "+447911123456");
        assert_eq!(p.digits(), "447911123456");
        assert_eq!(p.len(), 12);
    }

    #[test]
    fn anonymization_keeps_cc_and_first_digit() {
        let p = PhoneNumber::new(91, "9876543210");
        assert_eq!(p.anonymized(), "+919XXXXXXXXX");
    }

    #[test]
    fn digit_counting() {
        assert_eq!(count_digits(1), 1);
        assert_eq!(count_digits(44), 2);
        assert_eq!(count_digits(420), 3);
    }
}
