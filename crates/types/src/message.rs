//! The smishing message itself, with generator-side ground truth.
//!
//! [`SmsMessage`] is a smish *as delivered to a victim's handset*: sender,
//! body text, optional URL, receive time. [`MessageTruth`] carries the
//! labels the generator knows (scam type, lures, brand, language...) so that
//! every pipeline stage can be evaluated against ground truth. The pipeline
//! itself must never read `truth` — enforcement is by convention plus the
//! shape tests in `tests/`.

use crate::country::Country;
use crate::ids::{CampaignId, MessageId};
use crate::language::Language;
use crate::scam::{LureSet, ScamType};
use crate::sender::SenderId;
use crate::time::UnixTime;
use serde::{Deserialize, Serialize};

/// Generator-side labels for one message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageTruth {
    /// The scam category this message belongs to.
    pub scam_type: ScamType,
    /// The lure principles the template employs.
    pub lures: LureSet,
    /// Canonical name of the impersonated brand, if any.
    pub brand: Option<String>,
    /// Language the text is written in.
    pub language: Language,
    /// English rendering of the text (identical to `text` when already English).
    pub english_text: String,
    /// Country of the targeted victim.
    pub recipient_country: Country,
}

/// A smishing SMS as received on a handset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmsMessage {
    /// Unique id of this send.
    pub id: MessageId,
    /// The campaign that produced it.
    pub campaign: CampaignId,
    /// Sender identity shown by the messaging app.
    pub sender: SenderId,
    /// Full message body, including any URL inline.
    pub text: String,
    /// The URL embedded in the body, if any, exactly as sent.
    pub url: Option<String>,
    /// When the handset received the message.
    pub received: UnixTime,
    /// Ground truth (generator-only; see module docs).
    pub truth: MessageTruth,
}

impl SmsMessage {
    /// Whether the body carries a URL.
    pub fn has_url(&self) -> bool {
        self.url.is_some()
    }

    /// GSM-7 style length in characters — used by the screenshot layout
    /// engine to decide how many bubble lines the message wraps into.
    pub fn char_len(&self) -> usize {
        self.text.chars().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phone::PhoneNumber;
    use crate::scam::Lure;

    fn sample() -> SmsMessage {
        SmsMessage {
            id: MessageId(1),
            campaign: CampaignId(1),
            sender: SenderId::Phone(PhoneNumber::new(44, "7900000001")),
            text: "URGENT: your account is locked. Visit https://bank-verify.com now".into(),
            url: Some("https://bank-verify.com".into()),
            received: UnixTime(1_600_000_000),
            truth: MessageTruth {
                scam_type: ScamType::Banking,
                lures: LureSet::from_slice(&[Lure::Authority, Lure::TimeUrgency]),
                brand: Some("Barclays".into()),
                language: Language::English,
                english_text: "URGENT: your account is locked. Visit https://bank-verify.com now"
                    .into(),
                recipient_country: Country::UnitedKingdom,
            },
        }
    }

    #[test]
    fn url_presence() {
        let m = sample();
        assert!(m.has_url());
        assert!(m.char_len() > 10);
    }

    #[test]
    fn serde_round_trip_via_debug_equality() {
        // serde is exercised properly in core::dataset tests; here just make
        // sure Clone/PartialEq behave.
        let m = sample();
        assert_eq!(m.clone(), m);
    }
}
