//! Languages observed in smishing messages.
//!
//! The paper detects 66 languages (§5.3, Table 11), of which 13 have over
//! 100 messages. We model the full top of the distribution plus a long tail
//! large enough to exercise 66-way language identification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dominant writing system of a language — the first signal the
/// language identifier in `smishing-textnlp` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Script {
    Latin,
    Cyrillic,
    Arabic,
    Devanagari,
    Bengali,
    Gurmukhi,
    Gujarati,
    Tamil,
    Telugu,
    Kannada,
    Malayalam,
    Sinhala,
    Thai,
    Han,
    Kana,
    Hangul,
    Greek,
    Hebrew,
    Georgian,
    Armenian,
    Ethiopic,
    Myanmar,
    Khmer,
    Lao,
}

macro_rules! languages {
    ($( $variant:ident => ($code:literal, $name:literal, $script:ident) ),+ $(,)?) => {
        /// A language, identified by its ISO 639-1 code.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum Language {
            $($variant),+
        }

        impl Language {
            /// Every language known to the model, in declaration order.
            pub const ALL: &'static [Language] = &[$(Language::$variant),+];

            /// ISO 639-1 two-letter code, the form the paper's tables use.
            pub fn code(self) -> &'static str {
                match self { $(Language::$variant => $code),+ }
            }

            /// English name of the language.
            pub fn name(self) -> &'static str {
                match self { $(Language::$variant => $name),+ }
            }

            /// Dominant writing system.
            pub fn script(self) -> Script {
                match self { $(Language::$variant => Script::$script),+ }
            }

            /// Look up by ISO 639-1 code (case-insensitive).
            pub fn from_code(code: &str) -> Option<Language> {
                let low = code.trim().to_ascii_lowercase();
                Language::ALL.iter().copied().find(|l| l.code() == low)
            }
        }
    };
}

languages! {
    // The 13 languages with >100 messages in the paper, in Table 11 order.
    English => ("en", "English", Latin),
    Spanish => ("es", "Spanish", Latin),
    Dutch => ("nl", "Dutch", Latin),
    French => ("fr", "French", Latin),
    German => ("de", "German", Latin),
    Italian => ("it", "Italian", Latin),
    Indonesian => ("id", "Indonesian", Latin),
    Portuguese => ("pt", "Portuguese", Latin),
    Japanese => ("ja", "Japanese", Kana),
    Hindi => ("hi", "Hindi", Devanagari),
    Tagalog => ("tl", "Tagalog", Latin),
    Mandarin => ("zh", "Mandarin Chinese", Han),
    Turkish => ("tr", "Turkish", Latin),
    // Long tail.
    Arabic => ("ar", "Arabic", Arabic),
    Russian => ("ru", "Russian", Cyrillic),
    Ukrainian => ("uk", "Ukrainian", Cyrillic),
    Polish => ("pl", "Polish", Latin),
    Czech => ("cs", "Czech", Latin),
    Slovak => ("sk", "Slovak", Latin),
    Hungarian => ("hu", "Hungarian", Latin),
    Romanian => ("ro", "Romanian", Latin),
    Bulgarian => ("bg", "Bulgarian", Cyrillic),
    Greek => ("el", "Greek", Greek),
    Swedish => ("sv", "Swedish", Latin),
    Norwegian => ("no", "Norwegian", Latin),
    Danish => ("da", "Danish", Latin),
    Finnish => ("fi", "Finnish", Latin),
    Catalan => ("ca", "Catalan", Latin),
    Galician => ("gl", "Galician", Latin),
    Basque => ("eu", "Basque", Latin),
    Croatian => ("hr", "Croatian", Latin),
    Serbian => ("sr", "Serbian", Cyrillic),
    Slovenian => ("sl", "Slovenian", Latin),
    Lithuanian => ("lt", "Lithuanian", Latin),
    Latvian => ("lv", "Latvian", Latin),
    Estonian => ("et", "Estonian", Latin),
    Korean => ("ko", "Korean", Hangul),
    Vietnamese => ("vi", "Vietnamese", Latin),
    Thai => ("th", "Thai", Thai),
    Malay => ("ms", "Malay", Latin),
    Bengali => ("bn", "Bengali", Bengali),
    Punjabi => ("pa", "Punjabi", Gurmukhi),
    Gujarati => ("gu", "Gujarati", Gujarati),
    Tamil => ("ta", "Tamil", Tamil),
    Telugu => ("te", "Telugu", Telugu),
    Kannada => ("kn", "Kannada", Kannada),
    Malayalam => ("ml", "Malayalam", Malayalam),
    Marathi => ("mr", "Marathi", Devanagari),
    Urdu => ("ur", "Urdu", Arabic),
    Sinhala => ("si", "Sinhala", Sinhala),
    Nepali => ("ne", "Nepali", Devanagari),
    Hebrew => ("he", "Hebrew", Hebrew),
    Persian => ("fa", "Persian", Arabic),
    Swahili => ("sw", "Swahili", Latin),
    Amharic => ("am", "Amharic", Ethiopic),
    Hausa => ("ha", "Hausa", Latin),
    Yoruba => ("yo", "Yoruba", Latin),
    Afrikaans => ("af", "Afrikaans", Latin),
    Burmese => ("my", "Burmese", Myanmar),
    Khmer => ("km", "Khmer", Khmer),
    Lao => ("lo", "Lao", Lao),
    Georgian => ("ka", "Georgian", Georgian),
    Armenian => ("hy", "Armenian", Armenian),
    Azerbaijani => ("az", "Azerbaijani", Latin),
    Kazakh => ("kk", "Kazakh", Cyrillic),
    Uzbek => ("uz", "Uzbek", Latin),
    Albanian => ("sq", "Albanian", Latin),
    Macedonian => ("mk", "Macedonian", Cyrillic),
    Icelandic => ("is", "Icelandic", Latin),
    Maltese => ("mt", "Maltese", Latin),
    Welsh => ("cy", "Welsh", Latin),
    Irish => ("ga", "Irish", Latin),
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl Language {
    /// Whether this is English — the pipeline translates everything else (§3.2).
    pub fn is_english(self) -> bool {
        self == Language::English
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn at_least_sixty_six_languages_like_the_paper() {
        assert!(Language::ALL.len() >= 66, "paper detects 66 languages");
    }

    #[test]
    fn codes_are_unique_and_two_letter() {
        let codes: HashSet<_> = Language::ALL.iter().map(|l| l.code()).collect();
        assert_eq!(codes.len(), Language::ALL.len());
        for l in Language::ALL {
            assert_eq!(l.code().len(), 2, "{l:?}");
        }
    }

    #[test]
    fn lookup_round_trips() {
        for l in Language::ALL {
            assert_eq!(Language::from_code(l.code()), Some(*l));
        }
        assert_eq!(Language::from_code("EN"), Some(Language::English));
        assert_eq!(Language::from_code("zz"), None);
    }

    #[test]
    fn script_assignments_spot_checks() {
        assert_eq!(Language::Hindi.script(), Script::Devanagari);
        assert_eq!(Language::Japanese.script(), Script::Kana);
        assert_eq!(Language::Mandarin.script(), Script::Han);
        assert_eq!(Language::Russian.script(), Script::Cyrillic);
    }
}
