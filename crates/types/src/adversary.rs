//! Adversarial campaign-evolution plans (ROADMAP item 2).
//!
//! The paper's triage pivots (exact-URL → apex → sender → phone) assume
//! campaign infrastructure is sticky; real operators rotate it. An
//! [`AdversaryPlan`] describes, as plain data, how a generated world should
//! *fight back*: which share of campaigns drift, on what epoch cadence, with
//! which rotation strategies, and how many multi-turn funnel campaigns
//! (conversational lures, job-scam recruitment — Anansi-style) to graft onto
//! the base world.
//!
//! The plan lives down here in `smishing-types` so both `WorldConfig`
//! (worldsim) and `RunConfig` (core) can carry it without a dependency
//! cycle. The engine that *executes* a plan is the `smishing-adversary`
//! crate; the world-side archetype grafting lives in `worldsim::adversary`.
//!
//! Determinism contract: an **empty plan leaves every output byte-identical
//! to a plan-free run** — all adversary randomness is drawn from an RNG
//! stream isolated from the base world's (seeded `world_seed ^ plan.seed ^
//! constant`), exactly like the `template_variants` knob.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Campaign archetype — how a campaign engages its victims.
///
/// The base world generates only [`Archetype::Baseline`] campaigns (one
/// lure message, repeated in variants). Adversary plans with a positive
/// `funnel_rate` graft the multi-turn archetypes on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Archetype {
    /// Single-turn lure: one templated message per variant.
    Baseline,
    /// Multi-turn conversational funnel ("wrong number" / "hey mum" style):
    /// rapport turns first, the payload (wa.me hand-off or URL) only in the
    /// final turn.
    ConversationalFunnel,
    /// Job-scam recruitment funnel (Anansi-style): unsolicited offer →
    /// pay/task details → onboarding link on fresh infrastructure.
    JobScamFunnel,
}

impl Archetype {
    /// Human label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Archetype::Baseline => "baseline",
            Archetype::ConversationalFunnel => "conversational-funnel",
            Archetype::JobScamFunnel => "job-scam-funnel",
        }
    }

    /// Whether the archetype spreads its lure over multiple turns.
    pub fn is_funnel(self) -> bool {
        !matches!(self, Archetype::Baseline)
    }
}

impl fmt::Display for Archetype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A seeded, composable description of how campaigns evolve against the
/// triage ladder.
///
/// All strategy toggles compose: a plan with `rotate_url` and
/// `rotate_sender` rotates both pivots in the same wave. Rates are clamped
/// to `[0, 1]` by consumers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// Extra seed XORed into the world seed for the isolated adversary RNG
    /// stream. Changing it re-rolls adversary choices without touching the
    /// base world.
    pub seed: u64,
    /// Fraction of eligible (URL-bearing, non-conversational) campaigns
    /// that rotate infrastructure mid-stream. `0.0` disables rotation.
    pub drifting_share: f64,
    /// Rotate every `cadence_epochs` epoch boundaries (min 1).
    pub cadence_epochs: u64,
    /// Rotation strategy: move to a freshly registered domain.
    pub rotate_url: bool,
    /// Rotation strategy: swap the sending identity at the same time.
    pub rotate_sender: bool,
    /// Rotation strategy: respell the existing apex with homoglyphs or the
    /// punycode (`xn--`) IDN form — tests the defender's host folding.
    pub respell: bool,
    /// Rotation strategy: hide the landing page behind a fresh
    /// shortener chain (short link → short link → landing).
    pub shorten: bool,
    /// Funnel archetype campaigns to graft onto the world, as a fraction of
    /// the base campaign count. `0.0` adds none.
    pub funnel_rate: f64,
    /// Profile label this plan was parsed from (empty for hand-built plans).
    /// Surfaced in `serve` `health` and `smish drift` output.
    pub profile: String,
}

impl Default for AdversaryPlan {
    fn default() -> Self {
        AdversaryPlan::none()
    }
}

impl AdversaryPlan {
    /// The empty plan: no drift, no funnels, world byte-identical to base.
    pub fn none() -> Self {
        AdversaryPlan {
            seed: 0,
            drifting_share: 0.0,
            cadence_epochs: 1,
            rotate_url: false,
            rotate_sender: false,
            respell: false,
            shorten: false,
            funnel_rate: 0.0,
            profile: String::new(),
        }
    }

    /// Whether the plan changes anything at all. Empty plans must leave
    /// every pipeline output byte-identical to a plan-free run.
    pub fn is_empty(&self) -> bool {
        (self.drifting_share <= 0.0 || !self.any_strategy()) && self.funnel_rate <= 0.0
    }

    /// Whether any rotation strategy is enabled.
    pub fn any_strategy(&self) -> bool {
        self.rotate_url || self.rotate_sender || self.respell || self.shorten
    }

    /// Named profile lookup; the vocabulary behind `--adversary PROFILE`.
    pub fn profile(name: &str) -> Option<Self> {
        let base = AdversaryPlan::none();
        let plan = match name {
            "none" => base,
            // URL + sender rotation on every epoch: the classic
            // infrastructure-churn adversary.
            "rotation" => AdversaryPlan {
                drifting_share: 0.5,
                cadence_epochs: 1,
                rotate_url: true,
                rotate_sender: true,
                ..base
            },
            // Homoglyph/punycode apex respellings only — probes the host
            // folding normalization rather than the index.
            "respell" => AdversaryPlan {
                drifting_share: 0.5,
                cadence_epochs: 1,
                respell: true,
                ..base
            },
            // Fresh shortener chains in front of fresh landing domains.
            "shorteners" => AdversaryPlan {
                drifting_share: 0.5,
                cadence_epochs: 1,
                shorten: true,
                ..base
            },
            // Multi-turn funnels grafted on, no rotation.
            "funnels" => AdversaryPlan {
                funnel_rate: 0.2,
                ..base
            },
            // Everything at once.
            "full" => AdversaryPlan {
                drifting_share: 0.6,
                cadence_epochs: 1,
                rotate_url: true,
                rotate_sender: true,
                respell: true,
                shorten: true,
                funnel_rate: 0.2,
                ..base
            },
            _ => return None,
        };
        Some(AdversaryPlan {
            profile: name.to_string(),
            ..plan
        })
    }

    /// All profile names accepted by [`AdversaryPlan::profile`].
    pub const PROFILES: &'static [&'static str] = &[
        "none",
        "rotation",
        "respell",
        "shorteners",
        "funnels",
        "full",
    ];
}

impl FromStr for AdversaryPlan {
    type Err = String;

    /// Parse `PROFILE` or `PROFILE:SEED` (decimal or `0x`-hex seed).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, seed) = match s.split_once(':') {
            Some((name, seed)) => {
                let seed = match seed.strip_prefix("0x").or_else(|| seed.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => seed.parse::<u64>(),
                }
                .map_err(|_| format!("bad adversary seed {seed:?}"))?;
                (name, seed)
            }
            None => (s, 0),
        };
        let mut plan = AdversaryPlan::profile(name).ok_or_else(|| {
            format!(
                "unknown adversary profile {name:?} (expected one of {})",
                AdversaryPlan::PROFILES.join("|")
            )
        })?;
        plan.seed = seed;
        Ok(plan)
    }
}

impl fmt::Display for AdversaryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.profile.is_empty() {
            if self.is_empty() {
                f.write_str("none")
            } else {
                f.write_str("custom")
            }
        } else if self.seed != 0 {
            write!(f, "{}:{:#x}", self.profile, self.seed)
        } else {
            f.write_str(&self.profile)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default_and_empty() {
        let p = AdversaryPlan::default();
        assert!(p.is_empty());
        assert!(!p.any_strategy());
        assert_eq!(p, AdversaryPlan::none());
    }

    #[test]
    fn profiles_parse_and_roundtrip_display() {
        for name in AdversaryPlan::PROFILES {
            let p: AdversaryPlan = name.parse().unwrap();
            assert_eq!(p.profile, *name);
            assert_eq!(p.to_string(), *name);
            assert_eq!(p.is_empty(), *name == "none", "{name}");
        }
        let p: AdversaryPlan = "rotation:0x5EED".parse().unwrap();
        assert_eq!(p.seed, 0x5EED);
        assert_eq!(p.to_string(), "rotation:0x5eed");
        let p: AdversaryPlan = "full:7".parse().unwrap();
        assert_eq!(p.seed, 7);
        assert!(p.rotate_url && p.respell && p.shorten && p.funnel_rate > 0.0);
    }

    #[test]
    fn unknown_profile_and_bad_seed_error() {
        assert!("bogus".parse::<AdversaryPlan>().is_err());
        assert!("rotation:banana".parse::<AdversaryPlan>().is_err());
    }

    #[test]
    fn strategies_without_share_are_empty() {
        let p = AdversaryPlan {
            rotate_url: true,
            ..AdversaryPlan::none()
        };
        assert!(p.is_empty(), "no drifting share → nothing rotates");
        let p = AdversaryPlan {
            drifting_share: 0.5,
            ..AdversaryPlan::none()
        };
        assert!(p.is_empty(), "share without any strategy → nothing rotates");
    }

    #[test]
    fn archetype_labels() {
        assert!(!Archetype::Baseline.is_funnel());
        assert!(Archetype::ConversationalFunnel.is_funnel());
        assert_eq!(Archetype::JobScamFunnel.label(), "job-scam-funnel");
    }
}
