//! Error types shared across the data model.

use std::fmt;

/// Errors produced while parsing or validating model types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A phone number string could not be interpreted under any numbering plan.
    InvalidPhoneNumber {
        /// The offending input (possibly truncated for logging).
        input: String,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A timestamp string matched none of the supported civil formats.
    UnparsableTimestamp {
        /// The offending input.
        input: String,
    },
    /// A civil date/time had an out-of-range component (month 13, hour 25, ...).
    InvalidCivil {
        /// Which component was out of range.
        component: &'static str,
        /// The offending value.
        value: i64,
    },
    /// An ISO country or language code was not recognised.
    UnknownCode {
        /// What kind of code ("country", "language", ...).
        kind: &'static str,
        /// The offending code.
        code: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::InvalidPhoneNumber { input, reason } => {
                write!(f, "invalid phone number {input:?}: {reason}")
            }
            TypeError::UnparsableTimestamp { input } => {
                write!(f, "unparsable timestamp {input:?}")
            }
            TypeError::InvalidCivil { component, value } => {
                write!(f, "civil {component} out of range: {value}")
            }
            TypeError::UnknownCode { kind, code } => {
                write!(f, "unknown {kind} code {code:?}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = TypeError::InvalidPhoneNumber {
            input: "++44".into(),
            reason: "repeated plus sign",
        };
        assert!(e.to_string().contains("++44"));
        assert!(e.to_string().contains("repeated plus sign"));
    }

    #[test]
    fn unknown_code_mentions_kind() {
        let e = TypeError::UnknownCode {
            kind: "language",
            code: "zz".into(),
        };
        assert!(e.to_string().contains("language"));
    }
}
