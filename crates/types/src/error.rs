//! Error types shared across the data model.

use std::fmt;

/// Errors produced while parsing or validating model types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A phone number string could not be interpreted under any numbering plan.
    InvalidPhoneNumber {
        /// The offending input (possibly truncated for logging).
        input: String,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A timestamp string matched none of the supported civil formats.
    UnparsableTimestamp {
        /// The offending input.
        input: String,
    },
    /// A civil date/time had an out-of-range component (month 13, hour 25, ...).
    InvalidCivil {
        /// Which component was out of range.
        component: &'static str,
        /// The offending value.
        value: i64,
    },
    /// An ISO country or language code was not recognised.
    UnknownCode {
        /// What kind of code ("country", "language", ...).
        kind: &'static str,
        /// The offending code.
        code: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::InvalidPhoneNumber { input, reason } => {
                write!(f, "invalid phone number {input:?}: {reason}")
            }
            TypeError::UnparsableTimestamp { input } => {
                write!(f, "unparsable timestamp {input:?}")
            }
            TypeError::InvalidCivil { component, value } => {
                write!(f, "civil {component} out of range: {value}")
            }
            TypeError::UnknownCode { kind, code } => {
                write!(f, "unknown {kind} code {code:?}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Context threaded into every fallible service call.
///
/// Fault injection must be a *pure* function of the call — never of global
/// call order, which differs between batch and streaming execution — so the
/// retry loop owns the attempt counter and passes it down explicitly, along
/// with the virtual-clock tick of the record being enriched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallCtx {
    /// Zero-based attempt number (0 = first try, 1 = first retry, ...).
    pub attempt: u32,
    /// Virtual-clock tick of the record driving this call.
    pub tick: u64,
}

impl CallCtx {
    /// The first attempt at a given virtual tick.
    pub fn first(tick: u64) -> CallCtx {
        CallCtx { attempt: 0, tick }
    }

    /// The next attempt after `self`.
    pub fn retry(self) -> CallCtx {
        CallCtx {
            attempt: self.attempt + 1,
            tick: self.tick,
        }
    }
}

/// Failure modes of an external service call.
///
/// These model the realities of the paper's seven upstream services (HLR
/// gateways, WhoisXMLAPI, crt.sh, passive DNS, ipinfo, VirusTotal, GSB):
/// timeouts, transient 5xx errors, rate limiting, malformed payloads, and
/// sustained outages. All variants except [`ServiceError::Outage`] are worth
/// retrying; an outage carries its exact virtual-clock window so callers can
/// open a circuit breaker without changing any outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The call exceeded its (virtual) deadline.
    Timeout,
    /// A transient upstream failure (connection reset, 5xx, ...).
    Transient {
        /// Human-readable cause.
        reason: &'static str,
    },
    /// The service rejected the call due to rate limiting.
    RateLimited {
        /// Suggested (virtual) wait before retrying, in milliseconds.
        retry_after_ms: u32,
    },
    /// The response arrived but could not be parsed.
    Malformed,
    /// The service is down for a sustained window of virtual time.
    Outage {
        /// First tick (inclusive) of the outage window.
        from_tick: u64,
        /// First tick (exclusive) after the outage window.
        until_tick: u64,
    },
}

impl ServiceError {
    /// Whether a bounded retry loop should try again.
    ///
    /// Outages are not retryable: the error carries the window during which
    /// every attempt is guaranteed to fail identically.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, ServiceError::Outage { .. })
    }

    /// Stable lowercase label for metrics (`outcome="timeout"` etc.).
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::Timeout => "timeout",
            ServiceError::Transient { .. } => "transient",
            ServiceError::RateLimited { .. } => "rate_limited",
            ServiceError::Malformed => "malformed",
            ServiceError::Outage { .. } => "outage",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Timeout => write!(f, "service call timed out"),
            ServiceError::Transient { reason } => write!(f, "transient service error: {reason}"),
            ServiceError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited (retry after {retry_after_ms} ms)")
            }
            ServiceError::Malformed => write!(f, "malformed service response"),
            ServiceError::Outage {
                from_tick,
                until_tick,
            } => {
                write!(f, "service outage over ticks [{from_tick}, {until_tick})")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = TypeError::InvalidPhoneNumber {
            input: "++44".into(),
            reason: "repeated plus sign",
        };
        assert!(e.to_string().contains("++44"));
        assert!(e.to_string().contains("repeated plus sign"));
    }

    #[test]
    fn unknown_code_mentions_kind() {
        let e = TypeError::UnknownCode {
            kind: "language",
            code: "zz".into(),
        };
        assert!(e.to_string().contains("language"));
    }

    #[test]
    fn outage_is_not_retryable_everything_else_is() {
        assert!(ServiceError::Timeout.is_retryable());
        assert!(ServiceError::Transient { reason: "5xx" }.is_retryable());
        assert!(ServiceError::RateLimited { retry_after_ms: 7 }.is_retryable());
        assert!(ServiceError::Malformed.is_retryable());
        assert!(!ServiceError::Outage {
            from_tick: 0,
            until_tick: 10
        }
        .is_retryable());
    }

    #[test]
    fn call_ctx_retry_increments_attempt_only() {
        let c = CallCtx::first(42);
        assert_eq!(c.attempt, 0);
        let r = c.retry().retry();
        assert_eq!(r.attempt, 2);
        assert_eq!(r.tick, 42);
    }
}
