//! Civil time for SMS screenshots.
//!
//! SMS screenshots carry timestamps in whatever format the victim's
//! messaging app uses: `2021-08-03 11:34`, `03/08/2021 11:34`, `Aug 3, 2021
//! 11:34 AM`, bare `11:34`, or `Tue 11:34`. The paper parses these with the
//! Python `dateparser` library (§3.2); this module is the Rust equivalent,
//! built from scratch on the proleptic Gregorian calendar.
//!
//! Design notes:
//!
//! - [`UnixTime`] is the canonical instant (seconds since the Unix epoch,
//!   UTC). All arithmetic happens here.
//! - [`CivilDateTime`] is the human-facing broken-down form; conversions use
//!   Howard Hinnant's `days_from_civil` algorithms.
//! - [`parse_timestamp`] returns a [`ParsedStamp`] that is honest about how
//!   much the screenshot told us: a full instant, a date, a time of day, or
//!   a weekday + time. §3.3.2 excludes time-only stamps from the day-of-week
//!   analysis for exactly this reason.

use crate::error::TypeError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds since the Unix epoch (1970-01-01T00:00:00Z).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct UnixTime(pub i64);

/// Days of the week. The Unix epoch (1970-01-01) was a Thursday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All weekdays, Monday-first as in Fig. 2.
    pub const ALL: &'static [Weekday] = &[
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Full English name.
    pub fn name(self) -> &'static str {
        match self {
            Weekday::Monday => "Monday",
            Weekday::Tuesday => "Tuesday",
            Weekday::Wednesday => "Wednesday",
            Weekday::Thursday => "Thursday",
            Weekday::Friday => "Friday",
            Weekday::Saturday => "Saturday",
            Weekday::Sunday => "Sunday",
        }
    }

    /// Three-letter abbreviation ("Mon").
    pub fn abbrev(self) -> &'static str {
        &self.name()[..3]
    }

    /// Monday = 0 ... Sunday = 6.
    pub fn index(self) -> usize {
        Weekday::ALL
            .iter()
            .position(|&w| w == self)
            .expect("weekday in ALL")
    }

    /// Parse a full name or 3-letter abbreviation, case-insensitive.
    pub fn parse(s: &str) -> Option<Weekday> {
        let t = s.trim().trim_end_matches([',', '.']);
        Weekday::ALL
            .iter()
            .copied()
            .find(|w| w.name().eq_ignore_ascii_case(t) || w.abbrev().eq_ignore_ascii_case(t))
    }

    /// Whether this is Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A calendar date in the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Date {
    /// Astronomical year (2023 = 2023).
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Date {
    /// Construct a validated date.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Date, TypeError> {
        if !(1..=12).contains(&month) {
            return Err(TypeError::InvalidCivil {
                component: "month",
                value: month as i64,
            });
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(TypeError::InvalidCivil {
                component: "day",
                value: day as i64,
            });
        }
        Ok(Date { year, month, day })
    }

    /// Days since 1970-01-01 (Hinnant's `days_from_civil`).
    pub fn days_from_epoch(self) -> i64 {
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = (self.month as i64 + 9) % 12; // March = 0
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146097 + doe - 719468
    }

    /// Inverse of [`Date::days_from_epoch`] (Hinnant's `civil_from_days`).
    pub fn from_days_since_epoch(days: i64) -> Date {
        let z = days + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let day = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let month = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        let year = if month <= 2 { y + 1 } else { y } as i32;
        Date { year, month, day }
    }

    /// Day of the week.
    pub fn weekday(self) -> Weekday {
        // 1970-01-01 is a Thursday, i.e. index 3 (Monday-first).
        let d = self.days_from_epoch().rem_euclid(7);
        Weekday::ALL[((d + 3) % 7) as usize]
    }

    /// The date `n` days later (negative for earlier).
    pub fn plus_days(self, n: i64) -> Date {
        Date::from_days_since_epoch(self.days_from_epoch() + n)
    }

    /// English month name ("August").
    pub fn month_name(self) -> &'static str {
        MONTH_NAMES[(self.month - 1) as usize]
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A wall-clock time of day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TimeOfDay {
    /// Hour, 0–23.
    pub hour: u8,
    /// Minute, 0–59.
    pub minute: u8,
    /// Second, 0–59.
    pub second: u8,
}

impl TimeOfDay {
    /// Construct a validated time of day.
    pub fn new(hour: u8, minute: u8, second: u8) -> Result<TimeOfDay, TypeError> {
        if hour > 23 {
            return Err(TypeError::InvalidCivil {
                component: "hour",
                value: hour as i64,
            });
        }
        if minute > 59 {
            return Err(TypeError::InvalidCivil {
                component: "minute",
                value: minute as i64,
            });
        }
        if second > 59 {
            return Err(TypeError::InvalidCivil {
                component: "second",
                value: second as i64,
            });
        }
        Ok(TimeOfDay {
            hour,
            minute,
            second,
        })
    }

    /// Seconds since midnight, in `[0, 86400)`.
    pub fn seconds_since_midnight(self) -> u32 {
        self.hour as u32 * 3600 + self.minute as u32 * 60 + self.second as u32
    }

    /// Inverse of [`TimeOfDay::seconds_since_midnight`]; `secs` is taken mod 86400.
    pub fn from_seconds_since_midnight(secs: u32) -> TimeOfDay {
        let s = secs % 86_400;
        TimeOfDay {
            hour: (s / 3600) as u8,
            minute: ((s / 60) % 60) as u8,
            second: (s % 60) as u8,
        }
    }

    /// Format as 12-hour clock with AM/PM ("2:33 PM").
    pub fn format_ampm(self) -> String {
        let (h12, suffix) = match self.hour {
            0 => (12, "AM"),
            1..=11 => (self.hour, "AM"),
            12 => (12, "PM"),
            h => (h - 12, "PM"),
        };
        format!("{}:{:02} {}", h12, self.minute, suffix)
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.second == 0 {
            write!(f, "{:02}:{:02}", self.hour, self.minute)
        } else {
            write!(f, "{:02}:{:02}:{:02}", self.hour, self.minute, self.second)
        }
    }
}

/// A full civil date-time, interpreted as UTC throughout the pipeline.
///
/// The paper's dataset records local wall-clock as shown on screenshots;
/// since no screenshot carries a zone, the pipeline treats wall-clock time
/// as-is (what matters for Fig. 2 is the *local* time of day).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CivilDateTime {
    /// The calendar date.
    pub date: Date,
    /// The wall-clock time.
    pub time: TimeOfDay,
}

impl CivilDateTime {
    /// Construct from validated parts.
    pub fn new(date: Date, time: TimeOfDay) -> CivilDateTime {
        CivilDateTime { date, time }
    }

    /// Convert to an instant.
    pub fn to_unix(self) -> UnixTime {
        UnixTime(self.date.days_from_epoch() * 86_400 + self.time.seconds_since_midnight() as i64)
    }

    /// Convert from an instant.
    pub fn from_unix(t: UnixTime) -> CivilDateTime {
        let days = t.0.div_euclid(86_400);
        let secs = t.0.rem_euclid(86_400) as u32;
        CivilDateTime {
            date: Date::from_days_since_epoch(days),
            time: TimeOfDay::from_seconds_since_midnight(secs),
        }
    }
}

impl fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.date, self.time)
    }
}

impl UnixTime {
    /// Broken-down civil form.
    pub fn civil(self) -> CivilDateTime {
        CivilDateTime::from_unix(self)
    }

    /// The calendar date.
    pub fn date(self) -> Date {
        self.civil().date
    }

    /// Wall-clock time of day.
    pub fn time_of_day(self) -> TimeOfDay {
        self.civil().time
    }

    /// Day of the week.
    pub fn weekday(self) -> Weekday {
        self.date().weekday()
    }

    /// The instant `secs` seconds later.
    pub fn plus_secs(self, secs: i64) -> UnixTime {
        UnixTime(self.0 + secs)
    }

    /// The instant `days` days later.
    pub fn plus_days(self, days: i64) -> UnixTime {
        UnixTime(self.0 + days * 86_400)
    }

    /// Calendar year of the instant.
    pub fn year(self) -> i32 {
        self.date().year
    }
}

/// The different timestamp renderings messaging apps put on screen.
///
/// The screenshot generator picks one of these per app theme; the parser
/// must invert all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimestampStyle {
    /// `2021-08-03 11:34`
    Iso,
    /// `03/08/2021 11:34` (day-first, common outside the US)
    EuSlash,
    /// `08/03/2021 11:34 AM` (month-first, US)
    UsSlashAmPm,
    /// `Aug 3, 2021 at 11:34 AM` (iOS long form)
    AbbrevMonthAmPm,
    /// `3 August 2021 11:34`
    DayLongMonth,
    /// `11:34` — time only; the screenshot was taken the same week
    TimeOnly24,
    /// `11:34 AM` — time only, 12-hour clock
    TimeOnlyAmPm,
    /// `Tue 11:34` — weekday + time, shown for messages within the last week
    WeekdayTime,
}

impl TimestampStyle {
    /// All styles the generator may emit.
    pub const ALL: &'static [TimestampStyle] = &[
        TimestampStyle::Iso,
        TimestampStyle::EuSlash,
        TimestampStyle::UsSlashAmPm,
        TimestampStyle::AbbrevMonthAmPm,
        TimestampStyle::DayLongMonth,
        TimestampStyle::TimeOnly24,
        TimestampStyle::TimeOnlyAmPm,
        TimestampStyle::WeekdayTime,
    ];

    /// Whether the style includes a full calendar date.
    pub fn carries_date(self) -> bool {
        matches!(
            self,
            TimestampStyle::Iso
                | TimestampStyle::EuSlash
                | TimestampStyle::UsSlashAmPm
                | TimestampStyle::AbbrevMonthAmPm
                | TimestampStyle::DayLongMonth
        )
    }

    /// Render `t` in this style, as the messaging app would.
    pub fn format(self, t: CivilDateTime) -> String {
        let d = t.date;
        match self {
            TimestampStyle::Iso => format!("{} {:02}:{:02}", d, t.time.hour, t.time.minute),
            TimestampStyle::EuSlash => format!(
                "{:02}/{:02}/{:04} {:02}:{:02}",
                d.day, d.month, d.year, t.time.hour, t.time.minute
            ),
            TimestampStyle::UsSlashAmPm => format!(
                "{:02}/{:02}/{:04} {}",
                d.month,
                d.day,
                d.year,
                t.time.format_ampm()
            ),
            TimestampStyle::AbbrevMonthAmPm => format!(
                "{} {}, {} at {}",
                &d.month_name()[..3],
                d.day,
                d.year,
                t.time.format_ampm()
            ),
            TimestampStyle::DayLongMonth => format!(
                "{} {} {} {:02}:{:02}",
                d.day,
                d.month_name(),
                d.year,
                t.time.hour,
                t.time.minute
            ),
            TimestampStyle::TimeOnly24 => format!("{:02}:{:02}", t.time.hour, t.time.minute),
            TimestampStyle::TimeOnlyAmPm => t.time.format_ampm(),
            TimestampStyle::WeekdayTime => {
                format!(
                    "{} {:02}:{:02}",
                    d.weekday().abbrev(),
                    t.time.hour,
                    t.time.minute
                )
            }
        }
    }
}

/// Result of parsing a screenshot timestamp: exactly as much information as
/// the string carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParsedStamp {
    /// Full date and time.
    Full(CivilDateTime),
    /// Date only (e.g. a report form with a date field).
    DateOnly(Date),
    /// Time of day without a date — unusable for day-of-week analysis (§3.3.2).
    TimeOnly(TimeOfDay),
    /// Weekday plus time of day — usable for Fig. 2 but not for Table 15.
    WeekdayTime(Weekday, TimeOfDay),
}

impl ParsedStamp {
    /// The time of day, if the stamp carried one.
    pub fn time_of_day(self) -> Option<TimeOfDay> {
        match self {
            ParsedStamp::Full(c) => Some(c.time),
            ParsedStamp::TimeOnly(t) | ParsedStamp::WeekdayTime(_, t) => Some(t),
            ParsedStamp::DateOnly(_) => None,
        }
    }

    /// The weekday, if derivable.
    pub fn weekday(self) -> Option<Weekday> {
        match self {
            ParsedStamp::Full(c) => Some(c.date.weekday()),
            ParsedStamp::WeekdayTime(w, _) => Some(w),
            ParsedStamp::DateOnly(d) => Some(d.weekday()),
            ParsedStamp::TimeOnly(_) => None,
        }
    }

    /// Both weekday and time of day — the unit of analysis for Fig. 2.
    pub fn weekday_and_time(self) -> Option<(Weekday, TimeOfDay)> {
        Some((self.weekday()?, self.time_of_day()?))
    }

    /// The full civil instant, if the stamp carried a complete date and time.
    pub fn full(self) -> Option<CivilDateTime> {
        match self {
            ParsedStamp::Full(c) => Some(c),
            _ => None,
        }
    }
}

fn parse_month_name(s: &str) -> Option<u8> {
    let t = s.trim_end_matches([',', '.']);
    for (i, name) in MONTH_NAMES.iter().enumerate() {
        if name.eq_ignore_ascii_case(t) || name[..3].eq_ignore_ascii_case(t) {
            return Some(i as u8 + 1);
        }
    }
    None
}

/// Parse `"11:34"`, `"11:34:56"`, `"2:33 PM"`, `"2:33PM"`, `"11.34"`.
fn parse_time_fragment(s: &str) -> Option<TimeOfDay> {
    let t = s.trim();
    let (clock, suffix) = if let Some(rest) = strip_suffix_ci(t, "am") {
        (rest.trim(), Some(false))
    } else if let Some(rest) = strip_suffix_ci(t, "pm") {
        (rest.trim(), Some(true))
    } else {
        (t, None)
    };
    let sep = if clock.contains(':') { ':' } else { '.' };
    let mut parts = clock.split(sep);
    let h: u8 = parts.next()?.trim().parse().ok()?;
    let m: u8 = parts.next()?.trim().parse().ok()?;
    let sec: u8 = match parts.next() {
        Some(p) => p.trim().parse().ok()?,
        None => 0,
    };
    if parts.next().is_some() {
        return None;
    }
    let hour = match suffix {
        None => h,
        Some(false) => {
            // AM: 12 AM is midnight.
            if h == 12 {
                0
            } else {
                h
            }
        }
        Some(true) => {
            if h == 12 {
                12
            } else {
                h.checked_add(12)?
            }
        }
    };
    if suffix.is_some() && !(1..=12).contains(&h) {
        return None;
    }
    TimeOfDay::new(hour, m, sec).ok()
}

fn strip_suffix_ci<'a>(s: &'a str, suffix: &str) -> Option<&'a str> {
    if s.len() >= suffix.len()
        && s.is_char_boundary(s.len() - suffix.len())
        && s[s.len() - suffix.len()..].eq_ignore_ascii_case(suffix)
    {
        Some(&s[..s.len() - suffix.len()])
    } else {
        None
    }
}

fn parse_slash_date(s: &str) -> Option<Date> {
    // dd/mm/yyyy or mm/dd/yyyy. Like `dateparser`, prefer day-first and fall
    // back to month-first only when day-first is invalid. Ambiguous dates
    // (both valid) resolve day-first; this is a documented bias of the
    // pipeline, matching the paper's predominantly non-US report sources.
    let mut parts = s.split(['/', '-', '.']);
    let a: u16 = parts.next()?.trim().parse().ok()?;
    let b: u16 = parts.next()?.trim().parse().ok()?;
    let c: i32 = parts.next()?.trim().parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    let year = if c < 100 { 2000 + c } else { c };
    Date::new(year, b as u8, a as u8)
        .or_else(|_| Date::new(year, a as u8, b as u8))
        .ok()
}

fn parse_iso_date(s: &str) -> Option<Date> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.trim().parse().ok()?;
    let m: u8 = parts.next()?.trim().parse().ok()?;
    let d: u8 = parts.next()?.trim().parse().ok()?;
    if parts.next().is_some() || y < 1000 {
        return None;
    }
    Date::new(y, m, d).ok()
}

/// Parse a screenshot timestamp in any of the supported app formats.
///
/// Returns `None` for strings that are not timestamps at all. This is the
/// Rust counterpart of the paper's use of `dateparser` (§3.2).
pub fn parse_timestamp(input: &str) -> Option<ParsedStamp> {
    let s = normalize_stamp(input);
    if s.is_empty() {
        return None;
    }
    let tokens: Vec<&str> = s.split_whitespace().collect();

    // Weekday-led: "Tue 11:34", "Tuesday, 2:33 PM".
    if let Some(wd) = Weekday::parse(tokens[0]) {
        let rest = tokens[1..].join(" ");
        if rest.is_empty() {
            return None;
        }
        if let Some(t) = parse_time_fragment(&rest) {
            return Some(ParsedStamp::WeekdayTime(wd, t));
        }
        // "Tue, Aug 3" style: weekday then date.
        if let Some(stamp) = parse_timestamp(&rest) {
            return Some(stamp);
        }
        return None;
    }

    // Pure time: "11:34", "2:33 PM".
    if let Some(t) = parse_time_fragment(&s) {
        return Some(ParsedStamp::TimeOnly(t));
    }

    // ISO: "2021-08-03[ 11:34[:56]]".
    if let Some(d) = parse_iso_date(tokens[0]) {
        return Some(match time_from_tail(&tokens[1..]) {
            Some(t) => ParsedStamp::Full(CivilDateTime::new(d, t)),
            None => ParsedStamp::DateOnly(d),
        });
    }

    // Slash: "03/08/2021 11:34".
    if tokens[0].contains('/') {
        if let Some(d) = parse_slash_date(tokens[0]) {
            return Some(match time_from_tail(&tokens[1..]) {
                Some(t) => ParsedStamp::Full(CivilDateTime::new(d, t)),
                None => ParsedStamp::DateOnly(d),
            });
        }
    }

    // "Aug 3, 2021 at 11:34 AM" / "August 3 2021 11:34".
    if let Some(m) = parse_month_name(tokens[0]) {
        if tokens.len() >= 3 {
            let day: u8 = tokens[1].trim_end_matches(',').parse().ok()?;
            let year: i32 = tokens[2].trim_end_matches(',').parse().ok()?;
            let d = Date::new(year, m, day).ok()?;
            return Some(match time_from_tail(&tokens[3..]) {
                Some(t) => ParsedStamp::Full(CivilDateTime::new(d, t)),
                None => ParsedStamp::DateOnly(d),
            });
        }
        return None;
    }

    // "3 August 2021 11:34".
    if tokens.len() >= 3 {
        if let (Ok(day), Some(m), Ok(year)) = (
            tokens[0].parse::<u8>(),
            parse_month_name(tokens[1]),
            tokens[2].trim_end_matches(',').parse::<i32>(),
        ) {
            let d = Date::new(year, m, day).ok()?;
            return Some(match time_from_tail(&tokens[3..]) {
                Some(t) => ParsedStamp::Full(CivilDateTime::new(d, t)),
                None => ParsedStamp::DateOnly(d),
            });
        }
    }

    None
}

fn time_from_tail(tokens: &[&str]) -> Option<TimeOfDay> {
    if tokens.is_empty() {
        return None;
    }
    parse_time_fragment(&tokens.join(" "))
}

/// Strip filler words apps insert ("at", "Today,"), collapse whitespace.
fn normalize_stamp(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for raw in input.split_whitespace() {
        let w = raw.trim();
        if w.eq_ignore_ascii_case("at")
            || w.eq_ignore_ascii_case("today")
            || w.eq_ignore_ascii_case("today,")
            || w.eq_ignore_ascii_case("·")
        {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::new(y, m, day).unwrap()
    }

    fn t(h: u8, m: u8) -> TimeOfDay {
        TimeOfDay::new(h, m, 0).unwrap()
    }

    #[test]
    fn epoch_is_thursday() {
        assert_eq!(d(1970, 1, 1).weekday(), Weekday::Thursday);
        assert_eq!(d(1970, 1, 1).days_from_epoch(), 0);
    }

    #[test]
    fn sbi_campaign_date_is_tuesday() {
        // §5.1: the 2021 SBI campaign fired Tue, Aug 3rd 2021 at 11:34.
        assert_eq!(d(2021, 8, 3).weekday(), Weekday::Tuesday);
    }

    #[test]
    fn civil_roundtrip_across_leap_years() {
        for &days in &[-1000, -1, 0, 1, 59, 60, 365, 366, 18_000, 19_580, 20_000] {
            let date = Date::from_days_since_epoch(days);
            assert_eq!(date.days_from_epoch(), days, "{date}");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2023));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2023, 2), 28);
    }

    #[test]
    fn unix_conversion() {
        let c = CivilDateTime::new(d(2021, 8, 3), TimeOfDay::new(11, 34, 0).unwrap());
        let u = c.to_unix();
        assert_eq!(u.civil(), c);
        assert_eq!(u.weekday(), Weekday::Tuesday);
        assert_eq!(u.year(), 2021);
    }

    #[test]
    fn parse_iso_and_slash() {
        assert_eq!(
            parse_timestamp("2021-08-03 11:34"),
            Some(ParsedStamp::Full(CivilDateTime::new(
                d(2021, 8, 3),
                t(11, 34)
            )))
        );
        assert_eq!(
            parse_timestamp("03/08/2021 11:34"),
            Some(ParsedStamp::Full(CivilDateTime::new(
                d(2021, 8, 3),
                t(11, 34)
            )))
        );
        assert_eq!(
            parse_timestamp("2021-08-03"),
            Some(ParsedStamp::DateOnly(d(2021, 8, 3)))
        );
    }

    #[test]
    fn parse_month_name_styles() {
        assert_eq!(
            parse_timestamp("Aug 3, 2021 at 11:34 AM"),
            Some(ParsedStamp::Full(CivilDateTime::new(
                d(2021, 8, 3),
                t(11, 34)
            )))
        );
        assert_eq!(
            parse_timestamp("3 August 2021 11:34"),
            Some(ParsedStamp::Full(CivilDateTime::new(
                d(2021, 8, 3),
                t(11, 34)
            )))
        );
    }

    #[test]
    fn parse_time_only_and_weekday() {
        assert_eq!(
            parse_timestamp("11:34"),
            Some(ParsedStamp::TimeOnly(t(11, 34)))
        );
        assert_eq!(
            parse_timestamp("2:33 PM"),
            Some(ParsedStamp::TimeOnly(t(14, 33)))
        );
        assert_eq!(
            parse_timestamp("Tue 11:34"),
            Some(ParsedStamp::WeekdayTime(Weekday::Tuesday, t(11, 34)))
        );
        assert_eq!(
            parse_timestamp("Tuesday, 2:33 PM"),
            Some(ParsedStamp::WeekdayTime(Weekday::Tuesday, t(14, 33)))
        );
    }

    #[test]
    fn ampm_edge_cases() {
        assert_eq!(parse_time_fragment("12:00 AM"), Some(t(0, 0)));
        assert_eq!(parse_time_fragment("12:00 PM"), Some(t(12, 0)));
        assert_eq!(parse_time_fragment("12:01am"), Some(t(0, 1)));
        assert_eq!(
            parse_time_fragment("13:00 PM"),
            None,
            "13 is not a 12h hour"
        );
    }

    #[test]
    fn garbage_is_rejected() {
        for bad in [
            "",
            "hello",
            "99:99",
            "2021-13-40",
            "32/13/2021 11:34",
            "Mon",
        ] {
            assert_eq!(parse_timestamp(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn every_style_round_trips_weekday_and_time() {
        // Whatever the app shows, the pipeline must recover (weekday, time)
        // when the style carries enough information.
        // A Friday with day-of-month > 12 so slash styles are unambiguous.
        let c = CivilDateTime::new(d(2022, 12, 23), t(14, 5));
        for &style in TimestampStyle::ALL {
            let rendered = style.format(c);
            let parsed = parse_timestamp(&rendered)
                .unwrap_or_else(|| panic!("{style:?} rendered unparsable {rendered:?}"));
            assert_eq!(parsed.time_of_day(), Some(c.time), "{style:?}: {rendered}");
            if style.carries_date() {
                assert_eq!(parsed.full(), Some(c), "{style:?}: {rendered}");
            }
            if matches!(style, TimestampStyle::WeekdayTime) {
                assert_eq!(parsed.weekday(), Some(Weekday::Friday));
            }
        }
    }

    #[test]
    fn stamp_information_content() {
        let full = ParsedStamp::Full(CivilDateTime::new(d(2021, 8, 3), t(11, 34)));
        assert_eq!(full.weekday_and_time(), Some((Weekday::Tuesday, t(11, 34))));
        let time_only = ParsedStamp::TimeOnly(t(9, 0));
        assert_eq!(time_only.weekday_and_time(), None);
        let date_only = ParsedStamp::DateOnly(d(2021, 8, 3));
        assert_eq!(date_only.weekday(), Some(Weekday::Tuesday));
        assert_eq!(date_only.time_of_day(), None);
    }

    #[test]
    fn weekend_flag() {
        assert!(Weekday::Saturday.is_weekend());
        assert!(!Weekday::Friday.is_weekend());
    }

    #[test]
    fn ambiguous_slash_dates_resolve_day_first() {
        // 12/09/2022 could be Dec 9 (US) or Sep 12 (rest of world). Like
        // `dateparser`'s default, the pipeline resolves day-first; this is a
        // documented bias (§3.2 equivalent) asserted here so it can never
        // change silently.
        assert_eq!(
            parse_timestamp("12/09/2022"),
            Some(ParsedStamp::DateOnly(d(2022, 9, 12)))
        );
        // Unambiguous month-first input still parses via fallback.
        assert_eq!(
            parse_timestamp("12/23/2022"),
            Some(ParsedStamp::DateOnly(d(2022, 12, 23)))
        );
    }

    #[test]
    fn two_digit_years_are_expanded() {
        assert_eq!(
            parse_timestamp("03/08/21 11:34")
                .and_then(|p| p.full())
                .map(|c| c.date.year),
            Some(2021)
        );
    }
}
