//! The five public forums the paper mines (§3.1) and text-form reports.
//!
//! The full post model (with screenshot attachments) lives in
//! `smishing-worldsim`; this module holds the parts every crate needs: the
//! forum identity, its collection timeline, and the structured *text*
//! reports used by Smishing.eu, Pastebin and Smishtank.

use crate::time::{Date, UnixTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the five online forums smishing reports are collected from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Forum {
    /// Twitter/X — keyword-matched tweets with screenshot attachments.
    Twitter,
    /// Reddit — submissions across ~911 subreddits.
    Reddit,
    /// Smishtank.com — crowdsourcing site (screenshot or text + metadata).
    Smishtank,
    /// Smishing.eu — European report form (text + metadata, no images kept).
    SmishingEu,
    /// Pastebin — one analyst's pastes mirroring abuseipdb reports.
    Pastebin,
}

impl Forum {
    /// All forums, in Table 1 row order.
    pub const ALL: &'static [Forum] = &[
        Forum::Twitter,
        Forum::Reddit,
        Forum::Smishtank,
        Forum::SmishingEu,
        Forum::Pastebin,
    ];

    /// Display name as in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Forum::Twitter => "Twitter",
            Forum::Reddit => "Reddit",
            Forum::Smishtank => "Smishtank",
            Forum::SmishingEu => "Smishing.eu",
            Forum::Pastebin => "Pastebin",
        }
    }

    /// Collection window per §3.1 / Table 1 ("timeline" column), as
    /// inclusive calendar years.
    pub fn timeline(self) -> (i32, i32) {
        match self {
            Forum::Twitter => (2017, 2023),
            Forum::Reddit => (2017, 2023),
            Forum::Smishtank => (2022, 2024),
            Forum::SmishingEu => (2021, 2023),
            Forum::Pastebin => (2021, 2022),
        }
    }

    /// Whether user reports on this forum are screenshots (image
    /// attachments) or structured text. Twitter/Reddit/Smishtank carry
    /// images; Smishing.eu and Pastebin are text-only in the collected data.
    pub fn carries_images(self) -> bool {
        matches!(self, Forum::Twitter | Forum::Reddit | Forum::Smishtank)
    }

    /// Collection window as instants: midnight Jan 1 of the first year to
    /// the end of Dec 31 of the last year.
    pub fn window(self) -> (UnixTime, UnixTime) {
        let (y0, y1) = self.timeline();
        let start = Date {
            year: y0,
            month: 1,
            day: 1,
        }
        .days_from_epoch()
            * 86_400;
        let end = (Date {
            year: y1 + 1,
            month: 1,
            day: 1,
        }
        .days_from_epoch())
            * 86_400
            - 1;
        (UnixTime(start), UnixTime(end))
    }
}

impl fmt::Display for Forum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured text report (Smishing.eu form, Pastebin paste, or a
/// Smishtank text submission): the fields the user typed in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextReport {
    /// Sender ID string as the user entered it (possibly redacted/empty).
    pub sender: Option<String>,
    /// The smishing text body.
    pub body: String,
    /// The URL, if the user included it separately or it survives in `body`.
    pub url: Option<String>,
    /// Impersonated brand according to the reporter (Smishing.eu field).
    pub claimed_brand: Option<String>,
    /// Reporter's country (Smishing.eu field).
    pub claimed_country: Option<String>,
    /// Receive date the user supplied (date-only; §3.3.2 notes these lack
    /// time of day and are excluded from the Fig. 2 analysis).
    pub received_date: Option<Date>,
}

/// Why a keyword-matched post is *not* a smishing report (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoiseKind {
    /// Awareness poster / PSA graphic.
    AwarenessPoster,
    /// Discussion or advice-seeking without the original smish.
    Discussion,
    /// A screenshot of something that is not an SMS (email, news article...).
    UnrelatedScreenshot,
    /// News article link about smishing.
    NewsLink,
}

impl NoiseKind {
    /// All noise kinds.
    pub const ALL: &'static [NoiseKind] = &[
        NoiseKind::AwarenessPoster,
        NoiseKind::Discussion,
        NoiseKind::UnrelatedScreenshot,
        NoiseKind::NewsLink,
    ];

    /// Whether this noise kind manifests as an image attachment.
    pub fn is_image(self) -> bool {
        matches!(
            self,
            NoiseKind::AwarenessPoster | NoiseKind::UnrelatedScreenshot
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_forums() {
        assert_eq!(Forum::ALL.len(), 5);
    }

    #[test]
    fn timeline_matches_table1() {
        assert_eq!(Forum::Twitter.timeline(), (2017, 2023));
        assert_eq!(Forum::Smishtank.timeline(), (2022, 2024));
        assert_eq!(Forum::Pastebin.timeline(), (2021, 2022));
    }

    #[test]
    fn image_forums_match_table1_dashes() {
        // Table 1 shows "-" for image attachments on Smishing.eu and Pastebin.
        assert!(Forum::Twitter.carries_images());
        assert!(!Forum::SmishingEu.carries_images());
        assert!(!Forum::Pastebin.carries_images());
    }

    #[test]
    fn window_ordering() {
        for f in Forum::ALL {
            let (a, b) = f.window();
            assert!(a < b, "{f}");
        }
    }

    #[test]
    fn window_year_boundaries() {
        let (a, b) = Forum::Pastebin.window();
        assert_eq!(a.year(), 2021);
        assert_eq!(b.year(), 2022);
        assert_eq!(b.plus_secs(1).year(), 2023);
    }
}
