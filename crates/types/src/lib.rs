//! # smishing-types
//!
//! Shared data model for the smishing measurement pipeline.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! - geography and language: [`Country`], [`Language`]
//! - the scam taxonomy from the paper (§5.2, §5.5): [`ScamType`], [`Lure`]
//! - sender identities (§3.3.1): [`SenderId`], [`PhoneNumber`]
//! - civil time with the multi-format parsing the paper delegates to
//!   Python's `dateparser` (§3.2): [`time`]
//! - forums and text reports (§3.1): [`Forum`], [`TextReport`]
//!
//! It deliberately contains **no behaviour beyond the model itself** (parsing,
//! formatting, simple classification); enrichment and simulation live in the
//! domain crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod brand;
pub mod country;
pub mod error;
pub mod forum;
pub mod ids;
pub mod language;
pub mod message;
pub mod phone;
pub mod scam;
pub mod sender;
pub mod time;

pub use adversary::{AdversaryPlan, Archetype};
pub use brand::Sector;
pub use country::Country;
pub use error::{CallCtx, ServiceError, TypeError};
pub use forum::{Forum, NoiseKind, TextReport};
pub use ids::{CampaignId, MessageId, PostId};
pub use language::{Language, Script};
pub use message::{MessageTruth, SmsMessage};
pub use phone::PhoneNumber;
pub use scam::{Lure, LureSet, ScamType};
pub use sender::{SenderId, SenderKind};
pub use time::{
    parse_timestamp, CivilDateTime, Date, ParsedStamp, TimeOfDay, TimestampStyle, UnixTime, Weekday,
};
