//! Property-based tests on the civil-time core and model types.

use proptest::prelude::*;
use smishing_types::time::{days_in_month, is_leap_year};
use smishing_types::{
    parse_timestamp, CivilDateTime, Date, Lure, LureSet, PhoneNumber, TimeOfDay, UnixTime, Weekday,
};

proptest! {
    #[test]
    fn civil_round_trip_total(secs in -4_000_000_000i64..8_000_000_000i64) {
        let t = UnixTime(secs);
        let c = t.civil();
        prop_assert_eq!(c.to_unix(), t);
        prop_assert!(c.date.month >= 1 && c.date.month <= 12);
        prop_assert!(c.date.day >= 1 && c.date.day <= days_in_month(c.date.year, c.date.month));
    }

    #[test]
    fn date_ordering_matches_day_numbers(a in -50_000i64..50_000, b in -50_000i64..50_000) {
        let da = Date::from_days_since_epoch(a);
        let db = Date::from_days_since_epoch(b);
        prop_assert_eq!(a.cmp(&b), da.cmp(&db));
    }

    #[test]
    fn leap_years_have_366_days(year in 1800i32..2400) {
        let total: u32 = (1..=12).map(|m| days_in_month(year, m) as u32).sum();
        prop_assert_eq!(total, if is_leap_year(year) { 366 } else { 365 });
    }

    #[test]
    fn weekday_index_bijection(days in -10_000i64..10_000) {
        let w = Date::from_days_since_epoch(days).weekday();
        prop_assert_eq!(Weekday::ALL[w.index()], w);
        prop_assert_eq!(Weekday::parse(w.name()), Some(w));
        prop_assert_eq!(Weekday::parse(w.abbrev()), Some(w));
    }

    #[test]
    fn time_of_day_round_trip(secs in 0u32..86_400) {
        let t = TimeOfDay::from_seconds_since_midnight(secs);
        prop_assert_eq!(t.seconds_since_midnight(), secs);
    }

    #[test]
    fn ampm_rendering_parses_back(secs in 0u32..86_400) {
        let t = TimeOfDay::from_seconds_since_midnight(secs - secs % 60);
        let rendered = t.format_ampm();
        let parsed = parse_timestamp(&rendered).expect("ampm parses");
        prop_assert_eq!(parsed.time_of_day(), Some(t));
    }

    #[test]
    fn timestamp_parser_never_panics(s in "\\PC{0,40}") {
        let _ = parse_timestamp(&s);
    }

    #[test]
    fn lureset_is_a_faithful_set(bits in 0u8..128) {
        let lures: Vec<Lure> = Lure::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, &l)| l)
            .collect();
        let set = LureSet::from_slice(&lures);
        prop_assert_eq!(set.len(), lures.len());
        let back: Vec<Lure> = set.iter().collect();
        prop_assert_eq!(back, lures);
    }

    #[test]
    fn phone_anonymization_hides_digits(cc in 1u16..999, national in "[0-9]{7,12}") {
        let first = national.chars().next().unwrap();
        let p = PhoneNumber::new(cc, national.clone());
        let masked = p.anonymized();
        // Only the country code and first national digit survive.
        let tail: String = national.chars().skip(1).collect();
        if tail.chars().any(|c| c != first) {
            prop_assert!(!masked.contains(&tail));
        }
        let prefix = format!("+{cc}");
        prop_assert!(masked.starts_with(&prefix));
    }

    #[test]
    fn civil_datetime_display_is_sortable(a in 0i64..4_000_000_000, b in 0i64..4_000_000_000) {
        // Lexicographic order of the ISO rendering matches temporal order.
        let ca = CivilDateTime::from_unix(UnixTime(a));
        let cb = CivilDateTime::from_unix(UnixTime(b));
        let (sa, sb) = (format!("{ca}"), format!("{cb}"));
        if a != b {
            prop_assert_eq!(a < b, sa <= sb);
        }
    }
}
