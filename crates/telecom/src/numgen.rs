//! Deterministic phone-number generation for the world simulator.
//!
//! Generates numbers that the plan/HLR machinery maps *back* to the chosen
//! country, operator and number type — the generator proposes digits and
//! verifies by re-classification, retrying on prefix collisions (e.g. a
//! German `152…` draw that lands in the longer `1521` Lycamobile block).

use crate::numbertype::NumberType;
use crate::plan::{CountryPlan, PlanRegistry};
use rand::Rng;
use smishing_types::{Country, PhoneNumber};

/// Factory for plan-consistent (and deliberately plan-violating) numbers.
#[derive(Debug, Clone, Copy, Default)]
pub struct NumberFactory;

impl NumberFactory {
    /// Create a factory.
    pub fn new() -> NumberFactory {
        NumberFactory
    }

    fn plan(country: Country) -> Option<&'static CountryPlan> {
        PlanRegistry::global().plan_for(country)
    }

    fn fill_digits<R: Rng + ?Sized>(prefix: &str, len: usize, rng: &mut R) -> String {
        let mut s = String::with_capacity(len);
        s.push_str(prefix);
        while s.len() < len {
            s.push(char::from(b'0' + rng.gen_range(0..10u8)));
        }
        s
    }

    /// A mobile number in `country` originally allocated to `operator`.
    ///
    /// Returns `None` if the operator holds no allocation there.
    pub fn mobile_for<R: Rng + ?Sized>(
        &self,
        country: Country,
        operator: &str,
        rng: &mut R,
    ) -> Option<PhoneNumber> {
        let plan = Self::plan(country)?;
        let series = plan.mobile_series_of(operator);
        if series.is_empty() {
            return None;
        }
        for _ in 0..32 {
            let prefix = series[rng.gen_range(0..series.len())];
            // Use the country default length unless the matched series
            // overrides it; regenerate until reclassification agrees.
            let (lo, hi) = plan
                .series
                .iter()
                .find(|s| s.prefix == prefix && s.operator == Some(operator))
                .and_then(|s| s.len)
                .unwrap_or(plan.national_len);
            let len = rng.gen_range(lo..=hi) as usize;
            let national = Self::fill_digits(prefix, len, rng);
            let c = plan.classify(&national);
            if c.number_type == NumberType::Mobile && c.operator == Some(operator) {
                return Some(PhoneNumber::new(country.calling_code(), national));
            }
        }
        None
    }

    /// A mobile number in `country` from any modelled operator.
    pub fn mobile_any<R: Rng + ?Sized>(
        &self,
        country: Country,
        rng: &mut R,
    ) -> Option<PhoneNumber> {
        let plan = Self::plan(country)?;
        let ops = plan.operators();
        if ops.is_empty() {
            return None;
        }
        let op = ops[rng.gen_range(0..ops.len())];
        self.mobile_for(country, op, rng)
    }

    /// A number of a specific non-mobile type (Landline, TollFree, Voip...).
    pub fn special<R: Rng + ?Sized>(
        &self,
        country: Country,
        number_type: NumberType,
        rng: &mut R,
    ) -> Option<PhoneNumber> {
        let plan = Self::plan(country)?;
        let series: Vec<_> = plan
            .series
            .iter()
            .filter(|s| s.number_type == number_type)
            .collect();
        if series.is_empty() {
            return None;
        }
        for _ in 0..32 {
            let s = series[rng.gen_range(0..series.len())];
            let (lo, hi) = s.len.unwrap_or(plan.national_len);
            let len = rng.gen_range(lo..=hi) as usize;
            let national = Self::fill_digits(s.prefix, len, rng);
            if plan.classify(&national).number_type == number_type {
                return Some(PhoneNumber::new(country.calling_code(), national));
            }
        }
        None
    }

    /// A spoofed, badly formatted sender string: either more digits than
    /// any valid number (§4.1) or an unallocated prefix.
    pub fn bad_format<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        if rng.gen_bool(0.5) {
            // Too many digits for E.164.
            let len = rng.gen_range(16..=22);
            let mut s = String::from("+");
            s.push(char::from(b'1' + rng.gen_range(0..9u8)));
            while s.len() < len + 1 {
                s.push(char::from(b'0' + rng.gen_range(0..10u8)));
            }
            s
        } else {
            // A long random digit blob that fits no plan: starts with '5'
            // so the leading "digits" never match a modelled calling code's
            // allocation, and is ≥ 9 digits so it classifies as phone-like
            // rather than an operator shortcode.
            let len = rng.gen_range(9..=12);
            let mut s = String::new();
            s.push('5');
            while s.len() < len {
                s.push(char::from(b'0' + rng.gen_range(0..10u8)));
            }
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hlr::{HlrLookup, SimulatedHlr};
    use crate::parse::parse_phone;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smishing_types::SenderId;

    #[test]
    fn generated_mobiles_round_trip_through_hlr() {
        let f = NumberFactory::new();
        let hlr = SimulatedHlr::new(1);
        let mut rng = StdRng::seed_from_u64(9);
        for (country, op) in [
            (Country::India, "AirTel"),
            (Country::India, "Reliance Jio"),
            (Country::UnitedKingdom, "Vodafone"),
            (Country::Netherlands, "KPN Mobile"),
            (Country::Germany, "Lycamobile"),
            (Country::France, "SFR"),
            (Country::Czechia, "T-Mobile"),
        ] {
            for _ in 0..20 {
                let p = f.mobile_for(country, op, &mut rng).expect("series exists");
                let rec = hlr.lookup(&SenderId::Phone(p.clone())).unwrap();
                assert_eq!(rec.origin_country, Some(country), "{p}");
                assert_eq!(rec.original_operator, Some(op), "{p}");
                assert_eq!(rec.number_type, NumberType::Mobile, "{p}");
            }
        }
    }

    #[test]
    fn generated_numbers_reparse_from_e164() {
        let f = NumberFactory::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = f.mobile_any(Country::Spain, &mut rng).unwrap();
            let reparsed = parse_phone(&p.e164());
            assert_eq!(reparsed.phone(), Some(&p), "{p}");
        }
    }

    #[test]
    fn unknown_operator_yields_none() {
        let f = NumberFactory::new();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(f.mobile_for(Country::India, "O2", &mut rng).is_none());
    }

    #[test]
    fn specials_classify_correctly() {
        let f = NumberFactory::new();
        let mut rng = StdRng::seed_from_u64(4);
        for nt in [
            NumberType::Landline,
            NumberType::TollFree,
            NumberType::Pager,
            NumberType::PersonalNumber,
            NumberType::Voip,
            NumberType::VoicemailOnly,
        ] {
            let p = f
                .special(Country::UnitedKingdom, nt, &mut rng)
                .unwrap_or_else(|| panic!("UK should allocate {nt:?}"));
            let plan = PlanRegistry::global()
                .plan_for(Country::UnitedKingdom)
                .unwrap();
            assert_eq!(plan.classify(&p.national).number_type, nt, "{p}");
        }
    }

    #[test]
    fn bad_format_is_really_bad() {
        let f = NumberFactory::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let raw = f.bad_format(&mut rng);
            let parsed = parse_phone(&raw);
            match parsed {
                SenderId::MalformedPhone(_) => {}
                SenderId::Phone(p) => {
                    // A "+<junk>" draw may split on a valid cc; it must then
                    // be bad under the plan.
                    let (_, c) = PlanRegistry::global().classify(&p);
                    assert_eq!(c.number_type, NumberType::BadFormat, "{raw} -> {p}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn determinism_under_seed() {
        let f = NumberFactory::new();
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..10)
                .map(|_| f.mobile_any(Country::India, &mut rng).unwrap())
                .collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..10)
                .map(|_| f.mobile_any(Country::India, &mut rng).unwrap())
                .collect()
        };
        assert_eq!(a, b);
    }
}
