//! Home Location Register lookup (§3.3.1).
//!
//! An HLR lookup reveals a number's current status (live / inactive / dead),
//! its original operator (from the allocation) and its current operator
//! (after any porting). The paper performs a *one-time* lookup per number
//! and uses only the original operator, because numbers get recycled and
//! re-issued — the simulator reproduces both the porting noise and the
//! per-country live rates visible in Table 14.
//!
//! [`HlrLookup`] is the provider interface; [`SimulatedHlr`] is the
//! deterministic offline implementation. A production deployment would put
//! an actual provider (e.g. hlrlookup.com) behind the same trait.

use crate::numbertype::NumberType;
use crate::plan::PlanRegistry;
use parking_lot::RwLock;
use smishing_types::{CallCtx, Country, PhoneNumber, SenderId, ServiceError};
use std::collections::HashMap;

/// Line status returned by an HLR query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumberStatus {
    /// Currently registered and reachable.
    Live,
    /// Allocated but currently unreachable / suspended.
    Inactive,
    /// De-allocated (possibly awaiting recycling).
    Dead,
}

/// One HLR answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HlrRecord {
    /// Number type under the origin country's plan.
    pub number_type: NumberType,
    /// Country the number's range belongs to.
    pub origin_country: Option<Country>,
    /// Operator the range was originally allocated to.
    pub original_operator: Option<&'static str>,
    /// Operator currently serving the number (differs after porting).
    pub current_operator: Option<&'static str>,
    /// Current line status.
    pub status: NumberStatus,
}

/// The HLR provider interface the pipeline codes against.
pub trait HlrLookup {
    /// Look up a sender. Returns `None` for non-phone senders; malformed
    /// phone strings return a `BadFormat` record (that is what a real HLR
    /// answers for junk input).
    fn lookup(&self, sender: &SenderId) -> Option<HlrRecord>;
}

/// Fallible HLR lookup — the seam where upstream failures (timeouts, rate
/// limits, gateway outages) enter the pipeline. Real implementations ignore
/// the [`CallCtx`]; the fault layer uses it to make failure a pure function
/// of (attempt, virtual tick).
pub trait HlrApi {
    /// Look up a sender, or fail the way a real HLR gateway can.
    fn hlr_lookup(
        &self,
        ctx: CallCtx,
        sender: &SenderId,
    ) -> Result<Option<HlrRecord>, ServiceError>;
}

impl HlrApi for SimulatedHlr {
    fn hlr_lookup(
        &self,
        _ctx: CallCtx,
        sender: &SenderId,
    ) -> Result<Option<HlrRecord>, ServiceError> {
        Ok(self.lookup(sender))
    }
}

/// Deterministic HLR simulator.
///
/// Status and porting are pseudo-random but *stable*: a pure function of
/// the number and the simulator seed, so repeated lookups agree — matching
/// the paper's one-time-lookup methodology — and the whole pipeline stays
/// reproducible.
pub struct SimulatedHlr {
    seed: u64,
    /// Per-country probability that a looked-up number is still live.
    live_rates: HashMap<Country, f64>,
    default_live_rate: f64,
    /// Probability a mobile number was ported to another operator.
    porting_rate: f64,
    cache: RwLock<HashMap<PhoneNumber, HlrRecord>>,
}

impl SimulatedHlr {
    /// Build with the default per-country live rates (calibrated to the
    /// all-vs-live columns of Table 14).
    pub fn new(seed: u64) -> SimulatedHlr {
        let mut live_rates = HashMap::new();
        // Table 14: live/all per country, e.g. India 396/2722, Spain 361/494.
        for (c, r) in [
            (Country::India, 0.15),
            (Country::UnitedStates, 0.21),
            (Country::Netherlands, 0.29),
            (Country::UnitedKingdom, 0.18),
            (Country::Spain, 0.73),
            (Country::Australia, 0.39),
            (Country::France, 0.52),
            (Country::Belgium, 0.31),
            (Country::Indonesia, 0.13),
            (Country::Germany, 0.37),
        ] {
            live_rates.insert(c, r);
        }
        SimulatedHlr {
            seed,
            live_rates,
            default_live_rate: 0.30,
            porting_rate: 0.15,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Override a country's live rate (testing / calibration).
    pub fn set_live_rate(&mut self, country: Country, rate: f64) {
        self.live_rates.insert(country, rate.clamp(0.0, 1.0));
    }

    fn hash(&self, phone: &PhoneNumber, salt: u64) -> u64 {
        // FNV-1a over the digits, seed and salt: cheap, stable, good enough
        // for deterministic pseudo-randomness.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.wrapping_mul(0x100_0000_01b3);
        for b in phone.digits().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= salt;
        h = h.wrapping_mul(0x100_0000_01b3);
        h ^ (h >> 31)
    }

    fn unit(&self, phone: &PhoneNumber, salt: u64) -> f64 {
        (self.hash(phone, salt) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn compute(&self, phone: &PhoneNumber) -> HlrRecord {
        let (country, class) = PlanRegistry::global().classify(phone);
        if class.number_type == NumberType::BadFormat {
            return HlrRecord {
                number_type: NumberType::BadFormat,
                origin_country: country,
                original_operator: None,
                current_operator: None,
                status: NumberStatus::Dead,
            };
        }
        let live_rate = country
            .and_then(|c| self.live_rates.get(&c).copied())
            .unwrap_or(self.default_live_rate);
        let u = self.unit(phone, 1);
        let status = if u < live_rate {
            NumberStatus::Live
        } else if u < live_rate + (1.0 - live_rate) * 0.6 {
            NumberStatus::Inactive
        } else {
            NumberStatus::Dead
        };

        let original = class.operator;
        let current = match (original, country) {
            (Some(orig), Some(c)) if self.unit(phone, 2) < self.porting_rate => {
                // Ported: pick a different operator active in the country.
                let plan = PlanRegistry::global()
                    .plan_for(c)
                    .expect("classified country");
                let others: Vec<_> = plan
                    .operators()
                    .into_iter()
                    .filter(|&o| o != orig)
                    .collect();
                if others.is_empty() {
                    Some(orig)
                } else {
                    let idx = (self.hash(phone, 3) as usize) % others.len();
                    Some(others[idx])
                }
            }
            (orig, _) => orig,
        };

        HlrRecord {
            number_type: class.number_type,
            origin_country: country,
            original_operator: original,
            current_operator: current,
            status,
        }
    }
}

impl HlrLookup for SimulatedHlr {
    fn lookup(&self, sender: &SenderId) -> Option<HlrRecord> {
        match sender {
            SenderId::Phone(p) => {
                if let Some(hit) = self.cache.read().get(p) {
                    return Some(hit.clone());
                }
                let rec = self.compute(p);
                self.cache.write().insert(p.clone(), rec.clone());
                Some(rec)
            }
            SenderId::MalformedPhone(_) => Some(HlrRecord {
                number_type: NumberType::BadFormat,
                origin_country: None,
                original_operator: None,
                current_operator: None,
                status: NumberStatus::Dead,
            }),
            SenderId::Email(_) | SenderId::Alphanumeric(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phone(cc: u16, nat: &str) -> SenderId {
        SenderId::Phone(PhoneNumber::new(cc, nat))
    }

    #[test]
    fn lookups_are_stable() {
        let hlr = SimulatedHlr::new(7);
        let s = phone(91, "9876543210");
        let a = hlr.lookup(&s).unwrap();
        let b = hlr.lookup(&s).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn original_operator_comes_from_allocation() {
        let hlr = SimulatedHlr::new(7);
        let rec = hlr.lookup(&phone(91, "9876543210")).unwrap();
        assert_eq!(rec.original_operator, Some("AirTel"));
        assert_eq!(rec.origin_country, Some(Country::India));
        assert_eq!(rec.number_type, NumberType::Mobile);
    }

    #[test]
    fn porting_changes_current_not_original() {
        let hlr = SimulatedHlr::new(7);
        let mut ported = 0;
        let mut total = 0;
        for i in 0..1000 {
            let nat = format!("74{:08}", i);
            let rec = hlr.lookup(&phone(44, &nat)).unwrap();
            assert_eq!(
                rec.original_operator,
                Some("Vodafone"),
                "original never changes"
            );
            total += 1;
            if rec.current_operator != rec.original_operator {
                ported += 1;
            }
        }
        let rate = ported as f64 / total as f64;
        assert!((0.08..0.25).contains(&rate), "porting rate {rate}");
    }

    #[test]
    fn live_rates_are_per_country() {
        let hlr = SimulatedHlr::new(7);
        let live_frac = |cc: u16, prefix: &str, pad: usize| {
            let mut live = 0;
            for i in 0..500 {
                let nat = format!("{prefix}{:0width$}", i, width = pad);
                if hlr.lookup(&phone(cc, &nat)).unwrap().status == NumberStatus::Live {
                    live += 1;
                }
            }
            live as f64 / 500.0
        };
        let spain = live_frac(34, "612", 6); // live rate 0.73
        let india = live_frac(91, "98765", 5); // live rate 0.15
        assert!(spain > 0.6, "spain {spain}");
        assert!(india < 0.25, "india {india}");
    }

    #[test]
    fn malformed_is_bad_format() {
        let hlr = SimulatedHlr::new(7);
        let rec = hlr
            .lookup(&SenderId::MalformedPhone("9999999999999999999".into()))
            .unwrap();
        assert_eq!(rec.number_type, NumberType::BadFormat);
        assert_eq!(rec.original_operator, None);
    }

    #[test]
    fn non_phone_senders_have_no_hlr() {
        let hlr = SimulatedHlr::new(7);
        assert!(hlr
            .lookup(&SenderId::Alphanumeric("SBIBNK".into()))
            .is_none());
        assert!(hlr.lookup(&SenderId::Email("a@b.com".into())).is_none());
    }

    #[test]
    fn landline_classified_not_mobile() {
        let hlr = SimulatedHlr::new(7);
        let rec = hlr.lookup(&phone(44, "2071234567")).unwrap();
        assert_eq!(rec.number_type, NumberType::Landline);
        assert_eq!(rec.original_operator, None);
    }

    #[test]
    fn different_seeds_change_status_draws() {
        let a = SimulatedHlr::new(1);
        let b = SimulatedHlr::new(2);
        let mut diff = 0;
        for i in 0..200 {
            let s = phone(44, &format!("74{:08}", i));
            if a.lookup(&s).unwrap().status != b.lookup(&s).unwrap().status {
                diff += 1;
            }
        }
        assert!(diff > 20, "seeds should decorrelate status ({diff})");
    }
}
