//! Per-country numbering plans.
//!
//! A numbering plan decides, from the national significant number alone,
//! whether a number is mobile / landline / VoIP / toll-free / ... and which
//! operator the range was *originally allocated to*. The paper's HLR
//! provider derives "original mobile network operator" from exactly this
//! allocation data (§3.3.1) — number portability only affects the *current*
//! operator, which the paper deliberately ignores.
//!
//! The plans here are simplified but structurally faithful: prefix rules
//! with longest-prefix matching, per-series length overrides, and a
//! bad-format bucket for anything that matches no rule (Table 3 shows 24.3%
//! of sender numbers are such spoofed strings).

use crate::numbertype::NumberType;
use smishing_types::{Country, PhoneNumber};
use std::collections::HashMap;
use std::sync::OnceLock;

/// One allocated number range.
#[derive(Debug, Clone, Copy)]
pub struct Series {
    /// National-number prefix (digits).
    pub prefix: &'static str,
    /// What the range is allocated for.
    pub number_type: NumberType,
    /// Original allocatee, for mobile-capable ranges.
    pub operator: Option<&'static str>,
    /// Length override `(min, max)` for this series, if it differs from the
    /// country default (e.g. toll-free numbers are often longer).
    pub len: Option<(u8, u8)>,
}

const fn mob(prefix: &'static str, operator: &'static str) -> Series {
    Series {
        prefix,
        number_type: NumberType::Mobile,
        operator: Some(operator),
        len: None,
    }
}

const fn typ(prefix: &'static str, number_type: NumberType) -> Series {
    Series {
        prefix,
        number_type,
        operator: None,
        len: None,
    }
}

const fn typl(prefix: &'static str, number_type: NumberType, lo: u8, hi: u8) -> Series {
    Series {
        prefix,
        number_type,
        operator: None,
        len: Some((lo, hi)),
    }
}

/// A country's numbering plan.
#[derive(Debug, Clone, Copy)]
pub struct CountryPlan {
    /// The country this plan covers.
    pub country: Country,
    /// Valid national-number length `(min, max)` in digits.
    pub national_len: (u8, u8),
    /// Allocated ranges; matched longest-prefix-first.
    pub series: &'static [Series],
    /// Type for numbers of valid length matching no series; `None` means
    /// such numbers are [`NumberType::BadFormat`].
    pub default_type: Option<NumberType>,
}

/// Result of classifying a national number under a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// The number type.
    pub number_type: NumberType,
    /// Original operator, when the range is operator-allocated.
    pub operator: Option<&'static str>,
}

impl CountryPlan {
    /// Classify a national significant number under this plan.
    pub fn classify(&self, national: &str) -> Classification {
        self.classify_detailed(national).0
    }

    /// Like [`CountryPlan::classify`], also reporting whether an explicit
    /// series matched (as opposed to the plan's default bucket). Used to
    /// break calling-code ties: a Canadian series match outranks the generic
    /// US NANP default.
    pub fn classify_detailed(&self, national: &str) -> (Classification, bool) {
        const BAD: Classification = Classification {
            number_type: NumberType::BadFormat,
            operator: None,
        };
        if national.is_empty() || !national.bytes().all(|b| b.is_ascii_digit()) {
            return (BAD, false);
        }
        // Longest prefix match first, so "1521" (Lycamobile DE) beats "152".
        let mut best: Option<&Series> = None;
        for s in self.series {
            if national.starts_with(s.prefix)
                && best.is_none_or(|b| s.prefix.len() > b.prefix.len())
            {
                best = Some(s);
            }
        }
        let n = national.len() as u8;
        match best {
            Some(s) => {
                let (lo, hi) = s.len.unwrap_or(self.national_len);
                if n < lo || n > hi {
                    (BAD, false)
                } else {
                    (
                        Classification {
                            number_type: s.number_type,
                            operator: s.operator,
                        },
                        true,
                    )
                }
            }
            None => {
                let (lo, hi) = self.national_len;
                if n < lo || n > hi {
                    return (BAD, false);
                }
                match self.default_type {
                    Some(t) => (
                        Classification {
                            number_type: t,
                            operator: None,
                        },
                        false,
                    ),
                    None => (BAD, false),
                }
            }
        }
    }

    /// All mobile series allocated to `operator` in this plan.
    pub fn mobile_series_of(&self, operator: &str) -> Vec<&'static str> {
        self.series
            .iter()
            .filter(|s| s.number_type == NumberType::Mobile && s.operator == Some(operator))
            .map(|s| s.prefix)
            .collect()
    }

    /// Distinct mobile operators allocated ranges in this plan.
    pub fn operators(&self) -> Vec<&'static str> {
        let mut ops: Vec<&'static str> = self
            .series
            .iter()
            .filter(|s| s.number_type == NumberType::Mobile)
            .filter_map(|s| s.operator)
            .collect();
        ops.sort_unstable();
        ops.dedup();
        ops
    }
}

macro_rules! plans {
    ($( $country:ident : len=($lo:literal,$hi:literal), default=$default:expr, series=[$($series:expr),* $(,)?] );+ $(;)?) => {
        &[
            $(CountryPlan {
                country: Country::$country,
                national_len: ($lo, $hi),
                series: &[$($series),*],
                default_type: $default,
            }),+
        ]
    };
}

/// The static plan table. See module docs for the simplification stance.
pub const PLANS: &[CountryPlan] = plans! {
    // ----- Core markets (Table 14 top-10) -----
    India: len=(10,10), default=None, series=[
        mob("98", "AirTel"), mob("96", "AirTel"), mob("93", "AirTel"),
        mob("99", "Vodafone"), mob("97", "Vodafone"),
        mob("94", "BSNL Mobile"), mob("95", "BSNL Mobile"),
        mob("70", "Reliance Jio"), mob("79", "Reliance Jio"), mob("89", "Reliance Jio"),
        mob("63", "Vi India"), mob("62", "Vi India"),
        typ("11", NumberType::Landline), typ("22", NumberType::Landline),
        typ("33", NumberType::Landline), typ("44", NumberType::Landline),
        typ("80", NumberType::Landline), typ("40", NumberType::Landline),
        typl("1800", NumberType::TollFree, 10, 11),
    ];
    UnitedStates: len=(10,10), default=Some(NumberType::MobileOrLandline), series=[
        mob("347", "T-Mobile"), mob("917", "T-Mobile"), mob("929", "T-Mobile"),
        mob("206", "T-Mobile"),
        mob("551", "Verizon"), mob("862", "Verizon"), mob("908", "Verizon"),
        mob("214", "AT&T"), mob("469", "AT&T"), mob("972", "AT&T"),
        mob("510", "Metro by T-Mobile"), mob("678", "Cricket Wireless"),
        mob("980", "Boost Mobile"), mob("628", "Mint Mobile"),
        mob("605", "US Cellular"),
        typ("212", NumberType::Landline), typ("312", NumberType::Landline),
        typ("415", NumberType::Landline), typ("202", NumberType::Landline),
        typ("800", NumberType::TollFree), typ("833", NumberType::TollFree),
        typ("844", NumberType::TollFree), typ("855", NumberType::TollFree),
        typ("866", NumberType::TollFree), typ("877", NumberType::TollFree),
        typ("888", NumberType::TollFree),
        typ("500", NumberType::PersonalNumber), typ("533", NumberType::PersonalNumber),
        typ("521", NumberType::Voip), typ("522", NumberType::Voip),
        typ("710", NumberType::OtherValid),
    ];
    UnitedKingdom: len=(9,10), default=None, series=[
        mob("74", "Vodafone"), mob("79", "Vodafone"),
        mob("75", "O2"), mob("7402", "O2"),
        mob("77", "EE Limited"), mob("78", "EE Limited"),
        mob("73", "Three"),
        typ("76", NumberType::Pager), typ("7600", NumberType::VoicemailOnly),
        typ("70", NumberType::PersonalNumber),
        typ("56", NumberType::Voip),
        typ("80", NumberType::TollFree),
        typ("84", NumberType::OtherValid), typ("87", NumberType::OtherValid),
        typ("1", NumberType::Landline), typ("2", NumberType::Landline),
        typ("3", NumberType::UniversalAccess),
        typ("55", NumberType::OtherValid),
    ];
    Netherlands: len=(9,9), default=None, series=[
        mob("61", "KPN Mobile"), mob("62", "KPN Mobile"),
        mob("64", "T-Mobile"), mob("68", "Lycamobile"),
        mob("65", "Vodafone"), mob("63", "Vodafone"),
        typ("10", NumberType::Landline), typ("20", NumberType::Landline),
        typ("30", NumberType::Landline), typ("70", NumberType::Landline),
        typ("85", NumberType::Voip), typ("88", NumberType::Voip),
        typl("800", NumberType::TollFree, 7, 10),
    ];
    Spain: len=(9,9), default=None, series=[
        mob("60", "Movistar"), mob("65", "Movistar"), mob("61", "Vodafone"),
        mob("67", "Vodafone"), mob("62", "Orange"), mob("63", "Lycamobile"),
        mob("7", "Movistar"),
        typ("91", NumberType::Landline), typ("93", NumberType::Landline),
        typ("96", NumberType::Landline),
        typ("900", NumberType::TollFree),
        typ("51", NumberType::Voip),
    ];
    Australia: len=(9,9), default=None, series=[
        mob("40", "Telstra"), mob("43", "Telstra"), mob("41", "Vodafone"),
        mob("44", "Vodafone"), mob("42", "Optus"), mob("45", "Lycamobile"),
        typ("2", NumberType::Landline), typ("3", NumberType::Landline),
        typ("7", NumberType::Landline), typ("8", NumberType::Landline),
        typl("1800", NumberType::TollFree, 10, 10),
        typl("13", NumberType::UniversalAccess, 6, 10),
    ];
    France: len=(9,9), default=None, series=[
        mob("60", "Orange"), mob("66", "Orange"), mob("76", "Orange"),
        mob("61", "SFR"), mob("64", "SFR"), mob("67", "SFR"), mob("77", "SFR"),
        mob("62", "Bouygues"), mob("63", "Free Mobile"), mob("75", "Free Mobile"),
        mob("65", "Lycamobile"),
        typ("1", NumberType::Landline), typ("2", NumberType::Landline),
        typ("3", NumberType::Landline), typ("4", NumberType::Landline),
        typ("5", NumberType::Landline),
        typ("9", NumberType::Voip),
        typ("80", NumberType::TollFree),
    ];
    Belgium: len=(8,9), default=None, series=[
        Series { prefix: "46", number_type: NumberType::Mobile, operator: Some("Proximus"), len: Some((9, 9)) },
        Series { prefix: "47", number_type: NumberType::Mobile, operator: Some("Proximus"), len: Some((9, 9)) },
        Series { prefix: "48", number_type: NumberType::Mobile, operator: Some("Orange BE"), len: Some((9, 9)) },
        Series { prefix: "49", number_type: NumberType::Mobile, operator: Some("Lycamobile"), len: Some((9, 9)) },
        typl("2", NumberType::Landline, 8, 8),
        typl("3", NumberType::Landline, 8, 8),
        typl("800", NumberType::TollFree, 8, 8),
        typl("78", NumberType::UniversalAccess, 8, 8),
    ];
    Indonesia: len=(9,11), default=None, series=[
        mob("811", "Telkomsel"), mob("812", "Telkomsel"), mob("813", "Telkomsel"),
        mob("852", "Telkomsel"), mob("853", "Telkomsel"),
        mob("814", "Indosat"), mob("815", "Indosat"), mob("816", "Indosat"),
        mob("856", "Indosat"),
        mob("817", "XL Axiata"), mob("818", "XL Axiata"), mob("819", "XL Axiata"),
        typ("21", NumberType::Landline), typ("22", NumberType::Landline),
        typ("24", NumberType::Landline),
        typ("800", NumberType::TollFree),
    ];
    Germany: len=(10,11), default=None, series=[
        mob("151", "T-Mobile"), mob("160", "T-Mobile"), mob("170", "T-Mobile"),
        mob("152", "Vodafone"), mob("162", "Vodafone"), mob("172", "Vodafone"),
        mob("1521", "Lycamobile"),
        mob("157", "O2"), mob("159", "O2"), mob("176", "O2"), mob("179", "O2"),
        typ("30", NumberType::Landline), typ("40", NumberType::Landline),
        typ("69", NumberType::Landline), typ("89", NumberType::Landline),
        typl("800", NumberType::TollFree, 9, 10),
        typl("32", NumberType::Voip, 10, 11),
    ];
    // ----- Vodafone / Airtel / O2 / Lycamobile footprint -----
    Ireland: len=(9,9), default=None, series=[
        mob("87", "Vodafone"), mob("83", "Vodafone"),
        mob("85", "O2"), mob("86", "O2"), mob("89", "Lycamobile"),
        typ("1", NumberType::Landline),
        typl("1800", NumberType::TollFree, 10, 10),
    ];
    Italy: len=(9,10), default=None, series=[
        mob("340", "Vodafone"), mob("342", "Vodafone"), mob("349", "Vodafone"),
        mob("330", "TIM"), mob("333", "TIM"), mob("339", "TIM"),
        mob("320", "Wind Tre"), mob("327", "Wind Tre"),
        typ("02", NumberType::Landline), typ("06", NumberType::Landline),
        typl("800", NumberType::TollFree, 9, 10),
    ];
    Portugal: len=(9,9), default=None, series=[
        mob("91", "Vodafone"), mob("96", "MEO"), mob("93", "NOS"),
        typ("21", NumberType::Landline), typ("22", NumberType::Landline),
        typ("800", NumberType::TollFree),
    ];
    Czechia: len=(9,9), default=None, series=[
        mob("77", "T-Mobile"), mob("60", "Vodafone"), mob("73", "Vodafone"),
        mob("72", "O2"),
        typ("2", NumberType::Landline),
        typ("800", NumberType::TollFree),
    ];
    NewZealand: len=(8,10), default=None, series=[
        mob("21", "Vodafone"), mob("22", "2degrees"), mob("27", "Spark"),
        typl("9", NumberType::Landline, 8, 8), typl("4", NumberType::Landline, 8, 8),
        typl("800", NumberType::TollFree, 9, 10),
    ];
    SouthAfrica: len=(9,9), default=None, series=[
        mob("82", "Vodafone"), mob("72", "Vodafone"), mob("83", "MTN"),
        mob("73", "MTN"), mob("84", "Cell C"),
        typ("11", NumberType::Landline), typ("21", NumberType::Landline),
        typ("800", NumberType::TollFree),
    ];
    Turkey: len=(10,10), default=None, series=[
        mob("53", "Vodafone"), mob("54", "Vodafone"), mob("55", "Turkcell"),
        mob("50", "Turk Telekom"),
        typ("212", NumberType::Landline), typ("216", NumberType::Landline),
        typ("312", NumberType::Landline),
        typ("800", NumberType::TollFree),
    ];
    Romania: len=(9,9), default=None, series=[
        mob("72", "Vodafone"), mob("73", "Vodafone"), mob("74", "Orange RO"),
        mob("76", "Digi"),
        typ("21", NumberType::Landline),
        typ("800", NumberType::TollFree),
    ];
    Hungary: len=(9,9), default=None, series=[
        mob("70", "Vodafone"), mob("20", "Yettel"), mob("30", "Telekom HU"),
        typ("1", NumberType::Landline),
        typ("80", NumberType::TollFree),
    ];
    Ukraine: len=(9,9), default=None, series=[
        mob("50", "Vodafone"), mob("66", "Vodafone"), mob("67", "Kyivstar"),
        mob("63", "lifecell"),
        typ("44", NumberType::Landline),
        typ("800", NumberType::TollFree),
    ];
    Ghana: len=(9,9), default=None, series=[
        mob("20", "Vodafone"), mob("50", "Vodafone"), mob("24", "MTN GH"),
        mob("54", "MTN GH"),
        typ("30", NumberType::Landline),
        typ("800", NumberType::TollFree),
    ];
    Qatar: len=(8,8), default=None, series=[
        mob("33", "Vodafone"), mob("77", "Vodafone"), mob("55", "Ooredoo"),
        mob("66", "Ooredoo"),
        typ("44", NumberType::Landline),
        typ("800", NumberType::TollFree),
    ];
    Kenya: len=(9,9), default=None, series=[
        mob("70", "Safaricom"), mob("72", "Safaricom"), mob("73", "AirTel"),
        mob("78", "AirTel"),
        typ("20", NumberType::Landline),
        typ("800", NumberType::TollFree),
    ];
    Nigeria: len=(10,10), default=None, series=[
        mob("803", "MTN NG"), mob("703", "MTN NG"), mob("802", "AirTel"),
        mob("808", "AirTel"), mob("902", "AirTel"),
        typ("1", NumberType::Landline),
        typ("800", NumberType::TollFree),
    ];
    DrCongo: len=(9,9), default=None, series=[
        mob("99", "AirTel"), mob("97", "AirTel"), mob("81", "Vodacom"),
        typ("1", NumberType::Landline),
    ];
    SriLanka: len=(9,9), default=None, series=[
        mob("75", "AirTel"), mob("77", "Dialog"), mob("76", "Dialog"),
        mob("71", "Mobitel LK"),
        typ("11", NumberType::Landline),
    ];
    Malawi: len=(9,9), default=None, series=[
        mob("99", "AirTel"), mob("98", "AirTel"), mob("88", "TNM"),
        typ("1", NumberType::Landline),
    ];
    Guadeloupe: len=(9,9), default=None, series=[
        mob("690", "SFR"), mob("691", "Orange Caraibe"),
        typ("590", NumberType::Landline),
    ];
    Canada: len=(10,10), default=Some(NumberType::MobileOrLandline), series=[
        mob("416", "Rogers"), mob("647", "Rogers"), mob("514", "Bell"),
        mob("604", "Telus"),
        typ("800", NumberType::TollFree), typ("888", NumberType::TollFree),
    ];
};

/// Lookup structure over [`PLANS`].
#[derive(Debug)]
pub struct PlanRegistry {
    by_country: HashMap<Country, &'static CountryPlan>,
    /// Calling-code → candidate plans, in priority order (US before CA).
    by_cc: HashMap<u16, Vec<&'static CountryPlan>>,
}

impl PlanRegistry {
    /// The process-wide registry.
    pub fn global() -> &'static PlanRegistry {
        static REG: OnceLock<PlanRegistry> = OnceLock::new();
        REG.get_or_init(|| {
            let mut by_country = HashMap::new();
            let mut by_cc: HashMap<u16, Vec<&'static CountryPlan>> = HashMap::new();
            for plan in PLANS {
                by_country.insert(plan.country, plan);
                by_cc
                    .entry(plan.country.calling_code())
                    .or_default()
                    .push(plan);
            }
            PlanRegistry { by_country, by_cc }
        })
    }

    /// The plan for a country, if modelled.
    pub fn plan_for(&self, country: Country) -> Option<&'static CountryPlan> {
        self.by_country.get(&country).copied()
    }

    /// All plans sharing a calling code (NANP members), priority order.
    pub fn plans_for_cc(&self, cc: u16) -> &[&'static CountryPlan] {
        self.by_cc.get(&cc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Classify a parsed phone number: resolve the calling code to a
    /// country plan (preferring the plan under which the number is valid)
    /// and run the plan's rules.
    pub fn classify(&self, phone: &PhoneNumber) -> (Option<Country>, Classification) {
        let candidates = self.plans_for_cc(phone.country_code);
        if candidates.is_empty() {
            return (
                None,
                Classification {
                    number_type: NumberType::BadFormat,
                    operator: None,
                },
            );
        }
        // Prefer plans where an explicit series matched; a Canadian range hit
        // outranks the generic US NANP default bucket.
        let mut default_hit = None;
        let mut fallback = None;
        for plan in candidates {
            let (c, series_matched) = plan.classify_detailed(&phone.national);
            if c.number_type != NumberType::BadFormat {
                if series_matched {
                    return (Some(plan.country), c);
                }
                default_hit.get_or_insert((Some(plan.country), c));
            }
            fallback.get_or_insert((Some(plan.country), c));
        }
        default_hit.or(fallback).expect("at least one candidate")
    }

    /// Countries with modelled plans.
    pub fn countries(&self) -> Vec<Country> {
        let mut cs: Vec<Country> = self.by_country.keys().copied().collect();
        cs.sort();
        cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(c: Country) -> &'static CountryPlan {
        PlanRegistry::global().plan_for(c).unwrap()
    }

    #[test]
    fn india_operator_allocation() {
        let p = plan(Country::India);
        let c = p.classify("9876543210");
        assert_eq!(c.number_type, NumberType::Mobile);
        assert_eq!(c.operator, Some("AirTel"));
        let c = p.classify("9912345678");
        assert_eq!(c.operator, Some("Vodafone"));
        let c = p.classify("7012345678");
        assert_eq!(c.operator, Some("Reliance Jio"));
    }

    #[test]
    fn india_landline_and_badformat() {
        let p = plan(Country::India);
        assert_eq!(p.classify("1123456789").number_type, NumberType::Landline);
        assert_eq!(p.classify("123").number_type, NumberType::BadFormat);
        assert_eq!(
            p.classify("98765432101234").number_type,
            NumberType::BadFormat
        );
        // Valid length but unallocated leading digit.
        assert_eq!(p.classify("5123456789").number_type, NumberType::BadFormat);
    }

    #[test]
    fn uk_special_ranges() {
        let p = plan(Country::UnitedKingdom);
        assert_eq!(p.classify("7412345678").operator, Some("Vodafone"));
        assert_eq!(p.classify("7612345678").number_type, NumberType::Pager);
        assert_eq!(
            p.classify("7600123456").number_type,
            NumberType::VoicemailOnly
        );
        assert_eq!(
            p.classify("7012345678").number_type,
            NumberType::PersonalNumber
        );
        assert_eq!(p.classify("5612345678").number_type, NumberType::Voip);
        assert_eq!(p.classify("2071234567").number_type, NumberType::Landline);
        assert_eq!(p.classify("8001234567").number_type, NumberType::TollFree);
    }

    #[test]
    fn longest_prefix_wins() {
        // German 1521 (Lycamobile) sits inside 152 (Vodafone).
        let p = plan(Country::Germany);
        assert_eq!(p.classify("1521234567").operator, Some("Lycamobile"));
        assert_eq!(p.classify("1522345678").operator, Some("Vodafone"));
    }

    #[test]
    fn us_default_is_mobile_or_landline() {
        let p = plan(Country::UnitedStates);
        assert_eq!(p.classify("9175551234").operator, Some("T-Mobile"));
        assert_eq!(
            p.classify("6145551234").number_type,
            NumberType::MobileOrLandline
        );
        assert_eq!(p.classify("8005551234").number_type, NumberType::TollFree);
        assert_eq!(
            p.classify("5005551234").number_type,
            NumberType::PersonalNumber
        );
    }

    #[test]
    fn belgium_length_overrides() {
        let p = plan(Country::Belgium);
        assert_eq!(p.classify("471234567").number_type, NumberType::Mobile);
        assert_eq!(p.classify("47123456").number_type, NumberType::BadFormat); // 8-digit mobile
        assert_eq!(p.classify("21234567").number_type, NumberType::Landline);
    }

    #[test]
    fn cc_collision_us_vs_canada() {
        let reg = PlanRegistry::global();
        // A Canadian mobile range resolves to Canada even though cc 1 is shared.
        let (country, c) = reg.classify(&PhoneNumber::new(1, "4165551234"));
        assert_eq!(country, Some(Country::Canada));
        assert_eq!(c.operator, Some("Rogers"));
        // A generic NANP number resolves via priority order to the US.
        let (country, c) = reg.classify(&PhoneNumber::new(1, "6145551234"));
        assert_eq!(country, Some(Country::UnitedStates));
        assert_eq!(c.number_type, NumberType::MobileOrLandline);
    }

    #[test]
    fn unknown_cc_is_badformat() {
        let reg = PlanRegistry::global();
        let (country, c) = reg.classify(&PhoneNumber::new(999, "12345678"));
        assert_eq!(country, None);
        assert_eq!(c.number_type, NumberType::BadFormat);
    }

    #[test]
    fn vodafone_footprint_is_wide() {
        // Table 4: Vodafone abused from 18 countries. The plan table must
        // give Vodafone allocations in many countries.
        let reg = PlanRegistry::global();
        let n = reg
            .countries()
            .iter()
            .filter(|&&c| reg.plan_for(c).unwrap().operators().contains(&"Vodafone"))
            .count();
        assert!(n >= 15, "Vodafone modelled in only {n} countries");
    }

    #[test]
    fn airtel_footprint() {
        // Table 4: AirTel in IND, COD, KEN, LKA, MWI, NGA.
        let reg = PlanRegistry::global();
        for c in [
            Country::India,
            Country::DrCongo,
            Country::Kenya,
            Country::SriLanka,
            Country::Malawi,
            Country::Nigeria,
        ] {
            assert!(
                reg.plan_for(c).unwrap().operators().contains(&"AirTel"),
                "AirTel missing in {c:?}"
            );
        }
    }

    #[test]
    fn mobile_series_lookup() {
        let p = plan(Country::Netherlands);
        let kpn = p.mobile_series_of("KPN Mobile");
        assert!(kpn.contains(&"61") && kpn.contains(&"62"));
        assert!(p.mobile_series_of("Nonexistent").is_empty());
    }

    #[test]
    fn non_digit_input_is_badformat() {
        let p = plan(Country::UnitedKingdom);
        assert_eq!(p.classify("74abc45678").number_type, NumberType::BadFormat);
        assert_eq!(p.classify("").number_type, NumberType::BadFormat);
    }
}
