//! Raw sender-ID classification (§3.3.1).
//!
//! "We create regular expressions to differentiate between mobile numbers,
//! email addresses, and alphanumeric sender IDs." This module is that step,
//! implemented as a small hand-rolled matcher: email if it has exactly one
//! `@` with a dotted domain; phone-like if it is (nearly) all digits after
//! stripping phone punctuation; alphanumeric otherwise.

/// Coarse kind of a raw sender string, before any numbering-plan checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RawSenderKind {
    /// Looks like a phone number (may still be a spoofed bad-format one).
    PhoneLike,
    /// Looks like an email address.
    EmailLike,
    /// An alphanumeric shortcode (`SBIBNK`, `GOV-UK`, `M-PESA`...).
    AlphanumericLike,
    /// Empty/whitespace — e.g. a redacted sender.
    Empty,
}

/// Strip characters people and apps put inside phone numbers.
pub(crate) fn strip_phone_punct(s: &str) -> String {
    s.chars()
        .filter(|c| !matches!(c, ' ' | '-' | '(' | ')' | '.' | '\u{a0}'))
        .collect()
}

fn is_email_like(s: &str) -> bool {
    let mut parts = s.split('@');
    let (Some(local), Some(domain), None) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    if local.is_empty() || domain.len() < 3 || !domain.contains('.') {
        return false;
    }
    if domain.starts_with('.') || domain.ends_with('.') {
        return false;
    }
    domain
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-')
}

fn is_phone_like(s: &str) -> bool {
    let stripped = strip_phone_punct(s);
    let body = stripped.strip_prefix('+').unwrap_or(&stripped);
    if body.len() < 7 {
        // Short digit-only codes (e.g. "7726", "60678") are operator
        // shortcodes, which the paper files under alphanumeric sender IDs;
        // real phone numbers are at least 7 digits nationally.
        return false;
    }
    let digits = body.chars().filter(|c| c.is_ascii_digit()).count();
    digits == body.chars().count()
}

/// Classify a raw sender string.
pub fn classify_sender(raw: &str) -> RawSenderKind {
    let s = raw.trim();
    if s.is_empty() {
        return RawSenderKind::Empty;
    }
    if is_email_like(s) {
        return RawSenderKind::EmailLike;
    }
    if is_phone_like(s) {
        return RawSenderKind::PhoneLike;
    }
    RawSenderKind::AlphanumericLike
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phones() {
        for p in [
            "+447911123456",
            "07911 123456",
            "(917) 555-0123",
            "91-98765-43210",
            "0039 333 1234567",
            "123456789012345678", // spoofed, too long — still phone-like
        ] {
            assert_eq!(classify_sender(p), RawSenderKind::PhoneLike, "{p:?}");
        }
    }

    #[test]
    fn emails() {
        for e in ["scam@icloud.com", "a.b@mail.example.co.uk", "x@y.io"] {
            assert_eq!(classify_sender(e), RawSenderKind::EmailLike, "{e:?}");
        }
    }

    #[test]
    fn not_emails() {
        for e in ["@nodomain", "two@@ats.com", "a@nodot", "a@.bad.", "user@"] {
            assert_ne!(classify_sender(e), RawSenderKind::EmailLike, "{e:?}");
        }
    }

    #[test]
    fn alphanumerics() {
        for a in [
            "SBIBNK",
            "GOV-UK",
            "M-PESA",
            "InfoSMS",
            "AX-HDFCBK",
            "7726",
            "60678",
        ] {
            assert_eq!(classify_sender(a), RawSenderKind::AlphanumericLike, "{a:?}");
        }
    }

    #[test]
    fn empty_and_redacted() {
        assert_eq!(classify_sender(""), RawSenderKind::Empty);
        assert_eq!(classify_sender("   "), RawSenderKind::Empty);
    }

    #[test]
    fn mixed_digits_and_letters_is_alphanumeric() {
        assert_eq!(
            classify_sender("44ABC123456"),
            RawSenderKind::AlphanumericLike
        );
    }
}
