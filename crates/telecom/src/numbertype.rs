//! Phone-number types as reported by HLR lookups (Table 3).

use std::fmt;

/// The type of a phone number, in the taxonomy of Table 3.
///
/// The paper splits these into "Valid" (numbers that can plausibly send an
/// SMS) and "Invalid/Suspicious" (landlines, voicemail-only numbers and
/// badly formatted strings — likely spoofed sender IDs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NumberType {
    /// A mobile subscriber number.
    Mobile,
    /// A range where mobile and fixed lines are not distinguishable from
    /// the prefix (NANP countries).
    MobileOrLandline,
    /// Voice-over-IP allocation.
    Voip,
    /// Toll-free / freephone number.
    TollFree,
    /// Paging service.
    Pager,
    /// Universal access number (company-wide routing).
    UniversalAccess,
    /// Personal numbering service (e.g. UK 070).
    PersonalNumber,
    /// Valid under the plan but in none of the above classes.
    OtherValid,
    /// Fixed landline — cannot originate SMS; a spoofing tell.
    Landline,
    /// Voicemail-access-only allocation.
    VoicemailOnly,
    /// Not a valid number under any plan (wrong length / prefix).
    BadFormat,
}

impl NumberType {
    /// All types in Table 3 row order (valid block first).
    pub const ALL: &'static [NumberType] = &[
        NumberType::Mobile,
        NumberType::MobileOrLandline,
        NumberType::Voip,
        NumberType::TollFree,
        NumberType::Pager,
        NumberType::UniversalAccess,
        NumberType::PersonalNumber,
        NumberType::OtherValid,
        NumberType::BadFormat,
        NumberType::Landline,
        NumberType::VoicemailOnly,
    ];

    /// Label as in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            NumberType::Mobile => "Mobile",
            NumberType::MobileOrLandline => "Mobile or Landline",
            NumberType::Voip => "VOIP",
            NumberType::TollFree => "Toll Free",
            NumberType::Pager => "Pager",
            NumberType::UniversalAccess => "Universal Access Number",
            NumberType::PersonalNumber => "Personal number",
            NumberType::OtherValid => "Others",
            NumberType::Landline => "Landline",
            NumberType::VoicemailOnly => "Voicemail Only",
            NumberType::BadFormat => "Bad Format",
        }
    }

    /// Whether Table 3 files this under "Valid Numbers".
    ///
    /// Invalid/suspicious types cannot actually originate SMS and are
    /// "likely spoofed and easy fodder to block" (§4.1).
    pub fn is_valid_sender(self) -> bool {
        !matches!(
            self,
            NumberType::Landline | NumberType::VoicemailOnly | NumberType::BadFormat
        )
    }
}

impl fmt::Display for NumberType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_size_matches_table3() {
        assert_eq!(NumberType::ALL.len(), 11);
    }

    #[test]
    fn validity_split_matches_table3() {
        let invalid: Vec<_> = NumberType::ALL
            .iter()
            .filter(|t| !t.is_valid_sender())
            .collect();
        assert_eq!(invalid.len(), 3);
        assert!(!NumberType::Landline.is_valid_sender());
        assert!(!NumberType::BadFormat.is_valid_sender());
        assert!(!NumberType::VoicemailOnly.is_valid_sender());
        assert!(NumberType::Pager.is_valid_sender());
    }
}
