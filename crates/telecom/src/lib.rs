//! # smishing-telecom
//!
//! The telephony substrate behind §3.3.1 / §4.1 / §5.6:
//!
//! - [`classify`]: split raw sender strings into phone / email /
//!   alphanumeric (the regex step of §3.3.1),
//! - [`plan`]: per-country numbering plans — prefix rules deciding whether
//!   a number is mobile, landline, VoIP, toll-free, pager, ... (Table 3),
//! - [`parse`]: international and national phone-number parsing with
//!   bad-format detection (spoofed sender IDs with too many digits),
//! - [`mno`]: the mobile-network-operator registry (Table 4),
//! - [`hlr`]: a Home Location Register lookup simulator returning the
//!   number's type, original and current operator, origin country and
//!   live/inactive/dead status — including the number-recycling behaviour
//!   that makes "current operator" unreliable (§3.3.1),
//! - [`numgen`]: deterministic generation of numbers that the HLR maps back
//!   to a chosen (country, operator) pair — used by the world simulator.
//!
//! The HLR is exposed as a trait ([`hlr::HlrLookup`]) so the pipeline code
//! is identical whether it talks to the simulator or, in a real deployment,
//! an actual HLR provider.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod hlr;
pub mod mno;
pub mod numbertype;
pub mod numgen;
pub mod parse;
pub mod plan;

pub use classify::{classify_sender, RawSenderKind};
pub use hlr::{HlrApi, HlrLookup, HlrRecord, NumberStatus, SimulatedHlr};
pub use mno::{Mno, MnoRegistry};
pub use numbertype::NumberType;
pub use numgen::NumberFactory;
pub use parse::{parse_phone, parse_phone_national};
pub use plan::{CountryPlan, PlanRegistry};
