//! Phone-number parsing.
//!
//! Turns raw phone-like sender strings into [`PhoneNumber`]s. International
//! prefixes (`+`, `00`) are resolved against the calling codes of the
//! modelled countries with longest-code-first matching; national formats
//! need a country hint (screenshots from a known-market report form).
//! Anything that resolves to no plan, or exceeds the E.164 15-digit limit,
//! is a spoofed/bad-format sender — the paper's Table 3 counts 24.3% of
//! sender numbers in that bucket.

use crate::classify::strip_phone_punct;
use crate::plan::PlanRegistry;
use smishing_types::{Country, PhoneNumber, SenderId};
use std::sync::OnceLock;

/// Calling codes of all modelled countries, longest (by digit count) first
/// so that e.g. `+420` is not mis-split as `+42` + `0...`.
fn calling_codes() -> &'static [u16] {
    static CODES: OnceLock<Vec<u16>> = OnceLock::new();
    CODES.get_or_init(|| {
        let mut codes: Vec<u16> = Country::ALL.iter().map(|c| c.calling_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        codes.sort_by_key(|c| std::cmp::Reverse(c.to_string().len()));
        codes
    })
}

/// Parse an international-format phone string (`+44...`, `0044...`,
/// or bare digits starting with a known calling code).
///
/// Returns [`SenderId::Phone`] for parseable numbers and
/// [`SenderId::MalformedPhone`] for phone-like strings that fit no plan —
/// callers should have pre-classified with
/// [`classify_sender`](crate::classify::classify_sender).
pub fn parse_phone(raw: &str) -> SenderId {
    let stripped = strip_phone_punct(raw.trim());
    let (explicit_intl, digits) = if let Some(rest) = stripped.strip_prefix('+') {
        (true, rest.to_string())
    } else if let Some(rest) = stripped.strip_prefix("00") {
        (true, rest.to_string())
    } else {
        (false, stripped.clone())
    };

    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return SenderId::MalformedPhone(raw.trim().to_string());
    }
    // E.164 caps at 15 digits; spoofed sender IDs with more digits than any
    // valid number (§4.1) land here.
    if digits.len() > 15 {
        return SenderId::MalformedPhone(raw.trim().to_string());
    }

    // Longest-calling-code-first match.
    for &cc in calling_codes() {
        let cc_str = cc.to_string();
        if let Some(national) = digits.strip_prefix(&cc_str) {
            if national.is_empty() {
                continue;
            }
            let candidate = PhoneNumber::new(cc, national);
            let (_, class) = PlanRegistry::global().classify(&candidate);
            if class.number_type != crate::numbertype::NumberType::BadFormat {
                return SenderId::Phone(candidate);
            }
            // An explicit +cc means the split is authoritative even if the
            // national part is bad — keep it as a parsed (bad) number so the
            // HLR can still report its origin country prefix.
            if explicit_intl {
                return SenderId::Phone(candidate);
            }
        }
    }
    SenderId::MalformedPhone(raw.trim().to_string())
}

/// Parse a national-format number given a country hint (strips one trunk
/// `0` if present). Used for report forms that ask for the user's country.
pub fn parse_phone_national(raw: &str, country: Country) -> SenderId {
    let stripped = strip_phone_punct(raw.trim());
    if stripped.starts_with('+') || stripped.starts_with("00") {
        return parse_phone(raw);
    }
    if stripped.is_empty() || !stripped.bytes().all(|b| b.is_ascii_digit()) {
        return SenderId::MalformedPhone(raw.trim().to_string());
    }
    let national = stripped.strip_prefix('0').unwrap_or(&stripped);
    let candidate = PhoneNumber::new(country.calling_code(), national);
    let Some(plan) = PlanRegistry::global().plan_for(country) else {
        return SenderId::MalformedPhone(raw.trim().to_string());
    };
    if plan.classify(national).number_type != crate::numbertype::NumberType::BadFormat {
        SenderId::Phone(candidate)
    } else {
        SenderId::MalformedPhone(raw.trim().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smishing_types::SenderKind;

    #[test]
    fn international_plus() {
        let s = parse_phone("+44 7911 123456");
        let p = s.phone().expect("parsed");
        assert_eq!(p.country_code, 44);
        assert_eq!(p.national, "7911123456");
    }

    #[test]
    fn international_double_zero() {
        let s = parse_phone("0091 98765 43210");
        let p = s.phone().expect("parsed");
        assert_eq!(p.country_code, 91);
        assert_eq!(p.national, "9876543210");
    }

    #[test]
    fn three_digit_cc() {
        let s = parse_phone("+420 601 123 456");
        let p = s.phone().expect("parsed");
        assert_eq!(p.country_code, 420);
        assert_eq!(p.national, "601123456");
    }

    #[test]
    fn bare_digits_with_cc() {
        let s = parse_phone("919876543210");
        let p = s.phone().expect("parsed");
        assert_eq!(p.country_code, 91);
    }

    #[test]
    fn too_many_digits_is_malformed() {
        let s = parse_phone("+4479111234567890123");
        assert!(matches!(s, SenderId::MalformedPhone(_)));
        assert_eq!(s.kind(), SenderKind::Phone);
    }

    #[test]
    fn explicit_cc_with_bad_national_stays_parsed() {
        // +44 with an 11-digit national number: invalid, but the cc split is
        // authoritative so HLR can still attribute the origin country.
        let s = parse_phone("+44 79111 234 5678");
        let p = s.phone().expect("kept as parsed phone");
        assert_eq!(p.country_code, 44);
    }

    #[test]
    fn junk_is_malformed() {
        assert!(matches!(parse_phone("55555"), SenderId::MalformedPhone(_)));
        assert!(matches!(parse_phone("+"), SenderId::MalformedPhone(_)));
    }

    #[test]
    fn national_with_trunk_zero() {
        let s = parse_phone_national("07911 123456", Country::UnitedKingdom);
        let p = s.phone().expect("parsed");
        assert_eq!(p.country_code, 44);
        assert_eq!(p.national, "7911123456");
    }

    #[test]
    fn national_invalid_for_country() {
        let s = parse_phone_national("0123", Country::UnitedKingdom);
        assert!(matches!(s, SenderId::MalformedPhone(_)));
    }

    #[test]
    fn national_falls_back_to_international() {
        let s = parse_phone_national("+34 612 345 678", Country::UnitedKingdom);
        assert_eq!(s.phone().unwrap().country_code, 34);
    }
}
