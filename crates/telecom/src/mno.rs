//! Mobile network operator registry.
//!
//! Built by aggregating the numbering plans: an operator "exists" in every
//! country where it holds a mobile allocation. Table 4 reports, per
//! operator, how many abused numbers originated on its network and from
//! which countries.

use crate::plan::PlanRegistry;
use smishing_types::Country;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// A mobile network operator and its footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mno {
    /// Canonical operator name (as in Table 4: "Vodafone", "AirTel"...).
    pub name: &'static str,
    /// Countries where the operator holds mobile allocations, sorted.
    pub countries: Vec<Country>,
}

impl Mno {
    /// Whether the operator is a multi-country group.
    pub fn is_multinational(&self) -> bool {
        self.countries.len() > 1
    }
}

/// All modelled operators, derived from the numbering plans.
#[derive(Debug)]
pub struct MnoRegistry {
    by_name: BTreeMap<&'static str, Mno>,
}

impl MnoRegistry {
    /// The process-wide registry.
    pub fn global() -> &'static MnoRegistry {
        static REG: OnceLock<MnoRegistry> = OnceLock::new();
        REG.get_or_init(|| {
            let mut by_name: BTreeMap<&'static str, Mno> = BTreeMap::new();
            let plans = PlanRegistry::global();
            for country in plans.countries() {
                let plan = plans.plan_for(country).expect("listed country has plan");
                for op in plan.operators() {
                    let entry = by_name.entry(op).or_insert_with(|| Mno {
                        name: op,
                        countries: Vec::new(),
                    });
                    if !entry.countries.contains(&country) {
                        entry.countries.push(country);
                    }
                }
            }
            for mno in by_name.values_mut() {
                mno.countries.sort();
            }
            MnoRegistry { by_name }
        })
    }

    /// Look up an operator by name.
    pub fn get(&self, name: &str) -> Option<&Mno> {
        self.by_name.get(name)
    }

    /// All operators, sorted by name.
    pub fn all(&self) -> impl Iterator<Item = &Mno> {
        self.by_name.values()
    }

    /// Operators with allocations in a given country.
    pub fn in_country(&self, country: Country) -> Vec<&Mno> {
        self.by_name
            .values()
            .filter(|m| m.countries.contains(&country))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vodafone_is_the_widest_group() {
        let reg = MnoRegistry::global();
        let voda = reg.get("Vodafone").expect("Vodafone modelled");
        assert!(voda.is_multinational());
        // Table 4 lists Vodafone abuse from 18 countries; the registry must
        // model a comparable footprint.
        assert!(voda.countries.len() >= 15, "{}", voda.countries.len());
        for m in reg.all() {
            assert!(
                m.countries.len() <= voda.countries.len(),
                "{} has wider footprint than Vodafone",
                m.name
            );
        }
    }

    #[test]
    fn table4_operators_present() {
        let reg = MnoRegistry::global();
        for name in [
            "Vodafone",
            "AirTel",
            "BSNL Mobile",
            "Reliance Jio",
            "O2",
            "T-Mobile",
            "Lycamobile",
            "SFR",
            "KPN Mobile",
            "EE Limited",
        ] {
            assert!(reg.get(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn o2_footprint_matches_table4() {
        let reg = MnoRegistry::global();
        let o2 = reg.get("O2").unwrap();
        for c in [Country::UnitedKingdom, Country::Germany, Country::Ireland] {
            assert!(o2.countries.contains(&c), "O2 missing {c:?}");
        }
    }

    #[test]
    fn country_query() {
        let reg = MnoRegistry::global();
        let in_uk = reg.in_country(Country::UnitedKingdom);
        let names: Vec<_> = in_uk.iter().map(|m| m.name).collect();
        assert!(names.contains(&"Vodafone"));
        assert!(names.contains(&"EE Limited"));
    }

    #[test]
    fn single_country_operator() {
        let reg = MnoRegistry::global();
        let bsnl = reg.get("BSNL Mobile").unwrap();
        assert_eq!(bsnl.countries, vec![Country::India]);
        assert!(!bsnl.is_multinational());
    }
}
