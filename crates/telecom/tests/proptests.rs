//! Property-based tests over the telephony substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smishing_telecom::{
    classify_sender, parse_phone, HlrLookup, NumberFactory, NumberType, PlanRegistry,
    RawSenderKind, SimulatedHlr,
};
use smishing_types::{Country, PhoneNumber, SenderId};

proptest! {
    #[test]
    fn classifier_and_parser_never_panic(s in "\\PC{0,40}") {
        let kind = classify_sender(&s);
        if kind == RawSenderKind::PhoneLike {
            let _ = parse_phone(&s);
        }
    }

    #[test]
    fn plan_classification_is_total(cc in 1u16..1000, national in "[0-9]{0,20}") {
        let p = PhoneNumber::new(cc, national);
        let (_, class) = PlanRegistry::global().classify(&p);
        // Any input classifies to *something*; overlong input is BadFormat.
        if p.national.len() > 13 {
            prop_assert_eq!(class.number_type, NumberType::BadFormat);
        }
    }

    #[test]
    fn e164_strings_always_reparse(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = NumberFactory::new();
        for country in [Country::India, Country::UnitedKingdom, Country::France, Country::Indonesia] {
            if let Some(p) = f.mobile_any(country, &mut rng) {
                let reparsed = parse_phone(&p.e164());
                prop_assert_eq!(reparsed.phone(), Some(&p));
                prop_assert_eq!(classify_sender(&p.e164()), RawSenderKind::PhoneLike);
            }
        }
    }

    #[test]
    fn hlr_is_a_pure_function_of_number_and_seed(seed in 0u64..200, n in 0u64..10_000u64) {
        let hlr = SimulatedHlr::new(seed);
        let s = SenderId::Phone(PhoneNumber::new(44, format!("74{n:08}")));
        let a = hlr.lookup(&s).unwrap();
        let b = hlr.lookup(&s).unwrap();
        prop_assert_eq!(&a, &b);
        // Mobile allocations always carry an original operator and country.
        if a.number_type == NumberType::Mobile {
            prop_assert!(a.original_operator.is_some());
            prop_assert_eq!(a.origin_country, Some(Country::UnitedKingdom));
        }
    }

    #[test]
    fn generated_specials_classify_as_requested(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = NumberFactory::new();
        for nt in [NumberType::Landline, NumberType::TollFree, NumberType::Voip] {
            if let Some(p) = f.special(Country::UnitedKingdom, nt, &mut rng) {
                let plan = PlanRegistry::global().plan_for(Country::UnitedKingdom).unwrap();
                prop_assert_eq!(plan.classify(&p.national).number_type, nt);
            }
        }
    }

    #[test]
    fn bad_format_generator_is_honest(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = NumberFactory::new().bad_format(&mut rng);
        match parse_phone(&raw) {
            SenderId::MalformedPhone(_) => {}
            SenderId::Phone(p) => {
                let (_, c) = PlanRegistry::global().classify(&p);
                prop_assert_eq!(c.number_type, NumberType::BadFormat);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}
