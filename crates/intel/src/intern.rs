//! String interning for the snapshot indexes.
//!
//! The same apex domain or sender ID recurs across thousands of entries;
//! interning stores each key string once and lets the indexes hash and
//! compare 4-byte symbols instead of strings. The interner is filled at
//! build time and read-only afterwards — exactly the lifecycle of the
//! immutable [`IntelSnapshot`](crate::IntelSnapshot).

use std::collections::HashMap;

/// A handle to an interned string (index into the interner's table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// An append-only string table with O(1) string → symbol lookup.
///
/// Equality compares the full table (map and insertion order) — two
/// interners are equal exactly when the same strings were interned in the
/// same first-appearance order, the property the incremental snapshot
/// build relies on when it re-interns reused keys canonically.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Interner {
    map: HashMap<String, Sym>,
    strings: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `s`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// Look up without inserting — the read-path operation.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// The string behind a symbol.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("bit.ly");
        let b = i.intern("cutt.ly");
        assert_eq!(i.intern("bit.ly"), a);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "bit.ly");
        assert_eq!(i.resolve(b), "cutt.ly");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_never_inserts() {
        let mut i = Interner::new();
        assert_eq!(i.get("x.com"), None);
        let s = i.intern("x.com");
        assert_eq!(i.get("x.com"), Some(s));
        assert_eq!(i.len(), 1);
    }
}
