//! A bounded LRU set for negative lookups.
//!
//! Serving traffic is dominated by misses (most incoming SMS are not in
//! the store), and every miss costs up to five index probes plus key
//! normalization. The triage layer remembers recent misses here and
//! short-circuits repeats; the set is cleared whenever a republish makes
//! old negatives stale.
//!
//! Classic intrusive-list LRU over a slab — O(1) touch, insert, and
//! evict, no allocation after the slab fills.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    key: String,
    prev: usize,
    next: usize,
}

/// A bounded set of strings with least-recently-used eviction.
#[derive(Debug)]
pub struct LruSet {
    map: HashMap<String, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl LruSet {
    /// An empty set holding at most `capacity` keys (capacity 0 disables
    /// caching entirely — every probe misses).
    pub fn new(capacity: usize) -> LruSet {
        LruSet {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop every key (republish invalidation).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn link_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Whether `key` is cached; a hit refreshes its recency.
    pub fn contains(&mut self, key: &str) -> bool {
        let Some(&i) = self.map.get(key) else {
            return false;
        };
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        true
    }

    /// Insert `key`, evicting the least-recently-used key when full.
    /// Re-inserting an existing key just refreshes its recency.
    pub fn insert(&mut self, key: &str) {
        if self.capacity == 0 || self.contains(key) {
            return;
        }
        let i = if self.map.len() >= self.capacity {
            // Reuse the evicted node's slot.
            let victim = self.tail;
            self.unlink(victim);
            let old = std::mem::replace(&mut self.nodes[victim].key, key.to_string());
            self.map.remove(&old);
            victim
        } else if let Some(slot) = self.free.pop() {
            self.nodes[slot].key = key.to_string();
            slot
        } else {
            self.nodes.push(Node {
                key: key.to_string(),
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key.to_string(), i);
        self.link_front(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruSet::new(3);
        c.insert("a");
        c.insert("b");
        c.insert("c");
        assert!(c.contains("a")); // refresh a: order now a, c, b
        c.insert("d"); // evicts b
        assert!(!c.contains("b"));
        assert!(c.contains("a") && c.contains("c") && c.contains("d"));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = LruSet::new(2);
        c.insert("a");
        c.insert("b");
        c.insert("a"); // refresh, not duplicate
        c.insert("c"); // evicts b
        assert!(c.contains("a") && c.contains("c") && !c.contains("b"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clear_empties_and_stays_usable() {
        let mut c = LruSet::new(2);
        c.insert("a");
        c.clear();
        assert!(c.is_empty() && !c.contains("a"));
        c.insert("x");
        c.insert("y");
        c.insert("z");
        assert_eq!(c.len(), 2);
        assert!(!c.contains("x"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruSet::new(0);
        c.insert("a");
        assert!(!c.contains("a"));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn churn_keeps_len_bounded() {
        let mut c = LruSet::new(16);
        for i in 0..1000 {
            c.insert(&format!("k{i}"));
            assert!(c.len() <= 16);
        }
        // The 16 most recent survive.
        for i in 984..1000 {
            assert!(c.contains(&format!("k{i}")), "k{i}");
        }
    }
}
