//! The stdin/stdout line protocol behind `smish serve`.
//!
//! One request per line, one response per line — trivially scriptable
//! (the CI smoke job pipes a query batch through and reads the counters
//! out of the run report). Commands:
//!
//! ```text
//! url <raw>            look up a URL (defanged/homoglyph spellings ok)
//! sender <raw>         look up a sender ID / phone number
//! msg <text>           triage a raw SMS body
//! msg <sender>|<text>  triage with a sender
//! near <text>          similarity-tier lookup: nearest campaign template
//! sample <n>           emit n ready-to-feed query lines from the store
//! sample near <n>      emit n ready-to-feed `near` lines (entry texts)
//! stats                one-line counter summary (incl. template count)
//! quit                 stop serving
//! ```
//!
//! Responses: `hit via=<pivot> key=<canonical> template=<id> ...`,
//! `miss <kind> key=<canonical>`, `near score=<p> template=<id>
//! hamming=<d> jaccard=<j> ...`, `triage score=<p> smishing=<bool>
//! via=<index|near|model|none>`, or `err <reason>`. Latencies go into
//! the `intel.serve.lookup_ns` / `intel.serve.triage_ns` /
//! `intel.serve.near_ns` histograms (plus the candidate-set sizes into
//! `intel.serve.near_candidates`) and the `intel.serve.*` counters of
//! the run report.

use crate::triage::{Triage, TriageVerdict};
use smishing_obs::Obs;
use std::io::{BufRead, Write};
use std::time::Instant;

/// Counters of one serving session.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Total query lines processed (sample/stats lines excluded).
    pub queries: u64,
    /// Known-infrastructure hits.
    pub hits: u64,
    /// Similarity-tier hits (`near` queries and `msg` lines resolved by
    /// the near rung).
    pub near_hits: u64,
    /// `near` queries that matched no template.
    pub near_misses: u64,
    /// Lookup misses (url/sender queries that matched nothing).
    pub misses: u64,
    /// Messages that fell through to the model (`msg` without an index
    /// hit).
    pub triaged: u64,
    /// Malformed lines.
    pub errors: u64,
}

/// Render a verdict as one protocol response line (`hit ...` /
/// `triage ...`). Shared by `serve` and the one-shot `query` command.
pub fn verdict_line(v: &TriageVerdict) -> String {
    match v {
        TriageVerdict::Hit(a) => format!(
            "hit via={} key={} template={} cluster={} size={} scam={} reports={} first={} last={}",
            a.matched.label(),
            a.key,
            a.template,
            a.cluster,
            a.cluster_size,
            a.scam_type.label(),
            a.n_reports,
            a.first_seen.0,
            a.last_seen.0,
        ),
        TriageVerdict::Near(a) => format!(
            "near score={:.4} template={} cluster={} size={} scam={} hamming={} jaccard={:.4} reports={}",
            a.score(),
            a.template,
            a.cluster,
            a.cluster_size,
            a.scam_type.label(),
            a.hamming,
            a.jaccard,
            a.n_reports,
        ),
        TriageVerdict::ModelOnly { score } => {
            format!(
                "triage score={score:.4} smishing={} via=model",
                *score >= 0.5
            )
        }
        TriageVerdict::Unknown => "triage score=0.0000 smishing=false via=none".to_string(),
    }
}

/// Serve queries line by line until EOF or `quit`.
pub fn serve_lines<R: BufRead, W: Write>(
    triage: &mut Triage,
    input: R,
    mut out: W,
    obs: &Obs,
) -> std::io::Result<ServeStats> {
    let mut stats = ServeStats::default();
    let lookup_ns = obs.histogram("intel.serve.lookup_ns", &[]);
    let triage_ns = obs.histogram("intel.serve.triage_ns", &[]);
    let near_ns = obs.histogram("intel.serve.near_ns", &[]);
    let near_candidates = obs.histogram("intel.serve.near_candidates", &[]);
    let threshold = triage.threshold();

    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        let rest = rest.trim();
        match cmd {
            "quit" | "exit" => break,
            "url" | "sender" | "near" if rest.is_empty() => {
                stats.errors += 1;
                writeln!(out, "err {cmd} needs a value")?;
            }
            "url" => {
                stats.queries += 1;
                let t = Instant::now();
                let v = triage.query_url(rest);
                lookup_ns.record(t.elapsed().as_nanos() as u64);
                match &v {
                    TriageVerdict::Hit(_) => {
                        stats.hits += 1;
                        writeln!(out, "{}", verdict_line(&v))?;
                    }
                    _ => {
                        stats.misses += 1;
                        writeln!(out, "miss url key={rest}")?;
                    }
                }
            }
            "sender" => {
                stats.queries += 1;
                let t = Instant::now();
                let v = triage.query_sender(rest);
                lookup_ns.record(t.elapsed().as_nanos() as u64);
                match &v {
                    TriageVerdict::Hit(_) => {
                        stats.hits += 1;
                        writeln!(out, "{}", verdict_line(&v))?;
                    }
                    _ => {
                        stats.misses += 1;
                        writeln!(out, "miss sender key={rest}")?;
                    }
                }
            }
            "near" => {
                stats.queries += 1;
                let t = Instant::now();
                let (v, cands) = triage.query_near_with(rest);
                near_ns.record(t.elapsed().as_nanos() as u64);
                near_candidates.record(cands as u64);
                match &v {
                    TriageVerdict::Near(_) => {
                        stats.near_hits += 1;
                        writeln!(out, "{}", verdict_line(&v))?;
                    }
                    _ => {
                        stats.near_misses += 1;
                        writeln!(out, "miss near key={rest}")?;
                    }
                }
            }
            "msg" => {
                stats.queries += 1;
                let (sender, text) = match rest.split_once('|') {
                    Some((s, t)) => (Some(s.trim()), t.trim()),
                    None => (None, rest),
                };
                let t = Instant::now();
                let v = triage.triage(sender, text);
                triage_ns.record(t.elapsed().as_nanos() as u64);
                match &v {
                    TriageVerdict::Hit(_) => stats.hits += 1,
                    TriageVerdict::Near(_) => stats.near_hits += 1,
                    _ => stats.triaged += 1,
                }
                let _ = threshold; // thresholding is the caller's policy
                writeln!(out, "{}", verdict_line(&v))?;
            }
            "sample" => {
                // `sample near <n>` emits entry texts as `near` query
                // lines; plain `sample <n>` emits url/sender lines.
                let (near_sample, n_str) = match rest.split_once(' ') {
                    Some(("near", n)) => (true, n.trim()),
                    _ => (rest == "near", rest),
                };
                let n: usize = n_str.parse().unwrap_or(10);
                match triage.snapshot() {
                    Some(snap) => {
                        let mut emitted = 0;
                        for (id, e) in snap.entries().iter().enumerate() {
                            if emitted >= n {
                                break;
                            }
                            if near_sample {
                                // Texts that shingle to nothing (URL-only
                                // bodies) can never self-match; skip them.
                                if snap.sim().shingles_of(id as u32).is_empty() {
                                    continue;
                                }
                                writeln!(out, "near {}", e.text)?;
                            } else if let Some(u) = e.url {
                                writeln!(out, "url {}", snap.resolve(u))?;
                            } else if let Some(s) = e.sender {
                                writeln!(out, "sender {}", snap.resolve(s))?;
                            } else {
                                continue;
                            }
                            emitted += 1;
                        }
                    }
                    None => writeln!(out, "err no snapshot published yet")?,
                }
            }
            "stats" => {
                let templates = triage.snapshot().map_or(0, |s| s.template_count());
                writeln!(
                    out,
                    "stats queries={} hits={} near_hits={} near_misses={} misses={} triaged={} errors={} templates={}",
                    stats.queries,
                    stats.hits,
                    stats.near_hits,
                    stats.near_misses,
                    stats.misses,
                    stats.triaged,
                    stats.errors,
                    templates,
                )?;
            }
            other => {
                stats.errors += 1;
                writeln!(out, "err unknown command {other}")?;
            }
        }
    }

    obs.counter("intel.serve.queries", &[]).add(stats.queries);
    obs.counter("intel.serve.hits", &[]).add(stats.hits);
    obs.counter("intel.serve.near_hits", &[])
        .add(stats.near_hits);
    obs.counter("intel.serve.near_misses", &[])
        .add(stats.near_misses);
    obs.counter("intel.serve.misses", &[]).add(stats.misses);
    obs.counter("intel.serve.triaged", &[]).add(stats.triaged);
    obs.counter("intel.serve.errors", &[]).add(stats.errors);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::IntelHub;
    use crate::snapshot::IntelSnapshot;
    use crate::triage::TriageConfig;
    use smishing_core::pipeline::Pipeline;
    use smishing_obs::Obs;
    use smishing_worldsim::{World, WorldConfig};

    fn triage() -> Triage {
        let w = World::generate(WorldConfig::test_scale(53));
        let out = Pipeline::default().run(&w, &Obs::noop());
        let hub = IntelHub::new();
        hub.publish(IntelSnapshot::build(&out));
        Triage::with_config(
            hub.reader(),
            TriageConfig {
                train_model: false,
                ..TriageConfig::default()
            },
        )
    }

    fn run(t: &mut Triage, script: &str) -> (ServeStats, String) {
        let mut out = Vec::new();
        let stats = serve_lines(t, script.as_bytes(), &mut out, &Obs::noop()).unwrap();
        (stats, String::from_utf8(out).unwrap())
    }

    #[test]
    fn sample_round_trips_to_hits() {
        let mut t = triage();
        let (_, script) = run(&mut t, "sample 25");
        assert_eq!(script.lines().count(), 25);
        let (stats, replies) = run(&mut t, &script);
        assert_eq!(stats.queries, 25);
        assert_eq!(stats.hits, 25, "sampled keys must all hit:\n{replies}");
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn misses_errors_and_quit() {
        let mut t = triage();
        let script =
            "url https://nope.example/x\nbogus line\nsender\nquit\nurl after-quit.example/y\n";
        let (stats, out) = run(&mut t, script);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.errors, 2);
        assert!(out.contains("miss url"));
        assert!(out.contains("err unknown command"));
        assert!(!out.contains("after-quit"), "quit must stop the loop");
    }

    #[test]
    fn msg_lines_triage_and_counters_export() {
        let mut t = triage();
        let obs = Obs::enabled();
        let script = "msg +15550001111|win a prize now\nstats\n";
        let mut out = Vec::new();
        let stats = serve_lines(&mut t, script.as_bytes(), &mut out, &obs).unwrap();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.triaged + stats.hits + stats.near_hits, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("stats queries=1"), "{text}");
        assert!(text.contains("templates="), "{text}");
        let report = obs.json_report();
        assert!(report.contains("intel.serve.queries"), "{report}");
    }

    #[test]
    fn near_sample_round_trips_to_near_hits() {
        let mut t = triage();
        let (_, script) = run(&mut t, "sample near 20");
        assert_eq!(script.lines().count(), 20);
        assert!(script.lines().all(|l| l.starts_with("near ")), "{script}");
        let (stats, replies) = run(&mut t, &script);
        assert_eq!(stats.queries, 20);
        assert_eq!(
            stats.near_hits, 20,
            "identical texts must self-match:\n{replies}"
        );
        assert_eq!(stats.near_misses, 0);
        assert!(replies.lines().all(|l| l.starts_with("near score=")));
        assert!(replies.contains("template="), "{replies}");
    }

    #[test]
    fn near_miss_and_empty_near_error() {
        let mut t = triage();
        let obs = Obs::enabled();
        let script = "near aimless doodle about watering the office ferns on thursday\nnear\n";
        let mut out = Vec::new();
        let stats = serve_lines(&mut t, script.as_bytes(), &mut out, &obs).unwrap();
        assert_eq!(stats.near_misses, 1);
        assert_eq!(stats.near_hits, 0);
        assert_eq!(stats.errors, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("miss near"), "{text}");
        let report = obs.json_report();
        assert!(report.contains("intel.serve.near_misses"), "{report}");
        assert!(report.contains("intel.serve.near_candidates"), "{report}");
    }
}
