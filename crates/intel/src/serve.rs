//! The stdin/stdout line protocol behind `smish serve`.
//!
//! One request per line, one response per line — trivially scriptable
//! (the CI smoke job pipes a query batch through and reads the counters
//! out of the run report). Commands:
//!
//! ```text
//! url <raw>            look up a URL (defanged/homoglyph spellings ok)
//! sender <raw>         look up a sender ID / phone number
//! msg <text>           triage a raw SMS body
//! msg <sender>|<text>  triage with a sender
//! near <text>          similarity-tier lookup: nearest campaign template
//! explain <msg|url …>  run one query force-traced; reply + full span tree
//! traces [n]           render the n slowest retained traces (default 5)
//! timeseries [n]       per-second qps/latency/rate lines, newest first
//! health               epoch age, index sizes, templates, cache occupancy
//! sample <n>           emit n ready-to-feed query lines from the store
//! sample near <n>      emit n ready-to-feed `near` lines (entry texts)
//! stats                one-line counter summary (incl. template count and
//!                      near-tier latency/candidate quantiles)
//! quit                 stop serving
//! ```
//!
//! Responses: `hit via=<pivot> key=<canonical> template=<id> ...`,
//! `miss <kind> key=<canonical>`, `near score=<p> template=<id>
//! hamming=<d> jaccard=<j> ...`, `triage score=<p> smishing=<bool>
//! via=<index|near|model|none>`, or `err <reason>`. Latencies go into
//! the `intel.serve.lookup_ns` / `intel.serve.triage_ns` /
//! `intel.serve.near_ns` histograms (plus the candidate-set sizes into
//! `intel.serve.near_candidates`) and the `intel.serve.*` counters of
//! the run report.
//!
//! ## Introspection
//!
//! Every session owns a [`Tracer`] and a [`TimeRing`]. Queries are
//! tail-sampled (1-in-K, [`TracerConfig::sample_every`]) into span-tree
//! traces — the rest of the traffic runs the exact untraced ladder — and
//! every query lands in the per-second time-series ring regardless of
//! sampling. `explain` forces a trace for one query without waiting for
//! the sampler. At EOF the session exports `trace.*` and `serve.ts.*`
//! gauges (including per-histogram exemplar trace ids) into the run
//! report next to the latency histograms they explain.

use crate::triage::{Triage, TriageVerdict};
use smishing_obs::{Obs, TimeRing, Tracer, TracerConfig, TsOutcome};
use std::io::{BufRead, Write};
use std::time::Instant;

/// Counters of one serving session.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Total query lines processed (sample/stats lines excluded).
    pub queries: u64,
    /// Known-infrastructure hits.
    pub hits: u64,
    /// Similarity-tier hits (`near` queries and `msg` lines resolved by
    /// the near rung).
    pub near_hits: u64,
    /// `near` queries that matched no template.
    pub near_misses: u64,
    /// Lookup misses (url/sender queries that matched nothing).
    pub misses: u64,
    /// Messages that fell through to the model (`msg` without an index
    /// hit).
    pub triaged: u64,
    /// Malformed lines.
    pub errors: u64,
}

/// Session tuning for [`serve_session`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Tracer tuning (sampling rate, ring and slowest-N capacities).
    pub trace: TracerConfig,
    /// Time-series window in seconds.
    pub ts_window: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            trace: TracerConfig::default(),
            ts_window: 120,
        }
    }
}

/// Everything a finished serving session knows about itself.
#[derive(Debug)]
pub struct ServeSession {
    /// Aggregate counters.
    pub stats: ServeStats,
    /// Retained traces (ring + slowest-N + exemplars).
    pub tracer: Tracer,
    /// Per-second time series.
    pub ring: TimeRing,
}

/// Stable verdict label for trace retention and response accounting.
pub fn verdict_label(v: &TriageVerdict) -> &'static str {
    match v {
        TriageVerdict::Hit(_) => "hit",
        TriageVerdict::Near(_) => "near",
        TriageVerdict::ModelOnly { .. } => "model",
        TriageVerdict::Unknown => "unknown",
    }
}

/// Render a verdict as one protocol response line (`hit ...` /
/// `triage ...`). Shared by `serve` and the one-shot `query` command.
pub fn verdict_line(v: &TriageVerdict) -> String {
    match v {
        TriageVerdict::Hit(a) => format!(
            "hit via={} key={} template={} cluster={} size={} scam={} reports={} first={} last={}",
            a.matched.label(),
            a.key,
            a.template,
            a.cluster,
            a.cluster_size,
            a.scam_type.label(),
            a.n_reports,
            a.first_seen.0,
            a.last_seen.0,
        ),
        TriageVerdict::Near(a) => format!(
            "near score={:.4} template={} cluster={} size={} scam={} hamming={} jaccard={:.4} reports={}",
            a.score(),
            a.template,
            a.cluster,
            a.cluster_size,
            a.scam_type.label(),
            a.hamming,
            a.jaccard,
            a.n_reports,
        ),
        TriageVerdict::ModelOnly { score } => {
            format!(
                "triage score={score:.4} smishing={} via=model",
                *score >= 0.5
            )
        }
        TriageVerdict::Unknown => "triage score=0.0000 smishing=false via=none".to_string(),
    }
}

/// Serve queries line by line until EOF or `quit`, with default
/// introspection tuning. Returns the aggregate counters; the full
/// session (traces, time series) is available via [`serve_session`].
pub fn serve_lines<R: BufRead, W: Write>(
    triage: &mut Triage,
    input: R,
    out: W,
    obs: &Obs,
) -> std::io::Result<ServeStats> {
    serve_session(triage, input, out, obs, ServeOptions::default()).map(|s| s.stats)
}

/// Serve queries line by line until EOF or `quit`, returning the whole
/// session — counters, retained traces, and the per-second time series.
pub fn serve_session<R: BufRead, W: Write>(
    triage: &mut Triage,
    input: R,
    mut out: W,
    obs: &Obs,
    opts: ServeOptions,
) -> std::io::Result<ServeSession> {
    let mut stats = ServeStats::default();
    let mut tracer = Tracer::new(opts.trace);
    let mut ring = TimeRing::new(opts.ts_window);
    let started = Instant::now();
    let lookup_ns = obs.histogram("intel.serve.lookup_ns", &[]);
    let triage_ns = obs.histogram("intel.serve.triage_ns", &[]);
    let near_ns = obs.histogram("intel.serve.near_ns", &[]);
    let near_candidates = obs.histogram("intel.serve.near_candidates", &[]);
    let threshold = triage.threshold();

    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        let rest = rest.trim();
        let second = started.elapsed().as_secs();
        match cmd {
            "quit" | "exit" => break,
            "url" | "sender" | "near" | "explain" if rest.is_empty() => {
                stats.errors += 1;
                ring.record(second, TsOutcome::Error, 0);
                writeln!(out, "err {cmd} needs a value")?;
            }
            "url" => {
                stats.queries += 1;
                let epoch_before = triage.epoch_seen();
                let mut tb = tracer.begin(line);
                let t = Instant::now();
                let v = triage.query_url_traced(rest, tb.as_mut());
                let ns = t.elapsed().as_nanos() as u64;
                lookup_ns.record(ns);
                if let Some(tb) = tb {
                    tracer.exemplar("intel.serve.lookup_ns", tb.id(), ns);
                    tracer.finish(tb.finish(verdict_label(&v)));
                }
                let outcome = match &v {
                    TriageVerdict::Hit(_) => {
                        stats.hits += 1;
                        writeln!(out, "{}", verdict_line(&v))?;
                        TsOutcome::Hit
                    }
                    _ => {
                        stats.misses += 1;
                        writeln!(out, "miss url key={rest}")?;
                        TsOutcome::Miss
                    }
                };
                ring.record(second, outcome, ns);
                if triage.epoch_seen() != epoch_before {
                    // This query absorbed a republish (cache flush +
                    // model retrain); its wall time is the cost.
                    ring.record_republish(second, ns);
                }
            }
            "sender" => {
                stats.queries += 1;
                let epoch_before = triage.epoch_seen();
                let mut tb = tracer.begin(line);
                let t = Instant::now();
                let v = triage.query_sender_traced(rest, tb.as_mut());
                let ns = t.elapsed().as_nanos() as u64;
                lookup_ns.record(ns);
                if let Some(tb) = tb {
                    tracer.exemplar("intel.serve.lookup_ns", tb.id(), ns);
                    tracer.finish(tb.finish(verdict_label(&v)));
                }
                let outcome = match &v {
                    TriageVerdict::Hit(_) => {
                        stats.hits += 1;
                        writeln!(out, "{}", verdict_line(&v))?;
                        TsOutcome::Hit
                    }
                    _ => {
                        stats.misses += 1;
                        writeln!(out, "miss sender key={rest}")?;
                        TsOutcome::Miss
                    }
                };
                ring.record(second, outcome, ns);
                if triage.epoch_seen() != epoch_before {
                    ring.record_republish(second, ns);
                }
            }
            "near" => {
                stats.queries += 1;
                let epoch_before = triage.epoch_seen();
                let mut tb = tracer.begin(line);
                let t = Instant::now();
                let (v, cands) = triage.query_near_traced(rest, tb.as_mut());
                let ns = t.elapsed().as_nanos() as u64;
                near_ns.record(ns);
                near_candidates.record(cands as u64);
                if let Some(tb) = tb {
                    tracer.exemplar("intel.serve.near_ns", tb.id(), ns);
                    tracer.finish(tb.finish(verdict_label(&v)));
                }
                let outcome = match &v {
                    TriageVerdict::Near(_) => {
                        stats.near_hits += 1;
                        writeln!(out, "{}", verdict_line(&v))?;
                        TsOutcome::Near
                    }
                    _ => {
                        stats.near_misses += 1;
                        writeln!(out, "miss near key={rest}")?;
                        TsOutcome::Miss
                    }
                };
                ring.record(second, outcome, ns);
                if triage.epoch_seen() != epoch_before {
                    ring.record_republish(second, ns);
                }
            }
            "msg" => {
                stats.queries += 1;
                let (sender, text) = match rest.split_once('|') {
                    Some((s, t)) => (Some(s.trim()), t.trim()),
                    None => (None, rest),
                };
                let epoch_before = triage.epoch_seen();
                let mut tb = tracer.begin(line);
                let t = Instant::now();
                let v = triage.triage_traced(sender, text, tb.as_mut());
                let ns = t.elapsed().as_nanos() as u64;
                triage_ns.record(ns);
                if let Some(tb) = tb {
                    tracer.exemplar("intel.serve.triage_ns", tb.id(), ns);
                    tracer.finish(tb.finish(verdict_label(&v)));
                }
                let outcome = match &v {
                    TriageVerdict::Hit(_) => {
                        stats.hits += 1;
                        TsOutcome::Hit
                    }
                    TriageVerdict::Near(_) => {
                        stats.near_hits += 1;
                        TsOutcome::Near
                    }
                    _ => {
                        stats.triaged += 1;
                        TsOutcome::Triaged
                    }
                };
                ring.record(second, outcome, ns);
                if triage.epoch_seen() != epoch_before {
                    ring.record_republish(second, ns);
                }
                let _ = threshold; // thresholding is the caller's policy
                writeln!(out, "{}", verdict_line(&v))?;
            }
            "explain" => {
                // Force-traced one-shot: reply line, then the span tree.
                // Introspection, not traffic — histograms and the time
                // series stay clean of its always-on tracing overhead.
                let (kind, val) = rest.split_once(' ').unwrap_or((rest, ""));
                let mut tb = tracer.begin_forced(rest);
                let v = match (kind, val) {
                    ("url", v) if !v.is_empty() => triage.query_url_traced(v, Some(&mut tb)),
                    ("sender", v) if !v.is_empty() => triage.query_sender_traced(v, Some(&mut tb)),
                    ("near", v) if !v.is_empty() => triage.query_near_traced(v, Some(&mut tb)).0,
                    _ => {
                        // Whole rest is a message (optionally `sender|text`),
                        // with an explicit `msg ` prefix allowed.
                        let body = rest.strip_prefix("msg ").unwrap_or(rest).trim();
                        let (sender, text) = match body.split_once('|') {
                            Some((s, t)) => (Some(s.trim()), t.trim()),
                            None => (None, body),
                        };
                        triage.triage_traced(sender, text, Some(&mut tb))
                    }
                };
                let trace = tb.finish(verdict_label(&v));
                writeln!(out, "{}", verdict_line(&v))?;
                write!(out, "{}", trace.render())?;
                tracer.finish(trace);
            }
            "traces" => {
                let n: usize = rest.parse().unwrap_or(5);
                let slowest: Vec<String> = tracer.slowest(n).map(|t| t.render()).collect();
                writeln!(
                    out,
                    "traces retained={} sampled={} requests={}",
                    slowest.len(),
                    tracer.sampled(),
                    tracer.requests()
                )?;
                for t in slowest {
                    write!(out, "{t}")?;
                }
            }
            "timeseries" => {
                let n: usize = rest.parse().unwrap_or(ring.window());
                let rendered = ring.render(n);
                writeln!(
                    out,
                    "timeseries window_s={} lines={}",
                    ring.window(),
                    rendered.lines().count()
                )?;
                write!(out, "{rendered}")?;
            }
            "health" => match triage.snapshot() {
                Some(snap) => {
                    let sizes = snap.index_sizes();
                    writeln!(
                        out,
                        "health epoch={} epoch_age_s={} entries={} urls={} domains={} \
                         senders={} phones={} brands={} clusters={} templates={} \
                         cache_len={} cache_cap={}",
                        triage.epoch_seen(),
                        triage.epoch_age().map_or(0, |d| d.as_secs()),
                        snap.len(),
                        sizes.urls,
                        sizes.domains,
                        sizes.senders,
                        sizes.phones,
                        sizes.brands,
                        snap.cluster_count(),
                        snap.template_count(),
                        triage.cache_len(),
                        triage.cache_capacity(),
                    )?;
                }
                None => writeln!(out, "err no snapshot published yet")?,
            },
            "sample" => {
                // `sample near <n>` emits entry texts as `near` query
                // lines; plain `sample <n>` emits url/sender lines.
                let (near_sample, n_str) = match rest.split_once(' ') {
                    Some(("near", n)) => (true, n.trim()),
                    _ => (rest == "near", rest),
                };
                let n: usize = n_str.parse().unwrap_or(10);
                match triage.snapshot() {
                    Some(snap) => {
                        let mut emitted = 0;
                        for (id, e) in snap.entries().iter().enumerate() {
                            if emitted >= n {
                                break;
                            }
                            if near_sample {
                                // Texts that shingle to nothing (URL-only
                                // bodies) can never self-match; skip them.
                                if snap.sim().shingles_of(id as u32).is_empty() {
                                    continue;
                                }
                                writeln!(out, "near {}", e.text)?;
                            } else if let Some(u) = e.url {
                                writeln!(out, "url {}", snap.resolve(u))?;
                            } else if let Some(s) = e.sender {
                                writeln!(out, "sender {}", snap.resolve(s))?;
                            } else {
                                continue;
                            }
                            emitted += 1;
                        }
                    }
                    None => writeln!(out, "err no snapshot published yet")?,
                }
            }
            "stats" => {
                let templates = triage.snapshot().map_or(0, |s| s.template_count());
                writeln!(
                    out,
                    "stats queries={} hits={} near_hits={} near_misses={} misses={} triaged={} errors={} templates={} \
                     lookup_p99_ns={} triage_p99_ns={} near_p50_ns={} near_p99_ns={} near_cand_p50={} near_cand_p99={}",
                    stats.queries,
                    stats.hits,
                    stats.near_hits,
                    stats.near_misses,
                    stats.misses,
                    stats.triaged,
                    stats.errors,
                    templates,
                    lookup_ns.quantile(0.99).round() as u64,
                    triage_ns.quantile(0.99).round() as u64,
                    near_ns.quantile(0.50).round() as u64,
                    near_ns.quantile(0.99).round() as u64,
                    near_candidates.quantile(0.50).round() as u64,
                    near_candidates.quantile(0.99).round() as u64,
                )?;
            }
            other => {
                stats.errors += 1;
                ring.record(second, TsOutcome::Error, 0);
                writeln!(out, "err unknown command {other}")?;
            }
        }
    }

    obs.counter("intel.serve.queries", &[]).add(stats.queries);
    obs.counter("intel.serve.hits", &[]).add(stats.hits);
    obs.counter("intel.serve.near_hits", &[])
        .add(stats.near_hits);
    obs.counter("intel.serve.near_misses", &[])
        .add(stats.near_misses);
    obs.counter("intel.serve.misses", &[]).add(stats.misses);
    obs.counter("intel.serve.triaged", &[]).add(stats.triaged);
    obs.counter("intel.serve.errors", &[]).add(stats.errors);
    tracer.export(obs);
    ring.export(obs);
    Ok(ServeSession {
        stats,
        tracer,
        ring,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::IntelHub;
    use crate::snapshot::IntelSnapshot;
    use crate::triage::TriageConfig;
    use smishing_core::pipeline::Pipeline;
    use smishing_obs::Obs;
    use smishing_worldsim::{World, WorldConfig};

    fn triage() -> Triage {
        let w = World::generate(WorldConfig::test_scale(53));
        let out = Pipeline::default().run(&w, &Obs::noop());
        let hub = IntelHub::new();
        hub.publish(IntelSnapshot::build(&out));
        Triage::with_config(
            hub.reader(),
            TriageConfig {
                train_model: false,
                ..TriageConfig::default()
            },
        )
    }

    fn run(t: &mut Triage, script: &str) -> (ServeStats, String) {
        let mut out = Vec::new();
        let stats = serve_lines(t, script.as_bytes(), &mut out, &Obs::noop()).unwrap();
        (stats, String::from_utf8(out).unwrap())
    }

    #[test]
    fn sample_round_trips_to_hits() {
        let mut t = triage();
        let (_, script) = run(&mut t, "sample 25");
        assert_eq!(script.lines().count(), 25);
        let (stats, replies) = run(&mut t, &script);
        assert_eq!(stats.queries, 25);
        assert_eq!(stats.hits, 25, "sampled keys must all hit:\n{replies}");
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn misses_errors_and_quit() {
        let mut t = triage();
        let script =
            "url https://nope.example/x\nbogus line\nsender\nquit\nurl after-quit.example/y\n";
        let (stats, out) = run(&mut t, script);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.errors, 2);
        assert!(out.contains("miss url"));
        assert!(out.contains("err unknown command"));
        assert!(!out.contains("after-quit"), "quit must stop the loop");
    }

    #[test]
    fn msg_lines_triage_and_counters_export() {
        let mut t = triage();
        let obs = Obs::enabled();
        let script = "msg +15550001111|win a prize now\nstats\n";
        let mut out = Vec::new();
        let stats = serve_lines(&mut t, script.as_bytes(), &mut out, &obs).unwrap();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.triaged + stats.hits + stats.near_hits, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("stats queries=1"), "{text}");
        assert!(text.contains("templates="), "{text}");
        let report = obs.json_report();
        assert!(report.contains("intel.serve.queries"), "{report}");
    }

    #[test]
    fn near_sample_round_trips_to_near_hits() {
        let mut t = triage();
        let (_, script) = run(&mut t, "sample near 20");
        assert_eq!(script.lines().count(), 20);
        assert!(script.lines().all(|l| l.starts_with("near ")), "{script}");
        let (stats, replies) = run(&mut t, &script);
        assert_eq!(stats.queries, 20);
        assert_eq!(
            stats.near_hits, 20,
            "identical texts must self-match:\n{replies}"
        );
        assert_eq!(stats.near_misses, 0);
        assert!(replies.lines().all(|l| l.starts_with("near score=")));
        assert!(replies.contains("template="), "{replies}");
    }

    #[test]
    fn explain_returns_span_tree_naming_every_rung() {
        let mut t = triage();
        let (_, sample) = run(&mut t, "sample 1");
        let url = sample.trim().strip_prefix("url ").unwrap_or(sample.trim());
        let script =
            format!("explain url {url}\nexplain +15550001111|lunch tomorrow at the usual spot?\n");
        let (stats, out) = run(&mut t, &script);
        // Introspection lines are not traffic.
        assert_eq!(stats.queries, 0, "{out}");
        assert!(out.contains("trace id=1 verdict=hit"), "{out}");
        assert!(out.contains("rung url wall_ns="), "{out}");
        assert!(out.contains("end id=1"), "{out}");
        // The full-message explain walks every rung of the ladder.
        for rung in ["refang", "sender", "phone", "near"] {
            assert!(
                out.contains(&format!("rung {rung} wall_ns=")),
                "{rung}: {out}"
            );
        }
        assert!(out.contains("trace id=2"), "{out}");
    }

    #[test]
    fn traces_verb_lists_retained_traces_slowest_first() {
        let mut t = triage();
        let (_, sample) = run(&mut t, "sample 3");
        // Explains are force-traced, so they are always retained.
        let explains: String = sample.lines().map(|l| format!("explain {l}\n")).collect();
        let (_, out) = run(&mut t, &format!("{explains}traces 2\n"));
        assert!(out.contains("traces retained=2 sampled=3"), "{out}");
        let totals: Vec<u64> = out
            .lines()
            .filter_map(|l| l.strip_prefix("trace id="))
            .filter_map(|l| {
                l.split_whitespace()
                    .find_map(|kv| kv.strip_prefix("total_ns="))
            })
            .filter_map(|v| v.parse().ok())
            .collect();
        // 3 explain trees + 2 listed trees = 5 rendered traces; the
        // listed pair comes slowest first.
        assert_eq!(totals.len(), 5, "{out}");
        assert!(totals[3] >= totals[4], "slowest first: {totals:?}");
    }

    #[test]
    fn timeseries_and_health_report_session_state() {
        let mut t = triage();
        let script = "url https://nope.example/x\nhealth\ntimeseries 5\nstats\n";
        let obs = Obs::enabled();
        let mut out = Vec::new();
        let session = serve_session(
            &mut t,
            script.as_bytes(),
            &mut out,
            &obs,
            ServeOptions::default(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let health = text
            .lines()
            .find(|l| l.starts_with("health "))
            .expect("health line");
        for key in [
            "epoch=1",
            "epoch_age_s=",
            "entries=",
            "urls=",
            "domains=",
            "senders=",
            "phones=",
            "brands=",
            "clusters=",
            "templates=",
            "cache_len=",
            "cache_cap=4096",
        ] {
            assert!(health.contains(key), "{key} missing: {health}");
        }
        assert!(text.contains("timeseries window_s=120 lines=1"), "{text}");
        assert!(text.contains("ts age_s=0 qps=1"), "{text}");
        // Satellite: the stats line now carries the near-tier series.
        let stats_line = text
            .lines()
            .find(|l| l.starts_with("stats "))
            .expect("stats line");
        for key in [
            "near_p50_ns=",
            "near_p99_ns=",
            "near_cand_p50=",
            "near_cand_p99=",
            "lookup_p99_ns=",
        ] {
            assert!(stats_line.contains(key), "{key} missing: {stats_line}");
        }
        // Session export: trace + timeseries gauges land in the report.
        assert_eq!(session.stats.misses, 1);
        let report = obs.json_report();
        assert!(report.contains("trace.requests"), "{report}");
        assert!(report.contains("serve.ts.last_qps"), "{report}");
    }

    #[test]
    fn sampled_traces_attach_exemplars_to_histograms() {
        let mut t = triage();
        let (_, sample) = run(&mut t, "sample 8");
        let obs = Obs::enabled();
        let mut out = Vec::new();
        let session = serve_session(
            &mut t,
            sample.as_bytes(),
            &mut out,
            &obs,
            ServeOptions {
                trace: smishing_obs::TracerConfig {
                    sample_every: 2,
                    ..smishing_obs::TracerConfig::default()
                },
                ts_window: 30,
            },
        )
        .unwrap();
        assert_eq!(session.stats.queries, 8);
        assert_eq!(session.tracer.requests(), 8);
        assert_eq!(session.tracer.sampled(), 4, "1-in-2 sampling");
        let ex = session.tracer.exemplars();
        assert!(
            ex.contains_key("intel.serve.lookup_ns"),
            "sampled url/sender queries must leave an exemplar: {ex:?}"
        );
        let report = obs.json_report();
        assert!(report.contains("trace.exemplar_id"), "{report}");
        assert!(report.contains("trace.sampled"), "{report}");
    }

    #[test]
    fn near_miss_and_empty_near_error() {
        let mut t = triage();
        let obs = Obs::enabled();
        let script = "near aimless doodle about watering the office ferns on thursday\nnear\n";
        let mut out = Vec::new();
        let stats = serve_lines(&mut t, script.as_bytes(), &mut out, &obs).unwrap();
        assert_eq!(stats.near_misses, 1);
        assert_eq!(stats.near_hits, 0);
        assert_eq!(stats.errors, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("miss near"), "{text}");
        let report = obs.json_report();
        assert!(report.contains("intel.serve.near_misses"), "{report}");
        assert!(report.contains("intel.serve.near_candidates"), "{report}");
    }
}
