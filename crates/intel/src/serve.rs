//! The stdin/stdout line protocol behind `smish serve`.
//!
//! One request per line, one response per line — trivially scriptable
//! (the CI smoke job pipes a query batch through and reads the counters
//! out of the run report). Commands:
//!
//! ```text
//! url <raw>            look up a URL (defanged/homoglyph spellings ok)
//! sender <raw>         look up a sender ID / phone number
//! msg <text>           triage a raw SMS body
//! msg <sender>|<text>  triage with a sender
//! near <text>          similarity-tier lookup: nearest campaign template
//! explain <msg|url …>  run one query force-traced; reply + full span tree
//! traces [n]           render the n slowest retained traces (default 5)
//! timeseries [n]       per-second qps/latency/rate lines, newest first
//! health               epoch age, index sizes, templates, cache, shed,
//!                      retained/evicted counts, aging window, process RSS
//!                      (plus an adversary gauge when a drift profile is live)
//! sample <n>           emit n ready-to-feed query lines from the store
//! sample near <n>      emit n ready-to-feed `near` lines (entry texts)
//! stats                one-line counter summary (incl. template count and
//!                      near-tier latency/candidate quantiles)
//! quit                 stop serving
//! ```
//!
//! Responses: `hit via=<pivot> key=<canonical> template=<id> ...`,
//! `miss <kind> key=<canonical>`, `near score=<p> template=<id>
//! hamming=<d> jaccard=<j> ...`, `triage score=<p> smishing=<bool>
//! via=<index|near|model|none>`, or `err <reason>`. Latencies go into
//! the `intel.serve.lookup_ns` / `intel.serve.triage_ns` /
//! `intel.serve.near_ns` histograms (plus the candidate-set sizes into
//! `intel.serve.near_candidates`) and the `intel.serve.*` counters of
//! the run report.
//!
//! ## Introspection
//!
//! Every session owns a [`Tracer`] and a [`TimeRing`]. Queries are
//! tail-sampled (1-in-K, [`TracerConfig::sample_every`]) into span-tree
//! traces — the rest of the traffic runs the exact untraced ladder — and
//! every query lands in the per-second time-series ring regardless of
//! sampling. `explain` forces a trace for one query without waiting for
//! the sampler. At EOF the session exports `trace.*` and `serve.ts.*`
//! gauges (including per-histogram exemplar trace ids) into the run
//! report next to the latency histograms they explain.
//!
//! ## Two execution modes, one protocol
//!
//! [`serve_session`] answers inline on the calling thread. The
//! multi-worker plane in [`crate::workers`] parses and classifies on a
//! reader thread, fans queries out to N triage workers, and reassembles
//! replies in sequence order — sharing [`SessionCore`] (accounting),
//! `classify` (parsing), and `reply_for` (formatting) with this module
//! so its stdout stays byte-identical to the sequential path. Requests
//! the bounded queue cannot admit are *shed*: no response line, but a
//! `serve.shed` count surfaced in the `stats`/`health` verbs and the
//! time-series ring (nothing is ever silently dropped).

use crate::triage::{Triage, TriageVerdict};
use smishing_obs::{Histogram, Obs, TimeRing, TraceBuilder, Tracer, TracerConfig, TsOutcome};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counters of one serving session.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Total query lines processed (sample/stats lines excluded).
    pub queries: u64,
    /// Known-infrastructure hits.
    pub hits: u64,
    /// Similarity-tier hits (`near` queries and `msg` lines resolved by
    /// the near rung).
    pub near_hits: u64,
    /// `near` queries that matched no template.
    pub near_misses: u64,
    /// Lookup misses (url/sender queries that matched nothing).
    pub misses: u64,
    /// Messages that fell through to the model (`msg` without an index
    /// hit).
    pub triaged: u64,
    /// Malformed lines.
    pub errors: u64,
    /// Queries refused at admission (bounded queue full) or abandoned by
    /// a dying worker. Always 0 in the sequential path.
    pub shed: u64,
    /// Triage workers lost to a panic (the payload is re-raised on the
    /// caller after the session's accounting is exported).
    pub worker_panics: u64,
}

/// Live gauge for a session fed by an adversarial stream: which drift
/// profile is running, how many rotation waves it scheduled, and (via a
/// counter shared with the stream iterator) how many wave posts have
/// been injected so far. Surfaced as a suffix on the `health` line; when
/// absent the line is byte-identical to a plain session.
#[derive(Debug, Clone)]
pub struct AdversaryGauge {
    /// Profile label (the `AdversaryPlan` display form).
    pub profile: String,
    /// Rotation waves scheduled over the stream.
    pub waves: u64,
    /// Wave posts injected so far, incremented by the stream side.
    pub injected: Arc<AtomicU64>,
}

/// Session tuning for [`serve_session`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Tracer tuning (sampling rate, ring and slowest-N capacities).
    pub trace: TracerConfig,
    /// Time-series window in seconds.
    pub ts_window: usize,
    /// Adversarial-stream gauge, if this session's snapshots come from
    /// a drifting world.
    pub adversary: Option<AdversaryGauge>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            trace: TracerConfig::default(),
            ts_window: 120,
            adversary: None,
        }
    }
}

/// Everything a finished serving session knows about itself.
#[derive(Debug)]
pub struct ServeSession {
    /// Aggregate counters.
    pub stats: ServeStats,
    /// Retained traces (ring + slowest-N + exemplars).
    pub tracer: Tracer,
    /// Per-second time series.
    pub ring: TimeRing,
}

/// Stable verdict label for trace retention and response accounting.
pub fn verdict_label(v: &TriageVerdict) -> &'static str {
    match v {
        TriageVerdict::Hit(_) => "hit",
        TriageVerdict::Near(_) => "near",
        TriageVerdict::ModelOnly { .. } => "model",
        TriageVerdict::Unknown => "unknown",
    }
}

/// Render a verdict as one protocol response line (`hit ...` /
/// `triage ...`). Shared by `serve` and the one-shot `query` command.
pub fn verdict_line(v: &TriageVerdict) -> String {
    match v {
        TriageVerdict::Hit(a) => format!(
            "hit via={} key={} template={} cluster={} size={} scam={} reports={} first={} last={}",
            a.matched.label(),
            a.key,
            a.template,
            a.cluster,
            a.cluster_size,
            a.scam_type.label(),
            a.n_reports,
            a.first_seen.0,
            a.last_seen.0,
        ),
        TriageVerdict::Near(a) => format!(
            "near score={:.4} template={} cluster={} size={} scam={} hamming={} jaccard={:.4} reports={}",
            a.score(),
            a.template,
            a.cluster,
            a.cluster_size,
            a.scam_type.label(),
            a.hamming,
            a.jaccard,
            a.n_reports,
        ),
        TriageVerdict::ModelOnly { score } => {
            format!(
                "triage score={score:.4} smishing={} via=model",
                *score >= 0.5
            )
        }
        TriageVerdict::Unknown => "triage score=0.0000 smishing=false via=none".to_string(),
    }
}

/// Which triage ladder a query line drives. Classification happens once
/// (sequential loop or worker-plane reader); the worker hop ships the
/// kind over the channel instead of re-parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueryKind {
    /// `url <raw>` — exact URL/domain ladder.
    Url,
    /// `sender <raw>` — exact sender/phone ladder.
    Sender,
    /// `near <text>` — similarity tier only.
    Near,
    /// `msg [<sender>|]<text>` — full triage ladder.
    Msg,
}

impl QueryKind {
    /// Name of the latency histogram this query kind is accounted into
    /// (also the exemplar key sampled traces attach to).
    pub(crate) fn hist_name(self) -> &'static str {
        match self {
            QueryKind::Url | QueryKind::Sender => "intel.serve.lookup_ns",
            QueryKind::Near => "intel.serve.near_ns",
            QueryKind::Msg => "intel.serve.triage_ns",
        }
    }
}

/// One classified request line.
pub(crate) enum Parsed<'a> {
    /// `quit` / `exit` — stop serving.
    Quit,
    /// A triage query, answerable by any worker.
    Query(QueryKind),
    /// An introspection verb, answered on the session (collector)
    /// thread where the tracer/ring/stats live.
    Verb(&'a str),
    /// A value-taking command with no value: `err {cmd} needs a value`.
    NeedsValue(&'a str),
    /// `err unknown command {cmd}`.
    Unknown(&'a str),
}

/// Classify one trimmed, non-empty request line (pre-split into command
/// and trimmed rest). The single protocol grammar shared by the
/// sequential loop and the worker-plane reader.
pub(crate) fn classify<'a>(cmd: &'a str, rest: &str) -> Parsed<'a> {
    match cmd {
        "quit" | "exit" => Parsed::Quit,
        "url" | "sender" | "near" | "explain" if rest.is_empty() => Parsed::NeedsValue(cmd),
        "url" => Parsed::Query(QueryKind::Url),
        "sender" => Parsed::Query(QueryKind::Sender),
        "near" => Parsed::Query(QueryKind::Near),
        "msg" => Parsed::Query(QueryKind::Msg),
        "explain" | "traces" | "timeseries" | "health" | "sample" | "stats" => Parsed::Verb(cmd),
        other => Parsed::Unknown(other),
    }
}

/// Run one query inline (per-query snapshot refresh). The worker plane
/// instead batches through [`Triage::query_batch_with`] to amortize the
/// refresh; both paths reach the identical ladder code underneath.
/// Returns the verdict plus the near candidate-set size (0 for
/// non-`near` kinds).
pub(crate) fn run_query(
    triage: &mut Triage,
    kind: QueryKind,
    rest: &str,
    trace: Option<&mut TraceBuilder>,
) -> (TriageVerdict, usize) {
    match kind {
        QueryKind::Url => (triage.query_url_traced(rest, trace), 0),
        QueryKind::Sender => (triage.query_sender_traced(rest, trace), 0),
        QueryKind::Near => triage.query_near_traced(rest, trace),
        QueryKind::Msg => {
            let (sender, text) = split_msg(rest);
            (triage.triage_traced(sender, text, trace), 0)
        }
    }
}

/// Split a `msg` payload into its optional `sender|` prefix and text.
pub(crate) fn split_msg(rest: &str) -> (Option<&str>, &str) {
    match rest.split_once('|') {
        Some((s, t)) => (Some(s.trim()), t.trim()),
        None => (None, rest),
    }
}

/// A fully formatted response to one query plus everything the session
/// needs to account for it. Built inline by the sequential loop and
/// shipped over the reply channel by triage workers.
#[derive(Debug)]
pub(crate) struct QueryReply {
    /// The query kind this answers.
    pub kind: QueryKind,
    /// The response line (no trailing newline).
    pub text: String,
    /// Time-series outcome bucket.
    pub outcome: TsOutcome,
    /// Wall time the triage call took, wherever it ran.
    pub ns: u64,
    /// Near candidate-set size (meaningful when `kind` is `Near`).
    pub candidates: u64,
    /// True when the triage call absorbed a republish (cache flush +
    /// model retrain); its wall time is the cost.
    pub republished: bool,
}

/// Turn a verdict into the protocol response + accounting buckets for
/// one query. The single formatting point both execution modes share.
pub(crate) fn reply_for(
    kind: QueryKind,
    rest: &str,
    v: &TriageVerdict,
    ns: u64,
    candidates: u64,
    republished: bool,
) -> QueryReply {
    let (text, outcome) = match kind {
        QueryKind::Url => match v {
            TriageVerdict::Hit(_) => (verdict_line(v), TsOutcome::Hit),
            _ => (format!("miss url key={rest}"), TsOutcome::Miss),
        },
        QueryKind::Sender => match v {
            TriageVerdict::Hit(_) => (verdict_line(v), TsOutcome::Hit),
            _ => (format!("miss sender key={rest}"), TsOutcome::Miss),
        },
        QueryKind::Near => match v {
            TriageVerdict::Near(_) => (verdict_line(v), TsOutcome::Near),
            _ => (format!("miss near key={rest}"), TsOutcome::Miss),
        },
        QueryKind::Msg => (
            verdict_line(v),
            match v {
                TriageVerdict::Hit(_) => TsOutcome::Hit,
                TriageVerdict::Near(_) => TsOutcome::Near,
                _ => TsOutcome::Triaged,
            },
        ),
    };
    QueryReply {
        kind,
        text,
        outcome,
        ns,
        candidates,
        republished,
    }
}

/// The session-thread half of a serving session: counters, tracer,
/// time-series ring, and the latency histograms every response lands
/// in. The sequential loop drives one inline; the worker plane's
/// collector drives one in sequence order, which keeps every
/// protocol-visible number (stats counters, histogram quantiles, trace
/// ids) prefix-exact with the single-threaded path.
pub(crate) struct SessionCore {
    pub stats: ServeStats,
    pub tracer: Tracer,
    pub ring: TimeRing,
    pub started: Instant,
    adversary: Option<AdversaryGauge>,
    lookup_ns: Histogram,
    triage_ns: Histogram,
    near_ns: Histogram,
    near_candidates: Histogram,
}

impl SessionCore {
    pub(crate) fn new(obs: &Obs, opts: &ServeOptions) -> Self {
        SessionCore {
            stats: ServeStats::default(),
            tracer: Tracer::new(opts.trace),
            ring: TimeRing::new(opts.ts_window),
            started: Instant::now(),
            adversary: opts.adversary.clone(),
            lookup_ns: obs.histogram("intel.serve.lookup_ns", &[]),
            triage_ns: obs.histogram("intel.serve.triage_ns", &[]),
            near_ns: obs.histogram("intel.serve.near_ns", &[]),
            near_candidates: obs.histogram("intel.serve.near_candidates", &[]),
        }
    }

    fn hist(&self, kind: QueryKind) -> &Histogram {
        match kind {
            QueryKind::Url | QueryKind::Sender => &self.lookup_ns,
            QueryKind::Near => &self.near_ns,
            QueryKind::Msg => &self.triage_ns,
        }
    }

    /// Account one malformed line.
    pub(crate) fn error(&mut self) {
        self.stats.errors += 1;
        let second = self.started.elapsed().as_secs();
        self.ring.record(second, TsOutcome::Error, 0);
    }

    /// Account one shed request (admitted nowhere, answered never).
    pub(crate) fn shed(&mut self) {
        self.stats.shed += 1;
        let second = self.started.elapsed().as_secs();
        self.ring.record(second, TsOutcome::Shed, 0);
    }

    /// Account one answered query: stats bucket, latency histogram,
    /// time-series ring, republish absorption.
    pub(crate) fn record_reply(&mut self, r: &QueryReply) {
        self.stats.queries += 1;
        match r.outcome {
            TsOutcome::Hit => self.stats.hits += 1,
            TsOutcome::Near => self.stats.near_hits += 1,
            TsOutcome::Miss => {
                if r.kind == QueryKind::Near {
                    self.stats.near_misses += 1;
                } else {
                    self.stats.misses += 1;
                }
            }
            TsOutcome::Triaged => self.stats.triaged += 1,
            TsOutcome::Error | TsOutcome::Shed => {}
        }
        self.hist(r.kind).record(r.ns);
        if r.kind == QueryKind::Near {
            self.near_candidates.record(r.candidates);
        }
        let second = self.started.elapsed().as_secs();
        self.ring.record(second, r.outcome, r.ns);
        if r.republished {
            self.ring.record_republish(second, r.ns);
        }
    }

    /// Handle one introspection verb. Runs on the thread that owns the
    /// tracer/ring/stats (inline sequentially; the collector in worker
    /// mode), with a triage handle for snapshot-backed verbs.
    pub(crate) fn verb<W: Write>(
        &mut self,
        triage: &mut Triage,
        cmd: &str,
        rest: &str,
        out: &mut W,
    ) -> std::io::Result<()> {
        match cmd {
            "explain" => {
                // Force-traced one-shot: reply line, then the span tree.
                // Introspection, not traffic — histograms and the time
                // series stay clean of its always-on tracing overhead.
                let (kind, val) = rest.split_once(' ').unwrap_or((rest, ""));
                let mut tb = self.tracer.begin_forced(rest);
                let v = match (kind, val) {
                    ("url", v) if !v.is_empty() => triage.query_url_traced(v, Some(&mut tb)),
                    ("sender", v) if !v.is_empty() => triage.query_sender_traced(v, Some(&mut tb)),
                    ("near", v) if !v.is_empty() => triage.query_near_traced(v, Some(&mut tb)).0,
                    _ => {
                        // Whole rest is a message (optionally `sender|text`),
                        // with an explicit `msg ` prefix allowed.
                        let body = rest.strip_prefix("msg ").unwrap_or(rest).trim();
                        let (sender, text) = split_msg(body);
                        triage.triage_traced(sender, text, Some(&mut tb))
                    }
                };
                let trace = tb.finish(verdict_label(&v));
                writeln!(out, "{}", verdict_line(&v))?;
                write!(out, "{}", trace.render())?;
                self.tracer.finish(trace);
            }
            "traces" => {
                let n: usize = rest.parse().unwrap_or(5);
                let slowest: Vec<String> = self.tracer.slowest(n).map(|t| t.render()).collect();
                writeln!(
                    out,
                    "traces retained={} sampled={} requests={}",
                    slowest.len(),
                    self.tracer.sampled(),
                    self.tracer.requests()
                )?;
                for t in slowest {
                    write!(out, "{t}")?;
                }
            }
            "timeseries" => {
                let n: usize = rest.parse().unwrap_or(self.ring.window());
                let rendered = self.ring.render(n);
                writeln!(
                    out,
                    "timeseries window_s={} lines={}",
                    self.ring.window(),
                    rendered.lines().count()
                )?;
                write!(out, "{rendered}")?;
            }
            "health" => match triage.snapshot() {
                Some(snap) => {
                    let sizes = snap.index_sizes();
                    // Empty unless an adversarial stream registered a
                    // gauge — the default line must stay byte-identical.
                    let adversary = self.adversary.as_ref().map_or_else(String::new, |g| {
                        format!(
                            " adversary={} waves={} injected={}",
                            g.profile,
                            g.waves,
                            g.injected.load(Ordering::Relaxed),
                        )
                    });
                    writeln!(
                        out,
                        "health epoch={} epoch_age_s={} entries={} urls={} domains={} \
                         senders={} phones={} brands={} clusters={} templates={} \
                         cache_len={} cache_cap={} shed={} retained={} evicted={} \
                         window_s={} rss_bytes={}{adversary}",
                        triage.epoch_seen(),
                        triage.epoch_age().map_or(0, |d| d.as_secs()),
                        snap.len(),
                        sizes.urls,
                        sizes.domains,
                        sizes.senders,
                        sizes.phones,
                        sizes.brands,
                        snap.cluster_count(),
                        snap.template_count(),
                        triage.cache_len(),
                        triage.cache_capacity(),
                        self.stats.shed,
                        snap.len(),
                        snap.evicted_count(),
                        snap.window_secs().map_or(0, |w| w),
                        process_rss_bytes(),
                    )?;
                }
                None => writeln!(out, "err no snapshot published yet")?,
            },
            "sample" => {
                // `sample near <n>` emits entry texts as `near` query
                // lines; plain `sample <n>` emits url/sender lines.
                let (near_sample, n_str) = match rest.split_once(' ') {
                    Some(("near", n)) => (true, n.trim()),
                    _ => (rest == "near", rest),
                };
                let n: usize = n_str.parse().unwrap_or(10);
                match triage.snapshot() {
                    Some(snap) => {
                        let mut emitted = 0;
                        for (id, e) in snap.entries().iter().enumerate() {
                            if emitted >= n {
                                break;
                            }
                            if near_sample {
                                // Texts that shingle to nothing (URL-only
                                // bodies) can never self-match; skip them.
                                if snap.sim().shingles_of(id as u32).is_empty() {
                                    continue;
                                }
                                writeln!(out, "near {}", e.text)?;
                            } else if let Some(u) = e.url {
                                writeln!(out, "url {}", snap.resolve(u))?;
                            } else if let Some(s) = e.sender {
                                writeln!(out, "sender {}", snap.resolve(s))?;
                            } else {
                                continue;
                            }
                            emitted += 1;
                        }
                    }
                    None => writeln!(out, "err no snapshot published yet")?,
                }
            }
            "stats" => {
                let templates = triage.snapshot().map_or(0, |s| s.template_count());
                writeln!(
                    out,
                    "stats queries={} hits={} near_hits={} near_misses={} misses={} triaged={} errors={} shed={} templates={} \
                     lookup_p99_ns={} triage_p99_ns={} near_p50_ns={} near_p99_ns={} near_cand_p50={} near_cand_p99={}",
                    self.stats.queries,
                    self.stats.hits,
                    self.stats.near_hits,
                    self.stats.near_misses,
                    self.stats.misses,
                    self.stats.triaged,
                    self.stats.errors,
                    self.stats.shed,
                    templates,
                    self.lookup_ns.quantile(0.99).round() as u64,
                    self.triage_ns.quantile(0.99).round() as u64,
                    self.near_ns.quantile(0.50).round() as u64,
                    self.near_ns.quantile(0.99).round() as u64,
                    self.near_candidates.quantile(0.50).round() as u64,
                    self.near_candidates.quantile(0.99).round() as u64,
                )?;
            }
            other => {
                debug_assert!(false, "not a verb: {other}");
            }
        }
        Ok(())
    }

    /// Export the session's counters, traces, and time series into the
    /// run report and hand back the finished [`ServeSession`].
    pub(crate) fn finish(self, obs: &Obs) -> ServeSession {
        let SessionCore {
            stats,
            tracer,
            ring,
            ..
        } = self;
        obs.counter("intel.serve.queries", &[]).add(stats.queries);
        obs.counter("intel.serve.hits", &[]).add(stats.hits);
        obs.counter("intel.serve.near_hits", &[])
            .add(stats.near_hits);
        obs.counter("intel.serve.near_misses", &[])
            .add(stats.near_misses);
        obs.counter("intel.serve.misses", &[]).add(stats.misses);
        obs.counter("intel.serve.triaged", &[]).add(stats.triaged);
        obs.counter("intel.serve.errors", &[]).add(stats.errors);
        obs.counter("intel.serve.shed", &[]).add(stats.shed);
        obs.counter("intel.serve.worker_panics", &[])
            .add(stats.worker_panics);
        obs.gauge("intel.serve.rss_bytes", &[])
            .set(process_rss_bytes() as i64);
        tracer.export(obs);
        ring.export(obs);
        ServeSession {
            stats,
            tracer,
            ring,
        }
    }
}

/// Resident set size of this process in bytes: field 2 of
/// `/proc/self/statm` (pages) times the page size on Linux, 0 on other
/// platforms. Reported by the `health` verb and exported as the
/// `intel.serve.rss_bytes` gauge so the soak CI job can budget memory.
pub fn process_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        // statm: size resident shared text lib data dt (in pages). The
        // kernel's page size is 4096 on every platform we run CI on; if
        // the file is unreadable, report 0 rather than fail a query.
        std::fs::read_to_string("/proc/self/statm")
            .ok()
            .and_then(|s| {
                s.split_whitespace()
                    .nth(1)
                    .and_then(|p| p.parse::<u64>().ok())
            })
            .map_or(0, |pages| pages * 4096)
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Serve queries line by line until EOF or `quit`, with default
/// introspection tuning. Returns the aggregate counters; the full
/// session (traces, time series) is available via [`serve_session`].
pub fn serve_lines<R: BufRead, W: Write>(
    triage: &mut Triage,
    input: R,
    out: W,
    obs: &Obs,
) -> std::io::Result<ServeStats> {
    serve_session(triage, input, out, obs, ServeOptions::default()).map(|s| s.stats)
}

/// Serve queries line by line until EOF or `quit`, returning the whole
/// session — counters, retained traces, and the per-second time series.
pub fn serve_session<R: BufRead, W: Write>(
    triage: &mut Triage,
    input: R,
    mut out: W,
    obs: &Obs,
    opts: ServeOptions,
) -> std::io::Result<ServeSession> {
    let mut core = SessionCore::new(obs, &opts);

    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        let rest = rest.trim();
        match classify(cmd, rest) {
            Parsed::Quit => break,
            Parsed::NeedsValue(cmd) => {
                core.error();
                writeln!(out, "err {cmd} needs a value")?;
            }
            Parsed::Unknown(other) => {
                core.error();
                writeln!(out, "err unknown command {other}")?;
            }
            Parsed::Query(kind) => {
                let epoch_before = triage.epoch_seen();
                let mut tb = core.tracer.begin(line);
                let t = Instant::now();
                let (v, cands) = run_query(triage, kind, rest, tb.as_mut());
                let ns = t.elapsed().as_nanos() as u64;
                if let Some(tb) = tb {
                    core.tracer.exemplar(kind.hist_name(), tb.id(), ns);
                    core.tracer.finish(tb.finish(verdict_label(&v)));
                }
                let reply = reply_for(
                    kind,
                    rest,
                    &v,
                    ns,
                    cands as u64,
                    triage.epoch_seen() != epoch_before,
                );
                core.record_reply(&reply);
                writeln!(out, "{}", reply.text)?;
            }
            Parsed::Verb(cmd) => core.verb(triage, cmd, rest, &mut out)?,
        }
    }

    Ok(core.finish(obs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::IntelHub;
    use crate::snapshot::IntelSnapshot;
    use crate::triage::TriageConfig;
    use smishing_core::pipeline::Pipeline;
    use smishing_obs::Obs;
    use smishing_worldsim::{World, WorldConfig};

    fn triage() -> Triage {
        let w = World::generate(WorldConfig::test_scale(53));
        let out = Pipeline::default().run(&w, &Obs::noop());
        let hub = IntelHub::new();
        hub.publish(IntelSnapshot::build(&out));
        Triage::with_config(
            hub.reader(),
            TriageConfig {
                train_model: false,
                ..TriageConfig::default()
            },
        )
    }

    fn run(t: &mut Triage, script: &str) -> (ServeStats, String) {
        let mut out = Vec::new();
        let stats = serve_lines(t, script.as_bytes(), &mut out, &Obs::noop()).unwrap();
        (stats, String::from_utf8(out).unwrap())
    }

    #[test]
    fn sample_round_trips_to_hits() {
        let mut t = triage();
        let (_, script) = run(&mut t, "sample 25");
        assert_eq!(script.lines().count(), 25);
        let (stats, replies) = run(&mut t, &script);
        assert_eq!(stats.queries, 25);
        assert_eq!(stats.hits, 25, "sampled keys must all hit:\n{replies}");
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn misses_errors_and_quit() {
        let mut t = triage();
        let script =
            "url https://nope.example/x\nbogus line\nsender\nquit\nurl after-quit.example/y\n";
        let (stats, out) = run(&mut t, script);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.errors, 2);
        assert!(out.contains("miss url"));
        assert!(out.contains("err unknown command"));
        assert!(!out.contains("after-quit"), "quit must stop the loop");
    }

    #[test]
    fn msg_lines_triage_and_counters_export() {
        let mut t = triage();
        let obs = Obs::enabled();
        let script = "msg +15550001111|win a prize now\nstats\n";
        let mut out = Vec::new();
        let stats = serve_lines(&mut t, script.as_bytes(), &mut out, &obs).unwrap();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.triaged + stats.hits + stats.near_hits, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("stats queries=1"), "{text}");
        assert!(text.contains("templates="), "{text}");
        let report = obs.json_report();
        assert!(report.contains("intel.serve.queries"), "{report}");
    }

    #[test]
    fn near_sample_round_trips_to_near_hits() {
        let mut t = triage();
        let (_, script) = run(&mut t, "sample near 20");
        assert_eq!(script.lines().count(), 20);
        assert!(script.lines().all(|l| l.starts_with("near ")), "{script}");
        let (stats, replies) = run(&mut t, &script);
        assert_eq!(stats.queries, 20);
        assert_eq!(
            stats.near_hits, 20,
            "identical texts must self-match:\n{replies}"
        );
        assert_eq!(stats.near_misses, 0);
        assert!(replies.lines().all(|l| l.starts_with("near score=")));
        assert!(replies.contains("template="), "{replies}");
    }

    #[test]
    fn explain_returns_span_tree_naming_every_rung() {
        let mut t = triage();
        let (_, sample) = run(&mut t, "sample 1");
        let url = sample.trim().strip_prefix("url ").unwrap_or(sample.trim());
        let script =
            format!("explain url {url}\nexplain +15550001111|lunch tomorrow at the usual spot?\n");
        let (stats, out) = run(&mut t, &script);
        // Introspection lines are not traffic.
        assert_eq!(stats.queries, 0, "{out}");
        assert!(out.contains("trace id=1 verdict=hit"), "{out}");
        assert!(out.contains("rung url wall_ns="), "{out}");
        assert!(out.contains("end id=1"), "{out}");
        // The full-message explain walks every rung of the ladder.
        for rung in ["refang", "sender", "phone", "near"] {
            assert!(
                out.contains(&format!("rung {rung} wall_ns=")),
                "{rung}: {out}"
            );
        }
        assert!(out.contains("trace id=2"), "{out}");
    }

    #[test]
    fn traces_verb_lists_retained_traces_slowest_first() {
        let mut t = triage();
        let (_, sample) = run(&mut t, "sample 3");
        // Explains are force-traced, so they are always retained.
        let explains: String = sample.lines().map(|l| format!("explain {l}\n")).collect();
        let (_, out) = run(&mut t, &format!("{explains}traces 2\n"));
        assert!(out.contains("traces retained=2 sampled=3"), "{out}");
        let totals: Vec<u64> = out
            .lines()
            .filter_map(|l| l.strip_prefix("trace id="))
            .filter_map(|l| {
                l.split_whitespace()
                    .find_map(|kv| kv.strip_prefix("total_ns="))
            })
            .filter_map(|v| v.parse().ok())
            .collect();
        // 3 explain trees + 2 listed trees = 5 rendered traces; the
        // listed pair comes slowest first.
        assert_eq!(totals.len(), 5, "{out}");
        assert!(totals[3] >= totals[4], "slowest first: {totals:?}");
    }

    #[test]
    fn timeseries_and_health_report_session_state() {
        let mut t = triage();
        let script = "url https://nope.example/x\nhealth\ntimeseries 5\nstats\n";
        let obs = Obs::enabled();
        let mut out = Vec::new();
        let session = serve_session(
            &mut t,
            script.as_bytes(),
            &mut out,
            &obs,
            ServeOptions::default(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let health = text
            .lines()
            .find(|l| l.starts_with("health "))
            .expect("health line");
        for key in [
            "epoch=1",
            "epoch_age_s=",
            "entries=",
            "urls=",
            "domains=",
            "senders=",
            "phones=",
            "brands=",
            "clusters=",
            "templates=",
            "cache_len=",
            "cache_cap=4096",
            "shed=0",
        ] {
            assert!(health.contains(key), "{key} missing: {health}");
        }
        assert!(text.contains("timeseries window_s=120 lines=1"), "{text}");
        assert!(text.contains("ts age_s=0 qps=1"), "{text}");
        // Satellite: the stats line now carries the near-tier series.
        let stats_line = text
            .lines()
            .find(|l| l.starts_with("stats "))
            .expect("stats line");
        for key in [
            "near_p50_ns=",
            "near_p99_ns=",
            "near_cand_p50=",
            "near_cand_p99=",
            "lookup_p99_ns=",
            "shed=0",
        ] {
            assert!(stats_line.contains(key), "{key} missing: {stats_line}");
        }
        // Session export: trace + timeseries gauges land in the report.
        assert_eq!(session.stats.misses, 1);
        let report = obs.json_report();
        assert!(report.contains("trace.requests"), "{report}");
        assert!(report.contains("serve.ts.last_qps"), "{report}");
    }

    #[test]
    fn health_gauge_appears_only_with_an_adversary_stream() {
        // Default options: no adversary key anywhere on the line.
        let mut t = triage();
        let (_, out) = run(&mut t, "health\n");
        assert!(out.starts_with("health "), "{out}");
        assert!(!out.contains("adversary="), "{out}");

        // With a registered gauge the suffix carries the live counter.
        let injected = Arc::new(AtomicU64::new(0));
        let opts = ServeOptions {
            adversary: Some(AdversaryGauge {
                profile: "rotation".to_string(),
                waves: 7,
                injected: Arc::clone(&injected),
            }),
            ..ServeOptions::default()
        };
        injected.store(42, Ordering::Relaxed);
        let mut out = Vec::new();
        serve_session(&mut t, "health\n".as_bytes(), &mut out, &Obs::noop(), opts).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.trim_end()
                .ends_with("adversary=rotation waves=7 injected=42"),
            "{text}"
        );
    }

    #[test]
    fn sampled_traces_attach_exemplars_to_histograms() {
        let mut t = triage();
        let (_, sample) = run(&mut t, "sample 8");
        let obs = Obs::enabled();
        let mut out = Vec::new();
        let session = serve_session(
            &mut t,
            sample.as_bytes(),
            &mut out,
            &obs,
            ServeOptions {
                trace: smishing_obs::TracerConfig {
                    sample_every: 2,
                    ..smishing_obs::TracerConfig::default()
                },
                ts_window: 30,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(session.stats.queries, 8);
        assert_eq!(session.tracer.requests(), 8);
        assert_eq!(session.tracer.sampled(), 4, "1-in-2 sampling");
        let ex = session.tracer.exemplars();
        assert!(
            ex.contains_key("intel.serve.lookup_ns"),
            "sampled url/sender queries must leave an exemplar: {ex:?}"
        );
        let report = obs.json_report();
        assert!(report.contains("trace.exemplar_id"), "{report}");
        assert!(report.contains("trace.sampled"), "{report}");
    }

    #[test]
    fn near_miss_and_empty_near_error() {
        let mut t = triage();
        let obs = Obs::enabled();
        let script = "near aimless doodle about watering the office ferns on thursday\nnear\n";
        let mut out = Vec::new();
        let stats = serve_lines(&mut t, script.as_bytes(), &mut out, &obs).unwrap();
        assert_eq!(stats.near_misses, 1);
        assert_eq!(stats.near_hits, 0);
        assert_eq!(stats.errors, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("miss near"), "{text}");
        let report = obs.json_report();
        assert!(report.contains("intel.serve.near_misses"), "{report}");
        assert!(report.contains("intel.serve.near_candidates"), "{report}");
    }
}
