//! The multi-worker serve plane behind `smish serve --serve-workers N`.
//!
//! [`serve_session`](crate::serve::serve_session) answers every request
//! inline on one thread; at paper scale (millions of user reports, a
//! carrier-side query stream) that single core is the ceiling. This
//! module keeps the *protocol* — and, by construction, the exact bytes
//! on stdout — while spreading the triage work over N workers:
//!
//! ```text
//!             parse + classify + admit (bounded try_send)
//!  stdin ──▶ reader ──┬────────────── work queue ──▶ worker 0 ┐ batched
//!   (caller   │       │  (cap = --queue-depth)  ──▶ worker 1 │ query_batch,
//!    thread)  │       └─────────────────────────▶ worker N-1 ┘ own Triage
//!             │ verbs/errors (seq-stamped, blocking)   │ replies + traces
//!             ▼                                        ▼
//!           collector ◀────────── reply queue ◀────────┘
//!             │  reorder by seq (BTreeMap) → SessionCore accounting
//!  stdout ◀───┘  → verbs answered at their barrier position
//! ```
//!
//! **Ordering.** Every admitted request gets a dense sequence number;
//! the collector buffers out-of-order replies and emits strictly by
//! seq, so responses interleave exactly as the sequential loop would
//! have written them. Introspection verbs (`stats`, `health`, …) are
//! seq-stamped too and handled *by the collector at their position*,
//! which makes each one a natural barrier: its counters and histogram
//! quantiles reflect precisely the queries before it in the input, same
//! as single-threaded serving.
//!
//! **Admission control.** The work queue is bounded (`--queue-depth`).
//! When it is full the reader does not block the intake loop; the
//! request is *shed*: no response line, a `serve.shed` count in the
//! session stats, the `stats`/`health` verbs, and the time-series ring.
//! Nothing is ever silently dropped — every request is either answered
//! or counted.
//!
//! **Failure.** A worker panic is caught per batch: replies already
//! sunk stay valid (the collector has or will emit them in order), the
//! unsent remainder of the batch is shed, the panic is counted under
//! `serve.worker_panics`, and the first payload is re-raised on the
//! caller *after* the session's accounting is exported — mirroring the
//! exec engine's worker-panic propagation.
//!
//! **Tracing.** The reader replicates the tracer's 1-in-K sampling
//! cadence; traced requests carry a detached [`TraceBuilder`] through
//! the worker hop and the collector adopts finished traces in seq
//! order, so trace ids (and the `traces` verb) match the sequential
//! session's.

use crate::hub::IntelHub;
use crate::serve::{
    classify, reply_for, split_msg, verdict_label, Parsed, QueryKind, QueryReply, ServeOptions,
    ServeSession, SessionCore,
};
use crate::triage::{BatchQuery, Triage, TriageConfig};
use crossbeam::channel::{bounded, Sender, TrySendError};
use smishing_obs::{Counter, Histogram, Obs, Trace, TraceBuilder};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;

/// Tuning for [`serve_workers`].
#[derive(Debug, Clone)]
pub struct WorkerPlan {
    /// Triage workers (clamped to at least 1).
    pub workers: usize,
    /// Work-queue bound: requests admitted but not yet picked up by a
    /// worker. A full queue sheds (clamped to at least 1).
    pub queue_depth: usize,
    /// Most queries a worker folds into one `query_batch` call (one
    /// snapshot refresh per batch).
    pub batch_max: usize,
    /// Test hook: a worker answering a request whose *full line* equals
    /// this panics mid-batch (exercises the shutdown/panic path).
    pub panic_on: Option<String>,
}

impl WorkerPlan {
    /// A plan with the default batching and no fault injection.
    pub fn new(workers: usize, queue_depth: usize) -> WorkerPlan {
        WorkerPlan {
            workers,
            queue_depth,
            batch_max: 32,
            panic_on: None,
        }
    }
}

impl Default for WorkerPlan {
    fn default() -> Self {
        WorkerPlan::new(4, 1024)
    }
}

/// One admitted query on its way to a worker.
struct Work {
    seq: u64,
    kind: QueryKind,
    /// The full request line (command + rest), owned for the hop; also
    /// the traced request string, matching the sequential tracer.
    line: String,
    traced: bool,
}

/// What the collector reassembles.
enum ToCollector {
    /// An answered query.
    Reply {
        seq: u64,
        reply: QueryReply,
        trace: Option<Trace>,
    },
    /// A verb / malformed line, answered by the collector at its
    /// barrier position.
    Verb { seq: u64, line: String },
    /// An admitted query abandoned by a dying worker (or drained after
    /// every worker exited): fills the seq hole so later responses
    /// still flow, and is counted as shed.
    Shed { seq: u64 },
}

impl ToCollector {
    fn seq(&self) -> u64 {
        match self {
            ToCollector::Reply { seq, .. }
            | ToCollector::Verb { seq, .. }
            | ToCollector::Shed { seq } => *seq,
        }
    }
}

/// Send with backpressure accounting, same discipline as the exec
/// engine: only genuinely blocked sends pay for a clock read. Returns
/// `false` when the receiver is gone.
fn obs_send<T>(tx: &Sender<T>, msg: T, blocked: &Counter, wait: &Histogram) -> bool {
    if wait.is_active() {
        match tx.try_send(msg) {
            Ok(()) => true,
            Err(TrySendError::Full(m)) => {
                blocked.inc();
                wait.time(|| tx.send(m)).is_ok()
            }
            Err(TrySendError::Disconnected(_)) => false,
        }
    } else {
        tx.send(msg).is_ok()
    }
}

/// `rest` of a request line as the reader classified it.
fn rest_of(line: &str) -> &str {
    line.split_once(' ').map_or("", |(_, r)| r.trim())
}

fn to_batch_query(kind: QueryKind, rest: &str) -> BatchQuery {
    match kind {
        QueryKind::Url => BatchQuery::Url(rest.to_string()),
        QueryKind::Sender => BatchQuery::Sender(rest.to_string()),
        QueryKind::Near => BatchQuery::Near(rest.to_string()),
        QueryKind::Msg => {
            let (sender, text) = split_msg(rest);
            BatchQuery::Msg {
                sender: sender.map(str::to_string),
                text: text.to_string(),
            }
        }
    }
}

/// Serve the line protocol over `plan.workers` triage workers with
/// in-order reassembly. Byte-for-byte the same stdout as
/// [`serve_session`](crate::serve::serve_session) given the same input
/// and no shedding; see the module docs for the ordering, admission,
/// and failure guarantees. Worker panics are re-raised on the caller
/// after the session's metrics are exported.
pub fn serve_workers<R: BufRead, W: Write + Send>(
    hub: &IntelHub,
    cfg: TriageConfig,
    input: R,
    out: W,
    obs: &Obs,
    opts: ServeOptions,
    plan: &WorkerPlan,
) -> io::Result<ServeSession> {
    let workers = plan.workers.max(1);
    let depth = plan.queue_depth.max(1);
    let batch_max = plan.batch_max.max(1);
    let sample_every = opts.trace.sample_every;

    obs.gauge("intel.serve.workers", &[]).set(workers as i64);
    obs.gauge("intel.serve.queue_depth", &[]).set(depth as i64);
    let blocked = obs.counter("intel.serve.blocked_sends", &[]);
    let wait = obs.histogram("intel.serve.backpressure_wait_ns", &[]);

    let (work_tx, work_rx) = bounded::<Work>(depth);
    // The reply queue holds at most one in-flight message per admitted
    // request, so depth + a batch per worker never truly blocks; the
    // bound exists to keep a stalled writer from buffering unboundedly.
    let (reply_tx, reply_rx) = bounded::<ToCollector>(depth + workers * batch_max);

    // Sheds noted by the reader (no seq, no message) for the collector
    // to fold into the session stats before its next in-order message.
    let shed_unseq = AtomicU64::new(0);
    let panics: Mutex<Vec<Box<dyn std::any::Any + Send>>> = Mutex::new(Vec::new());

    let (session, out, reader_err, collector_err) = thread::scope(|s| {
        // ---- triage workers ------------------------------------------------
        let worker_handles: Vec<_> = (0..workers)
            .map(|wid| {
                let work_rx = work_rx.clone();
                let reply_tx = reply_tx.clone();
                let mut triage = Triage::with_config(hub.reader(), cfg.clone());
                let blocked = blocked.clone();
                let wait = wait.clone();
                let panics = &panics;
                let panic_on = plan.panic_on.as_deref();
                let label = wid.to_string();
                let w_queries = obs.counter("intel.serve.worker.queries", &[("worker", &label)]);
                let w_batches = obs.counter("intel.serve.worker.batches", &[("worker", &label)]);
                let batch_size = obs.histogram("intel.serve.worker.batch_size", &[]);
                let busy_ns = obs.histogram("intel.serve.worker.busy_ns", &[]);
                s.spawn(move || {
                    let mut items: Vec<Work> = Vec::with_capacity(batch_max);
                    while let Ok(first) = work_rx.recv() {
                        items.clear();
                        items.push(first);
                        while items.len() < batch_max {
                            match work_rx.try_recv() {
                                Ok(m) => items.push(m),
                                Err(_) => break,
                            }
                        }
                        let queries: Vec<BatchQuery> = items
                            .iter()
                            .map(|m| to_batch_query(m.kind, rest_of(&m.line)))
                            .collect();
                        let traces: Vec<Option<TraceBuilder>> = items
                            .iter()
                            .map(|m| m.traced.then(|| TraceBuilder::detached(&m.line)))
                            .collect();
                        // How many replies made it out before a panic, so
                        // the remainder of the batch can be shed.
                        let sent = std::cell::Cell::new(0usize);
                        let body = AssertUnwindSafe(|| {
                            busy_ns.time(|| {
                                triage.query_batch_with(&queries, traces, |i, br, tb| {
                                    let m = &items[i];
                                    if panic_on == Some(m.line.as_str()) {
                                        panic!("injected worker fault: {}", m.line);
                                    }
                                    let reply = reply_for(
                                        m.kind,
                                        rest_of(&m.line),
                                        &br.verdict,
                                        br.wall_ns,
                                        br.candidates as u64,
                                        br.epoch_flipped,
                                    );
                                    let trace = tb.map(|tb| tb.finish(verdict_label(&br.verdict)));
                                    obs_send(
                                        &reply_tx,
                                        ToCollector::Reply {
                                            seq: m.seq,
                                            reply,
                                            trace,
                                        },
                                        &blocked,
                                        &wait,
                                    );
                                    sent.set(sent.get() + 1);
                                });
                            });
                        });
                        w_batches.inc();
                        batch_size.record(items.len() as u64);
                        if let Err(payload) = catch_unwind(body) {
                            w_queries.add(sent.get() as u64);
                            panics.lock().unwrap().push(payload);
                            // Shed the batch's unanswered remainder so the
                            // seq stream stays dense past the failure.
                            for m in items.drain(sent.get()..) {
                                let _ = reply_tx.send(ToCollector::Shed { seq: m.seq });
                            }
                            return;
                        }
                        w_queries.add(items.len() as u64);
                    }
                })
            })
            .collect();

        // ---- collector -----------------------------------------------------
        let collector = {
            let mut triage = Triage::with_config(hub.reader(), cfg.clone());
            let mut core = SessionCore::new(obs, &opts);
            let shed_unseq = &shed_unseq;
            let reorder_high = obs.gauge("intel.serve.reorder_depth", &[]);
            let mut out = out;
            s.spawn(move || {
                let mut pending: BTreeMap<u64, ToCollector> = BTreeMap::new();
                let mut next: u64 = 0;
                let mut high: usize = 0;
                let mut io_err: Option<io::Error> = None;
                let handle = |msg: ToCollector,
                              core: &mut SessionCore,
                              triage: &mut Triage,
                              out: &mut W|
                 -> io::Result<()> {
                    match msg {
                        ToCollector::Reply { reply, trace, .. } => {
                            core.tracer.note_requests(1);
                            if let Some(trace) = trace {
                                let ns = reply.ns;
                                let hist = reply.kind.hist_name();
                                let id = core.tracer.adopt(trace);
                                core.tracer.exemplar(hist, id, ns);
                            }
                            core.record_reply(&reply);
                            writeln!(out, "{}", reply.text)
                        }
                        ToCollector::Verb { line, .. } => {
                            let (cmd, rest) = line.split_once(' ').unwrap_or((&line, ""));
                            let rest = rest.trim();
                            match classify(cmd, rest) {
                                Parsed::NeedsValue(cmd) => {
                                    core.error();
                                    writeln!(out, "err {cmd} needs a value")
                                }
                                Parsed::Unknown(other) => {
                                    core.error();
                                    writeln!(out, "err unknown command {other}")
                                }
                                Parsed::Verb(cmd) => core.verb(triage, cmd, rest, out),
                                // The reader never forwards these.
                                Parsed::Quit | Parsed::Query(_) => Ok(()),
                            }
                        }
                        ToCollector::Shed { .. } => {
                            core.shed();
                            Ok(())
                        }
                    }
                };
                for msg in reply_rx.iter() {
                    // Reader-side sheds are folded in before the next
                    // in-order message, so any verb sent after a shed
                    // observes it.
                    for _ in 0..shed_unseq.swap(0, Ordering::Relaxed) {
                        core.shed();
                    }
                    pending.insert(msg.seq(), msg);
                    high = high.max(pending.len());
                    while let Some(m) = pending.remove(&next) {
                        next += 1;
                        if let Err(e) = handle(m, &mut core, &mut triage, &mut out) {
                            io_err.get_or_insert(e);
                        }
                    }
                }
                // Conservation: every admitted seq arrives exactly once,
                // so pending is empty here unless a hole was never
                // filled; emit whatever remains in ascending order
                // rather than losing it.
                for (_, m) in std::mem::take(&mut pending) {
                    if let Err(e) = handle(m, &mut core, &mut triage, &mut out) {
                        io_err.get_or_insert(e);
                    }
                }
                for _ in 0..shed_unseq.swap(0, Ordering::Relaxed) {
                    core.shed();
                }
                reorder_high.set(high as i64);
                (core, out, io_err)
            })
        };

        // ---- reader (caller thread) ---------------------------------------
        let mut seq: u64 = 0;
        let mut q_count: u64 = 0;
        let mut reader_err: Option<io::Error> = None;
        for line in input.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    reader_err = Some(e);
                    break;
                }
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
            let rest = rest.trim();
            match classify(cmd, rest) {
                Parsed::Quit => break,
                Parsed::Query(kind) => {
                    // Replicates Tracer::begin's cadence: first query
                    // always traced, then 1-in-K (0 = never).
                    let traced = sample_every != 0 && q_count.is_multiple_of(sample_every);
                    match work_tx.try_send(Work {
                        seq,
                        kind,
                        line: line.to_string(),
                        traced,
                    }) {
                        Ok(()) => {
                            seq += 1;
                            q_count += 1;
                        }
                        Err(TrySendError::Full(_)) => {
                            shed_unseq.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Parsed::Verb(_) | Parsed::NeedsValue(_) | Parsed::Unknown(_) => {
                    if reply_tx
                        .send(ToCollector::Verb {
                            seq,
                            line: line.to_string(),
                        })
                        .is_err()
                    {
                        break;
                    }
                    seq += 1;
                }
            }
        }

        // Shutdown: starve the workers, join them, then shed whatever
        // they never picked up (all-workers-dead case) so the collector
        // sees every seq.
        drop(work_tx);
        for h in worker_handles {
            let _ = h.join();
        }
        while let Ok(m) = work_rx.try_recv() {
            let _ = reply_tx.send(ToCollector::Shed { seq: m.seq });
        }
        drop(reply_tx);
        let (core, out, collector_err) = collector.join().expect("collector never panics");
        (core, out, reader_err, collector_err)
    });
    drop(out);

    let mut core = session;
    let panics = panics.into_inner().unwrap();
    core.stats.worker_panics = panics.len() as u64;
    let session = core.finish(obs);
    if let Some(payload) = panics.into_iter().next() {
        resume_unwind(payload);
    }
    if let Some(e) = reader_err.or(collector_err) {
        return Err(e);
    }
    Ok(session)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::IntelSnapshot;
    use smishing_core::pipeline::Pipeline;
    use smishing_worldsim::{World, WorldConfig};

    fn hub() -> IntelHub {
        let w = World::generate(WorldConfig::test_scale(53));
        let out = Pipeline::default().run(&w, &Obs::noop());
        let hub = IntelHub::new();
        hub.publish(IntelSnapshot::build(&out));
        hub
    }

    fn cfg() -> TriageConfig {
        TriageConfig {
            train_model: false,
            ..TriageConfig::default()
        }
    }

    #[test]
    fn workers_answer_in_input_order() {
        let hub = hub();
        let mut t = Triage::with_config(hub.reader(), cfg());
        let mut sample = Vec::new();
        crate::serve::serve_lines(&mut t, "sample 40\n".as_bytes(), &mut sample, &Obs::noop())
            .unwrap();
        let script = String::from_utf8(sample).unwrap();

        let mut seq_out = Vec::new();
        let seq_stats =
            crate::serve::serve_lines(&mut t, script.as_bytes(), &mut seq_out, &Obs::noop())
                .unwrap();

        for workers in [1, 4] {
            let mut out = Vec::new();
            let session = serve_workers(
                &hub,
                cfg(),
                script.as_bytes(),
                &mut out,
                &Obs::noop(),
                ServeOptions::default(),
                &WorkerPlan::new(workers, 1024),
            )
            .unwrap();
            assert_eq!(out, seq_out, "workers={workers}");
            assert_eq!(session.stats.queries, seq_stats.queries);
            assert_eq!(session.stats.hits, seq_stats.hits);
            assert_eq!(session.stats.shed, 0);
        }
    }

    #[test]
    fn verbs_are_barriers_with_prefix_exact_counts() {
        let hub = hub();
        let script = "url https://nope-1.example/a\nurl https://nope-2.example/b\nstats\n\
                      url https://nope-3.example/c\nstats\nquit\n";
        let mut out = Vec::new();
        let session = serve_workers(
            &hub,
            cfg(),
            script.as_bytes(),
            &mut out,
            &Obs::noop(),
            ServeOptions::default(),
            &WorkerPlan::new(4, 64),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let stats_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("stats ")).collect();
        assert_eq!(stats_lines.len(), 2, "{text}");
        assert!(stats_lines[0].contains("queries=2 "), "{}", stats_lines[0]);
        assert!(stats_lines[1].contains("queries=3 "), "{}", stats_lines[1]);
        assert_eq!(session.stats.queries, 3);
        assert_eq!(session.stats.misses, 3);
    }

    #[test]
    fn worker_metrics_and_trace_ids_follow_request_order() {
        let hub = hub();
        let obs = Obs::enabled();
        let script = "url https://nope-1.example/a\nurl https://nope-2.example/b\n\
                      url https://nope-3.example/c\ntraces 10\n";
        let mut out = Vec::new();
        let session = serve_workers(
            &hub,
            cfg(),
            script.as_bytes(),
            &mut out,
            &obs,
            ServeOptions {
                trace: smishing_obs::TracerConfig {
                    sample_every: 2,
                    ..smishing_obs::TracerConfig::default()
                },
                ts_window: 30,
                ..ServeOptions::default()
            },
            &WorkerPlan::new(2, 64),
        )
        .unwrap();
        // 3 queries, 1-in-2 sampling: requests 1 and 3 traced.
        assert_eq!(session.tracer.requests(), 3);
        assert_eq!(session.tracer.sampled(), 2);
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("traces retained=2 sampled=2 requests=3"),
            "{text}"
        );
        let report = obs.json_report();
        for key in [
            "intel.serve.worker.queries",
            "intel.serve.worker.batch_size",
            "intel.serve.workers",
            "intel.serve.queue_depth",
        ] {
            assert!(report.contains(key), "{key} missing: {report}");
        }
    }
}
