//! # smishing-intel
//!
//! The serving half of the measurement system: an indexed, queryable view
//! of everything the pipeline learned.
//!
//! The paper's end product is threat intelligence — 25.9k URLs, 28.6k
//! sender IDs, brand and lure annotations, blocklist verdicts — and the
//! question a carrier, messaging app, or abuse desk actually asks is
//! *"is this URL / sender / incoming SMS part of a known smishing
//! campaign?"*. The batch and streaming frontends answer it offline by
//! rendering tables; this crate answers it online:
//!
//! * [`IntelSnapshot`] — an immutable, interned, hash-indexed store built
//!   from the pipeline's assembled output. Indexes over normalized URL,
//!   apex domain, sender ID, phone number, brand, and campaign-link
//!   cluster; each entry carries its evidence (forums, scam type, lures,
//!   HLR status, AV/GSB verdicts, first/last seen, report counts).
//! * [`IntelHub`] / [`IntelReader`] — an epoch-based atomic snapshot
//!   handle. The streaming engine's aligned-marker snapshots republish a
//!   fresh index mid-run while concurrent readers keep a consistent view
//!   with **zero locks on the read path** (one atomic epoch load against
//!   a thread-cached `Arc`; the publish-side lock is touched only when
//!   the epoch actually moved).
//! * [`Triage`] — takes a *raw* incoming SMS (text + sender), reuses the
//!   pipeline's own extraction/normalization stack (`textnlp` features,
//!   `webinfra` defanged-URL parsing and homoglyph host folding) plus the
//!   `detect` logistic-regression model, and returns a scored verdict:
//!   known-infrastructure hit with campaign attribution, a similarity
//!   (near-duplicate) match against the snapshot's `smishing-simindex`
//!   SimHash tier when every exact pivot missed, or a model-only score.
//!   Negative lookups — similarity misses included — go through a
//!   bounded LRU cache that is invalidated on republish.
//! * [`serve_lines`] / [`serve_session`] — the stdin/stdout line protocol
//!   behind `smish serve`, instrumented through `smishing-obs` histograms
//!   and carrying the introspection plane: tail-sampled request traces
//!   (`explain`, `traces`), a per-second time series (`timeseries`), and
//!   store health (`health`).
//! * [`serve_workers`] — the same protocol over N triage workers with
//!   bounded-queue admission control (overload sheds are counted, never
//!   silent) and in-order reply reassembly, so multi-worker stdout stays
//!   byte-identical to the single-threaded path.
//! * [`evaluate_triage`] — the ground-truth evaluation: worldsim knows
//!   every message's true campaign, so triage precision/recall (and the
//!   campaign-held-out `detect` baseline it must beat) are computed
//!   deterministically per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod eval;
pub mod hub;
pub mod intern;
pub mod serve;
pub mod snapshot;
pub mod triage;
pub mod workers;

pub use cache::LruSet;
pub use eval::{evaluate_triage, rung_of, Rung, RungCounts, TriageEval};
pub use hub::{IntelHub, IntelReader};
pub use intern::{Interner, Sym};
pub use serve::{
    process_rss_bytes, serve_lines, serve_session, verdict_label, verdict_line, AdversaryGauge,
    ServeOptions, ServeSession, ServeStats,
};
pub use snapshot::{
    record_keys, BuildOptions, IndexSizes, IntelEntry, IntelSnapshot, RecordKeys, SnapshotDelta,
};
pub use triage::{
    Attribution, BatchQuery, BatchReply, MatchedKey, NearAttribution, Triage, TriageConfig,
    TriageVerdict,
};
pub use workers::{serve_workers, WorkerPlan};
