//! The immutable, interned, hash-indexed intelligence store.
//!
//! [`IntelSnapshot::build`] digests a [`PipelineOutput`] — the assembled,
//! canonical output of the one execution core — into one entry per unique
//! record, with secondary indexes over every pivot an abuse desk queries
//! by: normalized URL, apex domain (registrable domain or free-hosting
//! site), sender ID, phone number, impersonated brand, and campaign-link
//! cluster. Each entry carries its evidence: which forums reported it,
//! how often, first/last seen, scam type and lures, HLR line status, and
//! AV/GSB verdicts.
//!
//! The snapshot is immutable after build (the read path is lock-free by
//! construction) and owns every byte — no borrow of the world or the
//! pipeline output survives — so an `Arc<IntelSnapshot>` can be handed to
//! any thread and republished mid-stream through the
//! [`IntelHub`](crate::IntelHub).
//!
//! Key derivation lives in one place ([`record_keys`]) so the index
//! builder, the query normalizer, and the linear-scan reference the
//! proptests compare against can never drift apart.

use crate::intern::{Interner, Sym};
use smishing_core::analysis::linking::{pivot_keys, LinkingPivots, WEAK_KEY_CAP};
use smishing_core::curation::{CuratedMessage, DedupMode};
use smishing_core::enrich::EnrichedRecord;
use smishing_core::pipeline::PipelineOutput;
use smishing_simindex::{DocInput, NearResult, SimIndex};
use smishing_stats::unionfind::UnionFind;
use smishing_telecom::NumberStatus;
use smishing_textnlp::normalize::normalize_token;
use smishing_types::{Forum, Language, LureSet, PostId, ScamType, SenderId, UnixTime};
use smishing_webinfra::{
    fold_host, free_hosting_site, parse_url, registrable_domain, ParsedUrl, ShortenerCatalog,
};
use std::collections::{HashMap, HashSet};

/// The index keys of one enriched record, exactly as the snapshot builder
/// derives them. Shared by [`IntelSnapshot::build`], the query
/// normalizers, and the tests' linear-scan reference.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordKeys {
    /// Canonical URL string (`ParsedUrl::to_url_string`).
    pub url: Option<String>,
    /// Apex domain: registrable domain or free-hosting site of a direct
    /// URL; `None` for shortened / click-to-chat links (destination
    /// hidden, §3.3.5).
    pub domain: Option<String>,
    /// Sender ID as displayed (`SenderId::display_string`).
    pub sender: Option<String>,
    /// Digits-only E.164 for phone senders.
    pub phone: Option<String>,
    /// Normalized impersonated-brand token.
    pub brand: Option<String>,
}

/// Apex-domain rule for a parsed URL — the same decision
/// `UrlParseEnricher` makes at enrichment time, applied to raw queries.
pub fn domain_of(parsed: &ParsedUrl) -> Option<String> {
    let catalog = ShortenerCatalog::new();
    if catalog.service_of(parsed).is_some() || catalog.is_whatsapp_link(parsed) {
        return None;
    }
    free_hosting_site(&parsed.host).or_else(|| registrable_domain(&parsed.host))
}

/// Digits-only key for a phone sender.
fn phone_key(sender: &SenderId) -> Option<String> {
    sender
        .phone()
        .map(|p| p.e164().chars().filter(|c| c.is_ascii_digit()).collect())
}

/// Derive the index keys of one enriched record.
pub fn record_keys(r: &EnrichedRecord) -> RecordKeys {
    RecordKeys {
        url: r.url.as_ref().map(|u| u.parsed.to_url_string()),
        domain: r.url.as_ref().and_then(|u| u.domain.clone()),
        sender: r.sender.as_ref().map(|s| s.display_string()),
        phone: r.sender.as_ref().and_then(phone_key),
        brand: r
            .annotation
            .brand
            .as_deref()
            .map(normalize_token)
            .filter(|b| !b.is_empty()),
    }
}

fn forum_bit(f: Forum) -> u8 {
    1 << Forum::ALL
        .iter()
        .position(|&x| x == f)
        .expect("known forum")
}

/// How to build a snapshot: dedup keying for evidence aggregation plus an
/// optional aging window for eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Dedup keying (must match the curation options the pipeline ran
    /// with, or duplicate evidence will group wrongly).
    pub mode: DedupMode,
    /// Aging window in seconds: entries whose evidence group was last
    /// reported more than this long before the newest report anywhere in
    /// the stream are evicted at build time. `None` keeps everything.
    pub window_secs: Option<u64>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            mode: DedupMode::Normalized,
            window_secs: None,
        }
    }
}

/// The curated messages that arrived since the previous epoch's snapshot
/// was built — what [`IntelSnapshot::build_incremental`] applies on top of
/// the previous epoch instead of re-digesting the whole history. Produced
/// by the exec engine (`StreamSnapshot::curated_delta` /
/// `IngestResult::curated_delta`); sorted by post id, and the deltas of
/// consecutive snapshots partition `curated_total`.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotDelta<'a> {
    /// New curated messages, duplicates included.
    pub curated: &'a [CuratedMessage],
}

impl<'a> SnapshotDelta<'a> {
    /// Wrap an engine-produced delta slice.
    pub fn new(curated: &'a [CuratedMessage]) -> Self {
        SnapshotDelta { curated }
    }
}

/// One dedup group's evidence ledger: every curated duplicate keyed like
/// dedup was, carried across epochs so the incremental build never has to
/// re-scan history.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Group {
    forums: u8,
    n: u32,
    first: UnixTime,
    last: UnixTime,
    /// Min post id of the group — by dedup construction, the post id of
    /// the enriched record that represents this group in `out.records`.
    winner: PostId,
}

impl Group {
    fn absorb(&mut self, c: &CuratedMessage) {
        self.forums |= forum_bit(c.forum);
        self.n += 1;
        self.first = self.first.min(c.posted_at);
        self.last = self.last.max(c.posted_at);
        self.winner = self.winner.min(c.post_id);
    }
}

/// Oldest last-seen a dedup group may have and still be retained.
fn cutoff_of(horizon: UnixTime, window_secs: Option<u64>) -> Option<UnixTime> {
    window_secs.map(|w| UnixTime(horizon.0.saturating_sub(w as i64)))
}

fn absorb_into(groups: &mut HashMap<String, Group>, key: String, c: &CuratedMessage) {
    groups
        .entry(key)
        .or_insert(Group {
            forums: 0,
            n: 0,
            first: c.posted_at,
            last: c.posted_at,
            winner: c.post_id,
        })
        .absorb(c);
}

/// Where one retained record's entry comes from during a build.
enum EntrySource {
    /// Compute keys, evidence, and SimHash signature from scratch.
    Fresh,
    /// Same winner as the previous epoch: reuse its key strings, enriched
    /// annotations, and SimHash signature/shingles. `fresh_evidence` is
    /// set when the record's dedup group absorbed new reports this epoch,
    /// so the forums/count/first/last evidence must be re-read from the
    /// ledger instead of copied.
    Reuse { prev_id: u32, fresh_evidence: bool },
}

/// One unique record's worth of intelligence, fully owned.
#[derive(Debug, Clone, PartialEq)]
pub struct IntelEntry {
    /// Post id of the dedup winner (ties entries back to the pipeline
    /// output for the equivalence tests).
    pub post_id: PostId,
    /// Message text of the winner (model training corpus).
    pub text: String,
    /// Canonical URL key.
    pub url: Option<Sym>,
    /// Apex-domain key.
    pub domain: Option<Sym>,
    /// Sender-ID key.
    pub sender: Option<Sym>,
    /// Phone key (digits-only E.164).
    pub phone: Option<Sym>,
    /// Normalized brand key.
    pub brand: Option<Sym>,
    /// Campaign-link cluster id ([`IntelSnapshot::cluster_entries`]).
    pub cluster: u32,
    /// Campaign-template id from the similarity index's
    /// connected-components pass (paper RQ2 lure templates) — entries
    /// whose texts are near-duplicates share a template even when every
    /// exact indicator differs.
    pub template: u32,
    /// Bitmask over [`Forum::ALL`] of forums that reported this message.
    pub forums: u8,
    /// Total reports (duplicates included) behind this entry.
    pub n_reports: u32,
    /// Earliest report time.
    pub first_seen: UnixTime,
    /// Latest report time.
    pub last_seen: UnixTime,
    /// Annotated scam category.
    pub scam_type: ScamType,
    /// Annotated lure set.
    pub lures: LureSet,
    /// Detected language.
    pub language: Option<Language>,
    /// HLR line status for phone senders.
    pub hlr_status: Option<NumberStatus>,
    /// Whether any VirusTotal vendor flagged the URL.
    pub av_flagged: bool,
    /// GSB Lookup-API verdict for the URL.
    pub gsb_unsafe: bool,
    /// Whether enrichment was degraded by service faults.
    pub degraded: bool,
    /// Ground-truth campaign id — populated for evaluation, never used on
    /// the query path.
    pub truth_campaign: Option<u32>,
}

impl IntelEntry {
    /// Decode the forum bitmask.
    pub fn forums(&self) -> Vec<Forum> {
        Forum::ALL
            .iter()
            .copied()
            .filter(|&f| self.forums & forum_bit(f) != 0)
            .collect()
    }
}

/// Distinct-key counts of each pivot index, as reported by the serve
/// `health` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexSizes {
    /// Distinct canonical URLs.
    pub urls: usize,
    /// Distinct apex domains.
    pub domains: usize,
    /// Distinct sender keys.
    pub senders: usize,
    /// Distinct phone keys.
    pub phones: usize,
    /// Distinct brand keys.
    pub brands: usize,
}

/// The immutable, indexed intelligence store.
#[derive(Debug, Clone, PartialEq)]
pub struct IntelSnapshot {
    interner: Interner,
    entries: Vec<IntelEntry>,
    by_url: HashMap<Sym, Vec<u32>>,
    by_domain: HashMap<Sym, Vec<u32>>,
    by_sender: HashMap<Sym, Vec<u32>>,
    by_phone: HashMap<Sym, Vec<u32>>,
    by_brand: HashMap<Sym, Vec<u32>>,
    clusters: Vec<Vec<u32>>,
    cluster_campaign: Vec<Option<u32>>,
    sim: SimIndex,
    built_from_posts: u64,
    /// Evidence ledger over the *whole* history (groups are never
    /// evicted — a returning campaign keeps its full report count), keyed
    /// by dedup key. Carried forward so incremental builds apply only the
    /// delta.
    groups: HashMap<String, Group>,
    /// Curated messages (duplicates included) digested so far — the
    /// incremental guard: a delta only applies if `curated_seen + delta`
    /// equals the new total.
    curated_seen: u64,
    /// Newest report time seen anywhere in the stream — the aging clock
    /// that eviction windows measure against. Monotone across epochs.
    horizon: UnixTime,
    /// The options this snapshot was built with; an incremental build
    /// must use the same ones or it falls back to a full build.
    opts: BuildOptions,
    /// Records dropped by the aging window at this build.
    evicted: usize,
}

impl Default for IntelSnapshot {
    fn default() -> Self {
        IntelSnapshot {
            interner: Interner::default(),
            entries: Vec::new(),
            by_url: HashMap::new(),
            by_domain: HashMap::new(),
            by_sender: HashMap::new(),
            by_phone: HashMap::new(),
            by_brand: HashMap::new(),
            clusters: Vec::new(),
            cluster_campaign: Vec::new(),
            sim: SimIndex::default(),
            built_from_posts: 0,
            groups: HashMap::new(),
            curated_seen: 0,
            horizon: UnixTime(i64::MIN),
            opts: BuildOptions::default(),
            evicted: 0,
        }
    }
}

const NO_ENTRIES: &[u32] = &[];

impl IntelSnapshot {
    /// Build the store from assembled pipeline output, using the default
    /// (normalized) dedup keying for evidence aggregation.
    pub fn build(out: &PipelineOutput<'_>) -> IntelSnapshot {
        IntelSnapshot::build_full(out, BuildOptions::default())
    }

    /// Build with an explicit dedup mode (must match the curation options
    /// the pipeline ran with, or duplicate evidence will group wrongly).
    pub fn build_with(out: &PipelineOutput<'_>, mode: DedupMode) -> IntelSnapshot {
        IntelSnapshot::build_full(
            out,
            BuildOptions {
                mode,
                window_secs: None,
            },
        )
    }

    /// Build from scratch: digest the whole history. This is the
    /// reference the incremental path is pinned against — for any prefix
    /// of the stream, `build_incremental` chained over the snapshot
    /// deltas must produce exactly this snapshot.
    pub fn build_full(out: &PipelineOutput<'_>, opts: BuildOptions) -> IntelSnapshot {
        // Evidence groups: every curated duplicate, keyed like dedup was.
        let mut groups: HashMap<String, Group> = HashMap::new();
        for c in &out.curated_total {
            absorb_into(&mut groups, c.dedup_key(opts.mode), c);
        }
        let horizon = groups
            .values()
            .map(|g| g.last)
            .max()
            .unwrap_or(UnixTime(i64::MIN));

        // Retention: a record survives iff its dedup group was reported
        // within the window of the newest report anywhere.
        let cutoff = cutoff_of(horizon, opts.window_secs);
        let plan: Vec<(usize, EntrySource)> = out
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| match cutoff {
                None => true,
                Some(c) => groups
                    .get(&r.curated.dedup_key(opts.mode))
                    .is_none_or(|g| g.last >= c),
            })
            .map(|(i, _)| (i, EntrySource::Fresh))
            .collect();

        Self::assemble_snapshot(out, groups, horizon, opts, None, plan)
    }

    /// Build the next epoch from the previous one plus the delta of
    /// curated messages that arrived since — O(delta + retained) instead
    /// of O(history): evidence updates touch only dirty dedup groups, and
    /// unchanged entries reuse their key strings, annotations, and SimHash
    /// signatures from `prev` instead of re-deriving them.
    ///
    /// Falls back to [`IntelSnapshot::build_full`] when there is no
    /// previous snapshot, the options changed, or the delta does not line
    /// up with what `prev` had digested (`prev.curated_seen + delta` must
    /// equal the new curated total).
    pub fn build_incremental(
        out: &PipelineOutput<'_>,
        prev: Option<&IntelSnapshot>,
        delta: SnapshotDelta<'_>,
        opts: BuildOptions,
    ) -> IntelSnapshot {
        let Some(prev) = prev else {
            return Self::build_full(out, opts);
        };
        if prev.opts != opts
            || prev.curated_seen + delta.curated.len() as u64 != out.curated_total.len() as u64
        {
            return Self::build_full(out, opts);
        }

        // Apply the delta to the carried evidence ledger. A dedup key is
        // *dirty* when the delta touched it; everything else kept exactly
        // the evidence (and the winner) it had last epoch.
        let mut groups = prev.groups.clone();
        let mut horizon = prev.horizon;
        let mut dirty_keys: HashSet<String> = HashSet::new();
        for c in delta.curated {
            let key = c.dedup_key(opts.mode);
            horizon = horizon.max(c.posted_at);
            dirty_keys.insert(key.clone());
            absorb_into(&mut groups, key, c);
        }
        // A record is dirty iff its dedup group is — and because both the
        // pipeline's dedup winner and `Group::winner` are the min post id
        // of the group, the dirty records are exactly the current winners
        // of the dirty keys. Clean records never pay for a dedup-key
        // derivation.
        let dirty_posts: HashSet<PostId> = dirty_keys.iter().map(|k| groups[k].winner).collect();

        // Walk the new records against the previous entries (both in
        // canonical post-id order) and decide each record's fate.
        let cutoff = cutoff_of(horizon, opts.window_secs);
        let mut plan: Vec<(usize, EntrySource)> = Vec::with_capacity(out.records.len());
        let mut pi = 0usize;
        for (j, r) in out.records.iter().enumerate() {
            let pid = r.curated.post_id;
            while pi < prev.entries.len() && prev.entries[pi].post_id < pid {
                pi += 1;
            }
            let matched = pi < prev.entries.len() && prev.entries[pi].post_id == pid;
            let dirty = dirty_posts.contains(&pid);
            if dirty {
                // Evidence changed: re-read the ledger; keys, annotations,
                // and signature still reuse when the winner is unchanged.
                let retained = match cutoff {
                    None => true,
                    Some(c) => groups
                        .get(&r.curated.dedup_key(opts.mode))
                        .is_none_or(|g| g.last >= c),
                };
                if retained {
                    plan.push((
                        j,
                        if matched {
                            EntrySource::Reuse {
                                prev_id: pi as u32,
                                fresh_evidence: true,
                            }
                        } else {
                            EntrySource::Fresh
                        },
                    ));
                }
            } else if matched {
                // Untouched group: the previous entry's last_seen *is* the
                // group's last report, so retention needs no string work.
                if cutoff.is_none_or(|c| prev.entries[pi].last_seen >= c) {
                    plan.push((
                        j,
                        EntrySource::Reuse {
                            prev_id: pi as u32,
                            fresh_evidence: false,
                        },
                    ));
                }
            }
            // Unmatched and clean: the winner is unchanged, so this record
            // existed last epoch yet has no entry — it was already evicted,
            // and the horizon only moves forward, so it stays evicted.
        }

        Self::assemble_snapshot(out, groups, horizon, opts, Some(prev), plan)
    }

    /// Shared back half of both build paths: campaign linking, entry and
    /// index construction, and the similarity tier, over the retained
    /// records in `plan` (canonical post-id order).
    ///
    /// Reused entries re-intern their key strings so the interner is a
    /// pure function of the retained set — a reused symbol table would
    /// leak evicted strings and break incremental ≡ from-scratch.
    fn assemble_snapshot(
        out: &PipelineOutput<'_>,
        groups: HashMap<String, Group>,
        horizon: UnixTime,
        opts: BuildOptions,
        prev: Option<&IntelSnapshot>,
        plan: Vec<(usize, EntrySource)>,
    ) -> IntelSnapshot {
        // Campaign-link clusters over the retained records, with the same
        // pivots and anti-hub rule the §5.1 ablation measures. Recomputed
        // every epoch: the weak-key cap is non-monotone (a pivot can cross
        // it as reports accumulate), so a carried union-find would diverge
        // from the from-scratch reference.
        let n = plan.len();
        let mut uf = UnionFind::new(n);
        let mut key_freq: HashMap<String, u32> = HashMap::new();
        for &(ri, _) in &plan {
            for (key, strong) in pivot_keys(&out.records[ri], LinkingPivots::ALL) {
                if !strong {
                    *key_freq.entry(key).or_default() += 1;
                }
            }
        }
        let mut by_key: HashMap<String, usize> = HashMap::new();
        for (i, &(ri, _)) in plan.iter().enumerate() {
            for (key, strong) in pivot_keys(&out.records[ri], LinkingPivots::ALL) {
                if !strong && key_freq.get(&key).copied().unwrap_or(0) > WEAK_KEY_CAP {
                    continue;
                }
                match by_key.get(&key) {
                    Some(&j) => {
                        uf.union(i, j);
                    }
                    None => {
                        by_key.insert(key, i);
                    }
                }
            }
        }
        let roots = uf.clusters();
        // Compact root ids to dense cluster ids in first-appearance order
        // (records are in canonical post-id order, so this is stable).
        let mut dense: HashMap<usize, u32> = HashMap::new();
        let cluster_of: Vec<u32> = roots
            .iter()
            .map(|&root| {
                let next = dense.len() as u32;
                *dense.entry(root).or_insert(next)
            })
            .collect();
        let n_clusters = dense.len();

        let mut snap = IntelSnapshot {
            clusters: vec![Vec::new(); n_clusters],
            cluster_campaign: vec![None; n_clusters],
            built_from_posts: out.collection.iter().map(|(_, s)| s.posts as u64).sum(),
            curated_seen: out.curated_total.len() as u64,
            horizon,
            opts,
            evicted: out.records.len() - plan.len(),
            ..IntelSnapshot::default()
        };
        let mut cluster_votes: Vec<HashMap<u32, u32>> = vec![HashMap::new(); n_clusters];
        let mut docs: Vec<DocInput<'_>> = Vec::with_capacity(n);

        for (i, &(ri, ref src)) in plan.iter().enumerate() {
            let r = &out.records[ri];
            let id = snap.entries.len() as u32;
            let mut sym_into = |key: Option<&str>,
                                index: fn(&mut IntelSnapshot) -> &mut HashMap<Sym, Vec<u32>>|
             -> Option<Sym> {
                let key = key?;
                let sym = snap.interner.intern(key);
                index(&mut snap).entry(sym).or_default().push(id);
                Some(sym)
            };

            let entry = match *src {
                EntrySource::Fresh => {
                    let keys = record_keys(r);
                    let url = sym_into(keys.url.as_deref(), |s| &mut s.by_url);
                    let domain = sym_into(keys.domain.as_deref(), |s| &mut s.by_domain);
                    let sender = sym_into(keys.sender.as_deref(), |s| &mut s.by_sender);
                    let phone = sym_into(keys.phone.as_deref(), |s| &mut s.by_phone);
                    let brand = sym_into(keys.brand.as_deref(), |s| &mut s.by_brand);
                    let group = groups.get(&r.curated.dedup_key(opts.mode));
                    docs.push(DocInput::Text(r.curated.text.as_str()));
                    IntelEntry {
                        post_id: r.curated.post_id,
                        text: r.curated.text.clone(),
                        url,
                        domain,
                        sender,
                        phone,
                        brand,
                        cluster: 0,  // assigned below
                        template: 0, // assigned after the similarity index builds
                        forums: group.map_or(forum_bit(r.curated.forum), |g| g.forums),
                        n_reports: group.map_or(1, |g| g.n),
                        first_seen: group.map_or(r.curated.posted_at, |g| g.first),
                        last_seen: group.map_or(r.curated.posted_at, |g| g.last),
                        scam_type: r.annotation.scam_type,
                        lures: r.annotation.lures,
                        language: r.annotation.language,
                        hlr_status: r.hlr.as_ref().map(|h| h.status),
                        av_flagged: r.url.as_ref().is_some_and(|u| !u.vt.is_clean()),
                        gsb_unsafe: r.url.as_ref().is_some_and(|u| u.gsb_api_unsafe),
                        degraded: r.is_degraded(),
                        truth_campaign: r
                            .curated
                            .truth_message
                            .map(|mid| out.world.messages[mid.0 as usize].campaign.0),
                    }
                }
                EntrySource::Reuse {
                    prev_id,
                    fresh_evidence,
                } => {
                    let prev = prev.expect("reuse plan requires a previous snapshot");
                    let pe = &prev.entries[prev_id as usize];
                    let url = sym_into(pe.url.map(|s| prev.resolve(s)), |s| &mut s.by_url);
                    let domain = sym_into(pe.domain.map(|s| prev.resolve(s)), |s| &mut s.by_domain);
                    let sender = sym_into(pe.sender.map(|s| prev.resolve(s)), |s| &mut s.by_sender);
                    let phone = sym_into(pe.phone.map(|s| prev.resolve(s)), |s| &mut s.by_phone);
                    let brand = sym_into(pe.brand.map(|s| prev.resolve(s)), |s| &mut s.by_brand);
                    let mut e = IntelEntry {
                        url,
                        domain,
                        sender,
                        phone,
                        brand,
                        cluster: 0,
                        template: 0,
                        ..pe.clone()
                    };
                    if fresh_evidence {
                        if let Some(g) = groups.get(&r.curated.dedup_key(opts.mode)) {
                            e.forums = g.forums;
                            e.n_reports = g.n;
                            e.first_seen = g.first;
                            e.last_seen = g.last;
                        }
                    }
                    docs.push(DocInput::Reuse(prev_id));
                    e
                }
            };

            let cluster = cluster_of[i];
            snap.clusters[cluster as usize].push(id);
            if let Some(c) = entry.truth_campaign {
                *cluster_votes[cluster as usize].entry(c).or_default() += 1;
            }
            snap.entries.push(IntelEntry { cluster, ..entry });
        }
        snap.groups = groups;

        // Majority ground-truth campaign per cluster (ties broken by the
        // smaller campaign id for determinism) — evaluation only.
        for (cluster, votes) in cluster_votes.into_iter().enumerate() {
            snap.cluster_campaign[cluster] = votes
                .into_iter()
                .max_by_key(|&(c, n)| (n, std::cmp::Reverse(c)))
                .map(|(c, _)| c);
        }

        // Similarity tier: one SimHash doc per entry, in entry order, so
        // doc ids ARE entry ids. Built here so every published epoch
        // carries its index — the read path never builds anything. On the
        // incremental path, reused docs skip shingling + signature work
        // entirely, and template components update incrementally when no
        // doc was evicted.
        snap.sim = match prev {
            Some(p) => SimIndex::rebuild(p.sim(), docs),
            None => SimIndex::build(snap.entries.iter().map(|e| e.text.as_str())),
        };
        for (id, e) in snap.entries.iter_mut().enumerate() {
            e.template = snap.sim.template_of(id as u32);
        }
        snap
    }

    /// Number of entries (== unique records of the source run).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in canonical post-id order.
    pub fn entries(&self) -> &[IntelEntry] {
        &self.entries
    }

    /// One entry by id.
    pub fn entry(&self, id: u32) -> &IntelEntry {
        &self.entries[id as usize]
    }

    /// The string behind an interned key.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// Posts the source run had consumed when this snapshot was built.
    pub fn built_from_posts(&self) -> u64 {
        self.built_from_posts
    }

    /// Curated messages (duplicates included) digested so far — what the
    /// next epoch's delta must line up against.
    pub fn curated_seen(&self) -> u64 {
        self.curated_seen
    }

    /// The options this snapshot was built with.
    pub fn build_options(&self) -> BuildOptions {
        self.opts
    }

    /// The aging window, if any.
    pub fn window_secs(&self) -> Option<u64> {
        self.opts.window_secs
    }

    /// Newest report time seen anywhere in the stream — the clock the
    /// aging window measures against.
    pub fn horizon(&self) -> UnixTime {
        self.horizon
    }

    /// Records dropped by the aging window at this build. Retained count
    /// is [`IntelSnapshot::len`].
    pub fn evicted_count(&self) -> usize {
        self.evicted
    }

    /// Number of campaign-link clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Entry ids of one cluster.
    pub fn cluster_entries(&self, cluster: u32) -> &[u32] {
        self.clusters
            .get(cluster as usize)
            .map_or(NO_ENTRIES, |v| v)
    }

    /// Majority ground-truth campaign of a cluster (evaluation only).
    pub fn cluster_campaign(&self, cluster: u32) -> Option<u32> {
        self.cluster_campaign.get(cluster as usize).copied()?
    }

    fn lookup<'a>(&self, index: &'a HashMap<Sym, Vec<u32>>, key: &str) -> &'a [u32] {
        self.interner
            .get(key)
            .and_then(|sym| index.get(&sym))
            .map_or(NO_ENTRIES, |v| v)
    }

    /// Entries for an exact canonical URL key (already normalized).
    pub fn lookup_url_key(&self, key: &str) -> &[u32] {
        self.lookup(&self.by_url, key)
    }

    /// Entries for a raw URL query: defanged, scheme-less, and
    /// mixed-script spellings normalize through the same `webinfra`
    /// parser the pipeline uses.
    pub fn lookup_url(&self, raw: &str) -> &[u32] {
        match parse_url(raw) {
            Some(p) => self.lookup_url_key(&p.to_url_string()),
            None => NO_ENTRIES,
        }
    }

    /// Entries for an apex-domain query (homoglyphs folded).
    pub fn lookup_domain(&self, raw: &str) -> &[u32] {
        self.lookup(&self.by_domain, &fold_host(raw.trim()))
    }

    /// Entries for an exact sender-key query.
    pub fn lookup_sender_key(&self, key: &str) -> &[u32] {
        self.lookup(&self.by_sender, key)
    }

    /// Entries for a raw sender query, parsed like the pipeline parses
    /// sender strings (E.164 canonicalization for phone numbers).
    pub fn lookup_sender(&self, raw: &str) -> &[u32] {
        match smishing_core::enrich::parse_sender(raw) {
            Some(s) => {
                let hit = self.lookup_sender_key(&s.display_string());
                if hit.is_empty() {
                    phone_key(&s).map_or(NO_ENTRIES, |p| self.lookup(&self.by_phone, &p))
                } else {
                    hit
                }
            }
            None => NO_ENTRIES,
        }
    }

    /// Entries for a digits-only phone query.
    pub fn lookup_phone(&self, raw: &str) -> &[u32] {
        let digits: String = raw.chars().filter(|c| c.is_ascii_digit()).collect();
        self.lookup(&self.by_phone, &digits)
    }

    /// Entries for a brand query (normalized like brand NER input).
    pub fn lookup_brand(&self, raw: &str) -> &[u32] {
        self.lookup(&self.by_brand, &normalize_token(raw))
    }

    /// Entry texts — the triage model's training corpus.
    pub fn texts(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.text.as_str())
    }

    /// The similarity index over entry texts (doc ids == entry ids).
    pub fn sim(&self) -> &SimIndex {
        &self.sim
    }

    /// Number of distinct campaign templates (similarity components).
    pub fn template_count(&self) -> usize {
        self.sim.template_count() as usize
    }

    /// Distinct-key counts of every pivot index — what the serve `health`
    /// verb reports so an operator can see the store's shape at a glance.
    pub fn index_sizes(&self) -> IndexSizes {
        IndexSizes {
            urls: self.by_url.len(),
            domains: self.by_domain.len(),
            senders: self.by_sender.len(),
            phones: self.by_phone.len(),
            brands: self.by_brand.len(),
        }
    }

    /// Near-duplicate entries of a raw message text: banded SimHash
    /// candidates ranked by Hamming distance, re-ranked by exact n-gram
    /// Jaccard. Match ids are entry ids.
    pub fn near(&self, text: &str, k: usize) -> NearResult {
        self.sim.nearest(&self.sim.query(text), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smishing_core::pipeline::Pipeline;
    use smishing_obs::Obs;
    use smishing_worldsim::{World, WorldConfig};
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| World::generate(WorldConfig::test_scale(41)))
    }

    fn snap() -> &'static IntelSnapshot {
        static S: OnceLock<IntelSnapshot> = OnceLock::new();
        S.get_or_init(|| {
            let out = Pipeline::default().run(world(), &Obs::noop());
            IntelSnapshot::build(&out)
        })
    }

    #[test]
    fn every_record_becomes_one_entry() {
        let out = Pipeline::default().run(world(), &Obs::noop());
        let s = IntelSnapshot::build(&out);
        assert_eq!(s.len(), out.records.len());
        for (e, r) in s.entries().iter().zip(&out.records) {
            assert_eq!(e.post_id, r.curated.post_id);
        }
    }

    #[test]
    fn url_lookup_roundtrips_through_keys() {
        let s = snap();
        let mut checked = 0;
        for e in s.entries().iter().take(200) {
            if let Some(u) = e.url {
                let raw = s.resolve(u).to_string();
                let ids = s.lookup_url(&raw);
                assert!(!ids.is_empty(), "{raw}");
                assert!(ids.iter().any(|&i| s.entry(i).post_id == e.post_id));
                checked += 1;
            }
        }
        assert!(checked > 20, "only {checked} URL entries");
    }

    #[test]
    fn absent_keys_miss() {
        let s = snap();
        assert!(s
            .lookup_url("https://definitely-not-seen.example/x")
            .is_empty());
        assert!(s.lookup_domain("not-a-known-apex.example").is_empty());
        assert!(s.lookup_sender("NOSUCHSENDER").is_empty());
        assert!(s.lookup_url("not a url at all").is_empty());
    }

    #[test]
    fn evidence_counts_duplicates() {
        let s = snap();
        let total: u64 = s.entries().iter().map(|e| e.n_reports as u64).sum();
        let out = Pipeline::default().run(world(), &Obs::noop());
        // Every curated duplicate lands in exactly one entry's evidence.
        assert_eq!(total, out.curated_total.len() as u64);
        assert!(s.entries().iter().all(|e| e.first_seen <= e.last_seen));
        assert!(s.entries().iter().any(|e| e.n_reports > 1));
    }

    #[test]
    fn clusters_partition_the_entries() {
        let s = snap();
        let mut seen = vec![false; s.len()];
        for c in 0..s.cluster_count() as u32 {
            for &id in s.cluster_entries(c) {
                assert_eq!(s.entry(id).cluster, c);
                assert!(!seen[id as usize], "entry {id} in two clusters");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
        assert!(s.cluster_count() > 1);
        assert!(s.cluster_count() < s.len());
    }

    #[test]
    fn templates_are_dense_and_group_identical_texts() {
        let s = snap();
        let n_templates = s.template_count();
        assert!(n_templates > 1);
        assert!(n_templates <= s.len());
        let max = s.entries().iter().map(|e| e.template).max().unwrap();
        assert_eq!(max as usize + 1, n_templates, "template ids are dense");
        // Identical texts are trivially near-duplicates.
        let mut by_text: HashMap<&str, u32> = HashMap::new();
        for e in s.entries() {
            if let Some(&t) = by_text.get(e.text.as_str()) {
                assert_eq!(t, e.template, "{}", e.text);
            } else {
                by_text.insert(e.text.as_str(), e.template);
            }
        }
        // Fewer templates than entries: the corpus has real variants.
        assert!(n_templates < s.len());
    }

    #[test]
    fn near_finds_indexed_texts_and_rejects_unrelated() {
        let s = snap();
        let e = &s.entries()[0];
        let r = s.near(&e.text, 3);
        let top = r.matches.first().expect("self near-match");
        assert_eq!(top.hamming, 0);
        assert_eq!(s.entry(top.id).template, e.template);
        assert!(r.candidates >= r.matches.len());
        let none = s.near("completely unrelated grocery list: eggs, milk, bread", 3);
        assert!(none.matches.is_empty(), "{:?}", none.matches);
    }

    #[test]
    fn defanged_and_homoglyph_queries_normalize() {
        let s = snap();
        let e = s
            .entries()
            .iter()
            .find(|e| e.url.is_some())
            .expect("some URL entry");
        let clean = s.resolve(e.url.unwrap()).to_string();
        let defanged = clean
            .replacen("https://", "hxxps://", 1)
            .replace('.', "[.]");
        assert_eq!(s.lookup_url(&clean), s.lookup_url(&defanged), "{defanged}");
    }
}
