//! Epoch-based atomic snapshot publication.
//!
//! The streaming engine's aligned-marker snapshots republish a fresh
//! [`IntelSnapshot`] mid-run; query threads must keep answering from a
//! consistent view the whole time. The contract:
//!
//! * **Readers take zero locks on the hot path.** [`IntelReader::current`]
//!   is one `Acquire` load of the epoch counter compared against the
//!   reader's thread-local cache; only when the epoch actually moved does
//!   the reader touch the publish-side mutex to clone the new `Arc`.
//! * **Publishes are atomic.** A reader observes either the old snapshot
//!   or the new one, never a mix — snapshots are immutable and swapped
//!   whole.
//! * **Epochs are monotone.** Readers can detect a republish (and e.g.
//!   invalidate negative caches) by watching
//!   [`IntelReader::epoch_seen`].

use crate::snapshot::IntelSnapshot;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct HubInner {
    /// Bumped *after* the slot is swapped; 0 = nothing published yet.
    epoch: AtomicU64,
    slot: Mutex<Option<Arc<IntelSnapshot>>>,
    /// When the slot was last swapped — the serve `health` verb reports
    /// its elapsed as the epoch age. Off the hot path (publishes only).
    published_at: Mutex<Option<Instant>>,
}

/// The writer-side handle: publish snapshots, mint readers.
#[derive(Debug, Clone, Default)]
pub struct IntelHub {
    inner: Arc<HubInner>,
}

impl IntelHub {
    /// A hub with nothing published yet (readers see `None`).
    pub fn new() -> IntelHub {
        IntelHub::default()
    }

    /// A hub whose epoch counter starts at `epoch` with nothing published
    /// yet — how a resumed server re-enters the epoch sequence recorded in
    /// its checkpoint: seed with `checkpoint_epoch - 1` and the first
    /// republish lands on `checkpoint_epoch`.
    pub fn with_epoch(epoch: u64) -> IntelHub {
        let hub = IntelHub::default();
        hub.inner.epoch.store(epoch, Ordering::Release);
        hub
    }

    /// Publish a snapshot, returning the new epoch (≥ 1).
    pub fn publish(&self, snap: IntelSnapshot) -> u64 {
        self.publish_arc(Arc::new(snap))
    }

    /// Publish an already-shared snapshot.
    pub fn publish_arc(&self, snap: Arc<IntelSnapshot>) -> u64 {
        *self.inner.slot.lock() = Some(snap);
        *self.inner.published_at.lock() = Some(Instant::now());
        // Release-bump after the swap: a reader that sees the new epoch is
        // guaranteed to find (at least) this snapshot in the slot.
        self.inner.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// Time since the last publish (`None` before the first). Not the hot
    /// path: takes the publish-side lock.
    pub fn epoch_age(&self) -> Option<Duration> {
        self.inner.published_at.lock().map(|t| t.elapsed())
    }

    /// The current epoch (0 until the first publish).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// The latest snapshot, if any (locks; not the hot path).
    pub fn latest(&self) -> Option<Arc<IntelSnapshot>> {
        self.inner.slot.lock().clone()
    }

    /// Mint a reader. Readers are independent — each caches its own
    /// `Arc`, so handing one to every serving thread keeps the hot path
    /// contention-free.
    pub fn reader(&self) -> IntelReader {
        IntelReader {
            inner: Arc::clone(&self.inner),
            cached: None,
            seen: 0,
        }
    }
}

/// A reading handle with a thread-cached snapshot.
#[derive(Debug, Clone)]
pub struct IntelReader {
    inner: Arc<HubInner>,
    cached: Option<Arc<IntelSnapshot>>,
    seen: u64,
}

impl IntelReader {
    /// The snapshot to answer from right now. Lock-free unless a
    /// republish happened since the last call.
    pub fn current(&mut self) -> Option<&Arc<IntelSnapshot>> {
        let epoch = self.inner.epoch.load(Ordering::Acquire);
        if epoch != self.seen {
            // Cold path: a republish (or first publish) happened.
            self.cached = self.inner.slot.lock().clone();
            self.seen = epoch;
        }
        self.cached.as_ref()
    }

    /// The epoch of the cached view (0 before the first successful
    /// [`current`](Self::current)).
    pub fn epoch_seen(&self) -> u64 {
        self.seen
    }

    /// Time since the hub's last publish (`None` before the first) — the
    /// serve `health` verb's epoch age. Takes the publish-side lock, so
    /// keep it off the per-query path.
    pub fn epoch_age(&self) -> Option<Duration> {
        self.inner.published_at.lock().map(|t| t.elapsed())
    }

    /// Block until something is published (or the timeout passes).
    /// Returns whether a snapshot is now visible.
    pub fn wait_ready(&mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.current().is_some() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n: usize) -> IntelSnapshot {
        // Structure-only stand-in: `n` empty-keyed entries.
        use smishing_core::pipeline::Pipeline;
        use smishing_obs::Obs;
        use smishing_worldsim::{World, WorldConfig};
        let w = World::generate(WorldConfig::test_scale(n as u64 + 7));
        let out = Pipeline::default().run(&w, &Obs::noop());
        IntelSnapshot::build(&out)
    }

    #[test]
    fn empty_hub_reads_none() {
        let hub = IntelHub::new();
        let mut r = hub.reader();
        assert_eq!(hub.epoch(), 0);
        assert!(r.current().is_none());
        assert!(hub.epoch_age().is_none());
        assert!(r.epoch_age().is_none());
        assert!(!r.wait_ready(Duration::from_millis(5)));
    }

    #[test]
    fn epoch_age_resets_on_republish() {
        let hub = IntelHub::new();
        hub.publish(tiny(1));
        std::thread::sleep(Duration::from_millis(5));
        let aged = hub.epoch_age().expect("published");
        assert!(aged >= Duration::from_millis(5));
        hub.publish(tiny(2));
        let fresh = hub.epoch_age().expect("republished");
        assert!(fresh < aged);
        assert!(hub.reader().epoch_age().is_some());
    }

    #[test]
    fn publish_bumps_epoch_and_readers_converge() {
        let hub = IntelHub::new();
        let mut r = hub.reader();
        let a = tiny(1);
        let len_a = a.len();
        assert_eq!(hub.publish(a), 1);
        assert_eq!(r.current().unwrap().len(), len_a);
        assert_eq!(r.epoch_seen(), 1);
        // Republish: the reader sees the new view on its next call, and
        // an old clone held elsewhere stays valid (immutability).
        let held = Arc::clone(r.current().unwrap());
        let b = tiny(2);
        let len_b = b.len();
        assert_eq!(hub.publish(b), 2);
        assert_eq!(r.current().unwrap().len(), len_b);
        assert_eq!(held.len(), len_a);
    }

    #[test]
    fn concurrent_readers_see_whole_snapshots() {
        let hub = IntelHub::new();
        hub.publish(tiny(1));
        crossbeam::scope(|s| {
            for _ in 0..4 {
                let mut r = hub.reader();
                s.spawn(move |_| {
                    for _ in 0..200 {
                        let snap = r.current().expect("published").clone();
                        // A consistent view: entry count never changes
                        // under our feet within one borrow.
                        assert_eq!(snap.len(), snap.entries().len());
                    }
                });
            }
            let publisher = hub.clone();
            s.spawn(move |_| {
                for _ in 0..3 {
                    publisher.publish(tiny(2));
                }
            });
        })
        .expect("no reader panics");
        assert_eq!(hub.epoch(), 4);
    }
}
