//! Ground-truth evaluation: does the full triage stack beat the model
//! alone?
//!
//! The honest deployment question for an intelligence store is whether
//! *index + model* outperforms the campaign-held-out model baseline —
//! the setting where a classifier must generalize to campaigns it never
//! trained on, but the report index legitimately contains whatever users
//! already reported. Split campaigns 70/30, train the baseline
//! logistic-regression on train-campaign messages only, then score the
//! test-campaign messages (plus fresh ham) both ways.
//!
//! Attribution accuracy is scored against the generator's truth column:
//! an infrastructure hit attributes correctly when its cluster's
//! majority campaign is the queried message's true campaign.

use crate::hub::IntelHub;
use crate::snapshot::IntelSnapshot;
use crate::triage::{Triage, TriageConfig, TriageVerdict};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use smishing_core::pipeline::PipelineOutput;
use smishing_detect::{featurize, LogisticRegression, LrConfig};
use smishing_textnlp::ham::generate_ham;
use smishing_worldsim::World;

/// Precision/recall of the triage stack vs the standalone model, on the
/// same campaign-held-out test set.
#[derive(Debug, Clone)]
pub struct TriageEval {
    /// Smishing messages in the test set (held-out campaigns).
    pub n_smish: usize,
    /// Generated ham messages in the test set.
    pub n_ham: usize,
    /// Test messages resolved by the infrastructure index.
    pub infra_hits: usize,
    /// Full-stack precision (positives called at the threshold).
    pub triage_precision: f64,
    /// Full-stack recall.
    pub triage_recall: f64,
    /// Full-stack F1.
    pub triage_f1: f64,
    /// Campaign-held-out model-only precision.
    pub baseline_precision: f64,
    /// Campaign-held-out model-only recall.
    pub baseline_recall: f64,
    /// Campaign-held-out model-only F1.
    pub baseline_f1: f64,
    /// Fraction of attributed infrastructure hits whose cluster majority
    /// campaign equals the message's true campaign.
    pub attribution_accuracy: f64,
    /// Test messages resolved by the similarity (near-duplicate) rung.
    pub near_hits: usize,
    /// Rotated-indicator probe messages evaluated (the world's
    /// `template_variants` knob; 0 when the knob is off).
    pub probe_n: usize,
    /// Probe recall through exact pivots only (similarity rung disabled).
    /// Probes rotate URL and sender, so this is what the old ladder loses.
    pub probe_exact_recall: f64,
    /// Probe recall with the similarity rung enabled: exact hits plus
    /// near-duplicate matches against the indexed lure texts.
    pub probe_near_recall: f64,
    /// Full-ladder rung attribution over the probes: which rung resolved
    /// each probe. Counts always sum to [`TriageEval::probe_n`].
    pub probe_rungs: RungCounts,
}

/// The triage-ladder rung that resolved a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rung {
    /// An exact pivot hit (URL, apex, sender, or phone).
    Exact,
    /// The similarity (near-duplicate) rung.
    Near,
    /// No infrastructure match; the model called it at the threshold.
    Model,
    /// Nothing caught it.
    Miss,
}

/// Attribute a full-ladder verdict to the rung that resolved it.
pub fn rung_of(v: &TriageVerdict, threshold: f64) -> Rung {
    match v {
        TriageVerdict::Hit(_) => Rung::Exact,
        TriageVerdict::Near(_) => Rung::Near,
        TriageVerdict::ModelOnly { score } if *score >= threshold => Rung::Model,
        _ => Rung::Miss,
    }
}

/// Per-rung verdict counts (drift scorecards, probe attribution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RungCounts {
    /// Exact-pivot hits.
    pub exact: usize,
    /// Similarity-rung hits.
    pub near: usize,
    /// Model-threshold calls.
    pub model: usize,
    /// Complete misses.
    pub miss: usize,
}

impl RungCounts {
    /// Tally one verdict's rung.
    pub fn record(&mut self, rung: Rung) {
        match rung {
            Rung::Exact => self.exact += 1,
            Rung::Near => self.near += 1,
            Rung::Model => self.model += 1,
            Rung::Miss => self.miss += 1,
        }
    }

    /// Total verdicts tallied.
    pub fn total(&self) -> usize {
        self.exact + self.near + self.model + self.miss
    }

    /// Verdicts resolved by an infrastructure rung (exact or near).
    pub fn infra(&self) -> usize {
        self.exact + self.near
    }

    /// Accumulate another tally into this one.
    pub fn merge(&mut self, other: &RungCounts) {
        self.exact += other.exact;
        self.near += other.near;
        self.model += other.model;
        self.miss += other.miss;
    }
}

fn prf(tp: usize, fp: usize, fn_: usize) -> (f64, f64, f64) {
    let p = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let r = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    };
    (p, r, f1)
}

/// Run the head-to-head. Returns `None` when the world is too small to
/// split (fewer than two campaigns, or an empty side).
pub fn evaluate_triage(world: &World, out: &PipelineOutput<'_>, seed: u64) -> Option<TriageEval> {
    let threshold = 0.5;

    // Campaign-grouped 70/30 split over the ground-truth campaign ids.
    let mut campaigns: Vec<u32> = (0..world.campaigns.len() as u32).collect();
    if campaigns.len() < 2 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    campaigns.shuffle(&mut rng);
    let n_test = (campaigns.len() * 3 / 10).max(1);
    let test_set: std::collections::HashSet<u32> = campaigns[..n_test].iter().copied().collect();

    let mut train_texts: Vec<&str> = Vec::new();
    // (sender, text, true campaign) triples for the held-out side.
    let mut test_msgs: Vec<(String, &str, u32)> = Vec::new();
    for m in &world.messages {
        if test_set.contains(&m.campaign.0) {
            test_msgs.push((m.sender.display_string(), &m.text, m.campaign.0));
        } else {
            train_texts.push(&m.text);
        }
    }
    if train_texts.is_empty() || test_msgs.is_empty() {
        return None;
    }

    // Baseline: LR on train-campaign messages + generated ham.
    let mut train_rng = StdRng::seed_from_u64(seed ^ 0x5EED_0001);
    let train_ham = generate_ham(train_texts.len().max(40), &mut train_rng);
    let mut samples: Vec<(Vec<String>, bool)> =
        Vec::with_capacity(train_texts.len() + train_ham.len());
    for t in &train_texts {
        samples.push((featurize(t), true));
    }
    for h in &train_ham {
        samples.push((featurize(&h.text), false));
    }
    let baseline = LogisticRegression::train(
        &samples,
        LrConfig {
            seed,
            ..LrConfig::default()
        },
    )?;

    // Fresh ham for the test side (never seen in training).
    let mut eval_rng = StdRng::seed_from_u64(seed ^ 0x5EED_0002);
    let eval_ham = generate_ham(test_msgs.len().max(40), &mut eval_rng);

    // Full stack: index over everything reported + snapshot-trained model.
    let hub = IntelHub::new();
    hub.publish(IntelSnapshot::build(out));
    let mut triage = Triage::with_config(
        hub.reader(),
        TriageConfig {
            threshold,
            model_seed: seed,
            ..TriageConfig::default()
        },
    );

    let (mut b_tp, mut b_fp, mut b_fn) = (0usize, 0usize, 0usize);
    let (mut t_tp, mut t_fp, mut t_fn) = (0usize, 0usize, 0usize);
    let mut infra_hits = 0usize;
    let mut near_hits = 0usize;
    let mut attributed = 0usize;
    let mut attributed_right = 0usize;

    for (sender, text, campaign) in &test_msgs {
        if baseline.probability(&featurize(text)) >= threshold {
            b_tp += 1;
        } else {
            b_fn += 1;
        }
        let v = triage.triage(Some(sender), text);
        if let TriageVerdict::Hit(a) = &v {
            infra_hits += 1;
            if let Some(truth) = a.truth_campaign {
                attributed += 1;
                if truth == *campaign {
                    attributed_right += 1;
                }
            }
        }
        if v.near().is_some() {
            near_hits += 1;
        }
        if v.is_smishing(threshold) {
            t_tp += 1;
        } else {
            t_fn += 1;
        }
    }
    for h in &eval_ham {
        if baseline.probability(&featurize(&h.text)) >= threshold {
            b_fp += 1;
        }
        if triage.triage(None, &h.text).is_smishing(threshold) {
            t_fp += 1;
        }
    }

    // Rotated-indicator probes: the same lure under fresh URL + sender.
    // The exact-pivot ladder is scored with the similarity rung disabled;
    // the full ladder additionally counts near-duplicate matches.
    let mut exact_triage = Triage::with_config(
        hub.reader(),
        TriageConfig {
            threshold,
            model_seed: seed,
            near: false,
            ..TriageConfig::default()
        },
    );
    let mut probe_exact = 0usize;
    let mut probe_near = 0usize;
    let mut probe_rungs = RungCounts::default();
    for m in &world.probe_messages {
        let sender = m.sender.display_string();
        if matches!(
            exact_triage.triage(Some(&sender), &m.text),
            TriageVerdict::Hit(_)
        ) {
            probe_exact += 1;
        }
        let v = triage.triage(Some(&sender), &m.text);
        if matches!(v, TriageVerdict::Hit(_)) || v.near().is_some() {
            probe_near += 1;
        }
        probe_rungs.record(rung_of(&v, threshold));
    }
    let probe_n = world.probe_messages.len();
    let probe_rate = |hits: usize| {
        if probe_n == 0 {
            0.0
        } else {
            hits as f64 / probe_n as f64
        }
    };

    let (bp, br, bf1) = prf(b_tp, b_fp, b_fn);
    let (tp, tr, tf1) = prf(t_tp, t_fp, t_fn);
    Some(TriageEval {
        n_smish: test_msgs.len(),
        n_ham: eval_ham.len(),
        infra_hits,
        triage_precision: tp,
        triage_recall: tr,
        triage_f1: tf1,
        baseline_precision: bp,
        baseline_recall: br,
        baseline_f1: bf1,
        attribution_accuracy: attributed_right as f64 / attributed.max(1) as f64,
        near_hits,
        probe_n,
        probe_exact_recall: probe_rate(probe_exact),
        probe_near_recall: probe_rate(probe_near),
        probe_rungs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smishing_core::pipeline::Pipeline;
    use smishing_obs::Obs;
    use smishing_worldsim::WorldConfig;

    #[test]
    fn triage_beats_or_matches_campaign_held_out_baseline() {
        let w = World::generate(WorldConfig::test_scale(59));
        let out = Pipeline::default().run(&w, &Obs::noop());
        let e = evaluate_triage(&w, &out, 59).expect("world big enough to split");
        assert!(e.n_smish > 0 && e.n_ham > 0);
        assert!(
            e.infra_hits > 0,
            "reported test-campaign infrastructure should hit the index"
        );
        assert!(
            e.triage_recall >= e.baseline_recall,
            "index hits must not lower recall: {} < {}",
            e.triage_recall,
            e.baseline_recall
        );
        assert!(
            e.triage_precision + 1e-9 >= e.baseline_precision,
            "ham carries no reported infrastructure, so precision cannot drop: {} < {}",
            e.triage_precision,
            e.baseline_precision
        );
        assert!(
            e.attribution_accuracy >= 0.5,
            "majority-campaign attribution should mostly be right, got {}",
            e.attribution_accuracy
        );
    }

    #[test]
    fn near_rung_recovers_rotated_probe_recall() {
        let w = World::generate(WorldConfig {
            template_variants: 0.6,
            ..WorldConfig::test_scale(59)
        });
        let out = Pipeline::default().run(&w, &Obs::noop());
        let e = evaluate_triage(&w, &out, 59).expect("world big enough to split");
        assert!(e.probe_n > 0, "template_variants generated probes");
        assert!(
            e.probe_near_recall > e.probe_exact_recall,
            "similarity rung must recover rotated-indicator campaigns: near {} vs exact {}",
            e.probe_near_recall,
            e.probe_exact_recall
        );
        // Rung attribution partitions the probes: every probe lands on
        // exactly one rung, and the near rung is doing real work.
        assert_eq!(e.probe_rungs.total(), e.probe_n, "{:?}", e.probe_rungs);
        assert!(e.probe_rungs.near > 0, "{:?}", e.probe_rungs);
        assert!(
            (e.probe_rungs.infra() as f64 / e.probe_n as f64 - e.probe_near_recall).abs() < 1e-9,
            "infra rungs and near-recall agree: {:?}",
            e.probe_rungs
        );
        assert!(
            e.triage_precision + 1e-9 >= e.baseline_precision,
            "the near rung must not cost precision: {} < {}",
            e.triage_precision,
            e.baseline_precision
        );
    }

    #[test]
    fn degenerate_worlds_return_none_gracefully() {
        let w = World::generate(WorldConfig::test_scale(59));
        let out = Pipeline::default().run(&w, &Obs::noop());
        // A world with campaigns still evaluates; the guard is for the
        // pathological case, which test_scale never produces — simulate it
        // by checking the guard arithmetic directly instead.
        assert!(evaluate_triage(&w, &out, 1).is_some());
    }
}
