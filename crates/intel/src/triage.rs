//! Scoring raw incoming SMS against the store.
//!
//! [`Triage`] is what a messaging app's abuse desk would embed: hand it
//! the raw text and sender of an incoming message and get a scored
//! verdict back. The lookup ladder mirrors the paper's pivot strength
//! ordering (§5.1): exact URL, then apex domain, then sender identity —
//! a hit anywhere is a known-infrastructure match with campaign
//! attribution; otherwise the `detect` logistic-regression model
//! (retrained from each published snapshot's texts) scores the message
//! alone.
//!
//! Extraction reuses the pipeline's own stack — `webinfra` refanging +
//! homoglyph host folding and `textnlp` featurization — so a defanged or
//! mixed-script spelling of known infrastructure cannot dodge the index.
//!
//! Between the last exact pivot and the model sits the similarity rung:
//! when a campaign has rotated every exact indicator, the snapshot's
//! SimHash index (`smishing-simindex`) is probed for near-duplicate
//! texts, and a match returns the nearest template's evidence with a
//! similarity score ([`NearAttribution`]).
//!
//! Misses are remembered in a bounded [`LruSet`] keyed per pivot —
//! similarity misses included, keyed by the query's signature + shingle
//! fingerprint; the cache is cleared whenever the reader observes a
//! republish, because a fresh snapshot may turn yesterday's miss into
//! today's hit (for the similarity rung: a newly reported campaign may
//! now sit within radius of a previously unmatched text).

use crate::cache::LruSet;
use crate::hub::IntelReader;
use crate::snapshot::{domain_of, IntelSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smishing_core::enrich::parse_sender;
use smishing_detect::{featurize, LogisticRegression, LrConfig};
use smishing_obs::TraceBuilder;
use smishing_simindex::{set_hash, SimMatch};
use smishing_textnlp::ham::generate_ham;
use smishing_types::{ScamType, UnixTime};
use smishing_webinfra::{find_url_in_text, parse_url, refang};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock ns since `start` when tracing, 0 otherwise.
fn since(start: Option<Instant>) -> u64 {
    start.map_or(0, |t| {
        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
    })
}

/// Which pivot matched known infrastructure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchedKey {
    /// Exact canonical URL.
    Url,
    /// Apex domain (registrable domain / free-hosting site).
    Domain,
    /// Sender ID.
    Sender,
    /// Phone number (digits-only E.164).
    Phone,
}

impl MatchedKey {
    /// Stable lowercase label for display and metrics.
    pub fn label(self) -> &'static str {
        match self {
            MatchedKey::Url => "url",
            MatchedKey::Domain => "domain",
            MatchedKey::Sender => "sender",
            MatchedKey::Phone => "phone",
        }
    }
}

/// A known-infrastructure match with its campaign attribution.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// The pivot that matched.
    pub matched: MatchedKey,
    /// The canonical key that matched.
    pub key: String,
    /// The first matching entry (canonical post-id order).
    pub entry: u32,
    /// Campaign-template id of that entry (similarity component).
    pub template: u32,
    /// Campaign-link cluster of that entry.
    pub cluster: u32,
    /// Entries in that cluster.
    pub cluster_size: usize,
    /// Annotated scam category of the matched entry.
    pub scam_type: ScamType,
    /// Impersonated brand, when identified.
    pub brand: Option<String>,
    /// Reports (duplicates included) behind the matched entry.
    pub n_reports: u32,
    /// Earliest report of the matched entry.
    pub first_seen: UnixTime,
    /// Latest report of the matched entry.
    pub last_seen: UnixTime,
    /// Majority ground-truth campaign of the cluster — evaluation only,
    /// a real deployment has no truth column.
    pub truth_campaign: Option<u32>,
}

/// A near-duplicate match from the similarity tier: the message is not
/// known infrastructure, but its text is a near-duplicate of a reported
/// campaign's — the rotated-indicator case.
#[derive(Debug, Clone)]
pub struct NearAttribution {
    /// The matched entry (canonical post-id order).
    pub entry: u32,
    /// Campaign-template id of the matched entry (similarity component).
    pub template: u32,
    /// Campaign-link cluster of the matched entry.
    pub cluster: u32,
    /// Entries in that cluster.
    pub cluster_size: usize,
    /// Hamming distance between query and entry signatures.
    pub hamming: u32,
    /// Exact n-gram Jaccard similarity in `[0, 1]`.
    pub jaccard: f64,
    /// Size of the banded candidate set that was examined.
    pub candidates: usize,
    /// Annotated scam category of the matched entry.
    pub scam_type: ScamType,
    /// Impersonated brand, when identified.
    pub brand: Option<String>,
    /// Reports (duplicates included) behind the matched entry.
    pub n_reports: u32,
    /// Earliest report of the matched entry.
    pub first_seen: UnixTime,
    /// Latest report of the matched entry.
    pub last_seen: UnixTime,
    /// Majority ground-truth campaign of the cluster — evaluation only.
    pub truth_campaign: Option<u32>,
}

impl NearAttribution {
    /// Similarity score in `(0.5, 1.0]`: halfway between the model
    /// threshold and an exact-infrastructure hit, scaled by Jaccard — so
    /// an accepted near match always calls smishing at the default
    /// threshold, but never outranks exact evidence.
    pub fn score(&self) -> f64 {
        0.5 + self.jaccard / 2.0
    }
}

/// The outcome of a query or triage call.
#[derive(Debug, Clone)]
pub enum TriageVerdict {
    /// A lookup key matched known infrastructure (score 1.0).
    Hit(Attribution),
    /// Every exact pivot missed, but the text is a near-duplicate of a
    /// reported campaign's (score `0.5 + jaccard/2`).
    Near(NearAttribution),
    /// No infrastructure match; the detection model scored the text.
    ModelOnly {
        /// P(smishing) from the logistic-regression model.
        score: f64,
    },
    /// No infrastructure match and nothing to score (no snapshot, no
    /// model, or a key-only query that missed).
    Unknown,
}

impl TriageVerdict {
    /// The verdict's score in `[0, 1]`.
    pub fn score(&self) -> f64 {
        match self {
            TriageVerdict::Hit(_) => 1.0,
            TriageVerdict::Near(a) => a.score(),
            TriageVerdict::ModelOnly { score } => *score,
            TriageVerdict::Unknown => 0.0,
        }
    }

    /// Whether the verdict calls the message smishing at `threshold`.
    pub fn is_smishing(&self, threshold: f64) -> bool {
        self.score() >= threshold
    }

    /// The attribution, when this is an infrastructure hit.
    pub fn attribution(&self) -> Option<&Attribution> {
        match self {
            TriageVerdict::Hit(a) => Some(a),
            _ => None,
        }
    }

    /// The near-match attribution, when this is a similarity hit.
    pub fn near(&self) -> Option<&NearAttribution> {
        match self {
            TriageVerdict::Near(a) => Some(a),
            _ => None,
        }
    }
}

/// Triage tuning knobs.
#[derive(Debug, Clone)]
pub struct TriageConfig {
    /// Model score at or above which a message is called smishing.
    pub threshold: f64,
    /// Negative-cache capacity (0 disables the cache).
    pub cache_capacity: usize,
    /// Seed for model training (ham generation + SGD shuffling).
    pub model_seed: u64,
    /// Whether to train the model at all (key-only deployments skip it).
    pub train_model: bool,
    /// Whether the similarity rung runs between the exact-pivot ladder
    /// and the model fallback.
    pub near: bool,
}

impl Default for TriageConfig {
    fn default() -> Self {
        TriageConfig {
            threshold: 0.5,
            cache_capacity: 4096,
            model_seed: 0xF15F,
            train_model: true,
            near: true,
        }
    }
}

/// Train the snapshot-backed detection model: entry texts are the
/// positives, freshly generated ham the negatives.
pub fn train_model(snap: &IntelSnapshot, seed: u64) -> Option<LogisticRegression> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ham = generate_ham(snap.len().max(40), &mut rng);
    let mut samples: Vec<(Vec<String>, bool)> = Vec::with_capacity(snap.len() + ham.len());
    for t in snap.texts() {
        samples.push((featurize(t), true));
    }
    for h in &ham {
        samples.push((featurize(&h.text), false));
    }
    LogisticRegression::train(
        &samples,
        LrConfig {
            seed,
            ..LrConfig::default()
        },
    )
}

/// The raw-SMS scoring front door.
#[derive(Debug)]
pub struct Triage {
    reader: IntelReader,
    cfg: TriageConfig,
    cache: LruSet,
    model: Option<LogisticRegression>,
}

impl Triage {
    /// A triage head over a reader, with default tuning.
    pub fn new(reader: IntelReader) -> Triage {
        Triage::with_config(reader, TriageConfig::default())
    }

    /// A triage head with explicit tuning.
    pub fn with_config(reader: IntelReader, cfg: TriageConfig) -> Triage {
        let cache = LruSet::new(cfg.cache_capacity);
        Triage {
            reader,
            cfg,
            cache,
            model: None,
        }
    }

    /// The configured smishing threshold.
    pub fn threshold(&self) -> f64 {
        self.cfg.threshold
    }

    /// Current snapshot (refreshing the reader); `None` before the first
    /// publish.
    pub fn snapshot(&mut self) -> Option<Arc<IntelSnapshot>> {
        self.ensure_fresh()
    }

    /// Refresh the reader; on a republish, drop stale negatives and
    /// retrain the model from the new snapshot's texts.
    fn ensure_fresh(&mut self) -> Option<Arc<IntelSnapshot>> {
        self.refresh().0
    }

    /// [`Self::ensure_fresh`], also reporting whether this refresh
    /// observed an epoch flip (the batch path surfaces that to the
    /// serving layer's republish accounting).
    fn refresh(&mut self) -> (Option<Arc<IntelSnapshot>>, bool) {
        let before = self.reader.epoch_seen();
        let Some(snap) = self.reader.current().cloned() else {
            return (None, false);
        };
        let flipped = self.reader.epoch_seen() != before;
        if flipped {
            self.cache.clear();
            self.model = None;
        }
        if self.model.is_none() && self.cfg.train_model {
            self.model = train_model(&snap, self.cfg.model_seed);
        }
        (Some(snap), flipped)
    }

    /// Probe the index ladder, consulting and feeding the negative cache.
    /// With a trace, every rung probed (or skipped via the cache) records
    /// a span named after its pivot, with the matched-entry count as the
    /// candidate figure. Timing only happens when a trace is attached, so
    /// the untraced path never reads the clock.
    fn infra_lookup(
        &mut self,
        snap: &IntelSnapshot,
        keys: &[(MatchedKey, String)],
        mut trace: Option<&mut TraceBuilder>,
    ) -> Option<Attribution> {
        let mut missed: Vec<String> = Vec::new();
        let mut hit = None;
        for (kind, key) in keys {
            let start = trace.as_ref().map(|_| Instant::now());
            let cache_key = format!("{}:{key}", kind.label());
            if self.cache.contains(&cache_key) {
                if let Some(tb) = trace.as_deref_mut() {
                    tb.rung(
                        kind.label(),
                        since(start),
                        0,
                        format!("negative-cache skip key={key}"),
                    );
                }
                continue;
            }
            let ids = match kind {
                MatchedKey::Url => snap.lookup_url_key(key),
                MatchedKey::Domain => snap.lookup_domain(key),
                MatchedKey::Sender => snap.lookup_sender_key(key),
                MatchedKey::Phone => snap.lookup_phone(key),
            };
            let n = ids.len();
            let first = ids.first().copied();
            if let Some(tb) = trace.as_deref_mut() {
                let note = match first {
                    Some(id) => format!("hit key={key} entry={id}"),
                    None => format!("miss key={key}"),
                };
                tb.rung(kind.label(), since(start), n as u64, note);
            }
            match first {
                Some(id) => {
                    hit = Some(attribution(snap, *kind, key.clone(), id));
                    break;
                }
                None => missed.push(cache_key),
            }
        }
        // Only remember negatives from a completed ladder walk; a hit
        // higher up says nothing about the keys below it.
        for m in &missed {
            self.cache.insert(m);
        }
        hit
    }

    /// Probe the similarity rung, consulting and feeding the negative
    /// cache exactly like the exact-pivot ladder does. The cache key is
    /// the query's SimHash signature plus an order-insensitive shingle
    /// fingerprint — both derived from the text alone, so the key is
    /// stable across snapshots and invalidates with the rest of the
    /// cache on republish. Returns the best match (if accepted) and the
    /// banded candidate-set size examined.
    fn near_lookup(
        &mut self,
        snap: &IntelSnapshot,
        text: &str,
        mut trace: Option<&mut TraceBuilder>,
    ) -> (Option<NearAttribution>, usize) {
        if !self.cfg.near {
            return (None, 0);
        }
        let start = trace.as_ref().map(|_| Instant::now());
        let q = snap.sim().query(text);
        if q.is_empty() {
            if let Some(tb) = trace.as_deref_mut() {
                tb.rung("near", since(start), 0, "empty query".to_string());
            }
            return (None, 0);
        }
        let cache_key = format!("near:{:016x}:{:016x}", q.sig, set_hash(&q.shingles));
        if self.cache.contains(&cache_key) {
            if let Some(tb) = trace.as_deref_mut() {
                tb.rung("near", since(start), 0, "negative-cache skip".to_string());
            }
            return (None, 0);
        }
        let r = snap.sim().nearest(&q, 1);
        if let Some(tb) = trace {
            let note = match r.matches.first() {
                Some(m) => format!(
                    "hit entry={} hamming={} jaccard={:.3} ranked={} reranked={}",
                    m.id, m.hamming, m.jaccard, r.ranked, r.reranked
                ),
                None => format!("miss ranked={} reranked={}", r.ranked, r.reranked),
            };
            tb.rung("near", since(start), r.candidates as u64, note);
        }
        match r.matches.first() {
            Some(m) => (Some(near_attribution(snap, m, r.candidates)), r.candidates),
            None => {
                self.cache.insert(&cache_key);
                (None, r.candidates)
            }
        }
    }

    /// Key ladder for a raw URL string (exact URL, then apex domain).
    fn url_keys(raw: &str) -> Vec<(MatchedKey, String)> {
        let mut keys = Vec::new();
        if let Some(p) = parse_url(raw) {
            keys.push((MatchedKey::Url, p.to_url_string()));
            if let Some(d) = domain_of(&p) {
                keys.push((MatchedKey::Domain, d));
            }
        }
        keys
    }

    /// Key ladder for a raw sender string.
    fn sender_keys(raw: &str) -> Vec<(MatchedKey, String)> {
        let mut keys = Vec::new();
        if let Some(s) = parse_sender(raw) {
            keys.push((MatchedKey::Sender, s.display_string()));
            if let Some(p) = s.phone() {
                keys.push((
                    MatchedKey::Phone,
                    p.e164().chars().filter(|c| c.is_ascii_digit()).collect(),
                ));
            }
        }
        keys
    }

    /// Query by URL alone (the `smish query url` path). Defanged and
    /// homoglyph spellings normalize before lookup; a miss is `Unknown`,
    /// never model-scored (there is no text to score).
    pub fn query_url(&mut self, raw: &str) -> TriageVerdict {
        self.query_url_traced(raw, None)
    }

    /// [`Self::query_url`] with an optional request trace recording the
    /// url/domain rungs.
    pub fn query_url_traced(
        &mut self,
        raw: &str,
        trace: Option<&mut TraceBuilder>,
    ) -> TriageVerdict {
        let Some(snap) = self.ensure_fresh() else {
            return TriageVerdict::Unknown;
        };
        self.url_verdict(&snap, raw, trace)
    }

    /// [`Self::query_url`] against an already-refreshed snapshot (the
    /// batch path shares one `ensure_fresh` across many queries).
    fn url_verdict(
        &mut self,
        snap: &IntelSnapshot,
        raw: &str,
        trace: Option<&mut TraceBuilder>,
    ) -> TriageVerdict {
        match self.infra_lookup(snap, &Self::url_keys(raw), trace) {
            Some(a) => TriageVerdict::Hit(a),
            None => TriageVerdict::Unknown,
        }
    }

    /// Query by sender alone (the `smish query sender` path).
    pub fn query_sender(&mut self, raw: &str) -> TriageVerdict {
        self.query_sender_traced(raw, None)
    }

    /// [`Self::query_sender`] with an optional request trace recording
    /// the sender/phone rungs.
    pub fn query_sender_traced(
        &mut self,
        raw: &str,
        trace: Option<&mut TraceBuilder>,
    ) -> TriageVerdict {
        let Some(snap) = self.ensure_fresh() else {
            return TriageVerdict::Unknown;
        };
        self.sender_verdict(&snap, raw, trace)
    }

    /// [`Self::query_sender`] against an already-refreshed snapshot.
    fn sender_verdict(
        &mut self,
        snap: &IntelSnapshot,
        raw: &str,
        trace: Option<&mut TraceBuilder>,
    ) -> TriageVerdict {
        match self.infra_lookup(snap, &Self::sender_keys(raw), trace) {
            Some(a) => TriageVerdict::Hit(a),
            None => TriageVerdict::Unknown,
        }
    }

    /// Query by message text alone against the similarity tier (the
    /// `smish query near` / serve `near` path): no exact pivots, no
    /// model fallback — a miss is `Unknown`. Returns the verdict plus
    /// the banded candidate-set size (0 on cache hit or empty query),
    /// which the serving layer histograms.
    pub fn query_near_with(&mut self, text: &str) -> (TriageVerdict, usize) {
        self.query_near_traced(text, None)
    }

    /// [`Self::query_near_with`] with an optional request trace
    /// recording the near rung (candidates, ranked/reranked counts).
    pub fn query_near_traced(
        &mut self,
        text: &str,
        trace: Option<&mut TraceBuilder>,
    ) -> (TriageVerdict, usize) {
        let Some(snap) = self.ensure_fresh() else {
            return (TriageVerdict::Unknown, 0);
        };
        self.near_verdict(&snap, text, trace)
    }

    /// [`Self::query_near_with`] against an already-refreshed snapshot.
    fn near_verdict(
        &mut self,
        snap: &IntelSnapshot,
        text: &str,
        trace: Option<&mut TraceBuilder>,
    ) -> (TriageVerdict, usize) {
        match self.near_lookup(snap, text, trace) {
            (Some(a), c) => (TriageVerdict::Near(a), c),
            (None, c) => (TriageVerdict::Unknown, c),
        }
    }

    /// [`Self::query_near_with`] without the candidate count.
    pub fn query_near(&mut self, text: &str) -> TriageVerdict {
        self.query_near_with(text).0
    }

    /// Triage a raw incoming SMS: extract URL and sender, walk the index
    /// ladder, probe the similarity rung, and fall back to the model
    /// score.
    pub fn triage(&mut self, sender: Option<&str>, text: &str) -> TriageVerdict {
        self.triage_traced(sender, text, None)
    }

    /// [`Self::triage`] with an optional request trace. When a trace is
    /// attached, every rung the message traverses records a span —
    /// `refang` (body refang + URL extraction), one span per exact pivot
    /// probed (`url`/`domain`/`sender`/`phone`), `near`, and `model` —
    /// each with its wall_ns and candidate count. The untraced call
    /// compiles to the exact same ladder with zero clock reads.
    pub fn triage_traced(
        &mut self,
        sender: Option<&str>,
        text: &str,
        trace: Option<&mut TraceBuilder>,
    ) -> TriageVerdict {
        let Some(snap) = self.ensure_fresh() else {
            return TriageVerdict::Unknown;
        };
        self.msg_verdict(&snap, sender, text, trace)
    }

    /// [`Self::triage`] against an already-refreshed snapshot.
    fn msg_verdict(
        &mut self,
        snap: &IntelSnapshot,
        sender: Option<&str>,
        text: &str,
        mut trace: Option<&mut TraceBuilder>,
    ) -> TriageVerdict {
        // Reports defang; refang the whole body before URL extraction so
        // `evil [dot] com` spellings still surface their host.
        let start = trace.as_ref().map(|_| Instant::now());
        let refanged = refang(text);
        let mut keys = Vec::new();
        if let Some(u) = find_url_in_text(&refanged) {
            keys.push((MatchedKey::Url, u.to_url_string()));
            if let Some(d) = domain_of(&u) {
                keys.push((MatchedKey::Domain, d));
            }
        }
        let url_extracted = keys.first().map(|(_, u)| u.clone());
        if let Some(s) = sender {
            keys.extend(Self::sender_keys(s));
        }
        if let Some(tb) = trace.as_deref_mut() {
            let note = match &url_extracted {
                Some(url) => format!("extracted url={url}"),
                None => "no url in text".to_string(),
            };
            tb.rung("refang", since(start), keys.len() as u64, note);
        }
        if let Some(a) = self.infra_lookup(snap, &keys, trace.as_deref_mut()) {
            return TriageVerdict::Hit(a);
        }
        if let (Some(a), _) = self.near_lookup(snap, &refanged, trace.as_deref_mut()) {
            return TriageVerdict::Near(a);
        }
        let start = trace.as_ref().map(|_| Instant::now());
        let verdict = match &self.model {
            Some(m) => TriageVerdict::ModelOnly {
                score: m.probability(&featurize(text)),
            },
            None => TriageVerdict::Unknown,
        };
        if let Some(tb) = trace {
            let note = match &verdict {
                TriageVerdict::ModelOnly { score } => format!("score={score:.4}"),
                _ => "no model".to_string(),
            };
            tb.rung("model", since(start), 0, note);
        }
        verdict
    }

    /// Answer a batch of queries against a single snapshot refresh.
    ///
    /// One [`Self::refresh`] (epoch check, cache invalidation, model
    /// retrain) is amortized across the whole batch — the serve worker
    /// plane drains its queue into batches precisely to buy this. Each
    /// item is individually wall-clock timed; `epoch_flipped` is set on
    /// item 0 only when this batch's refresh observed a republish.
    ///
    /// `traces` pairs an optional [`TraceBuilder`] with each item (an
    /// empty vec means none are traced); the builder is threaded through
    /// the lookup ladder and handed back to `sink` for finishing. `sink`
    /// receives `(index, reply, trace)` in item order.
    pub fn query_batch_with<F>(
        &mut self,
        items: &[BatchQuery],
        traces: Vec<Option<TraceBuilder>>,
        mut sink: F,
    ) where
        F: FnMut(usize, BatchReply, Option<TraceBuilder>),
    {
        let (snap, flipped) = self.refresh();
        let mut traces = traces;
        traces.resize_with(items.len(), || None);
        for (i, (item, mut trace)) in items.iter().zip(traces).enumerate() {
            let start = Instant::now();
            let (verdict, candidates) = match &snap {
                None => (TriageVerdict::Unknown, 0),
                Some(snap) => match item {
                    BatchQuery::Url(raw) => (self.url_verdict(snap, raw, trace.as_mut()), 0),
                    BatchQuery::Sender(raw) => (self.sender_verdict(snap, raw, trace.as_mut()), 0),
                    BatchQuery::Near(text) => self.near_verdict(snap, text, trace.as_mut()),
                    BatchQuery::Msg { sender, text } => (
                        self.msg_verdict(snap, sender.as_deref(), text, trace.as_mut()),
                        0,
                    ),
                },
            };
            let reply = BatchReply {
                verdict,
                candidates,
                wall_ns: start.elapsed().as_nanos() as u64,
                epoch_flipped: flipped && i == 0,
            };
            sink(i, reply, trace);
        }
    }

    /// [`Self::query_batch_with`] without traces, collecting the replies.
    pub fn query_batch(&mut self, items: &[BatchQuery]) -> Vec<BatchReply> {
        let mut out = Vec::with_capacity(items.len());
        self.query_batch_with(items, Vec::new(), |_, reply, _| out.push(reply));
        out
    }

    /// Epoch of the snapshot view last answered from (0 before the first
    /// successful lookup).
    pub fn epoch_seen(&self) -> u64 {
        self.reader.epoch_seen()
    }

    /// Time since the hub's last publish (`None` before the first).
    pub fn epoch_age(&self) -> Option<Duration> {
        self.reader.epoch_age()
    }

    /// Negative-cache occupancy (entries currently remembered).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Negative-cache capacity (0 = disabled).
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }
}

/// One query in a [`Triage::query_batch`] call, mirroring the serve
/// verbs that hit the triage engine (`url`/`sender`/`near`/`msg`).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchQuery {
    /// Exact URL/domain ladder (`serve` verb `url`).
    Url(String),
    /// Exact sender/phone ladder (`serve` verb `sender`).
    Sender(String),
    /// Similarity rung only (`serve` verb `near`).
    Near(String),
    /// Full triage ladder (`serve` verb `msg`, optional `sender|text`).
    Msg {
        /// Claimed sender, when the request carried one.
        sender: Option<String>,
        /// Message body.
        text: String,
    },
}

/// Per-item result of a [`Triage::query_batch`] call.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// The triage outcome.
    pub verdict: TriageVerdict,
    /// Banded candidate-set size (meaningful for `Near` items, 0 else).
    pub candidates: usize,
    /// Wall time spent answering this item.
    pub wall_ns: u64,
    /// True on item 0 only, when this batch's snapshot refresh observed
    /// an epoch flip (republish) — the serving layer counts those.
    pub epoch_flipped: bool,
}

fn near_attribution(snap: &IntelSnapshot, m: &SimMatch, candidates: usize) -> NearAttribution {
    let e = snap.entry(m.id);
    NearAttribution {
        entry: m.id,
        template: e.template,
        cluster: e.cluster,
        cluster_size: snap.cluster_entries(e.cluster).len(),
        hamming: m.hamming,
        jaccard: m.jaccard,
        candidates,
        scam_type: e.scam_type,
        brand: e.brand.map(|b| snap.resolve(b).to_string()),
        n_reports: e.n_reports,
        first_seen: e.first_seen,
        last_seen: e.last_seen,
        truth_campaign: snap.cluster_campaign(e.cluster),
    }
}

fn attribution(snap: &IntelSnapshot, matched: MatchedKey, key: String, id: u32) -> Attribution {
    let e = snap.entry(id);
    Attribution {
        matched,
        key,
        entry: id,
        template: e.template,
        cluster: e.cluster,
        cluster_size: snap.cluster_entries(e.cluster).len(),
        scam_type: e.scam_type,
        brand: e.brand.map(|b| snap.resolve(b).to_string()),
        n_reports: e.n_reports,
        first_seen: e.first_seen,
        last_seen: e.last_seen,
        truth_campaign: snap.cluster_campaign(e.cluster),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::IntelHub;
    use smishing_core::pipeline::Pipeline;
    use smishing_obs::Obs;
    use smishing_worldsim::{World, WorldConfig};
    use std::sync::OnceLock;

    fn hub() -> &'static IntelHub {
        static H: OnceLock<IntelHub> = OnceLock::new();
        H.get_or_init(|| {
            let w = World::generate(WorldConfig::test_scale(43));
            let out = Pipeline::default().run(&w, &Obs::noop());
            let hub = IntelHub::new();
            hub.publish(IntelSnapshot::build(&out));
            hub
        })
    }

    #[test]
    fn known_url_hits_with_attribution() {
        let mut t = Triage::with_config(
            hub().reader(),
            TriageConfig {
                train_model: false,
                ..TriageConfig::default()
            },
        );
        let snap = t.snapshot().unwrap();
        let e = snap
            .entries()
            .iter()
            .find(|e| e.url.is_some())
            .expect("url entry");
        let url = snap.resolve(e.url.unwrap()).to_string();
        let v = t.query_url(&url);
        let a = v.attribution().expect("hit");
        assert_eq!(a.matched, MatchedKey::Url);
        assert_eq!(v.score(), 1.0);
        assert!(a.cluster_size >= 1);
    }

    #[test]
    fn defanged_spelling_gets_identical_verdict() {
        let mut t = Triage::with_config(
            hub().reader(),
            TriageConfig {
                train_model: false,
                ..TriageConfig::default()
            },
        );
        let snap = t.snapshot().unwrap();
        let e = snap
            .entries()
            .iter()
            .find(|e| e.url.is_some())
            .expect("url entry");
        let clean = snap.resolve(e.url.unwrap()).to_string();
        let defanged = clean
            .replacen("https://", "hxxps://", 1)
            .replace('.', "[dot]");
        let (a, b) = (t.query_url(&clean), t.query_url(&defanged));
        let (a, b) = (a.attribution().unwrap(), b.attribution().unwrap());
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.key, b.key);
        assert_eq!(a.cluster, b.cluster);
    }

    #[test]
    fn misses_are_cached_and_model_scores_text() {
        let mut t = Triage::new(hub().reader());
        let v = t.triage(
            Some("+15550000001"),
            "hello, are we still on for lunch tomorrow?",
        );
        assert!(
            matches!(v, TriageVerdict::ModelOnly { .. }),
            "benign text should fall through to the model: {v:?}"
        );
        assert!(v.score() < 0.5, "score {}", v.score());
        assert!(!t.cache.is_empty(), "negative lookups should be cached");

        let smishy = t.triage(
            None,
            "URGENT: your bank account is suspended, verify now at http://totally-new.example/login to avoid closure",
        );
        assert!(smishy.score() > v.score());
    }

    #[test]
    fn republish_clears_negative_cache() {
        let w = World::generate(WorldConfig::test_scale(47));
        let out = Pipeline::default().run(&w, &Obs::noop());
        let hub = IntelHub::new();
        hub.publish(IntelSnapshot::build(&out));
        let mut t = Triage::with_config(
            hub.reader(),
            TriageConfig {
                train_model: false,
                ..TriageConfig::default()
            },
        );
        assert!(matches!(
            t.query_url("https://never-reported.example/x"),
            TriageVerdict::Unknown
        ));
        assert!(!t.cache.is_empty());
        hub.publish(IntelSnapshot::build(&out));
        let _ = t.query_url("https://also-never-reported.example/y");
        // The republish invalidated the old negatives; only the new
        // query's misses remain.
        assert!(t.cache.len() <= 2);
    }

    #[test]
    fn eviction_republish_turns_hit_into_miss() {
        use crate::snapshot::BuildOptions;
        let w = World::generate(WorldConfig::test_scale(59));
        let out = Pipeline::default().run(&w, &Obs::noop());
        let full = IntelSnapshot::build(&out);

        // Age out the older three quarters of the store: window = time
        // between the newest report and the 75th-percentile entry.
        let mut lasts: Vec<i64> = full.entries().iter().map(|e| e.last_seen.0).collect();
        lasts.sort_unstable();
        let cutoff = lasts[lasts.len() * 3 / 4];
        let horizon = full.horizon().0;
        assert!(cutoff < horizon, "need age spread to exercise eviction");
        let windowed = IntelSnapshot::build_full(
            &out,
            BuildOptions {
                window_secs: Some((horizon - cutoff) as u64),
                ..BuildOptions::default()
            },
        );
        assert!(windowed.evicted_count() > 0, "window must evict something");
        assert!(!windowed.is_empty(), "window must retain something");

        // A URL the full store serves but whose every ladder rung (exact
        // URL, apex domain) is gone from the windowed store.
        let url = full
            .entries()
            .iter()
            .filter_map(|e| e.url.map(|s| full.resolve(s).to_string()))
            .find(|u| {
                Triage::url_keys(u).iter().all(|(kind, key)| match kind {
                    MatchedKey::Url => windowed.lookup_url_key(key).is_empty(),
                    _ => windowed.lookup_domain(key).is_empty(),
                })
            })
            .expect("an evicted URL with no surviving ladder rung");

        let hub = IntelHub::new();
        hub.publish(full);
        let mut t = Triage::with_config(
            hub.reader(),
            TriageConfig {
                train_model: false,
                ..TriageConfig::default()
            },
        );
        assert!(
            t.query_url(&url).attribution().is_some(),
            "key must hit before eviction"
        );

        // Republish with the aging window: the key must transition to a
        // genuine miss — not a stale hit, and not a stale cached verdict.
        hub.publish(windowed);
        assert!(
            matches!(t.query_url(&url), TriageVerdict::Unknown),
            "evicted key must miss after the windowed republish"
        );
        // The repeat is served from the refreshed negative cache and
        // stays a miss.
        assert!(matches!(t.query_url(&url), TriageVerdict::Unknown));
    }

    #[test]
    fn rotated_indicators_fall_through_to_the_near_rung() {
        let mut t = Triage::with_config(
            hub().reader(),
            TriageConfig {
                train_model: false,
                ..TriageConfig::default()
            },
        );
        let snap = t.snapshot().unwrap();
        let e = snap
            .entries()
            .iter()
            .find(|e| e.text.contains("http"))
            .expect("an entry with a URL in its text");
        // Rotate every exact indicator: fresh URL, no sender.
        let rotated: String = e
            .text
            .split_whitespace()
            .map(|tok| {
                if tok.contains("http") {
                    "https://rotated-fresh.example/xk9"
                } else {
                    tok
                }
            })
            .collect::<Vec<_>>()
            .join(" ");
        let v = t.triage(None, &rotated);
        let a = v.near().expect("near rung should catch the rotation");
        assert_eq!(a.hamming, 0, "URL rotation must not perturb shingles");
        assert!(v.is_smishing(t.threshold()));
        assert!(v.score() > 0.5 && v.score() <= 1.0);
        assert_eq!(a.template, snap.entry(a.entry).template);
    }

    #[test]
    fn republish_flips_cached_near_miss_to_hit() {
        // Prefix store: only the first quarter of the report stream has
        // been seen, so campaigns first reported later are absent.
        let w = World::generate(WorldConfig::test_scale(53));
        let full_out = Pipeline::default().run(&w, &Obs::noop());
        let full = IntelSnapshot::build(&full_out);
        let mut pw = World::generate(WorldConfig::test_scale(53));
        pw.posts.truncate((pw.posts.len() / 4).max(1));
        let prefix_out = Pipeline::default().run(&pw, &Obs::noop());
        let prefix = IntelSnapshot::build(&prefix_out);

        let text = full
            .entries()
            .iter()
            .map(|e| e.text.clone())
            .find(|t| prefix.near(t, 1).matches.is_empty())
            .expect("a campaign text the prefix store cannot near-match");

        let hub = IntelHub::new();
        hub.publish(prefix);
        let mut t = Triage::with_config(
            hub.reader(),
            TriageConfig {
                train_model: false,
                ..TriageConfig::default()
            },
        );
        assert!(matches!(t.query_near(&text), TriageVerdict::Unknown));
        let cached = t.cache.len();
        assert!(cached > 0, "similarity misses must be cached");
        // The repeat consults the cache instead of re-missing into it.
        assert!(matches!(t.query_near(&text), TriageVerdict::Unknown));
        assert_eq!(t.cache.len(), cached);

        // Republish with the newly similar campaign reported: the cached
        // miss must be invalidated, not served.
        hub.publish(full);
        let v = t.query_near(&text);
        let a = v.near().expect("republish must flip the cached near miss");
        assert_eq!(a.hamming, 0);
        assert!((a.jaccard - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_snapshot_is_unknown() {
        let hub = IntelHub::new();
        let mut t = Triage::new(hub.reader());
        assert!(matches!(t.triage(None, "anything"), TriageVerdict::Unknown));
        // The batch path degrades identically.
        let replies = t.query_batch(&[
            BatchQuery::Url("https://x.example/a".into()),
            BatchQuery::Near("anything".into()),
        ]);
        assert_eq!(replies.len(), 2);
        assert!(replies
            .iter()
            .all(|r| matches!(r.verdict, TriageVerdict::Unknown)));
    }

    #[test]
    fn batch_matches_singles_and_flags_the_flip_once() {
        let w = World::generate(WorldConfig::test_scale(61));
        let out = Pipeline::default().run(&w, &Obs::noop());
        let hub = IntelHub::new();
        hub.publish(IntelSnapshot::build(&out));
        let cfg = TriageConfig {
            train_model: false,
            ..TriageConfig::default()
        };
        let mut batch = Triage::with_config(hub.reader(), cfg.clone());
        let mut single = Triage::with_config(hub.reader(), cfg);

        let snap = batch.snapshot().unwrap();
        let e = snap
            .entries()
            .iter()
            .find(|e| e.url.is_some())
            .expect("url entry");
        let url = snap.resolve(e.url.unwrap()).to_string();
        let items = vec![
            BatchQuery::Url(url.clone()),
            BatchQuery::Sender("shortcode 999999".into()),
            BatchQuery::Near(e.text.clone()),
            BatchQuery::Msg {
                sender: None,
                text: e.text.clone(),
            },
            BatchQuery::Url("https://never-reported.example/x".into()),
        ];
        let replies = batch.query_batch(&items);
        assert_eq!(replies.len(), items.len());
        // A snapshot() already consumed the first refresh above, so no
        // flip is observed by the batch itself.
        assert!(replies.iter().all(|r| !r.epoch_flipped));
        assert!(replies.iter().all(|r| r.wall_ns > 0));
        assert!(replies[2].candidates >= 1, "near reply carries candidates");

        let singles = vec![
            single.query_url(&url),
            single.query_sender("shortcode 999999"),
            single.query_near(&e.text),
            single.triage(None, &e.text),
            single.query_url("https://never-reported.example/x"),
        ];
        for (i, (b, s)) in replies.iter().zip(&singles).enumerate() {
            assert_eq!(
                b.verdict.score(),
                s.score(),
                "batch item {i} diverged from the single-query path"
            );
        }
        assert!(matches!(replies[0].verdict, TriageVerdict::Hit(_)));
        assert!(matches!(replies[2].verdict, TriageVerdict::Near(_)));

        // A republish between batches surfaces exactly one flip flag, on
        // item 0 of the first batch that sees the new epoch.
        hub.publish(IntelSnapshot::build(&out));
        let replies = batch.query_batch(&items);
        let flips: Vec<bool> = replies.iter().map(|r| r.epoch_flipped).collect();
        assert!(flips[0], "{flips:?}");
        assert!(flips[1..].iter().all(|f| !f), "{flips:?}");
        let replies = batch.query_batch(&items);
        assert!(replies.iter().all(|r| !r.epoch_flipped));
    }

    #[test]
    fn traced_triage_names_every_rung_traversed() {
        use smishing_obs::{Tracer, TracerConfig};
        let mut t = Triage::with_config(
            hub().reader(),
            TriageConfig {
                train_model: false,
                ..TriageConfig::default()
            },
        );
        let mut tracer = Tracer::new(TracerConfig::default());

        // A miss walks the whole ladder: refang, sender pivots, near, model.
        let mut tb = tracer.begin_forced("msg");
        let v = t.triage_traced(
            Some("+15550000001"),
            "hello, are we still on for lunch tomorrow?",
            Some(&mut tb),
        );
        assert!(matches!(v, TriageVerdict::Unknown), "{v:?}");
        let trace = tb.finish("unknown");
        let rungs: Vec<&str> = trace.spans.iter().map(|s| s.rung).collect();
        assert_eq!(rungs, ["refang", "sender", "phone", "near", "model"]);
        assert!(trace.spans.iter().skip(1).all(|s| s.wall_ns > 0));
        assert!(trace.spans[3].note.starts_with("miss"), "{trace:?}");

        // An exact-URL hit stops the ladder at its first rung.
        let snap = t.snapshot().unwrap();
        let e = snap
            .entries()
            .iter()
            .find(|e| e.url.is_some())
            .expect("url entry");
        let url = snap.resolve(e.url.unwrap()).to_string();
        let mut tb = tracer.begin_forced("url");
        let v = t.query_url_traced(&url, Some(&mut tb));
        assert!(v.attribution().is_some());
        let trace = tb.finish("hit");
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].rung, "url");
        assert!(trace.spans[0].note.starts_with("hit key="), "{trace:?}");
        assert!(trace.spans[0].candidates >= 1);

        // A repeat of the original miss shows the negative cache at work.
        let mut tb = tracer.begin_forced("msg");
        let _ = t.triage_traced(
            Some("+15550000001"),
            "hello, are we still on for lunch tomorrow?",
            Some(&mut tb),
        );
        let trace = tb.finish("unknown");
        assert!(
            trace
                .spans
                .iter()
                .any(|s| s.note.starts_with("negative-cache skip")),
            "{trace:?}"
        );
        assert!(t.cache_len() > 0);
        assert_eq!(t.cache_capacity(), TriageConfig::default().cache_capacity);
    }
}
