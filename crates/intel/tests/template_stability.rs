//! Template ids are an **epoch-local naming**, not a stable handle — the
//! similarity index recomputes its connected components at every
//! republish and reindexes them densely (`0..template_count`), so the
//! number an entry carries can change whenever the store grows. What IS
//! contractual is *membership*: two entries that share a template (or a
//! campaign-link cluster) in one published snapshot still share one in
//! every later snapshot — new reports only add near-duplicate edges, so
//! components can merge but never split (with aging disabled).
//!
//! This suite pins both halves: the membership guarantee consumers may
//! rely on, and the id instability they must not (DESIGN.md §10 — store
//! template ids only alongside the epoch they were read at).

use smishing_core::exec::{ingest, ExecPlan, SnapshotPlan};
use smishing_core::CurationOptions;
use smishing_intel::{BuildOptions, IntelSnapshot, SnapshotDelta};
use smishing_obs::Obs;
use smishing_worldsim::{ReportStream, World, WorldConfig};
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

/// Every published snapshot of one chained incremental run (aging off,
/// so components only ever merge).
fn epochs() -> &'static Vec<IntelSnapshot> {
    static CELL: OnceLock<Vec<IntelSnapshot>> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::generate(WorldConfig {
            scale: 0.01,
            seed: 11,
            ..WorldConfig::default()
        });
        let opts = BuildOptions::default();
        let every = (world.posts.len() as u64 / 4).max(1);
        let plan = ExecPlan::sequential().with_snapshots(SnapshotPlan::every(every));
        let mut snaps: Vec<IntelSnapshot> = Vec::new();
        let result = ingest(
            &world,
            ReportStream::replay(&world),
            &CurationOptions::default(),
            &plan,
            &Obs::noop(),
            |s| {
                let snap = IntelSnapshot::build_incremental(
                    &s.output,
                    snaps.last(),
                    SnapshotDelta::new(&s.curated_delta),
                    opts,
                );
                snaps.push(snap);
            },
        );
        snaps.push(IntelSnapshot::build_incremental(
            &result.output,
            snaps.last(),
            SnapshotDelta::new(&result.curated_delta),
            opts,
        ));
        assert!(snaps.len() >= 4, "need a real epoch chain");
        snaps
    })
}

/// Entry text → (template id, cluster id). Text is the stable join key
/// across snapshots (an entry is a dedup group; its representative text
/// never changes). Texts appearing more than once are dropped from the
/// map rather than risking a bad join.
fn groups(snap: &IntelSnapshot) -> HashMap<&str, (u32, u32)> {
    let mut seen_twice = HashSet::new();
    let mut map = HashMap::new();
    for e in snap.entries() {
        if map
            .insert(e.text.as_str(), (e.template, e.cluster))
            .is_some()
        {
            seen_twice.insert(e.text.as_str());
        }
    }
    for t in seen_twice {
        map.remove(t);
    }
    map
}

#[test]
fn template_and_cluster_membership_survives_republish() {
    let snaps = epochs();
    for pair in snaps.windows(2) {
        let (before, after) = (groups(&pair[0]), groups(&pair[1]));
        // Collect each old component's member texts, then demand they
        // land in exactly one new component: merges are fine (new edges
        // arrived), splits would break every consumer keying on
        // "these two lures are the same campaign template".
        let mut by_old_template: HashMap<u32, Vec<&str>> = HashMap::new();
        let mut by_old_cluster: HashMap<u32, Vec<&str>> = HashMap::new();
        for (text, &(t, c)) in &before {
            by_old_template.entry(t).or_default().push(text);
            by_old_cluster.entry(c).or_default().push(text);
        }
        for (old, members) in &by_old_template {
            let new_ids: HashSet<u32> = members
                .iter()
                .filter_map(|t| after.get(*t).map(|&(nt, _)| nt))
                .collect();
            assert!(
                new_ids.len() <= 1,
                "template {old} split across republish into {new_ids:?}"
            );
        }
        for (old, members) in &by_old_cluster {
            let new_ids: HashSet<u32> = members
                .iter()
                .filter_map(|t| after.get(*t).map(|&(_, nc)| nc))
                .collect();
            assert!(
                new_ids.len() <= 1,
                "cluster {old} split across republish into {new_ids:?}"
            );
        }
    }
}

#[test]
fn template_ids_are_reindexed_per_snapshot_not_stable() {
    let snaps = epochs();
    // Dense per-snapshot naming: ids are exactly 0..template_count in
    // every epoch, so they MUST shift as components appear and merge.
    for (i, s) in snaps.iter().enumerate() {
        let max = s.entries().iter().map(|e| e.template).max().unwrap();
        assert_eq!(
            max as usize + 1,
            s.template_count(),
            "epoch {i}: template ids are a dense reindex"
        );
    }
    // The non-contract, pinned so nobody starts relying on it by
    // accident: an entry present from the first epoch to the last does
    // NOT keep its template id (deterministic for this seed).
    let (first, last) = (groups(&snaps[0]), groups(&snaps[snaps.len() - 1]));
    let renamed = first
        .iter()
        .filter(|(text, &(t, _))| last.get(*text).is_some_and(|&(lt, _)| lt != t))
        .count();
    assert!(
        renamed > 0,
        "every surviving entry kept its template id — if ids became \
         stable on purpose, document the new contract in DESIGN.md §10 \
         and delete this assertion"
    );
}
