//! Satellite: the worker plane's byte-parity contract, property-tested.
//!
//! Arbitrary interleavings of every shippable request kind (`url` hits
//! and misses, `sender`, `near`, `msg`, `sample`, `stats`, malformed
//! lines) are replayed through [`serve_workers`] at worker counts
//! {1, 2, 4} and through the sequential [`serve_session`] loop, against
//! both hub flavors `smish serve` builds: a batch-pipeline store and a
//! stream-ingested store republished across several epochs (the
//! `--stream` path). With no shedding, the responses must be
//! byte-identical — modulo wall-clock digits in the `stats` line and the
//! near-candidate quantiles, which a per-worker negative cache may
//! legitimately shift (a repeated `near` miss is served from the LRU in
//! one mode and recomputed on a cold worker in the other; the *verdict*
//! is identical either way).

use proptest::prelude::*;
use smishing_core::pipeline::Pipeline;
use smishing_core::CurationOptions;
use smishing_intel::{
    serve_session, serve_workers, IntelHub, IntelSnapshot, ServeOptions, ServeStats, Triage,
    TriageConfig, WorkerPlan,
};
use smishing_obs::Obs;
use smishing_stream::{ingest, ExecPlan, SnapshotPlan};
use smishing_worldsim::{ReportStream, World, WorldConfig};
use std::sync::OnceLock;

const SEED: u64 = 61;

/// Ready-to-feed request material drawn from one snapshot.
struct Pools {
    hit_urls: Vec<String>,
    senders: Vec<String>,
    near_texts: Vec<String>,
    msg_texts: Vec<String>,
}

fn pools(snap: &IntelSnapshot) -> Pools {
    let mut p = Pools {
        hit_urls: Vec::new(),
        senders: Vec::new(),
        near_texts: Vec::new(),
        msg_texts: Vec::new(),
    };
    for (id, e) in snap.entries().iter().enumerate() {
        if let Some(u) = e.url {
            p.hit_urls.push(snap.resolve(u).to_string());
        }
        if let Some(s) = e.sender {
            p.senders.push(snap.resolve(s).to_string());
        }
        if !snap.sim().shingles_of(id as u32).is_empty() {
            p.near_texts.push(e.text.clone());
        }
        p.msg_texts.push(e.text.clone());
    }
    assert!(!p.hit_urls.is_empty() && !p.near_texts.is_empty());
    p
}

/// Batch flavor: one publish from the batch pipeline.
fn batch_hub() -> &'static (IntelHub, Pools) {
    static CELL: OnceLock<(IntelHub, Pools)> = OnceLock::new();
    CELL.get_or_init(|| {
        let w = World::generate(WorldConfig::test_scale(SEED));
        let out = Pipeline::default().run(&w, &Obs::noop());
        let hub = IntelHub::new();
        hub.publish(IntelSnapshot::build(&out));
        let p = pools(&hub.latest().unwrap());
        (hub, p)
    })
}

/// Stream flavor: the `--stream` path — aligned mid-ingest snapshots
/// republish the store across several epochs, final publish last. The
/// serve runs start after the last publish, so both execution modes see
/// the same (multi-epoch) hub state.
fn stream_hub() -> &'static (IntelHub, Pools) {
    static CELL: OnceLock<(IntelHub, Pools)> = OnceLock::new();
    CELL.get_or_init(|| {
        let w = World::generate(WorldConfig::test_scale(SEED));
        let hub = IntelHub::new();
        let every = (w.posts.len() as u64 / 3).max(1);
        let result = ingest(
            &w,
            ReportStream::replay(&w),
            &CurationOptions::default(),
            &ExecPlan::default().with_snapshots(SnapshotPlan::every(every)),
            &Obs::noop(),
            |s| {
                hub.publish(IntelSnapshot::build(&s.output));
            },
        );
        hub.publish(IntelSnapshot::build(&result.output));
        assert!(hub.epoch() >= 2, "stream flavor must republish");
        let p = pools(&hub.latest().unwrap());
        (hub, p)
    })
}

fn cfg() -> TriageConfig {
    TriageConfig {
        train_model: false,
        ..TriageConfig::default()
    }
}

/// One scripted request as raw draws: a kind roll, a pool index, and a
/// miss salt, resolved against the pools at render time (the vendored
/// proptest stand-in speaks ranges and tuples, not `sample::Index`).
type Req = (u8, usize, u32);

fn req() -> impl Strategy<Value = Req> {
    (0u8..100, 0usize..1_000_000, 0u32..u32::MAX)
}

fn render(script: &[Req], p: &Pools) -> String {
    let pick = |pool: &[String], idx: usize| pool[idx % pool.len()].clone();
    let mut s = String::new();
    for &(roll, idx, salt) in script {
        match roll {
            0..=19 => s.push_str(&format!("url {}\n", pick(&p.hit_urls, idx))),
            20..=39 => s.push_str(&format!("url https://zz{salt:x}-fuzz.example/q\n")),
            40..=54 => s.push_str(&format!("sender {}\n", pick(&p.senders, idx))),
            55..=69 => s.push_str(&format!("near {}\n", pick(&p.near_texts, idx))),
            70..=84 => s.push_str(&format!("msg {}\n", pick(&p.msg_texts, idx))),
            85..=89 => s.push_str(&format!("sample {}\n", 1 + idx % 7)),
            90..=94 => s.push_str("stats\n"),
            _ => s.push_str("bogus line\n"),
        }
    }
    s
}

/// Blank out the digits that may legitimately differ between execution
/// modes: wall-clock `*_ns=` quantiles and the near-candidate quantiles
/// on `stats` lines. Counters, verdicts, and every other byte stay
/// load-bearing.
fn mask(out: &[u8]) -> String {
    let text = std::str::from_utf8(out).expect("utf8 protocol output");
    let mut masked = String::with_capacity(text.len());
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("stats ") {
            masked.push_str("stats");
            for tok in rest.split(' ') {
                masked.push(' ');
                let volatile = ["_ns=", "near_cand_p50=", "near_cand_p99="]
                    .iter()
                    .any(|k| tok.contains(k));
                if volatile {
                    let key = tok.split_once('=').map_or(tok, |(k, _)| k);
                    masked.push_str(key);
                    masked.push_str("=X");
                } else {
                    masked.push_str(tok);
                }
            }
        } else {
            masked.push_str(line);
        }
        masked.push('\n');
    }
    masked
}

fn run_sequential(hub: &IntelHub, script: &str) -> (ServeStats, Vec<u8>) {
    let mut triage = Triage::with_config(hub.reader(), cfg());
    let mut out = Vec::new();
    let session = serve_session(
        &mut triage,
        script.as_bytes(),
        &mut out,
        &Obs::noop(),
        ServeOptions::default(),
    )
    .unwrap();
    (session.stats, out)
}

fn assert_parity(hub: &IntelHub, script: &str, flavor: &str) {
    let (seq_stats, seq_out) = run_sequential(hub, script);
    let seq_masked = mask(&seq_out);
    for workers in [1usize, 2, 4] {
        let mut out = Vec::new();
        let session = serve_workers(
            hub,
            cfg(),
            script.as_bytes(),
            &mut out,
            &Obs::noop(),
            ServeOptions::default(),
            &WorkerPlan::new(workers, 4096),
        )
        .unwrap();
        assert_eq!(session.stats.shed, 0, "{flavor} workers={workers}");
        assert_eq!(
            mask(&out),
            seq_masked,
            "{flavor} workers={workers}: responses diverged\nscript:\n{script}"
        );
        let mut expect = seq_stats;
        expect.shed = 0;
        expect.worker_panics = 0;
        assert_eq!(session.stats, expect, "{flavor} workers={workers}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant: any request interleaving produces the
    /// same bytes at 1/2/4 workers as sequentially, on both hub flavors.
    #[test]
    fn any_script_is_byte_identical_across_workers_and_hub_flavors(
        script in prop::collection::vec(req(), 1..32)
    ) {
        let (hub, p) = batch_hub();
        let rendered = render(&script, p);
        assert_parity(hub, &rendered, "batch");

        let (hub, p) = stream_hub();
        let rendered = render(&script, p);
        assert_parity(hub, &rendered, "stream");
    }
}

/// The model-backed ladder (each worker lazily trains its own LR model
/// from the same snapshot, deterministically) scores identically across
/// execution modes — pinned with one msg-heavy deterministic script
/// since training is too slow for the proptest grid.
#[test]
fn trained_model_verdicts_match_across_modes() {
    let (hub, p) = batch_hub();
    let mut script = String::new();
    for t in p.msg_texts.iter().step_by(7).take(12) {
        script.push_str(&format!("msg {t}\n"));
    }
    script.push_str("stats\n");
    let mut triage = Triage::new(hub.reader());
    let mut seq_out = Vec::new();
    serve_session(
        &mut triage,
        script.as_bytes(),
        &mut seq_out,
        &Obs::noop(),
        ServeOptions::default(),
    )
    .unwrap();
    let mut out = Vec::new();
    serve_workers(
        hub,
        TriageConfig::default(),
        script.as_bytes(),
        &mut out,
        &Obs::noop(),
        ServeOptions::default(),
        &WorkerPlan::new(2, 4096),
    )
    .unwrap();
    assert_eq!(mask(&out), mask(&seq_out), "script:\n{script}");
}
