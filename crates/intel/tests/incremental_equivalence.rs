//! The incremental-build contract, property-tested: chaining
//! [`IntelSnapshot::build_incremental`] over the streaming engine's
//! curated deltas produces *exactly* the snapshot a from-scratch
//! [`IntelSnapshot::build_full`] produces at every epoch — same entries,
//! same interned symbol table, same similarity signatures and template
//! ids, same cluster assignment — across shard counts {1, 4} and aging
//! windows {off, small}. Divergence anywhere (index arrays, evidence
//! counters, eviction bookkeeping) fails the whole-snapshot equality; a
//! fuzz pass then re-checks the serve-protocol surface (hit / near /
//! miss verdict lines) answer-for-answer.

use proptest::prelude::*;
use smishing_core::exec::{ingest, ExecPlan, SnapshotPlan};
use smishing_core::CurationOptions;
use smishing_intel::{
    verdict_line, BuildOptions, IntelHub, IntelSnapshot, SnapshotDelta, Triage, TriageConfig,
};
use smishing_obs::Obs;
use smishing_worldsim::{ReportStream, World, WorldConfig};
use std::sync::OnceLock;

/// (shards, aging window) — the grid the satellite pins. The small
/// window is sized (against scale 0.01 / seed 11 timestamps) so the
/// final epoch both evicts and retains entries.
const CONFIGS: [(usize, Option<u64>); 4] = [
    (1, None),
    (4, None),
    (1, Some(2_000_000)),
    (4, Some(2_000_000)),
];

struct Built {
    /// From-scratch build of the end-of-stream output.
    full: IntelSnapshot,
    /// The same state reached by chaining incremental builds over every
    /// aligned snapshot's curated delta.
    inc: IntelSnapshot,
    /// Sample message texts for serve-protocol fuzzing.
    texts: Vec<String>,
}

fn built(cfg_idx: usize) -> &'static Built {
    static CELLS: [OnceLock<Built>; 4] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    CELLS[cfg_idx].get_or_init(|| {
        let (shards, window_secs) = CONFIGS[cfg_idx];
        let world = World::generate(WorldConfig {
            scale: 0.01,
            seed: 11,
            ..WorldConfig::default()
        });
        let opts = BuildOptions {
            window_secs,
            ..BuildOptions::default()
        };
        let curation = CurationOptions::default();
        let every = (world.posts.len() as u64 / 4).max(1);
        let plan = ExecPlan {
            shards,
            ..ExecPlan::default()
        }
        .with_snapshots(SnapshotPlan::every(every));
        let mut prev: Option<IntelSnapshot> = None;
        let mut epochs = 0u32;
        let result = ingest(
            &world,
            ReportStream::replay(&world),
            &curation,
            &plan,
            &Obs::noop(),
            |s| {
                let oracle = IntelSnapshot::build_full(&s.output, opts);
                let inc = IntelSnapshot::build_incremental(
                    &s.output,
                    prev.as_ref(),
                    SnapshotDelta::new(&s.curated_delta),
                    opts,
                );
                assert!(
                    inc == oracle,
                    "incremental diverged from from-scratch at {} posts \
                     (shards {shards}, window {window_secs:?})",
                    s.at_posts
                );
                prev = Some(inc);
                epochs += 1;
            },
        );
        assert!(epochs >= 3, "need a real epoch chain, got {epochs}");
        let full = IntelSnapshot::build_full(&result.output, opts);
        let inc = IntelSnapshot::build_incremental(
            &result.output,
            prev.as_ref(),
            SnapshotDelta::new(&result.curated_delta),
            opts,
        );
        assert!(
            inc == full,
            "final incremental build diverged (shards {shards}, window {window_secs:?})"
        );
        if window_secs.is_some() {
            assert!(inc.evicted_count() > 0, "small window must evict");
            assert!(!inc.is_empty(), "small window must also retain");
        } else {
            assert_eq!(inc.evicted_count(), 0, "no window, no eviction");
        }
        let texts = world
            .messages
            .iter()
            .map(|m| m.text.clone())
            .take(256)
            .collect();
        Built { full, inc, texts }
    })
}

#[test]
fn incremental_chain_equals_from_scratch_on_every_config() {
    for i in 0..CONFIGS.len() {
        built(i);
    }
}

#[test]
fn sharding_never_changes_the_incremental_result() {
    // The engine's shard-identity invariant survives the delta plumbing:
    // deltas arrive in different batches per shard count, but the chained
    // store is byte-identical.
    assert!(built(0).inc == built(1).inc, "shards 1 vs 4");
    assert!(built(2).inc == built(3).inc, "windowed: shards 1 vs 4");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The serve-protocol surface answers identically from the chained
    /// and the from-scratch store: exact-pivot hits, similarity matches,
    /// and fuzzed absent keys render the same verdict lines.
    #[test]
    fn serve_protocol_answers_agree(
        cfg_idx in 0usize..CONFIGS.len(),
        pick in 0usize..usize::MAX,
        salt in 0u64..u64::MAX,
    ) {
        let b = built(cfg_idx);
        let cfg = TriageConfig { train_model: false, ..TriageConfig::default() };
        let (full_hub, inc_hub) = (IntelHub::new(), IntelHub::new());
        full_hub.publish(b.full.clone());
        inc_hub.publish(b.inc.clone());
        let mut tf = Triage::with_config(full_hub.reader(), cfg.clone());
        let mut ti = Triage::with_config(inc_hub.reader(), cfg);

        // A key the store serves (when any URL survived the window).
        if let Some(url) = b.full.entries().iter().find_map(|e| e.url) {
            let url = b.full.resolve(url).to_string();
            prop_assert_eq!(
                verdict_line(&tf.query_url(&url)),
                verdict_line(&ti.query_url(&url))
            );
        }
        // A fuzzed absent key.
        let probe = format!("https://zz{salt:x}-fuzz.example/q");
        prop_assert_eq!(
            verdict_line(&tf.query_url(&probe)),
            verdict_line(&ti.query_url(&probe))
        );
        // A similarity query drawn from the raw message corpus.
        let text = &b.texts[pick % b.texts.len()];
        prop_assert_eq!(
            verdict_line(&tf.query_near(text)),
            verdict_line(&ti.query_near(text))
        );
    }
}
