//! The index contract, property-tested: every URL / apex-domain / sender
//! / phone / brand key derivable from the assembled dataset resolves
//! through the [`IntelSnapshot`] hash indexes to *exactly* the entries a
//! linear scan over the records finds — and absent keys miss — across
//! shard counts {1, 4} and fault profiles {none, mild}.

use proptest::prelude::*;
use smishing_core::enrich::EnrichedRecord;
use smishing_core::exec::ExecPlan;
use smishing_core::pipeline::Pipeline;
use smishing_fault::FaultPlan;
use smishing_intel::snapshot::record_keys;
use smishing_intel::IntelSnapshot;
use smishing_obs::Obs;
use smishing_worldsim::{World, WorldConfig};
use std::collections::HashMap;
use std::sync::OnceLock;

/// (shards, mild faults?) — the grid the satellite pins.
const CONFIGS: [(usize, bool); 4] = [(1, false), (4, false), (1, true), (4, true)];

struct Built {
    records: Vec<EnrichedRecord>,
    snap: IntelSnapshot,
}

fn built(cfg_idx: usize) -> &'static Built {
    static CELLS: [OnceLock<Built>; 4] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    CELLS[cfg_idx].get_or_init(|| {
        let (shards, faulty) = CONFIGS[cfg_idx];
        let mut world = World::generate(WorldConfig {
            scale: 0.01,
            seed: 11,
            ..WorldConfig::default()
        });
        if faulty {
            world.set_fault_plan(&FaultPlan::mild(0xFA11));
        }
        let pipeline = Pipeline {
            exec: ExecPlan {
                shards,
                ..ExecPlan::default()
            },
            ..Pipeline::default()
        };
        let out = pipeline.run(&world, &Obs::noop());
        Built {
            records: out.records.clone(),
            snap: IntelSnapshot::build(&out),
        }
    })
}

/// The oracle: entry ids (== record positions, canonical order) whose
/// derived key under `pick` equals `key`.
fn scan(
    records: &[EnrichedRecord],
    key: &str,
    pick: fn(&EnrichedRecord) -> Option<String>,
) -> Vec<u32> {
    records
        .iter()
        .enumerate()
        .filter(|(_, r)| pick(r).as_deref() == Some(key))
        .map(|(i, _)| i as u32)
        .collect()
}

fn assert_pivot(
    b: &Built,
    name: &str,
    pick: fn(&EnrichedRecord) -> Option<String>,
    lookup: impl Fn(&IntelSnapshot, &str) -> Vec<u32>,
) {
    // Every present key resolves to exactly the linear-scan set.
    let mut keys: Vec<String> = b.records.iter().filter_map(pick).collect();
    keys.sort();
    keys.dedup();
    assert!(!keys.is_empty(), "{name}: dataset yields no keys at all");
    for key in &keys {
        let mut via_index = lookup(&b.snap, key);
        let mut via_scan = scan(&b.records, key, pick);
        via_index.sort_unstable();
        via_scan.sort_unstable();
        assert_eq!(
            via_index, via_scan,
            "{name} key {key:?}: index and linear scan disagree"
        );
    }
    // Keys sharing no interned symbol with the dataset must miss.
    for absent in ["zz-not-reported.example", "000000000000", "zz"] {
        assert!(
            lookup(&b.snap, absent).is_empty(),
            "{name}: absent key {absent:?} resolved"
        );
    }
}

fn check_config(cfg_idx: usize) {
    let b = built(cfg_idx);
    assert_eq!(
        b.records.len(),
        b.snap.len(),
        "one entry per assembled record"
    );
    assert_pivot(
        b,
        "url",
        |r| record_keys(r).url,
        |s, k| s.lookup_url_key(k).to_vec(),
    );
    assert_pivot(
        b,
        "domain",
        |r| record_keys(r).domain,
        |s, k| s.lookup_domain(k).to_vec(),
    );
    assert_pivot(
        b,
        "sender",
        |r| record_keys(r).sender,
        |s, k| s.lookup_sender_key(k).to_vec(),
    );
    assert_pivot(
        b,
        "phone",
        |r| record_keys(r).phone,
        |s, k| s.lookup_phone(k).to_vec(),
    );
    assert_pivot(
        b,
        "brand",
        |r| record_keys(r).brand,
        |s, k| s.lookup_brand(k).to_vec(),
    );
}

#[test]
fn index_equals_linear_scan_on_every_config() {
    for i in 0..CONFIGS.len() {
        check_config(i);
    }
}

#[test]
fn sharding_and_mild_faults_never_change_the_key_space() {
    // The engine's byte-identity invariant, restated over derived keys:
    // the dataset's key multiset is independent of shard count, and mild
    // faults degrade records without dropping them.
    let key_multiset = |b: &Built| -> HashMap<String, usize> {
        let mut m = HashMap::new();
        for r in &b.records {
            let k = record_keys(r);
            for part in [k.url, k.domain, k.sender, k.phone, k.brand]
                .into_iter()
                .flatten()
            {
                *m.entry(part).or_default() += 1;
            }
        }
        m
    };
    assert_eq!(
        key_multiset(built(0)),
        key_multiset(built(1)),
        "shards 1 vs 4"
    );
    assert_eq!(
        key_multiset(built(2)),
        key_multiset(built(3)),
        "mild: shards 1 vs 4"
    );
    assert_eq!(
        built(0).records.len(),
        built(2).records.len(),
        "mild faults must not drop records"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzzed absent keys miss on every index of every config — no
    /// accidental interning of query strings, no hash aliasing.
    #[test]
    fn random_absent_keys_always_miss(cfg_idx in 0usize..CONFIGS.len(), salt in 0u64..u64::MAX) {
        let b = built(cfg_idx);
        let probe = format!("zz{salt:x}-fuzz.example");
        prop_assert!(b.snap.lookup_url_key(&probe).is_empty());
        prop_assert!(b.snap.lookup_domain(&probe).is_empty());
        prop_assert!(b.snap.lookup_sender_key(&probe).is_empty());
        prop_assert!(b.snap.lookup_phone(&format!("{}", salt ^ 0xDEAD_BEEF)).is_empty());
        prop_assert!(b.snap.lookup_brand(&probe).is_empty());

        // Mutating a real key out of the dataset's vocabulary misses too.
        if let Some(first) = b.records.iter().find_map(|r| record_keys(r).url) {
            let mutated = format!("{first}#zz{salt:x}");
            prop_assert!(b.snap.lookup_url_key(&mutated).is_empty());
        }
    }
}
