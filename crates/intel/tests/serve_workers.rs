//! Satellites: the worker plane's admission-control and failure
//! contracts.
//!
//! * **Overload** — a deliberately stalled consumer behind a tiny
//!   bounded queue forces admission sheds; every request must be either
//!   answered or counted under `serve.shed` (never silently dropped),
//!   and the `health` verb must report the shed total.
//! * **Worker panic** — a worker dying mid-request is counted under
//!   `serve.worker_panics`, re-raised on the caller after the session's
//!   accounting exports, and loses no response bytes before the failure
//!   point.

use smishing_core::pipeline::Pipeline;
use smishing_intel::{
    serve_lines, serve_workers, IntelHub, IntelSnapshot, ServeOptions, Triage, TriageConfig,
    WorkerPlan,
};
use smishing_obs::Obs;
use smishing_worldsim::{World, WorldConfig};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

fn hub() -> IntelHub {
    let w = World::generate(WorldConfig::test_scale(53));
    let out = Pipeline::default().run(&w, &Obs::noop());
    let hub = IntelHub::new();
    hub.publish(IntelSnapshot::build(&out));
    hub
}

fn cfg() -> TriageConfig {
    TriageConfig {
        train_model: false,
        ..TriageConfig::default()
    }
}

/// A writer that stalls its first write, pinning the collector long
/// enough for the reader to outrun a depth-1 queue.
struct StalledWriter {
    out: Vec<u8>,
    stalled: bool,
}

impl Write for StalledWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if !self.stalled {
            self.stalled = true;
            std::thread::sleep(Duration::from_millis(150));
        }
        self.out.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

#[test]
fn overload_sheds_are_counted_never_silent() {
    let hub = hub();
    const N: u64 = 300;
    let mut script = String::new();
    for i in 0..N {
        script.push_str(&format!("url https://flood-{i}.example/x\n"));
    }
    script.push_str("health\nstats\n");

    let mut writer = StalledWriter {
        out: Vec::new(),
        stalled: false,
    };
    let obs = Obs::enabled();
    let session = serve_workers(
        &hub,
        cfg(),
        script.as_bytes(),
        &mut writer,
        &obs,
        ServeOptions::default(),
        &WorkerPlan {
            workers: 1,
            queue_depth: 1,
            batch_max: 1,
            panic_on: None,
        },
    )
    .unwrap();

    let stats = session.stats;
    assert!(
        stats.shed > 0,
        "a stalled depth-1 queue must shed: {stats:?}"
    );
    assert_eq!(
        stats.queries + stats.shed,
        N,
        "answered + shed must conserve the request stream: {stats:?}"
    );
    let text = String::from_utf8(writer.out).unwrap();
    let answered = text.lines().filter(|l| l.starts_with("miss url ")).count() as u64;
    assert_eq!(
        answered, stats.queries,
        "one response line per answered query"
    );

    // The verbs land after the flood, so both report the final total.
    let health = text
        .lines()
        .find(|l| l.starts_with("health "))
        .expect("health line");
    assert!(
        health.contains(&format!("shed={}", stats.shed)),
        "health must carry the shed total: {health}"
    );
    let stats_line = text
        .lines()
        .find(|l| l.starts_with("stats "))
        .expect("stats line");
    assert!(
        stats_line.contains(&format!("shed={}", stats.shed)),
        "{stats_line}"
    );
    // And the session export carries it into the run report's counters
    // and the time-series ring.
    let report = obs.json_report();
    assert!(report.contains("intel.serve.shed"), "{report}");
    assert!(report.contains("serve.ts."), "{report}");
}

#[test]
fn worker_panic_is_counted_reraised_and_loses_no_prior_bytes() {
    let hub = hub();
    let snap = hub.latest().unwrap();
    let hits: Vec<String> = snap
        .entries()
        .iter()
        .filter_map(|e| e.url.map(|u| format!("url {}", snap.resolve(u))))
        .take(11)
        .collect();
    assert!(hits.len() >= 11, "need 11 hit lines");
    let poison = "url https://poison.example/kaboom";
    let script: String = hits[..6]
        .iter()
        .map(|l| format!("{l}\n"))
        .chain([format!("{poison}\n")])
        .chain(hits[6..].iter().map(|l| format!("{l}\n")))
        .collect();

    // The sequential expectation for the pre-panic prefix.
    let mut expected = Vec::new();
    let prefix: String = hits[..6].iter().map(|l| format!("{l}\n")).collect();
    serve_lines(
        &mut Triage::with_config(hub.reader(), cfg()),
        prefix.as_bytes(),
        &mut expected,
        &Obs::noop(),
    )
    .unwrap();

    let obs = Obs::enabled();
    let mut out = Vec::new();
    let payload = catch_unwind(AssertUnwindSafe(|| {
        serve_workers(
            &hub,
            cfg(),
            script.as_bytes(),
            &mut out,
            &obs,
            ServeOptions::default(),
            &WorkerPlan {
                workers: 1,
                queue_depth: 16,
                batch_max: 1,
                panic_on: Some(poison.to_string()),
            },
        )
    }))
    .expect_err("the worker's panic must re-raise on the caller");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload is the injected message");
    assert!(msg.contains("injected worker fault"), "{msg}");

    // Every reply before the failure point arrived, in order, intact;
    // nothing after the dead worker got answered.
    assert_eq!(out, expected, "pre-panic bytes must survive the panic");

    // The accounting exported before the re-raise: the panic counted,
    // the poisoned + unanswered requests shed, nothing silent.
    let report = obs.json_report();
    assert!(
        report.contains("\"intel.serve.worker_panics\": 1"),
        "{report}"
    );
    assert!(report.contains("\"intel.serve.queries\": 6"), "{report}");
    assert!(report.contains("\"intel.serve.shed\": 6"), "{report}");
}
