//! Registry-level tests: quantile correctness on known distributions, the
//! merge law (per-shard histograms combine exactly), and the pinned JSON
//! run-report schema.

use proptest::prelude::*;
use smishing_obs::{Obs, Registry};

#[test]
fn quantiles_on_a_uniform_distribution() {
    let reg = Registry::new();
    let h = reg.histogram("t.uniform.ns", &[]);
    for v in 1..=10_000u64 {
        h.record(v);
    }
    assert_eq!(h.count(), 10_000);
    assert_eq!(h.sum(), 10_000 * 10_001 / 2);
    assert_eq!(h.min(), 1);
    assert_eq!(h.max(), 10_000);
    for (q, expect) in [
        (0.50, 5_000.0),
        (0.90, 9_000.0),
        (0.95, 9_500.0),
        (0.99, 9_900.0),
    ] {
        let got = h.quantile(q);
        let rel = (got - expect).abs() / expect;
        assert!(rel < 0.05, "q{q}: got {got}, want ~{expect} (rel {rel:.3})");
    }
}

#[test]
fn quantiles_on_a_constant_distribution_are_exact() {
    let reg = Registry::new();
    let h = reg.histogram("t.constant.ns", &[]);
    for _ in 0..250 {
        h.record(777);
    }
    for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 777.0, "q{q}");
    }
}

#[test]
fn quantiles_on_a_skewed_distribution_find_the_tail() {
    let reg = Registry::new();
    let h = reg.histogram("t.skewed.ns", &[]);
    // 99 fast calls at ~100ns, one slow call at 1ms.
    for _ in 0..99 {
        h.record(100);
    }
    h.record(1_000_000);
    let p50 = h.quantile(0.5);
    assert!((100.0..150.0).contains(&p50), "p50 {p50}");
    assert!(h.quantile(0.995) > 500_000.0);
}

#[test]
fn empty_histogram_reports_zeros() {
    let reg = Registry::new();
    let h = reg.histogram("t.empty.ns", &[]);
    assert_eq!(h.count(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.quantile(0.5), 0.0);
}

#[test]
fn counter_and_gauge_merge_and_high_water() {
    let reg = Registry::new();
    let a = reg.counter("t.c", &[("shard", "0")]);
    let b = reg.counter("t.c", &[("shard", "1")]);
    a.add(5);
    b.add(7);
    let total = reg.counter("t.c", &[("shard", "all")]);
    total.merge_from(&a);
    total.merge_from(&b);
    assert_eq!(total.get(), 12);

    let g = reg.gauge("t.depth", &[]);
    g.set(3);
    g.set(9);
    g.set(2);
    assert_eq!(g.get(), 2);
    assert_eq!(g.high_water(), 9);
}

proptest! {
    /// Merging per-shard histograms equals single-shard recording: the
    /// merged histogram is *bucket-exact*, so count/sum/min/max and every
    /// quantile agree bit-for-bit.
    #[test]
    fn merged_shard_histograms_equal_single_recording(
        values in prop::collection::vec(0u64..=10_000_000_000, 1..400),
        shards in 1usize..8,
    ) {
        let reg = Registry::new();
        let single = reg.histogram("t.single.ns", &[]);
        let per_shard: Vec<_> = (0..shards)
            .map(|i| reg.histogram("t.shard.ns", &[("shard", &i.to_string())]))
            .collect();
        for (i, v) in values.iter().enumerate() {
            single.record(*v);
            per_shard[i % shards].record(*v);
        }
        let merged = reg.histogram("t.merged.ns", &[]);
        for h in &per_shard {
            merged.merge_from(h);
        }
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.sum(), single.sum());
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
        prop_assert_eq!(merged.bucket_counts(), single.bucket_counts());
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), single.quantile(q));
        }
    }
}

/// Pins the `smishing-obs/v1` JSON schema: top-level keys, key rendering
/// with sorted labels, per-metric shapes, integer values, trailing newline.
/// If this test fails, downstream consumers of `--metrics-json` break —
/// bump the schema string instead of silently changing shape.
#[test]
fn json_run_report_schema_snapshot() {
    let obs = Obs::enabled();
    obs.counter("pipeline.collect.posts", &[]).add(42);
    obs.counter("stream.shard.curated", &[("shard", "0")])
        .add(7);
    let g = obs.gauge("stream.shard.channel_depth", &[("shard", "0")]);
    g.set(5);
    g.set(2);
    let h = obs.histogram("enrich.hlr.latency_ns", &[]);
    h.record(1000);
    h.record(1000);

    let expected = concat!(
        "{\n",
        "  \"schema\": \"smishing-obs/v1\",\n",
        "  \"counters\": {\n",
        "    \"pipeline.collect.posts\": 42,\n",
        "    \"stream.shard.curated{shard=\\\"0\\\"}\": 7\n",
        "  },\n",
        "  \"gauges\": {\n",
        "    \"stream.shard.channel_depth{shard=\\\"0\\\"}\": { \"max\": 5, \"value\": 2 }\n",
        "  },\n",
        "  \"histograms\": {\n",
        "    \"enrich.hlr.latency_ns\": { \"count\": 2, \"max\": 1000, \"min\": 1000, ",
        "\"p50\": 1000, \"p90\": 1000, \"p95\": 1000, \"p99\": 1000, \"sum\": 2000 }\n",
        "  }\n",
        "}\n",
    );
    assert_eq!(obs.json_report(), expected);
}

#[test]
fn empty_report_still_has_the_full_schema() {
    let obs = Obs::enabled();
    assert_eq!(
        obs.json_report(),
        "{\n  \"schema\": \"smishing-obs/v1\",\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n"
    );
    // The no-op handle renders the same empty document.
    assert_eq!(Obs::noop().json_report(), obs.json_report());
}

#[test]
fn prometheus_exposition_renders_all_metric_kinds() {
    let obs = Obs::enabled();
    obs.counter("pipeline.collect.posts", &[]).add(3);
    obs.gauge("stream.shard.channel_depth", &[("shard", "1")])
        .set(4);
    obs.histogram("enrich.whois.latency_ns", &[]).record(512);
    let text = obs.text_exposition();
    assert!(text.contains("# TYPE pipeline_collect_posts counter"));
    assert!(text.contains("pipeline_collect_posts 3"));
    assert!(text.contains("stream_shard_channel_depth{shard=\"1\"} 4"));
    assert!(text.contains("stream_shard_channel_depth_max{shard=\"1\"} 4"));
    assert!(text.contains("# TYPE enrich_whois_latency_ns summary"));
    assert!(text.contains("enrich_whois_latency_ns{quantile=\"0.5\"} 512"));
    assert!(text.contains("enrich_whois_latency_ns_count 1"));
    assert!(text.contains("enrich_whois_latency_ns_sum 512"));
}
