//! Scoped spans: wall-clock stage timing with RAII.

use crate::histogram::HistogramCore;
use std::sync::Arc;
use std::time::Instant;

/// A running span. Dropping it records the elapsed nanoseconds into the
/// histogram it was opened against. Spans from a disabled [`Obs`] never
/// read the clock.
///
/// [`Obs`]: crate::Obs
#[must_use = "a span measures the scope it lives in; dropping it immediately records ~0ns"]
pub struct Span {
    pub(crate) inner: Option<(Instant, Arc<HistogramCore>)>,
}

impl Span {
    /// A span that records nowhere.
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// End the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.inner.take() {
            hist.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}
