//! Run-report differ: the perf-regression gate behind `smish perfdiff`.
//!
//! Two `smishing-obs/v1` reports — a checked-in baseline and a fresh run —
//! are compared key by key over the metrics where direction has a meaning:
//!
//! * **lower-better** — histogram `p50`/`p99` of every `*_ns` series
//!   (latency and wall-time distributions); regression when
//!   `current > baseline × (1 + tolerance)`.
//! * **higher-better** — gauges whose name contains `qps` or ends in
//!   `_permille` (throughput and recall/precision); regression when
//!   `current < baseline ÷ (1 + tolerance)`.
//!
//! Everything else (counters, occupancy gauges, candidate histograms) is
//! workload-shaped, not perf-shaped, and is ignored. A lower-better key
//! present in the baseline but absent from the current run is itself a
//! regression — losing a latency series silently would blind the gate.
//! Keys new in the current run are reported but never fail the gate, so
//! adding instrumentation doesn't require a baseline refresh in the same
//! change.

use crate::report::Report;
use std::fmt::Write as _;

/// Which way "better" points for a compared key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latency-like: smaller is better.
    LowerBetter,
    /// Throughput/recall-like: larger is better.
    HigherBetter,
}

/// One compared metric key.
#[derive(Debug, Clone)]
pub struct DiffLine {
    /// Rendered metric key (plus `.p50`/`.p99` suffix for histograms).
    pub key: String,
    /// Comparison direction.
    pub direction: Direction,
    /// Baseline value.
    pub baseline: u64,
    /// Current value (`None` when the key vanished).
    pub current: Option<u64>,
    /// Whether this key breaches the tolerance.
    pub regressed: bool,
}

/// The outcome of one baseline/current comparison.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Tolerance used, as a fraction (0.25 = 25% slack).
    pub tolerance: f64,
    /// Every compared key, baseline order.
    pub lines: Vec<DiffLine>,
    /// Comparable keys present only in the current run (informational).
    pub new_keys: Vec<String>,
}

impl DiffReport {
    /// Whether any compared key regressed.
    pub fn has_regression(&self) -> bool {
        self.lines.iter().any(|l| l.regressed)
    }

    /// Count of regressed keys.
    pub fn regressions(&self) -> usize {
        self.lines.iter().filter(|l| l.regressed).count()
    }

    /// Render the human-readable gate output, one line per compared key.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "perfdiff tolerance={:.0}% compared={} regressions={}",
            self.tolerance * 100.0,
            self.lines.len(),
            self.regressions()
        );
        for l in &self.lines {
            let dir = match l.direction {
                Direction::LowerBetter => "lower-better",
                Direction::HigherBetter => "higher-better",
            };
            match l.current {
                None => {
                    let _ = writeln!(
                        s,
                        "REGRESSION {} [{dir}] baseline={} current=MISSING",
                        l.key, l.baseline
                    );
                }
                Some(cur) => {
                    let verdict = if l.regressed { "REGRESSION" } else { "ok" };
                    let ratio = if l.baseline == 0 {
                        1.0
                    } else {
                        cur as f64 / l.baseline as f64
                    };
                    let _ = writeln!(
                        s,
                        "{verdict} {} [{dir}] baseline={} current={cur} ratio={ratio:.3}",
                        l.key, l.baseline
                    );
                }
            }
        }
        for k in &self.new_keys {
            let _ = writeln!(s, "new {k} (not gated; refresh the baseline to gate it)");
        }
        s
    }
}

/// Values below this floor are noise (sub-microsecond latencies, near-zero
/// rates) and never gate: a 2ns→5ns "regression" is measurement jitter.
const NOISE_FLOOR: u64 = 100;

fn is_lower_better_hist(name: &str) -> bool {
    name.ends_with("_ns")
}

fn is_higher_better_gauge(name: &str) -> bool {
    name.contains("qps") || name.ends_with("_permille")
}

/// Compare `current` against `baseline` with a fractional `tolerance`.
pub fn perf_diff(baseline: &Report, current: &Report, tolerance: f64) -> DiffReport {
    let tolerance = tolerance.max(0.0);
    let factor = 1.0 + tolerance;
    let mut lines = Vec::new();
    for (id, base) in &baseline.histograms {
        if !is_lower_better_hist(&id.name) {
            continue;
        }
        let cur = current.histograms.get(id);
        for (suffix, bval, cval) in [
            ("p50", base.p50, cur.map(|h| h.p50)),
            ("p99", base.p99, cur.map(|h| h.p99)),
        ] {
            let regressed = match cval {
                None => true,
                Some(c) => bval.max(c) >= NOISE_FLOOR && c as f64 > bval as f64 * factor,
            };
            lines.push(DiffLine {
                key: format!("{id}.{suffix}"),
                direction: Direction::LowerBetter,
                baseline: bval,
                current: cval,
                regressed,
            });
        }
    }
    for (id, base) in &baseline.gauges {
        if !is_higher_better_gauge(&id.name) {
            continue;
        }
        let bval = u64::try_from(base.value).unwrap_or(0);
        let cval = current
            .gauges
            .get(id)
            .map(|g| u64::try_from(g.value).unwrap_or(0));
        let regressed = match cval {
            None => true,
            Some(c) => bval.max(c) >= NOISE_FLOOR && (c as f64) < bval as f64 / factor,
        };
        lines.push(DiffLine {
            key: id.to_string(),
            direction: Direction::HigherBetter,
            baseline: bval,
            current: cval,
            regressed,
        });
    }
    let mut new_keys = Vec::new();
    for id in current.histograms.keys() {
        if is_lower_better_hist(&id.name) && !baseline.histograms.contains_key(id) {
            new_keys.push(id.to_string());
        }
    }
    for id in current.gauges.keys() {
        if is_higher_better_gauge(&id.name) && !baseline.gauges.contains_key(id) {
            new_keys.push(id.to_string());
        }
    }
    DiffReport {
        tolerance,
        lines,
        new_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricId;
    use crate::report::{GaugeStat, HistStat};

    fn hist(p50: u64, p99: u64) -> HistStat {
        HistStat {
            count: 100,
            sum: p50 * 100,
            min: p50 / 2,
            max: p99 * 2,
            p50,
            p90: p99,
            p95: p99,
            p99,
        }
    }

    fn report(lookup: HistStat, qps: i64, recall: i64) -> Report {
        let mut r = Report::default();
        r.histograms
            .insert(MetricId::new("intel.serve.lookup_ns", &[]), lookup);
        r.gauges.insert(
            MetricId::new("intel.serve.qps", &[]),
            GaugeStat {
                value: qps,
                max: qps,
            },
        );
        r.gauges.insert(
            MetricId::new("intel.eval.url_recall_permille", &[]),
            GaugeStat {
                value: recall,
                max: recall,
            },
        );
        r
    }

    #[test]
    fn within_tolerance_passes_both_directions() {
        let base = report(hist(1_000, 5_000), 200_000, 950);
        let cur = report(hist(1_100, 5_900), 170_000, 920);
        let diff = perf_diff(&base, &cur, 0.25);
        assert!(!diff.has_regression(), "{}", diff.render());
        assert_eq!(diff.lines.len(), 4, "p50, p99, qps, recall");
    }

    #[test]
    fn latency_blowup_regresses_and_renders() {
        let base = report(hist(1_000, 5_000), 200_000, 950);
        let cur = report(hist(1_000, 9_000), 200_000, 950);
        let diff = perf_diff(&base, &cur, 0.25);
        assert_eq!(diff.regressions(), 1);
        let out = diff.render();
        assert!(
            out.contains(
                "REGRESSION intel.serve.lookup_ns.p99 [lower-better] baseline=5000 current=9000"
            ),
            "{out}"
        );
        assert!(out.contains("ok intel.serve.lookup_ns.p50"), "{out}");
    }

    #[test]
    fn throughput_and_recall_drop_regress() {
        let base = report(hist(1_000, 5_000), 200_000, 950);
        let cur = report(hist(1_000, 5_000), 100_000, 700);
        let diff = perf_diff(&base, &cur, 0.25);
        assert_eq!(diff.regressions(), 2);
        assert!(diff.render().contains("REGRESSION intel.serve.qps"));
    }

    #[test]
    fn missing_baseline_key_regresses_but_new_key_is_informational() {
        let base = report(hist(1_000, 5_000), 200_000, 950);
        let mut cur = report(hist(1_000, 5_000), 200_000, 950);
        cur.histograms
            .remove(&MetricId::new("intel.serve.lookup_ns", &[]));
        cur.histograms
            .insert(MetricId::new("intel.near.lookup_ns", &[]), hist(500, 900));
        let diff = perf_diff(&base, &cur, 0.25);
        assert_eq!(diff.regressions(), 2, "p50 and p99 both vanished");
        assert!(diff.render().contains("current=MISSING"));
        assert_eq!(diff.new_keys, ["intel.near.lookup_ns"]);
        assert!(diff.render().contains("new intel.near.lookup_ns"));
    }

    #[test]
    fn noise_floor_ignores_tiny_values() {
        let base = report(hist(2, 20), 200_000, 950);
        let cur = report(hist(6, 60), 200_000, 950);
        let diff = perf_diff(&base, &cur, 0.25);
        assert!(!diff.has_regression(), "{}", diff.render());
    }

    #[test]
    fn counters_and_unrecognized_series_are_ignored() {
        let mut base = report(hist(1_000, 5_000), 200_000, 950);
        base.counters
            .insert(MetricId::new("intel.serve.queries", &[]), 10);
        base.gauges.insert(
            MetricId::new("serve.session.shards", &[]),
            GaugeStat { value: 8, max: 8 },
        );
        let cur = report(hist(1_000, 5_000), 200_000, 950);
        let diff = perf_diff(&base, &cur, 0.25);
        assert_eq!(diff.lines.len(), 4);
        assert!(!diff.has_regression());
    }
}
