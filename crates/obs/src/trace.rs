//! Request-level tracing: per-query span trees with tail-sampled
//! retention.
//!
//! Aggregate histograms say a serve plane is slow; a trace says *why one
//! query was*. Each traced request gets a [`Trace`] — an ordered,
//! allocation-light list of [`TraceSpan`]s, one per triage rung
//! (refang/fold → exact-URL → apex → sender → phone → near → LR), each
//! carrying its wall-clock nanoseconds, the candidate count the rung
//! examined, and what it concluded (`hit entry=…` / `miss` / `cached`).
//!
//! The [`Tracer`] decides which requests get a builder at all (1-in-K
//! counter sampling, so the plain query path stays untraced and
//! unmeasured) and which finished traces are worth keeping:
//!
//! * a bounded **ring buffer** of the most recent sampled traces
//!   (wraparound overwrites the oldest), and
//! * a bounded **slowest-N** set, tail-selected by total wall time among
//!   sampled traces — the exemplars that explain the p99.
//!
//! Exemplar trace ids attach to the latency histograms by name: the
//! serving layer reports `(histogram, trace_id, wall_ns)` after each
//! traced request, and [`Tracer::export`] publishes the slowest exemplar
//! per histogram as gauges next to the histogram itself, so a run report
//! links its `intel.serve.triage_ns` p99 to a concrete, replayable trace.

use crate::Obs;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One rung of a traced request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Rung name (`refang`, `url`, `domain`, `sender`, `phone`, `near`,
    /// `model`).
    pub rung: &'static str,
    /// Wall-clock nanoseconds spent in the rung.
    pub wall_ns: u64,
    /// Candidates the rung examined (index postings, banded candidate
    /// set, …; 0 where the notion doesn't apply).
    pub candidates: u64,
    /// What the rung concluded (`hit entry=12 key=…`, `miss`, `cached`).
    pub note: String,
}

/// A finished request trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Session-unique trace id.
    pub id: u64,
    /// The request, as received (command + operand).
    pub request: String,
    /// Final verdict label (`hit`, `near`, `model`, `unknown`, `miss`).
    pub verdict: String,
    /// End-to-end wall nanoseconds.
    pub total_ns: u64,
    /// Rungs in traversal order.
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// Render the span tree as protocol-friendly lines:
    ///
    /// ```text
    /// trace id=7 verdict=near total_ns=41210 rungs=5
    ///   rung refang wall_ns=812 candidates=0 note=-
    ///   rung url wall_ns=501 candidates=0 note=miss
    ///   ...
    /// end id=7
    /// ```
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "trace id={} verdict={} total_ns={} rungs={}",
            self.id,
            self.verdict,
            self.total_ns,
            self.spans.len()
        );
        for span in &self.spans {
            let _ = writeln!(
                s,
                "  rung {} wall_ns={} candidates={} note={}",
                span.rung,
                span.wall_ns,
                span.candidates,
                if span.note.is_empty() {
                    "-"
                } else {
                    &span.note
                }
            );
        }
        let _ = writeln!(s, "end id={}", self.id);
        s
    }

    /// One-line summary for `traces` listings.
    pub fn summary(&self) -> String {
        let rungs: Vec<&str> = self.spans.iter().map(|s| s.rung).collect();
        format!(
            "trace id={} verdict={} total_ns={} rungs={} path={}",
            self.id,
            self.verdict,
            self.total_ns,
            self.spans.len(),
            rungs.join(">"),
        )
    }
}

/// An in-flight trace. Rungs are recorded in call order; the builder
/// pre-allocates span capacity so the traced hot path does not allocate
/// per rung (notes allocate only on hits, which are the rare case under
/// miss-dominated traffic).
#[derive(Debug)]
pub struct TraceBuilder {
    id: u64,
    request: String,
    started: Instant,
    spans: Vec<TraceSpan>,
}

impl TraceBuilder {
    /// Rungs a full triage walk traverses; used as span pre-allocation.
    const MAX_RUNGS: usize = 8;

    fn new(id: u64, request: &str) -> TraceBuilder {
        TraceBuilder {
            id,
            request: request.to_string(),
            started: Instant::now(),
            spans: Vec::with_capacity(Self::MAX_RUNGS),
        }
    }

    /// A builder minted outside any [`Tracer`] (id 0), for pipelines
    /// where the sampling decision and the retention happen on different
    /// threads: a dispatcher decides *which* requests are traced, a
    /// worker fills the builder in, and the owning tracer assigns the
    /// session id when it [`Tracer::adopt`]s the finished trace.
    pub fn detached(request: &str) -> TraceBuilder {
        TraceBuilder::new(0, request)
    }

    /// The trace id (assigned at sampling time; 0 for a detached builder
    /// until the tracer adopts it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Record one rung with a note.
    pub fn rung(&mut self, rung: &'static str, wall_ns: u64, candidates: u64, note: String) {
        self.spans.push(TraceSpan {
            rung,
            wall_ns,
            candidates,
            note,
        });
    }

    /// Record one rung without a note (the common miss path).
    pub fn rung_quiet(&mut self, rung: &'static str, wall_ns: u64, candidates: u64) {
        self.rung(rung, wall_ns, candidates, String::new());
    }

    /// Finish the trace with a verdict label.
    pub fn finish(self, verdict: &str) -> Trace {
        Trace {
            id: self.id,
            request: self.request,
            verdict: verdict.to_string(),
            total_ns: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            spans: self.spans,
        }
    }
}

/// Tracer tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracerConfig {
    /// Trace every `sample_every`-th request (1 = every request,
    /// 0 = never). The first request is always traced so `explain`-less
    /// sessions still retain at least one exemplar.
    pub sample_every: u64,
    /// Ring-buffer capacity for recent sampled traces.
    pub ring_capacity: usize,
    /// How many slowest traces are retained for the whole session.
    pub slowest_capacity: usize,
}

impl Default for TracerConfig {
    fn default() -> TracerConfig {
        TracerConfig {
            sample_every: 64,
            ring_capacity: 256,
            slowest_capacity: 16,
        }
    }
}

/// The slowest exemplar attached to one latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Trace id of the slowest traced request observed for the histogram.
    pub trace_id: u64,
    /// Its wall nanoseconds.
    pub wall_ns: u64,
}

/// Sampling policy + bounded retention for finished traces.
#[derive(Debug)]
pub struct Tracer {
    cfg: TracerConfig,
    requests: u64,
    sampled: u64,
    next_id: u64,
    /// Recent sampled traces; `ring_at` is the next write slot.
    ring: Vec<Trace>,
    ring_at: usize,
    /// Slowest sampled traces, ascending by `total_ns` (min at index 0 so
    /// eviction is a front check).
    slowest: Vec<Trace>,
    exemplars: BTreeMap<String, Exemplar>,
}

impl Tracer {
    /// A tracer with explicit tuning.
    pub fn new(cfg: TracerConfig) -> Tracer {
        Tracer {
            cfg,
            requests: 0,
            sampled: 0,
            next_id: 0,
            ring: Vec::with_capacity(cfg.ring_capacity.min(1 << 16)),
            ring_at: 0,
            slowest: Vec::with_capacity(cfg.slowest_capacity.min(1 << 12)),
            exemplars: BTreeMap::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TracerConfig {
        &self.cfg
    }

    /// Count a request; return a builder when this one is sampled.
    /// Untraced requests cost one branch and one increment.
    pub fn begin(&mut self, request: &str) -> Option<TraceBuilder> {
        self.requests += 1;
        if self.cfg.sample_every == 0 || !(self.requests - 1).is_multiple_of(self.cfg.sample_every)
        {
            return None;
        }
        Some(self.begin_forced(request))
    }

    /// Unconditionally start a trace (the `explain` verb).
    pub fn begin_forced(&mut self, request: &str) -> TraceBuilder {
        self.sampled += 1;
        self.next_id += 1;
        TraceBuilder::new(self.next_id, request)
    }

    /// Count `n` requests whose sampling decision was made elsewhere (a
    /// dispatcher thread replicating the 1-in-K policy). Keeps
    /// [`Tracer::requests`] meaningful when `begin` never runs.
    pub fn note_requests(&mut self, n: u64) {
        self.requests += n;
    }

    /// Adopt a trace whose builder was minted with
    /// [`TraceBuilder::detached`]: assign the next session id, count it
    /// as sampled, retain it, and return the id (for exemplars). Adopt
    /// order defines id order, so an in-order collector reproduces the
    /// ids a single-threaded session would have assigned.
    pub fn adopt(&mut self, mut trace: Trace) -> u64 {
        self.sampled += 1;
        self.next_id += 1;
        trace.id = self.next_id;
        let id = trace.id;
        self.finish(trace);
        id
    }

    /// Retain a finished trace: into the ring (overwriting the oldest on
    /// wraparound) and, when slow enough, into the slowest-N set.
    pub fn finish(&mut self, trace: Trace) {
        if self.cfg.slowest_capacity > 0 {
            let evict = self.slowest.len() == self.cfg.slowest_capacity;
            if !evict || trace.total_ns > self.slowest[0].total_ns {
                if evict {
                    self.slowest.remove(0);
                }
                let at = self
                    .slowest
                    .partition_point(|t| t.total_ns <= trace.total_ns);
                self.slowest.insert(at, trace.clone());
            }
        }
        if self.cfg.ring_capacity == 0 {
            return;
        }
        if self.ring.len() < self.cfg.ring_capacity {
            self.ring.push(trace);
        } else {
            self.ring[self.ring_at] = trace;
        }
        self.ring_at = (self.ring_at + 1) % self.cfg.ring_capacity;
    }

    /// Update the exemplar for `histogram` if this trace is the slowest
    /// seen for it.
    pub fn exemplar(&mut self, histogram: &str, trace_id: u64, wall_ns: u64) {
        match self.exemplars.get_mut(histogram) {
            Some(e) if e.wall_ns >= wall_ns => {}
            Some(e) => {
                *e = Exemplar { trace_id, wall_ns };
            }
            None => {
                self.exemplars
                    .insert(histogram.to_string(), Exemplar { trace_id, wall_ns });
            }
        }
    }

    /// Requests seen (traced or not).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Requests that got a builder.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// The slowest retained traces, slowest first, at most `n`.
    pub fn slowest(&self, n: usize) -> impl Iterator<Item = &Trace> {
        self.slowest.iter().rev().take(n)
    }

    /// Recent sampled traces, newest first, at most `n`.
    pub fn recent(&self, n: usize) -> Vec<&Trace> {
        let len = self.ring.len();
        (0..len.min(n))
            .map(|back| {
                // `ring_at` is the oldest slot once the ring has wrapped.
                let idx = (self.ring_at + len - 1 - back) % len.max(1);
                &self.ring[idx]
            })
            .collect()
    }

    /// A retained trace by id (ring first, then slowest set).
    pub fn find(&self, id: u64) -> Option<&Trace> {
        self.ring
            .iter()
            .chain(self.slowest.iter())
            .find(|t| t.id == id)
    }

    /// The exemplar map (histogram name → slowest trace).
    pub fn exemplars(&self) -> &BTreeMap<String, Exemplar> {
        &self.exemplars
    }

    /// Publish tracer state into a registry: totals as counters, ring
    /// occupancy and per-histogram exemplars as gauges — so the JSON run
    /// report and Prometheus exposition carry the trace layer's own
    /// accounting next to the latencies it explains.
    pub fn export(&self, obs: &Obs) {
        obs.counter("trace.requests", &[]).add(self.requests);
        obs.counter("trace.sampled", &[]).add(self.sampled);
        obs.gauge("trace.ring_occupancy", &[])
            .set(self.ring.len() as i64);
        obs.gauge("trace.slowest_retained", &[])
            .set(self.slowest.len() as i64);
        for (hist, e) in &self.exemplars {
            let labels = [("hist", hist.as_str())];
            obs.gauge("trace.exemplar_id", &labels)
                .set(e.trace_id as i64);
            obs.gauge("trace.exemplar_wall_ns", &labels)
                .set(i64::try_from(e.wall_ns).unwrap_or(i64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: u64, total_ns: u64) -> Trace {
        Trace {
            id,
            request: format!("req {id}"),
            verdict: "miss".to_string(),
            total_ns,
            spans: Vec::new(),
        }
    }

    #[test]
    fn builder_preserves_rung_order() {
        let mut tr = Tracer::new(TracerConfig::default());
        let mut b = tr.begin_forced("msg hello");
        b.rung_quiet("refang", 10, 0);
        b.rung_quiet("url", 20, 0);
        b.rung_quiet("domain", 30, 2);
        b.rung("near", 40, 7, "hit entry=3".to_string());
        let t = b.finish("near");
        let rungs: Vec<&str> = t.spans.iter().map(|s| s.rung).collect();
        assert_eq!(rungs, ["refang", "url", "domain", "near"]);
        assert_eq!(t.spans[2].candidates, 2);
        assert_eq!(t.spans[3].note, "hit entry=3");
        let rendered = t.render();
        assert!(rendered.starts_with("trace id=1 verdict=near total_ns="));
        assert!(rendered.contains("  rung domain wall_ns=30 candidates=2 note=-"));
        assert!(rendered.ends_with("end id=1\n"));
        assert!(t.summary().contains("path=refang>url>domain>near"));
    }

    #[test]
    fn sampling_is_one_in_k_with_first_request_traced() {
        let mut tr = Tracer::new(TracerConfig {
            sample_every: 4,
            ..TracerConfig::default()
        });
        let traced: Vec<bool> = (0..12).map(|_| tr.begin("q").is_some()).collect();
        assert_eq!(
            traced,
            [true, false, false, false, true, false, false, false, true, false, false, false]
        );
        assert_eq!(tr.requests(), 12);
        assert_eq!(tr.sampled(), 3);
        let mut never = Tracer::new(TracerConfig {
            sample_every: 0,
            ..TracerConfig::default()
        });
        assert!(never.begin("q").is_none());
        assert_eq!(never.requests(), 1);
    }

    #[test]
    fn ring_wraps_and_recent_is_newest_first() {
        let mut tr = Tracer::new(TracerConfig {
            ring_capacity: 3,
            slowest_capacity: 0,
            sample_every: 1,
        });
        for id in 1..=5 {
            tr.finish(mk(id, id * 100));
        }
        // Ids 1 and 2 were overwritten by the wraparound.
        assert_eq!(tr.ring.len(), 3);
        let recent: Vec<u64> = tr.recent(10).iter().map(|t| t.id).collect();
        assert_eq!(recent, [5, 4, 3]);
        assert!(tr.find(1).is_none());
        assert!(tr.find(4).is_some());
    }

    #[test]
    fn slowest_retention_is_bounded_and_tail_selected() {
        let mut tr = Tracer::new(TracerConfig {
            ring_capacity: 2,
            slowest_capacity: 3,
            sample_every: 1,
        });
        for (id, ns) in [(1, 50), (2, 900), (3, 10), (4, 700), (5, 800), (6, 20)] {
            tr.finish(mk(id, ns));
        }
        let ids: Vec<u64> = tr.slowest(10).map(|t| t.id).collect();
        assert_eq!(ids, [2, 5, 4], "slowest first, fast traces evicted");
        // A fast trace fell out of the tiny ring but stays findable via
        // the slowest set.
        assert!(tr.find(2).is_some());
        assert!(tr.find(3).is_none());
    }

    #[test]
    fn detached_builders_get_ids_in_adopt_order() {
        let mut tr = Tracer::new(TracerConfig::default());
        // Worker threads fill detached builders; the collector adopts in
        // protocol order and ids come out exactly as `begin` would have
        // assigned them.
        let a = TraceBuilder::detached("url a").finish("hit");
        let b = TraceBuilder::detached("url b").finish("miss");
        assert_eq!((a.id, b.id), (0, 0));
        tr.note_requests(2);
        assert_eq!(tr.adopt(a), 1);
        assert_eq!(tr.adopt(b), 2);
        assert_eq!(tr.requests(), 2);
        assert_eq!(tr.sampled(), 2);
        assert_eq!(tr.find(1).unwrap().request, "url a");
        assert_eq!(tr.find(2).unwrap().verdict, "miss");
        // Adopted ids continue the same sequence `begin_forced` uses.
        let c = tr.begin_forced("explain x").finish("hit");
        assert_eq!(c.id, 3);
    }

    #[test]
    fn exemplars_keep_the_slowest_per_histogram() {
        let mut tr = Tracer::new(TracerConfig::default());
        tr.exemplar("intel.serve.triage_ns", 1, 500);
        tr.exemplar("intel.serve.triage_ns", 2, 900);
        tr.exemplar("intel.serve.triage_ns", 3, 100);
        tr.exemplar("intel.serve.lookup_ns", 3, 100);
        let e = tr.exemplars().get("intel.serve.triage_ns").unwrap();
        assert_eq!((e.trace_id, e.wall_ns), (2, 900));
        assert_eq!(tr.exemplars().len(), 2);
    }

    #[test]
    fn export_publishes_counters_gauges_and_exemplars() {
        let mut tr = Tracer::new(TracerConfig {
            sample_every: 2,
            ring_capacity: 4,
            slowest_capacity: 2,
        });
        for i in 0..6 {
            if let Some(b) = tr.begin("url x") {
                tr.finish(b.finish(if i % 2 == 0 { "hit" } else { "miss" }));
            }
        }
        tr.exemplar("intel.serve.lookup_ns", 2, 12_345);
        let obs = Obs::enabled();
        tr.export(&obs);
        assert_eq!(obs.counter("trace.requests", &[]).get(), 6);
        assert_eq!(obs.counter("trace.sampled", &[]).get(), 3);
        assert_eq!(obs.gauge("trace.ring_occupancy", &[]).get(), 3);
        let labels = [("hist", "intel.serve.lookup_ns")];
        assert_eq!(obs.gauge("trace.exemplar_id", &labels).get(), 2);
        assert_eq!(obs.gauge("trace.exemplar_wall_ns", &labels).get(), 12_345);
        // And the exposition carries them with the hist label intact.
        let prom = obs.text_exposition();
        assert!(prom.contains("trace_exemplar_id{hist=\"intel.serve.lookup_ns\"} 2"));
        assert!(prom.contains("# TYPE trace_ring_occupancy gauge"));
        let json = obs.json_report();
        // Label quotes are JSON-escaped inside the rendered key.
        assert!(json.contains("trace.exemplar_wall_ns{hist=\\\"intel.serve.lookup_ns\\\"}"));
    }
}
