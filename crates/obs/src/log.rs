//! Leveled logging: a thin stderr logger threaded through the [`Obs`]
//! handle, so `--log-level`/`--quiet` control every progress line without a
//! logging framework dependency.
//!
//! [`Obs`]: crate::Obs

use std::fmt;
use std::str::FromStr;

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or must-see problems (`--quiet` still shows these).
    Error,
    /// Degraded but continuing (e.g. a worker panic being propagated).
    Warn,
    /// Progress lines (the default level).
    Info,
    /// Per-stage details.
    Debug,
    /// Firehose.
    Trace,
}

impl Level {
    /// Lower-case name, as used by `--log-level`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level {other:?} (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

/// Log an error through an [`Obs`](crate::Obs) handle.
#[macro_export]
macro_rules! obs_error {
    ($obs:expr, $($arg:tt)*) => { $obs.log($crate::Level::Error, ::std::format_args!($($arg)*)) };
}

/// Log a warning through an [`Obs`](crate::Obs) handle.
#[macro_export]
macro_rules! obs_warn {
    ($obs:expr, $($arg:tt)*) => { $obs.log($crate::Level::Warn, ::std::format_args!($($arg)*)) };
}

/// Log a progress line through an [`Obs`](crate::Obs) handle.
#[macro_export]
macro_rules! obs_info {
    ($obs:expr, $($arg:tt)*) => { $obs.log($crate::Level::Info, ::std::format_args!($($arg)*)) };
}

/// Log a detail line through an [`Obs`](crate::Obs) handle.
#[macro_export]
macro_rules! obs_debug {
    ($obs:expr, $($arg:tt)*) => { $obs.log($crate::Level::Debug, ::std::format_args!($($arg)*)) };
}
