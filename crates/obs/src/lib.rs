//! # smishing-obs — the observability layer
//!
//! A dependency-free metrics registry, span API and leveled logger for the
//! smishing measurement pipeline. One [`Obs`] handle threads through the
//! batch pipeline, the enrichment fan-out and the streaming engine:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — atomic, labeled (by stage /
//!   service / shard), shareable across worker threads, and mergeable:
//!   [`Histogram::merge_from`] combines per-shard recordings *exactly*,
//!   like the `smishing-stream` accumulators' `merge()`.
//! * [`Span`] — RAII wall-clock stage timing (`pipeline.enrich.wall_ns`).
//! * [`Level`] + the `obs_error!`/`obs_warn!`/`obs_info!`/`obs_debug!`
//!   macros — leveled stderr logging behind `--log-level`/`--quiet`.
//! * [`Report`] — a deterministic-schema JSON run report
//!   (`--metrics-json`) and a Prometheus-style text exposition
//!   (`--metrics-text`); [`parse_report`] reads one back, and
//!   [`perf_diff`] gates a current report against a checked-in baseline.
//! * [`Tracer`] — request-level tracing: tail-sampled per-query span
//!   trees over the triage rungs, with a slowest-N ring and histogram
//!   exemplars ([`trace`]).
//! * [`TimeRing`] — a bounded per-second serve-plane time series
//!   (qps, p50/p99, hit/near/miss/shed, republish cost) ([`timeseries`]).
//!
//! The zero-cost contract: [`Obs::noop`] (the `Default`) hands out inert
//! handles — no allocation, no clock reads, no atomics — so instrumented
//! code paths behave byte-identically to uninstrumented ones.
//!
//! ```
//! use smishing_obs::{obs_info, Obs};
//!
//! let obs = Obs::enabled();
//! let span = obs.span("pipeline.demo.wall_ns");
//! obs.counter("pipeline.demo.items", &[]).add(3);
//! obs.histogram("enrich.hlr.latency_ns", &[]).record(1_200);
//! drop(span);
//! obs_info!(obs, "demo stage done");
//! let json = obs.json_report();
//! assert!(json.contains("pipeline.demo.items"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod log;
pub mod metrics;
pub mod perfdiff;
pub mod registry;
pub mod report;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use histogram::{Histogram, LocalHistogram};
pub use log::Level;
pub use metrics::{Counter, Gauge};
pub use perfdiff::{perf_diff, DiffLine, DiffReport, Direction};
pub use registry::{MetricId, Registry};
pub use report::{parse_report, GaugeStat, HistStat, Report, SCHEMA};
pub use span::Span;
pub use timeseries::{TimeRing, TsBucket, TsOutcome};
pub use trace::{Exemplar, Trace, TraceBuilder, TraceSpan, Tracer, TracerConfig};

use std::sync::Arc;
use std::time::Instant;

struct ObsInner {
    registry: Registry,
    level: Level,
}

/// The observability handle. Clone freely: clones share one registry.
///
/// A handle is either *enabled* (owns a [`Registry`] and a log level) or
/// the *no-op* handle, whose every operation short-circuits.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The no-op handle: hands out inert metrics, drops all logs.
    pub fn noop() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle logging at [`Level::Info`].
    pub fn enabled() -> Obs {
        Obs::with_level(Level::Info)
    }

    /// An enabled handle logging at `level`.
    pub fn with_level(level: Level) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: Registry::new(),
                level,
            })),
        }
    }

    /// Whether instrumentation is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The log level, when enabled.
    pub fn level(&self) -> Option<Level> {
        self.inner.as_ref().map(|i| i.level)
    }

    /// Resolve a counter (inert when disabled).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            None => Counter::default(),
            Some(i) => i.registry.counter(name, labels),
        }
    }

    /// Resolve a gauge (inert when disabled).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.inner {
            None => Gauge::default(),
            Some(i) => i.registry.gauge(name, labels),
        }
    }

    /// Resolve a histogram (inert when disabled).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match &self.inner {
            None => Histogram::default(),
            Some(i) => i.registry.histogram(name, labels),
        }
    }

    /// Open a wall-clock span recording into histogram `name` on drop.
    pub fn span(&self, name: &str) -> Span {
        self.span_with(name, &[])
    }

    /// Open a labeled wall-clock span.
    pub fn span_with(&self, name: &str, labels: &[(&str, &str)]) -> Span {
        match &self.inner {
            None => Span::disabled(),
            Some(i) => match i.registry.histogram(name, labels).0 {
                None => Span::disabled(),
                Some(core) => Span {
                    inner: Some((Instant::now(), core)),
                },
            },
        }
    }

    /// Emit a log line at `level` (no-op when disabled or filtered).
    pub fn log(&self, level: Level, args: std::fmt::Arguments<'_>) {
        if let Some(i) = &self.inner {
            if level <= i.level {
                eprintln!("[{level}] {args}");
            }
        }
    }

    /// Whether a log at `level` would be emitted.
    pub fn log_enabled(&self, level: Level) -> bool {
        self.inner.as_ref().is_some_and(|i| level <= i.level)
    }

    /// Snapshot the registry (None when disabled).
    pub fn report(&self) -> Option<Report> {
        self.inner.as_ref().map(|i| i.registry.snapshot())
    }

    /// The JSON run report (an empty `smishing-obs/v1` document when
    /// disabled).
    pub fn json_report(&self) -> String {
        self.report().unwrap_or_default().to_json()
    }

    /// The Prometheus-style text exposition (empty when disabled).
    pub fn text_exposition(&self) -> String {
        self.report().unwrap_or_default().to_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handles_are_inert() {
        let obs = Obs::noop();
        assert!(!obs.is_enabled());
        let c = obs.counter("x", &[]);
        c.inc();
        assert_eq!(c.get(), 0);
        assert!(!c.is_active());
        let h = obs.histogram("y", &[]);
        h.record(5);
        assert_eq!(h.count(), 0);
        let _span = obs.span("z");
        assert!(obs.report().is_none());
    }

    #[test]
    fn enabled_handles_share_state_by_id() {
        let obs = Obs::enabled();
        obs.counter("a.b.c", &[("shard", "0")]).inc();
        obs.counter("a.b.c", &[("shard", "0")]).add(2);
        assert_eq!(obs.counter("a.b.c", &[("shard", "0")]).get(), 3);
        assert_eq!(obs.counter("a.b.c", &[("shard", "1")]).get(), 0);
    }

    #[test]
    fn spans_record_into_histograms() {
        let obs = Obs::enabled();
        {
            let _s = obs.span("stage.x.wall_ns");
        }
        let h = obs.histogram("stage.x.wall_ns", &[]);
        assert_eq!(h.count(), 1);
    }
}
