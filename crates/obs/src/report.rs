//! Exportable run reports: deterministic-schema JSON and Prometheus-style
//! text exposition.
//!
//! Determinism contract (pinned by a snapshot test): `smishing-obs/v1`
//! reports have exactly the top-level keys `schema`, `counters`, `gauges`,
//! `histograms`; metric keys render as `name` or `name{k="v",...}` with
//! labels sorted; every value is an integer; map iteration is `BTreeMap`
//! order. Two runs that record the same counts produce byte-identical
//! reports (histogram quantiles of wall times naturally vary between runs,
//! but the *schema* — the key set and shapes — never does).

use crate::registry::MetricId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier embedded in every JSON report.
pub const SCHEMA: &str = "smishing-obs/v1";

/// Exported gauge state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeStat {
    /// Last value set.
    pub value: i64,
    /// High-water mark.
    pub max: i64,
}

/// Exported histogram state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistStat {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// A point-in-time view of a registry, ready to export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Counter totals.
    pub counters: BTreeMap<MetricId, u64>,
    /// Gauge values + high-water marks.
    pub gauges: BTreeMap<MetricId, GaugeStat>,
    /// Histogram summaries.
    pub histograms: BTreeMap<MetricId, HistStat>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// Render the deterministic `smishing-obs/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        s.push_str("  \"counters\": {");
        for (i, (id, v)) in self.counters.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(s, "    \"{}\": {v}", json_escape(&id.to_string()));
        }
        s.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"gauges\": {");
        for (i, (id, g)) in self.gauges.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    \"{}\": {{ \"max\": {}, \"value\": {} }}",
                json_escape(&id.to_string()),
                g.max,
                g.value
            );
        }
        s.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"histograms\": {");
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    \"{}\": {{ \"count\": {}, \"max\": {}, \"min\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p95\": {}, \"p99\": {}, \"sum\": {} }}",
                json_escape(&id.to_string()),
                h.count,
                h.max,
                h.min,
                h.p50,
                h.p90,
                h.p95,
                h.p99,
                h.sum
            );
        }
        s.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        s.push_str("}\n");
        s
    }

    /// Render a Prometheus-style text exposition (`.` in names becomes `_`;
    /// histograms export as summaries with `quantile` labels).
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        let mut last_family = String::new();
        for (id, v) in &self.counters {
            let name = sanitize(&id.name);
            if name != last_family {
                let _ = writeln!(s, "# TYPE {name} counter");
                last_family = name.clone();
            }
            let _ = writeln!(s, "{name}{} {v}", label_str(id, None));
        }
        last_family.clear();
        for (id, g) in &self.gauges {
            let name = sanitize(&id.name);
            if name != last_family {
                let _ = writeln!(s, "# TYPE {name} gauge");
                let _ = writeln!(s, "# TYPE {name}_max gauge");
                last_family = name.clone();
            }
            let _ = writeln!(s, "{name}{} {}", label_str(id, None), g.value);
            let _ = writeln!(s, "{name}_max{} {}", label_str(id, None), g.max);
        }
        last_family.clear();
        for (id, h) in &self.histograms {
            let name = sanitize(&id.name);
            if name != last_family {
                let _ = writeln!(s, "# TYPE {name} summary");
                last_family = name.clone();
            }
            for (q, v) in [
                ("0.5", h.p50),
                ("0.9", h.p90),
                ("0.95", h.p95),
                ("0.99", h.p99),
            ] {
                let _ = writeln!(s, "{name}{} {v}", label_str(id, Some(q)));
            }
            let _ = writeln!(s, "{name}_sum{} {}", label_str(id, None), h.sum);
            let _ = writeln!(s, "{name}_count{} {}", label_str(id, None), h.count);
        }
        s
    }
}

/// Parse a `smishing-obs/v1` JSON run report back into a [`Report`].
///
/// This is the inverse of [`Report::to_json`] for documents that
/// renderer produced (the only integers are non-negative, strings never
/// nest braces outside of label values, whitespace is free-form). It is
/// what `smish perfdiff` uses to load baseline and current run reports
/// without a JSON dependency; unknown top-level keys are rejected so a
/// schema drift fails loudly instead of comparing nothing.
pub fn parse_report(json: &str) -> Result<Report, String> {
    let mut p = Parser {
        s: json.as_bytes(),
        at: 0,
    };
    let mut report = Report::default();
    p.expect(b'{')?;
    let mut first = true;
    loop {
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.at += 1;
            break;
        }
        if !first {
            p.expect(b',')?;
        }
        first = false;
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "schema" => {
                let v = p.string()?;
                if v != SCHEMA {
                    return Err(format!("unsupported schema {v:?} (want {SCHEMA:?})"));
                }
            }
            "counters" => {
                p.object(|p, id| {
                    let v = p.integer()?;
                    let v = u64::try_from(v).map_err(|_| format!("negative counter {id}"))?;
                    report.counters.insert(id, v);
                    Ok(())
                })?;
            }
            "gauges" => {
                p.object(|p, id| {
                    let mut g = GaugeStat { value: 0, max: 0 };
                    p.fields(|name, v| {
                        match name {
                            "max" => g.max = v,
                            "value" => g.value = v,
                            other => return Err(format!("unknown gauge field {other:?}")),
                        }
                        Ok(())
                    })?;
                    report.gauges.insert(id, g);
                    Ok(())
                })?;
            }
            "histograms" => {
                p.object(|p, id| {
                    let mut h = HistStat {
                        count: 0,
                        sum: 0,
                        min: 0,
                        max: 0,
                        p50: 0,
                        p90: 0,
                        p95: 0,
                        p99: 0,
                    };
                    p.fields(|name, v| {
                        let v = u64::try_from(v).map_err(|_| format!("negative {name}"))?;
                        match name {
                            "count" => h.count = v,
                            "sum" => h.sum = v,
                            "min" => h.min = v,
                            "max" => h.max = v,
                            "p50" => h.p50 = v,
                            "p90" => h.p90 = v,
                            "p95" => h.p95 = v,
                            "p99" => h.p99 = v,
                            other => return Err(format!("unknown histogram field {other:?}")),
                        }
                        Ok(())
                    })?;
                    report.histograms.insert(id, h);
                    Ok(())
                })?;
            }
            other => return Err(format!("unknown report key {other:?}")),
        }
    }
    p.skip_ws();
    if p.at != p.s.len() {
        return Err(format!("trailing data at byte {}", p.at));
    }
    Ok(report)
}

/// Split a rendered metric key (`name{k="v",…}`) back into a [`MetricId`].
fn parse_metric_id(key: &str) -> MetricId {
    match key.split_once('{') {
        None => MetricId::new(key, &[]),
        Some((name, rest)) => {
            let rest = rest.trim_end_matches('}');
            let labels: Vec<(&str, &str)> = rest
                .split("\",")
                .filter_map(|pair| {
                    let (k, v) = pair.split_once("=\"")?;
                    Some((k, v.trim_end_matches('"')))
                })
                .collect();
            MetricId::new(name, &labels)
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|c| matches!(c, b' ' | b'\n' | b'\t' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.at).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.at,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.at += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.at += 1;
                    let esc = self.peek().ok_or("dangling escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self.s.get(self.at..self.at + 4).ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.at += 4;
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 passes through byte by byte; the
                    // input is a &str so the bytes are valid.
                    let start = self.at;
                    while self.peek().is_some_and(|c| c != b'"' && c != b'\\') {
                        self.at += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.s[start..self.at]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn integer(&mut self) -> Result<i64, String> {
        self.skip_ws();
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.at += 1;
        }
        std::str::from_utf8(&self.s[start..self.at])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("bad integer at byte {start}: {e}"))
    }

    /// `{ "key": <entry>, ... }` where `entry` parsing is the callback's
    /// job (value already positioned after the colon).
    fn object(
        &mut self,
        mut entry: impl FnMut(&mut Self, MetricId) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        let mut first = true;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.at += 1;
                return Ok(());
            }
            if !first {
                self.expect(b',')?;
            }
            first = false;
            let key = self.string()?;
            self.expect(b':')?;
            entry(self, parse_metric_id(&key))?;
        }
    }

    /// `{ "field": int, ... }` — the flat stat objects.
    fn fields(
        &mut self,
        mut field: impl FnMut(&str, i64) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        let mut first = true;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.at += 1;
                return Ok(());
            }
            if !first {
                self.expect(b',')?;
            }
            first = false;
            let name = self.string()?;
            self.expect(b':')?;
            let v = self.integer()?;
            field(&name, v)?;
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn label_str(id: &MetricId, quantile: Option<&str>) -> String {
    let mut parts: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), v))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_rendered_reports() {
        let mut r = Report::default();
        r.counters
            .insert(MetricId::new("intel.serve.queries", &[]), 1234);
        r.counters
            .insert(MetricId::new("pipeline.shard.items", &[("shard", "3")]), 7);
        r.gauges.insert(
            MetricId::new("intel.serve.qps", &[]),
            GaugeStat {
                value: 255_000,
                max: 260_000,
            },
        );
        r.gauges.insert(
            MetricId::new("stream.lag", &[("stage", "fold")]),
            GaugeStat { value: -3, max: 12 },
        );
        r.histograms.insert(
            MetricId::new("intel.serve.lookup_ns", &[]),
            HistStat {
                count: 100,
                sum: 123_456,
                min: 90,
                max: 9_000,
                p50: 1_100,
                p90: 4_000,
                p95: 6_000,
                p99: 8_800,
            },
        );
        let parsed = parse_report(&r.to_json()).expect("roundtrip");
        assert_eq!(parsed, r);
        // And the reparse renders byte-identically.
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(parse_report("{}").is_ok(), "empty report is valid");
        let wrong_schema = "{\"schema\": \"somebody-else/v9\"}";
        assert!(parse_report(wrong_schema).unwrap_err().contains("schema"));
        let unknown_key = "{\"schema\": \"smishing-obs/v1\", \"spans\": {}}";
        assert!(parse_report(unknown_key).unwrap_err().contains("spans"));
        assert!(parse_report("not json").is_err());
    }

    #[test]
    fn empty_report_roundtrips() {
        let r = Report::default();
        let parsed = parse_report(&r.to_json()).expect("empty roundtrip");
        assert_eq!(parsed, r);
    }
}
