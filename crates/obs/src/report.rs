//! Exportable run reports: deterministic-schema JSON and Prometheus-style
//! text exposition.
//!
//! Determinism contract (pinned by a snapshot test): `smishing-obs/v1`
//! reports have exactly the top-level keys `schema`, `counters`, `gauges`,
//! `histograms`; metric keys render as `name` or `name{k="v",...}` with
//! labels sorted; every value is an integer; map iteration is `BTreeMap`
//! order. Two runs that record the same counts produce byte-identical
//! reports (histogram quantiles of wall times naturally vary between runs,
//! but the *schema* — the key set and shapes — never does).

use crate::registry::MetricId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier embedded in every JSON report.
pub const SCHEMA: &str = "smishing-obs/v1";

/// Exported gauge state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeStat {
    /// Last value set.
    pub value: i64,
    /// High-water mark.
    pub max: i64,
}

/// Exported histogram state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistStat {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// A point-in-time view of a registry, ready to export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Counter totals.
    pub counters: BTreeMap<MetricId, u64>,
    /// Gauge values + high-water marks.
    pub gauges: BTreeMap<MetricId, GaugeStat>,
    /// Histogram summaries.
    pub histograms: BTreeMap<MetricId, HistStat>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// Render the deterministic `smishing-obs/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        s.push_str("  \"counters\": {");
        for (i, (id, v)) in self.counters.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(s, "    \"{}\": {v}", json_escape(&id.to_string()));
        }
        s.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"gauges\": {");
        for (i, (id, g)) in self.gauges.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    \"{}\": {{ \"max\": {}, \"value\": {} }}",
                json_escape(&id.to_string()),
                g.max,
                g.value
            );
        }
        s.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"histograms\": {");
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    \"{}\": {{ \"count\": {}, \"max\": {}, \"min\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p95\": {}, \"p99\": {}, \"sum\": {} }}",
                json_escape(&id.to_string()),
                h.count,
                h.max,
                h.min,
                h.p50,
                h.p90,
                h.p95,
                h.p99,
                h.sum
            );
        }
        s.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        s.push_str("}\n");
        s
    }

    /// Render a Prometheus-style text exposition (`.` in names becomes `_`;
    /// histograms export as summaries with `quantile` labels).
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        let mut last_family = String::new();
        for (id, v) in &self.counters {
            let name = sanitize(&id.name);
            if name != last_family {
                let _ = writeln!(s, "# TYPE {name} counter");
                last_family = name.clone();
            }
            let _ = writeln!(s, "{name}{} {v}", label_str(id, None));
        }
        last_family.clear();
        for (id, g) in &self.gauges {
            let name = sanitize(&id.name);
            if name != last_family {
                let _ = writeln!(s, "# TYPE {name} gauge");
                let _ = writeln!(s, "# TYPE {name}_max gauge");
                last_family = name.clone();
            }
            let _ = writeln!(s, "{name}{} {}", label_str(id, None), g.value);
            let _ = writeln!(s, "{name}_max{} {}", label_str(id, None), g.max);
        }
        last_family.clear();
        for (id, h) in &self.histograms {
            let name = sanitize(&id.name);
            if name != last_family {
                let _ = writeln!(s, "# TYPE {name} summary");
                last_family = name.clone();
            }
            for (q, v) in [
                ("0.5", h.p50),
                ("0.9", h.p90),
                ("0.95", h.p95),
                ("0.99", h.p99),
            ] {
                let _ = writeln!(s, "{name}{} {v}", label_str(id, Some(q)));
            }
            let _ = writeln!(s, "{name}_sum{} {}", label_str(id, None), h.sum);
            let _ = writeln!(s, "{name}_count{} {}", label_str(id, None), h.count);
        }
        s
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn label_str(id: &MetricId, quantile: Option<&str>) -> String {
    let mut parts: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), v))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}
