//! Log-scale latency histogram with exact cross-shard merging.
//!
//! Values (typically nanoseconds) land in logarithmic buckets: four
//! sub-buckets per power of two, giving ≤ ~12% relative quantile error
//! after in-bucket interpolation, over the full `u64` range, in a fixed
//! 257-slot table. All state is atomic, so one histogram can be shared by
//! many worker threads, and [`merge_from`](Histogram::merge_from) adds two
//! histograms bucket-for-bucket — merging per-shard histograms yields
//! *exactly* the histogram a single-shard recording would have produced.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// Sub-bucket resolution: 2 bits → 4 sub-buckets per octave.
const SUB_BITS: u32 = 2;
/// Sub-buckets per power of two.
const SUBS: usize = 1 << SUB_BITS;
/// Bucket 0 holds the value 0; the rest cover 64 octaves × `SUBS`.
const BUCKETS: usize = 1 + 64 * SUBS;

/// Bucket index of a value.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let octave = 63 - v.leading_zeros();
    // Top SUB_BITS bits below the leading one, exact for every octave.
    let sub = (((u128::from(v) - (1u128 << octave)) << SUB_BITS) >> octave) as usize;
    1 + octave as usize * SUBS + sub
}

/// `[lower, upper)` value bounds of a bucket.
fn bucket_bounds(idx: usize) -> (f64, f64) {
    if idx == 0 {
        return (0.0, 0.0);
    }
    let octave = (idx - 1) / SUBS;
    let sub = (idx - 1) % SUBS;
    let base = 2f64.powi(octave as i32);
    (
        base * (1.0 + sub as f64 / SUBS as f64),
        base * (1.0 + (sub + 1) as f64 / SUBS as f64),
    )
}

/// The shared histogram state behind a [`Histogram`] handle.
pub(crate) struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    pub(crate) fn merge_from(&self, other: &HistogramCore) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Relaxed);
            if n > 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.min.fetch_min(other.min.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    pub(crate) fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    pub(crate) fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    pub(crate) fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Relaxed)
        }
    }

    pub(crate) fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Estimate the `q`-quantile (0.0..=1.0) by in-bucket linear
    /// interpolation, clamped to the observed `[min, max]`.
    pub(crate) fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Relaxed);
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (lo, hi) = bucket_bounds(idx);
                let within = (rank - cum) as f64 / c as f64;
                let est = lo + (hi - lo) * within;
                return est.clamp(self.min.load(Relaxed) as f64, self.max.load(Relaxed) as f64);
            }
            cum += c;
        }
        self.max.load(Relaxed) as f64
    }

    pub(crate) fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Relaxed)).collect()
    }
}

/// A cloneable histogram handle. The default / disabled handle is a no-op:
/// every method short-circuits without touching a clock or an atomic.
#[derive(Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Whether this handle records anywhere (false for no-op handles).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }

    /// Run `f`, recording its wall-clock nanoseconds. Disabled handles run
    /// `f` directly without reading the clock.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        match &self.0 {
            None => f(),
            Some(core) => {
                let start = Instant::now();
                let out = f();
                core.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                out
            }
        }
    }

    /// Fold another histogram's recordings into this one. Exact: merging
    /// per-shard histograms equals single-shard recording of all values.
    pub fn merge_from(&self, other: &Histogram) {
        if let (Some(mine), Some(theirs)) = (&self.0, &other.0) {
            mine.merge_from(theirs);
        }
    }

    /// Recorded value count (0 for disabled handles).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.count())
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum())
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.min())
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.max())
    }

    /// Estimated `q`-quantile (see [`HistogramCore::quantile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        self.0.as_ref().map_or(0.0, |c| c.quantile(q))
    }

    /// Raw per-bucket counts — exposed so tests can assert that merged
    /// histograms are *bucket-exact*, not merely quantile-close.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.as_ref().map_or_else(Vec::new, |c| c.bucket_counts())
    }
}

/// A single-owner log-scale histogram: the same bucket layout and
/// quantile math as [`Histogram`], without the atomics. The time-series
/// ring keeps one per second-bucket, where a shared atomic histogram
/// would be pure overhead — recording is a plain add, and the whole
/// struct is `Copy`-free but trivially clearable for ring reuse.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LocalHistogram {
    /// An empty histogram.
    pub fn new() -> LocalHistogram {
        LocalHistogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Reset to empty (ring-slot reuse without reallocating).
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Recorded value count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Estimated `q`-quantile by in-bucket interpolation, clamped to the
    /// observed `[min, max]` — identical math to the atomic histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (lo, hi) = bucket_bounds(idx);
                let within = (rank - cum) as f64 / c as f64;
                let est = lo + (hi - lo) * within;
                return est.clamp(self.min as f64, self.max as f64);
            }
            cum += c;
        }
        self.max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0;
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 1000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "{v}");
            assert!(idx >= last, "{v}");
            last = idx;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bounds_contain_their_values() {
        for v in [1u64, 3, 17, 255, 4096, 5000, 123_456_789] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v as f64 && (v as f64) < hi, "{v}: [{lo},{hi})");
        }
    }

    #[test]
    fn local_histogram_matches_atomic_quantiles() {
        let shared = Histogram(Some(Arc::new(HistogramCore::default())));
        let mut local = LocalHistogram::new();
        for v in [0u64, 1, 5, 90, 1_000, 65_000, 1 << 30, 17, 17, 17] {
            shared.record(v);
            local.record(v);
        }
        assert_eq!(local.count(), shared.count());
        assert_eq!(local.sum(), shared.sum());
        assert_eq!(local.min(), shared.min());
        assert_eq!(local.max(), shared.max());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(local.quantile(q), shared.quantile(q), "q={q}");
        }
        local.clear();
        assert_eq!(local.count(), 0);
        assert_eq!(local.quantile(0.5), 0.0);
        assert_eq!(local.min(), 0);
    }
}
