//! Counters and gauges: atomic, cloneable handles, no-op when disabled.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Shared counter state.
#[derive(Default)]
pub(crate) struct CounterCore(AtomicU64);

impl CounterCore {
    pub(crate) fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A monotonically increasing counter. The default handle is a no-op.
#[derive(Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<CounterCore>>);

impl Counter {
    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            core.0.fetch_add(n, Relaxed);
        }
    }

    /// Current value (0 for disabled handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.get())
    }

    /// Fold another counter's total into this one.
    pub fn merge_from(&self, other: &Counter) {
        self.add(other.get());
    }
}

/// Shared gauge state: the current value plus its high-water mark.
#[derive(Default)]
pub(crate) struct GaugeCore {
    value: AtomicI64,
    max: AtomicI64,
}

impl GaugeCore {
    pub(crate) fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }

    pub(crate) fn high_water(&self) -> i64 {
        self.max.load(Relaxed)
    }
}

/// A point-in-time gauge that also tracks its high-water mark (useful for
/// channel depths, where the peak matters more than the final value).
#[derive(Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCore>>);

impl Gauge {
    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Set the current value (and raise the high-water mark).
    pub fn set(&self, v: i64) {
        if let Some(core) = &self.0 {
            core.value.store(v, Relaxed);
            core.max.fetch_max(v, Relaxed);
        }
    }

    /// Adjust the current value by `delta`.
    pub fn add(&self, delta: i64) {
        if let Some(core) = &self.0 {
            let v = core.value.fetch_add(delta, Relaxed) + delta;
            core.max.fetch_max(v, Relaxed);
        }
    }

    /// Current value (0 for disabled handles).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.get())
    }

    /// Highest value ever set (0 for disabled handles).
    pub fn high_water(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.high_water())
    }
}
