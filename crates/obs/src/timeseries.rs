//! Per-second serve-plane time series in a bounded ring.
//!
//! Long soaks need more than end-of-run aggregates: a latency spike at
//! minute 40 is invisible in a session-wide p99. [`TimeRing`] keeps one
//! [`TsBucket`] per wall-clock second over a bounded window — query and
//! outcome counts (hit/near/miss/shed), a [`LocalHistogram`] for
//! per-second p50/p99, and the epoch-republish cost observed that second
//! — overwriting the oldest second on wraparound, so memory stays fixed
//! no matter how long the serve plane runs.
//!
//! The ring is deliberately clock-free: callers pass elapsed seconds
//! (the serve loop derives them from its session `Instant`), so tests
//! can drive wraparound deterministically and the recorder itself never
//! reads a clock.

use crate::histogram::LocalHistogram;
use crate::Obs;
use std::fmt::Write as _;

/// How a recorded query resolved, for per-second rate accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsOutcome {
    /// Known-infrastructure hit.
    Hit,
    /// Similarity-tier hit.
    Near,
    /// Lookup/similarity miss.
    Miss,
    /// Fell through to the model.
    Triaged,
    /// Malformed request.
    Error,
    /// Rejected by admission control before any rung ran.
    Shed,
}

/// One second's worth of serve-plane accounting.
#[derive(Debug, Clone, Default)]
pub struct TsBucket {
    /// Elapsed-second index this bucket covers (`u64::MAX`-free: buckets
    /// start zeroed and are re-stamped on reuse).
    pub second: u64,
    /// Whether the bucket has recorded anything since its last reset.
    pub live: bool,
    /// Queries recorded this second.
    pub queries: u64,
    /// Known-infrastructure hits.
    pub hits: u64,
    /// Similarity-tier hits.
    pub near_hits: u64,
    /// Misses.
    pub misses: u64,
    /// Model fallbacks.
    pub triaged: u64,
    /// Malformed requests.
    pub errors: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// Epoch republishes observed this second.
    pub republishes: u64,
    /// Total republish cost observed this second (ns).
    pub republish_ns: u64,
    /// Per-second latency distribution.
    pub latency: LocalHistogram,
}

impl TsBucket {
    fn reset(&mut self, second: u64) {
        self.second = second;
        self.live = true;
        self.queries = 0;
        self.hits = 0;
        self.near_hits = 0;
        self.misses = 0;
        self.triaged = 0;
        self.errors = 0;
        self.shed = 0;
        self.republishes = 0;
        self.republish_ns = 0;
        self.latency.clear();
    }

    /// Render one protocol line for this bucket, with `age` seconds back
    /// from now.
    pub fn line(&self, age: u64) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "ts age_s={age} qps={} hits={} near={} miss={} triaged={} errors={} shed={} \
             p50_ns={} p99_ns={} republishes={} republish_ns={}",
            self.queries,
            self.hits,
            self.near_hits,
            self.misses,
            self.triaged,
            self.errors,
            self.shed,
            self.latency.quantile(0.50).round() as u64,
            self.latency.quantile(0.99).round() as u64,
            self.republishes,
            self.republish_ns,
        );
        s
    }
}

/// Bounded per-second ring recorder.
#[derive(Debug)]
pub struct TimeRing {
    buckets: Vec<TsBucket>,
    /// Highest second index seen so far.
    now: u64,
    started: bool,
}

impl TimeRing {
    /// A ring covering `window` seconds (minimum 1).
    pub fn new(window: usize) -> TimeRing {
        TimeRing {
            buckets: vec![TsBucket::default(); window.max(1)],
            now: 0,
            started: false,
        }
    }

    /// The window size in seconds.
    pub fn window(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_at(&mut self, second: u64) -> &mut TsBucket {
        let idx = (second % self.buckets.len() as u64) as usize;
        if !self.buckets[idx].live || self.buckets[idx].second != second {
            self.buckets[idx].reset(second);
        }
        self.started = true;
        self.now = self.now.max(second);
        &mut self.buckets[idx]
    }

    /// Record one query outcome with its latency at `second` (elapsed
    /// seconds since the session started).
    pub fn record(&mut self, second: u64, outcome: TsOutcome, wall_ns: u64) {
        let b = self.bucket_at(second);
        b.queries += 1;
        match outcome {
            TsOutcome::Hit => b.hits += 1,
            TsOutcome::Near => b.near_hits += 1,
            TsOutcome::Miss => b.misses += 1,
            TsOutcome::Triaged => b.triaged += 1,
            TsOutcome::Error => b.errors += 1,
            TsOutcome::Shed => {
                b.shed += 1;
                b.queries -= 1; // shed requests never became queries
            }
        }
        if !matches!(outcome, TsOutcome::Shed | TsOutcome::Error) {
            b.latency.record(wall_ns);
        }
    }

    /// Record an epoch-republish cost observed at `second`.
    pub fn record_republish(&mut self, second: u64, cost_ns: u64) {
        let b = self.bucket_at(second);
        b.republishes += 1;
        b.republish_ns += cost_ns;
    }

    /// The most recent `n` live buckets (newest first), capped at the
    /// window.
    pub fn last(&self, n: usize) -> Vec<&TsBucket> {
        if !self.started {
            return Vec::new();
        }
        let len = self.buckets.len() as u64;
        let mut out = Vec::new();
        for back in 0..n.min(self.buckets.len()) as u64 {
            let Some(second) = self.now.checked_sub(back) else {
                break;
            };
            let b = &self.buckets[(second % len) as usize];
            if b.live && b.second == second {
                out.push(b);
            }
        }
        out
    }

    /// Render the last `n` seconds as protocol lines, newest first.
    pub fn render(&self, n: usize) -> String {
        let mut s = String::new();
        for b in self.last(n) {
            let _ = writeln!(s, "{}", b.line(self.now - b.second));
        }
        s
    }

    /// Publish the latest second's rates and the window occupancy as
    /// gauges, so run reports carry the tail of the time series.
    pub fn export(&self, obs: &Obs) {
        let live = self.last(self.buckets.len());
        obs.gauge("serve.ts.window_s", &[])
            .set(self.buckets.len() as i64);
        obs.gauge("serve.ts.live_buckets", &[])
            .set(live.len() as i64);
        if let Some(latest) = live.first() {
            obs.gauge("serve.ts.last_qps", &[])
                .set(latest.queries as i64);
            obs.gauge("serve.ts.last_p99_ns", &[])
                .set(latest.latency.quantile(0.99).round() as i64);
            obs.gauge("serve.ts.last_shed", &[]).set(latest.shed as i64);
        }
        let (republishes, republish_ns) = live.iter().fold((0u64, 0u64), |(n, ns), b| {
            (n + b.republishes, ns + b.republish_ns)
        });
        obs.gauge("serve.ts.window_republishes", &[])
            .set(republishes as i64);
        obs.gauge("serve.ts.window_republish_ns", &[])
            .set(i64::try_from(republish_ns).unwrap_or(i64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_second_buckets_accumulate_and_quantile() {
        let mut r = TimeRing::new(60);
        for i in 0..100 {
            r.record(0, TsOutcome::Hit, 1_000 + i);
        }
        r.record(0, TsOutcome::Miss, 9_000);
        r.record(1, TsOutcome::Near, 2_000);
        r.record(1, TsOutcome::Error, 0);
        let last = r.last(10);
        assert_eq!(last.len(), 2);
        assert_eq!(last[0].second, 1);
        assert_eq!(last[0].near_hits, 1);
        assert_eq!(last[0].errors, 1);
        assert_eq!(last[0].latency.count(), 1, "errors never record latency");
        assert_eq!(last[1].queries, 101);
        assert_eq!(last[1].hits, 100);
        assert!(last[1].latency.quantile(0.99) >= 1_000.0);
        let rendered = r.render(10);
        assert!(rendered.starts_with("ts age_s=0 qps=2"), "{rendered}");
        assert!(
            rendered.contains("ts age_s=1 qps=101 hits=100"),
            "{rendered}"
        );
    }

    #[test]
    fn ring_wraps_without_growing() {
        let mut r = TimeRing::new(4);
        for sec in 0..10u64 {
            r.record(sec, TsOutcome::Hit, 100);
            r.record(sec, TsOutcome::Hit, 100);
        }
        assert_eq!(r.window(), 4);
        let last = r.last(100);
        assert_eq!(last.len(), 4, "only the window survives");
        let seconds: Vec<u64> = last.iter().map(|b| b.second).collect();
        assert_eq!(seconds, [9, 8, 7, 6]);
        assert!(last.iter().all(|b| b.queries == 2), "old data was reset");
    }

    #[test]
    fn gaps_leave_stale_buckets_out() {
        let mut r = TimeRing::new(8);
        r.record(0, TsOutcome::Hit, 10);
        r.record(5, TsOutcome::Miss, 10);
        let seconds: Vec<u64> = r.last(8).iter().map(|b| b.second).collect();
        // Seconds 1–4 never recorded: absent, not zero-filled.
        assert_eq!(seconds, [5, 0]);
    }

    #[test]
    fn shed_and_republish_account_separately() {
        let mut r = TimeRing::new(4);
        r.record(3, TsOutcome::Shed, 0);
        r.record(3, TsOutcome::Hit, 50);
        r.record_republish(3, 1_000_000);
        let last = r.last(1);
        assert_eq!(last[0].shed, 1);
        assert_eq!(last[0].queries, 1, "shed requests are not queries");
        assert_eq!(last[0].republishes, 1);
        assert_eq!(last[0].republish_ns, 1_000_000);
        let obs = Obs::enabled();
        r.export(&obs);
        assert_eq!(obs.gauge("serve.ts.last_shed", &[]).get(), 1);
        assert_eq!(obs.gauge("serve.ts.window_republishes", &[]).get(), 1);
        assert!(obs.json_report().contains("serve.ts.last_qps"));
    }
}
