//! The metrics registry: named, labeled metrics behind cheap handles.
//!
//! Metric names follow the `stage.service.metric` convention
//! (`enrich.hlr.latency_ns`, `stream.shard.channel_depth`); labels add
//! dimensions that would otherwise explode the name space (`shard="3"`).
//! Handles are `Arc`s into the registry, so workers resolve a metric once
//! and then record lock-free.

use crate::histogram::{Histogram, HistogramCore};
use crate::metrics::{Counter, CounterCore, Gauge, GaugeCore};
use crate::report::{GaugeStat, HistStat, Report};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A metric's identity: name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Dotted metric name (`stage.service.metric`).
    pub name: String,
    /// Label dimensions, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Build an id; labels are sorted so the same set always compares equal.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}=\"{v}\"")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// The registry. Interior-mutable and `Sync`: resolving a handle takes a
/// short mutex; recording through a handle is lock-free.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<MetricId, Arc<CounterCore>>>,
    gauges: Mutex<BTreeMap<MetricId, Arc<GaugeCore>>>,
    histograms: Mutex<BTreeMap<MetricId, Arc<HistogramCore>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Resolve (or create) a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricId::new(name, labels);
        let mut map = self.counters.lock().expect("counter registry lock");
        Counter(Some(Arc::clone(map.entry(id).or_default())))
    }

    /// Resolve (or create) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricId::new(name, labels);
        let mut map = self.gauges.lock().expect("gauge registry lock");
        Gauge(Some(Arc::clone(map.entry(id).or_default())))
    }

    /// Resolve (or create) a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = MetricId::new(name, labels);
        let mut map = self.histograms.lock().expect("histogram registry lock");
        Histogram(Some(Arc::clone(map.entry(id).or_default())))
    }

    /// A consistent point-in-time view of every registered metric.
    pub fn snapshot(&self) -> Report {
        let counters = self
            .counters
            .lock()
            .expect("counter registry lock")
            .iter()
            .map(|(id, c)| (id.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry lock")
            .iter()
            .map(|(id, g)| {
                (
                    id.clone(),
                    GaugeStat {
                        value: g.get(),
                        max: g.high_water(),
                    },
                )
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry lock")
            .iter()
            .map(|(id, h)| {
                (
                    id.clone(),
                    HistStat {
                        count: h.count(),
                        sum: h.sum(),
                        min: h.min(),
                        max: h.max(),
                        p50: h.quantile(0.50).round() as u64,
                        p90: h.quantile(0.90).round() as u64,
                        p95: h.quantile(0.95).round() as u64,
                        p99: h.quantile(0.99).round() as u64,
                    },
                )
            })
            .collect();
        Report {
            counters,
            gauges,
            histograms,
        }
    }
}
