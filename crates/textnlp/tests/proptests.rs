//! Property-based tests over the text-analysis stack.

use proptest::prelude::*;
use smishing_textnlp::annotator::{Annotator, PipelineAnnotator};
use smishing_textnlp::templates::{match_pattern, render_pattern, Fills, TemplateLibrary};
use smishing_textnlp::{detect_lures, extract_brand, identify_language, normalize_text};

proptest! {
    #[test]
    fn nothing_panics_on_arbitrary_text(s in "\\PC{0,120}") {
        let _ = normalize_text(&s);
        let _ = identify_language(&s);
        let _ = extract_brand(&s);
        let _ = detect_lures(&s, None);
        let _ = PipelineAnnotator::new().annotate(&s);
    }

    #[test]
    fn normalization_is_idempotent_and_ascii_lowercase_on_ascii(s in "[ -~]{0,60}") {
        let once = normalize_text(&s);
        prop_assert_eq!(normalize_text(&once), once.clone());
        prop_assert!(once.chars().all(|c| !c.is_ascii_uppercase()));
    }

    #[test]
    fn render_then_match_extracts_the_same_fills(
        brand in "[A-Z][a-z]{2,8}",
        code in "[0-9]{6}",
        amount in "[1-9][0-9]{0,3}",
    ) {
        let pattern = "{brand}: your code is {code}, a charge of £{amount} is pending.";
        let fills = Fills {
            brand: Some(brand.clone()),
            code: Some(code.clone()),
            amount: Some(amount.clone()),
            ..Fills::default()
        };
        let rendered = render_pattern(pattern, &fills);
        let extracted = match_pattern(pattern, &rendered).expect("own rendering matches");
        prop_assert_eq!(extracted.brand.as_deref(), Some(brand.as_str()));
        prop_assert_eq!(extracted.code.as_deref(), Some(code.as_str()));
        prop_assert_eq!(extracted.amount.as_deref(), Some(amount.as_str()));
    }

    #[test]
    fn every_template_renders_without_leftover_placeholders(
        url in "https://[a-z]{3,8}\\.(com|ly)/[a-z0-9]{3,6}",
        name in "[A-Z][a-z]{2,6}",
    ) {
        let fills = Fills {
            brand: Some("Santander".into()),
            url: Some(url),
            name: Some(name),
            amount: Some("£12.00".into()),
            tracking: Some("RM123456789GB".into()),
            code: Some("123456".into()),
            number: Some("+447900000001".into()),
        };
        for t in TemplateLibrary::global().all() {
            let rendered = t.render(&fills);
            prop_assert!(!rendered.contains('{'), "template {}: {}", t.id, rendered);
            let english = t.render_english(&fills);
            prop_assert!(!english.contains('}'), "template {}: {}", t.id, english);
        }
    }

    #[test]
    fn brand_ner_survives_case_and_leet(variant in 0u8..4) {
        let base = "netflix";
        let mutated: String = match variant {
            0 => base.to_uppercase(),
            1 => "N3tflix".to_string(),
            2 => "Netfl1x".to_string(),
            _ => "n-e-t-f-l-i-x".to_string(),
        };
        let text = format!("Your {mutated} subscription is on hold");
        let found = extract_brand(&text).map(|b| b.name);
        prop_assert_eq!(found, Some("Netflix"), "{}", text);
    }

    #[test]
    fn annotation_is_deterministic(s in "[ -~]{0,80}") {
        let a = PipelineAnnotator::new().annotate(&s);
        let b = PipelineAnnotator::new().annotate(&s);
        prop_assert_eq!(a.scam_type, b.scam_type);
        prop_assert_eq!(a.brand, b.brand);
        prop_assert_eq!(a.lures, b.lures);
    }
}
