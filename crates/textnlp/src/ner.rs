//! Brand extraction (§3.3.6).
//!
//! Off-the-shelf NER fails on smishing because of leetspeak evasion and
//! globally unknown entities. The extractor here:
//!
//! 1. normalizes the text ([`crate::normalize`]), defeating `N3tfl!x`-style
//!    evasion,
//! 2. scans the normalized alias index longest-alias-first at word
//!    boundaries (so "bank of america" beats "bank"),
//! 3. falls back to per-token edit-distance-1 matching for typo-squatted
//!    single-word aliases (`amazom` → Amazon).

use crate::brands::{Brand, BrandCatalog};
use crate::normalize::normalize_text;

/// Levenshtein distance, early-exiting at > 1 since we only use d ≤ 1.
fn within_edit_one(a: &str, b: &str) -> bool {
    let (la, lb) = (a.chars().count(), b.chars().count());
    if la.abs_diff(lb) > 1 {
        return false;
    }
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let (mut i, mut j, mut edits) = (0usize, 0usize, 0usize);
    while i < av.len() && j < bv.len() {
        if av[i] == bv[j] {
            i += 1;
            j += 1;
            continue;
        }
        edits += 1;
        if edits > 1 {
            return false;
        }
        if av.len() == bv.len() {
            i += 1;
            j += 1; // substitution
        } else if av.len() > bv.len() {
            i += 1; // deletion from a
        } else {
            j += 1; // insertion into a
        }
    }
    edits + (av.len() - i) + (bv.len() - j) <= 1
}

/// Whether `needle` occurs in `hay` at word boundaries.
fn contains_at_word_boundary(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0 || hay.as_bytes()[abs - 1] == b' ';
        let after = abs + needle.len();
        let after_ok = after == hay.len() || hay.as_bytes()[after] == b' ';
        if before_ok && after_ok {
            return true;
        }
        // Advance by one full character (the haystack is UTF-8).
        start = abs + hay[abs..].chars().next().map(char::len_utf8).unwrap_or(1);
        if start >= hay.len() {
            break;
        }
    }
    false
}

/// Common words that must never fuzzy-match a brand ("apply" is one edit
/// from "Apple").
const FUZZY_STOPLIST: &[&str] = &[
    "apply", "applies", "applied", "change", "charge", "choose", "please", "amazing", "chases",
    "paying", "ranges", "cause", "phase",
];

/// Messaging channels: a mention like "message me on WhatsApp" is a channel
/// reference, not an impersonation of the channel brand.
fn is_channel_mention(norm: &str, alias: &str) -> bool {
    if alias != "whatsapp" && alias != "telegram" {
        return false;
    }
    for marker in ["on ", "via ", "over "] {
        if norm.contains(&format!("{marker}{alias}")) {
            return true;
        }
    }
    false
}

/// Extract the impersonated brand from a message text (any language — the
/// alias forms are proper names that survive translation).
pub fn extract_brand(text: &str) -> Option<&'static Brand> {
    let norm = normalize_text(text);
    if norm.is_empty() {
        return None;
    }
    let cat = BrandCatalog::global();

    // Exact alias hit, longest alias first.
    for (alias, idx) in cat.alias_index() {
        if alias.len() >= 2
            && contains_at_word_boundary(&norm, alias)
            && !is_channel_mention(&norm, alias)
        {
            return Some(&cat.brands()[*idx]);
        }
    }

    // Fuzzy fallback: single-word aliases of length ≥ 5 at edit distance 1.
    for token in norm.split(' ') {
        if token.len() < 5 || FUZZY_STOPLIST.contains(&token) {
            continue;
        }
        for (alias, idx) in cat.alias_index() {
            if !alias.contains(' ')
                && alias.len() >= 5
                && within_edit_one(token, alias)
                && !is_channel_mention(&norm, alias)
            {
                return Some(&cat.brands()[*idx]);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name_of(text: &str) -> Option<&'static str> {
        extract_brand(text).map(|b| b.name)
    }

    #[test]
    fn plain_mentions() {
        assert_eq!(
            name_of("Your SBI account is blocked, update KYC now"),
            Some("State Bank of India")
        );
        assert_eq!(name_of("Netflix: your payment failed"), Some("Netflix"));
        assert_eq!(name_of("Rabobank: uw pas verloopt"), Some("Rabobank"));
    }

    #[test]
    fn leetspeak_evasion_defeated() {
        // The paper's motivating example.
        assert_eq!(
            name_of("Your N3tfl!x subscription is on hold"),
            Some("Netflix")
        );
        assert_eq!(name_of("AMAZ0N: parcel fee due"), Some("Amazon"));
        assert_eq!(name_of("P4yPal: verify y0ur account"), Some("PayPal"));
    }

    #[test]
    fn multiword_beats_substring() {
        assert_eq!(
            name_of("Bank of America alert: card locked"),
            Some("Bank of America")
        );
        assert_eq!(
            name_of("Royal Mail: your parcel is waiting"),
            Some("Royal Mail")
        );
    }

    #[test]
    fn typo_squats() {
        assert_eq!(
            name_of("Your Amazom order could not be shipped"),
            Some("Amazon")
        );
        assert_eq!(
            name_of("Netflxi account suspended"),
            None,
            "transposition is distance 2"
        );
    }

    #[test]
    fn no_brand() {
        assert_eq!(
            name_of("Hi mum, my phone broke, text me on this number"),
            None
        );
        assert_eq!(name_of(""), None);
    }

    #[test]
    fn word_boundaries_prevent_false_hits() {
        // "upset" contains "ups"? Not at word boundary in normalized text.
        assert_eq!(name_of("I am very upset about this"), None);
        // "fee" must not fuzzy-match "ee".
        assert_eq!(name_of("a small fee applies"), None);
    }

    #[test]
    fn edit_distance_helper() {
        assert!(within_edit_one("amazon", "amazon"));
        assert!(within_edit_one("amazon", "amazom"));
        assert!(within_edit_one("amazon", "amazn"));
        assert!(within_edit_one("amazon", "amazons"));
        assert!(!within_edit_one("amazon", "amzaon")); // transposition = 2 edits
        assert!(!within_edit_one("amazon", "amzn"));
    }
}
