//! Hashed character n-gram shingling — the shared tokenization layer
//! under the similarity index (`smishing-simindex`).
//!
//! URL-looking tokens are dropped first (before any folding erases the
//! `://` that makes them recognizable), each surviving word is normalized
//! (casefold + homoglyph/leetspeak folding), and the words are re-joined
//! with single spaces. Shingles are 64-bit FNV-1a hashes of every `n`
//! consecutive characters of that canonical string — so a campaign that
//! rotates its landing domain, defangs its spelling, or swaps one word of
//! the template still produces a mostly-overlapping shingle set.
//! Character grams (rather than word grams) matter for SMS-length texts:
//! they yield enough shingles that a one-word paraphrase perturbs only a
//! small fraction of the set, keeping SimHash distances stable.

use crate::normalize::normalize_token;
use crate::tokenize::looks_like_url;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a window of chars.
fn fnv1a_chars(chars: &[char]) -> u64 {
    let mut h = FNV_OFFSET;
    for &c in chars {
        h ^= u64::from(u32::from(c));
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The canonical form shingling operates on: URL chunks removed, words
/// normalized, single-space separated.
///
/// Like [`normalize_text`](crate::normalize::normalize_text), whitespace
/// chunks stay whole so interior-punctuation evasion (`N3tfl!x`) folds
/// back to the brand — but URL chunks are dropped rather than folded.
pub fn canonical_text(text: &str) -> String {
    text.split_whitespace()
        .filter(|chunk| !looks_like_url(chunk))
        .map(|chunk| {
            let trimmed = chunk.trim_matches(|c: char| {
                matches!(
                    c,
                    '.' | ',' | '!' | '?' | ';' | ':' | '"' | '\'' | '(' | ')' | '[' | ']'
                )
            });
            normalize_token(trimmed)
        })
        .filter(|w| !w.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Hash the character n-grams of `text` into a sorted, deduplicated
/// shingle set.
///
/// The set representation (rather than multiset) makes the exact Jaccard
/// used for re-ranking well-defined, and sorting makes intersection a
/// linear merge. Texts shorter than `n` characters collapse to a single
/// whole-string shingle; empty texts — or texts that are all URLs —
/// return an empty set.
pub fn hashed_ngrams(text: &str, n: usize) -> Vec<u64> {
    let n = n.max(1);
    let canonical = canonical_text(text);
    let chars: Vec<char> = canonical.chars().collect();
    let mut out: Vec<u64> = if chars.len() >= n {
        chars.windows(n).map(fnv1a_chars).collect()
    } else if chars.is_empty() {
        Vec::new()
    } else {
        vec![fnv1a_chars(&chars)]
    };
    out.sort_unstable();
    out.dedup();
    out
}

/// Exact Jaccard similarity of two sorted, deduplicated shingle sets.
///
/// Returns 0.0 when either set is empty — an empty text is similar to
/// nothing, including another empty text.
pub fn jaccard(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_identical_shingles() {
        let a = hashed_ngrams("Your package is waiting, pay the fee", 4);
        let b = hashed_ngrams("Your package is waiting, pay the fee", 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn url_rotation_does_not_change_shingles() {
        let a = hashed_ngrams("pay the fee at https://evil-one.top/a now", 4);
        let b = hashed_ngrams("pay the fee at https://other-site.xyz/b now", 4);
        assert_eq!(a, b);
    }

    #[test]
    fn short_text_collapses_to_one_shingle() {
        assert_eq!(hashed_ngrams("hi", 4).len(), 1);
        assert_ne!(hashed_ngrams("hi", 4), hashed_ngrams("yo", 4));
    }

    #[test]
    fn empty_and_url_only_texts_are_empty() {
        assert!(hashed_ngrams("", 4).is_empty());
        assert!(hashed_ngrams("https://evil.com/x", 4).is_empty());
    }

    #[test]
    fn jaccard_bounds_and_identity() {
        let a = hashed_ngrams("your bank account has been locked today", 4);
        let b = hashed_ngrams("your bank account has been frozen today", 4);
        let c = hashed_ngrams("lunch at noon?", 4);
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        let ab = jaccard(&a, &b);
        assert!(ab > 0.3 && ab < 1.0, "{ab}");
        assert!(jaccard(&a, &c) < 0.2);
        assert_eq!(jaccard(&[], &[]), 0.0);
    }

    #[test]
    fn normalization_folds_evasive_spellings() {
        let a = hashed_ngrams("Netflix account suspended verify now", 4);
        let b = hashed_ngrams("N3tfl!x account suspended verify now", 4);
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_text_is_url_free_and_folded() {
        assert_eq!(
            canonical_text("URGENT: verify N3tfl!x at https://bad.top/x"),
            "urgent verify netflix at"
        );
    }
}
