//! Translation to English (§3.2).
//!
//! The paper has GPT-4o translate every non-English smish. Our stand-in is
//! template-backed: the translator recognizes which library template
//! produced the text (pattern matching with filler extraction) and
//! re-renders the template's English counterpart with the same fillers.
//! This models a translator that *knows the phrasebook* — exactly the
//! competence the LLM contributes — while remaining fully offline.

use crate::templates::TemplateLibrary;
use smishing_types::Language;

/// Result of a translation attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Translated {
    /// Text was already English; returned verbatim.
    AlreadyEnglish(String),
    /// Recognized and translated.
    Translated(String),
    /// Unrecognized phrasing; original returned untouched.
    Untranslatable(String),
}

impl Translated {
    /// The best-available English text.
    pub fn text(&self) -> &str {
        match self {
            Translated::AlreadyEnglish(s)
            | Translated::Translated(s)
            | Translated::Untranslatable(s) => s,
        }
    }

    /// Whether an actual translation happened.
    pub fn was_translated(&self) -> bool {
        matches!(self, Translated::Translated(_))
    }
}

/// The translator interface the pipeline codes against.
pub trait Translator {
    /// Translate `text` (whose detected language is `lang`) to English.
    fn to_english(&self, text: &str, lang: Option<Language>) -> Translated;
}

/// Template-backed translator (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct TemplateTranslator;

impl TemplateTranslator {
    /// Build the translator.
    pub fn new() -> TemplateTranslator {
        TemplateTranslator
    }
}

impl Translator for TemplateTranslator {
    fn to_english(&self, text: &str, lang: Option<Language>) -> Translated {
        if lang == Some(Language::English) {
            return Translated::AlreadyEnglish(text.to_string());
        }
        let lib = TemplateLibrary::global();
        match lib.match_text(text, lang) {
            Some((template, fills)) => {
                if template.language == Language::English {
                    Translated::AlreadyEnglish(text.to_string())
                } else {
                    Translated::Translated(template.render_english(&fills))
                }
            }
            None => Translated::Untranslatable(text.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{Fills, TemplateLibrary};

    fn fills() -> Fills {
        Fills {
            brand: Some("Rabobank".into()),
            url: Some("https://is.gd/q7".into()),
            name: Some("Eva".into()),
            amount: Some("€310".into()),
            tracking: Some("3SABCD99".into()),
            code: Some("114477".into()),
            number: Some("+31612345678".into()),
        }
    }

    #[test]
    fn translates_dutch_banking_smish() {
        let lib = TemplateLibrary::global();
        let t = lib
            .for_scam_lang(smishing_types::ScamType::Banking, Language::Dutch)
            .into_iter()
            .next()
            .unwrap();
        let rendered = t.render(&fills());
        let tr = TemplateTranslator::new().to_english(&rendered, Some(Language::Dutch));
        assert!(tr.was_translated(), "{rendered}");
        let en = tr.text();
        assert!(en.contains("Rabobank"), "{en}");
        assert!(en.contains("https://is.gd/q7"), "{en}");
        assert!(
            en.to_lowercase().contains("verify") || en.to_lowercase().contains("account"),
            "{en}"
        );
    }

    #[test]
    fn english_passes_through() {
        let tr =
            TemplateTranslator::new().to_english("Your account is locked", Some(Language::English));
        assert_eq!(
            tr,
            Translated::AlreadyEnglish("Your account is locked".into())
        );
    }

    #[test]
    fn every_non_english_template_translates() {
        let lib = TemplateLibrary::global();
        let translator = TemplateTranslator::new();
        let f = fills();
        for t in lib.all().iter().filter(|t| t.language != Language::English) {
            let rendered = t.render(&f);
            let tr = translator.to_english(&rendered, Some(t.language));
            assert!(
                tr.was_translated(),
                "template {} ({:?}) failed: {rendered}",
                t.id,
                t.language
            );
            assert!(tr.text().contains("https://is.gd/q7") || !t.needs_url());
        }
    }

    #[test]
    fn free_text_is_untranslatable() {
        let tr = TemplateTranslator::new()
            .to_english("texte totalement libre sans modèle", Some(Language::French));
        assert!(matches!(tr, Translated::Untranslatable(_)));
    }
}
