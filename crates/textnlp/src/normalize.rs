//! Homoglyph / leetspeak normalization (§3.3.6).
//!
//! Scammers write `N3tfl!x` so operator filters and off-the-shelf NER miss
//! the brand. Normalization maps confusable characters to their canonical
//! lowercase ASCII letter and strips separator noise, so `N3tfl!x`,
//! `NETFL1X` and `n-e-t-f-l-i-x` all collapse to `netflix`.

/// Map one confusable character to its canonical letter, if any.
fn fold_char(c: char) -> Option<char> {
    let out = match c {
        // Leetspeak digits and symbols.
        '0' => 'o',
        '1' => 'l', // visually closest; '1'→'i' is handled by fuzzy matching
        '3' => 'e',
        '4' => 'a',
        '5' => 's',
        '7' => 't',
        '8' => 'b',
        '@' => 'a',
        '$' => 's',
        '!' => 'i',
        '|' => 'l',
        '€' => 'e',
        '£' => 'l',
        // Common Unicode homoglyphs (Cyrillic/Greek lookalikes).
        'а' => 'a',
        'е' => 'e',
        'о' => 'o',
        'р' => 'p',
        'с' => 'c',
        'х' => 'x',
        'у' => 'y',
        'і' => 'i',
        'ο' => 'o',
        'α' => 'a',
        'ν' => 'v',
        _ => return None,
    };
    Some(out)
}

/// Normalize one token for brand matching: casefold, fold confusables,
/// drop separators entirely.
///
/// Digit folding only applies to *mixed* tokens (at least one letter):
/// `N3tfl!x` folds, but a standalone amount like `24` stays `24` — folding
/// pure numbers would corrupt ordinary message content.
pub fn normalize_token(token: &str) -> String {
    let has_letter = token.chars().any(|c| c.is_alphabetic());
    let mut out = String::with_capacity(token.len());
    for c in token.chars() {
        let c = c.to_lowercase().next().unwrap_or(c);
        let fold = if has_letter { fold_char(c) } else { None };
        if let Some(f) = fold {
            out.push(f);
        } else if c.is_alphanumeric() {
            out.push(c);
        }
        // separators ('-', '.', '_', spaces inside token) vanish
    }
    out
}

/// Normalize a whole text for brand matching.
///
/// Splits on whitespace (NOT on interior punctuation — `N3tfl!x` must stay
/// one token), trims *edge* sentence punctuation (`renew!` → `renew`), then
/// folds each chunk.
pub fn normalize_text(text: &str) -> String {
    text.split_whitespace()
        .map(|chunk| {
            let trimmed = chunk.trim_matches(|c: char| {
                matches!(
                    c,
                    '.' | ',' | '!' | '?' | ';' | ':' | '"' | '\'' | '(' | ')' | '[' | ']'
                )
            });
            normalize_token(trimmed)
        })
        .filter(|t| !t.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netflix_evasion_from_the_paper() {
        // §3.3.6: "N3tfl!x cannot be detected as Netflix from off-the-shelf
        // models".
        assert_eq!(normalize_token("N3tfl!x"), "netflix");
    }

    #[test]
    fn separator_noise() {
        assert_eq!(normalize_token("n-e-t.f_l-i-x"), "netflix");
        assert_eq!(normalize_token("PAY-TM"), "paytm");
    }

    #[test]
    fn pure_digit_tokens_unfolded() {
        assert_eq!(normalize_token("24"), "24");
        assert_eq!(normalize_token("100"), "100");
    }

    #[test]
    fn leet_digits() {
        assert_eq!(normalize_token("AMAZ0N"), "amazon");
        assert_eq!(normalize_token("PayPa1"), "paypal");
        assert_eq!(normalize_token("5BI"), "sbi");
    }

    #[test]
    fn cyrillic_homoglyphs() {
        assert_eq!(normalize_token("Sаntаnder"), "santander"); // Cyrillic а
    }

    #[test]
    fn plain_tokens_pass_through() {
        assert_eq!(normalize_token("Vodafone"), "vodafone");
        assert_eq!(normalize_token("hsbc"), "hsbc");
    }

    #[test]
    fn whole_text() {
        assert_eq!(
            normalize_text("Your N3tfl!x account: renew!"),
            "your netflix account renew"
        );
    }

    #[test]
    fn edge_punctuation_trims_but_interior_folds() {
        assert_eq!(normalize_text("renew!"), "renew");
        assert_eq!(normalize_text("N3tfl!x!"), "netflix");
        assert_eq!(normalize_text("(urgent)"), "urgent");
    }
}
