//! # smishing-textnlp
//!
//! Multilingual text analysis for smishing messages — the Rust substitute
//! for the paper's GPT-4o annotation stage (§3.3.6, §3.4):
//!
//! - [`tokenize`]: unicode-aware tokenization,
//! - [`ngram`]: hashed character n-gram shingling + exact Jaccard, the shared
//!   layer under the `smishing-simindex` similarity tier,
//! - [`normalize`]: homoglyph/leetspeak normalization (`N3tfl!x` → `netflix`),
//!   the evasion the paper says breaks off-the-shelf NER,
//! - [`lexicon`]: per-language function-word lexicons, shared by the
//!   template corpus and the language identifier (see the circularity note
//!   in DESIGN.md — the mechanism is faithful, the vocabulary is ours),
//! - [`langid`]: script + stopword language identification over the 66+
//!   modelled languages (Table 11),
//! - [`templates`]: the multilingual template corpus campaigns render
//!   messages from, with placeholder alignment for translation,
//! - [`translate`]: template-backed translation to English (§3.2 translates
//!   every non-English smish),
//! - [`brands`] and [`ner`]: the brand catalog (Table 12) and
//!   normalization-aware brand extraction,
//! - [`scamclass`]: the eight-way scam-type classifier (Table 10),
//! - [`lures`]: the seven Stajano–Wilson lure detectors (Table 13),
//! - [`annotator`]: human and LLM annotator models for the §3.4 κ study,
//! - [`ham`]: the benign-SMS corpus that detection models (§7.2) train
//!   against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotator;
pub mod brands;
pub mod ham;
pub mod langid;
pub mod lexicon;
pub mod lures;
pub mod ner;
pub mod ngram;
pub mod normalize;
pub mod scamclass;
pub mod templates;
pub mod tokenize;
pub mod translate;

pub use annotator::{Annotation, Annotator, HumanAnnotator, PipelineAnnotator};
pub use brands::{Brand, BrandCatalog};
pub use langid::identify_language;
pub use lures::detect_lures;
pub use ner::extract_brand;
pub use normalize::{normalize_text, normalize_token};
pub use scamclass::classify_scam;
pub use templates::{Template, TemplateLibrary};
pub use translate::{TemplateTranslator, Translator};
