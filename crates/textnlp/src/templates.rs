//! The multilingual smishing template corpus.
//!
//! Campaigns render messages from templates; the translation stage
//! ([`crate::translate`]) recognizes a rendered template and re-renders its
//! English counterpart with the same fillers — playing the role GPT-4o's
//! multilingual competence plays in the paper (§3.2).
//!
//! A template is a pattern with placeholders:
//!
//! - `{brand}` — an alias of the impersonated brand (possibly leeted),
//! - `{url}` — the phishing URL,
//! - `{name}` — a victim first name,
//! - `{amount}` — a money amount,
//! - `{tracking}` — a parcel tracking code,
//! - `{code}` — an OTP-like code,
//! - `{number}` — a phone number to call/text back.
//!
//! The 13 major languages (Table 11's >100-message block) carry hand-written
//! phrasebooks; each tail language gets one lexicon-derived banking template
//! so 66-way language identification is exercised end-to-end (see the
//! honesty note in [`crate::lexicon`]).

use smishing_types::{Language, Lure, LureSet, ScamType, Sector};
use std::sync::OnceLock;

/// A message template.
#[derive(Debug, Clone)]
pub struct Template {
    /// Stable index in the library.
    pub id: usize,
    /// Scam category the template belongs to.
    pub scam_type: ScamType,
    /// Language of `pattern`.
    pub language: Language,
    /// Ground-truth lures the wording employs.
    pub lures: LureSet,
    /// The localized pattern.
    pub pattern: String,
    /// English counterpart with the same placeholder multiset.
    pub english: String,
    /// Sector whose brands may fill `{brand}` (None = no brand slot).
    pub brand_sector: Option<Sector>,
}

impl Template {
    /// Whether the template carries a URL slot.
    pub fn needs_url(&self) -> bool {
        self.pattern.contains("{url}")
    }

    /// Placeholders in `pattern`, in order.
    pub fn placeholders(&self) -> Vec<&str> {
        placeholders_of(&self.pattern)
    }

    /// Render the pattern with fillers (see [`render_pattern`]).
    pub fn render(&self, fills: &Fills) -> String {
        render_pattern(&self.pattern, fills)
    }

    /// Render the English counterpart with fillers.
    pub fn render_english(&self, fills: &Fills) -> String {
        render_pattern(&self.english, fills)
    }
}

/// Filler values for a template render.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Fills {
    /// Brand surface form.
    pub brand: Option<String>,
    /// URL string.
    pub url: Option<String>,
    /// Victim first name.
    pub name: Option<String>,
    /// Money amount (already formatted, e.g. "£245.50").
    pub amount: Option<String>,
    /// Tracking code.
    pub tracking: Option<String>,
    /// OTP-like code.
    pub code: Option<String>,
    /// Call-back number.
    pub number: Option<String>,
}

impl Fills {
    fn get(&self, key: &str) -> Option<&str> {
        match key {
            "brand" => self.brand.as_deref(),
            "url" => self.url.as_deref(),
            "name" => self.name.as_deref(),
            "amount" => self.amount.as_deref(),
            "tracking" => self.tracking.as_deref(),
            "code" => self.code.as_deref(),
            "number" => self.number.as_deref(),
            _ => None,
        }
    }

    fn set(&mut self, key: &str, value: String) {
        match key {
            "brand" => self.brand = Some(value),
            "url" => self.url = Some(value),
            "name" => self.name = Some(value),
            "amount" => self.amount = Some(value),
            "tracking" => self.tracking = Some(value),
            "code" => self.code = Some(value),
            "number" => self.number = Some(value),
            _ => {}
        }
    }
}

/// Placeholders of a pattern, in order.
pub fn placeholders_of(pattern: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = pattern;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        out.push(&rest[open + 1..open + close]);
        rest = &rest[open + close + 1..];
    }
    out
}

/// Render a pattern with fillers; missing fillers render as empty strings.
pub fn render_pattern(pattern: &str, fills: &Fills) -> String {
    let mut out = String::with_capacity(pattern.len() + 32);
    let mut rest = pattern;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let Some(close) = rest[open..].find('}') else {
            out.push_str(&rest[open..]);
            return out;
        };
        let key = &rest[open + 1..open + close];
        if let Some(v) = fills.get(key) {
            out.push_str(v);
        }
        rest = &rest[open + close + 1..];
    }
    out.push_str(rest);
    out
}

/// Try to match `text` against `pattern`, extracting fillers.
///
/// Literal segments must appear in order; filler spans are whatever lies
/// between them. Returns `None` on any literal mismatch.
pub fn match_pattern(pattern: &str, text: &str) -> Option<Fills> {
    let mut fills = Fills::default();
    let mut segments: Vec<(Option<&str>, &str)> = Vec::new(); // (placeholder before, literal)
    let mut rest = pattern;
    let mut pending_ph: Option<&str> = None;
    while let Some(open) = rest.find('{') {
        let close = rest[open..].find('}')?;
        segments.push((pending_ph.take(), &rest[..open]));
        pending_ph = Some(&rest[open + 1..open + close]);
        rest = &rest[open + close + 1..];
    }
    segments.push((pending_ph, rest));

    let mut cursor = 0usize;
    let mut prev_ph: Option<&str> = None;
    for (ph_before, literal) in segments {
        if let Some(ph) = ph_before {
            prev_ph = Some(ph);
        }
        if literal.is_empty() {
            continue;
        }
        let found = text[cursor..].find(literal)?;
        if let Some(ph) = prev_ph.take() {
            let value = text[cursor..cursor + found].trim();
            if value.is_empty() {
                return None;
            }
            fills.set(ph, value.to_string());
        } else if found != 0 {
            return None; // leading junk with no placeholder to absorb it
        }
        cursor += found + literal.len();
    }
    if let Some(ph) = prev_ph {
        let value = text[cursor..].trim();
        if value.is_empty() {
            return None;
        }
        fills.set(ph, value.to_string());
        cursor = text.len();
    }
    // Require full consumption modulo trailing whitespace.
    if !text[cursor..].trim().is_empty() {
        return None;
    }
    Some(fills)
}

/// Static template source: (scam type, language, lures, pattern, english,
/// brand sector).
type Src = (
    ScamType,
    Language,
    &'static [Lure],
    &'static str,
    &'static str,
    Option<Sector>,
);

use Language as L;
use Lure as Lu;
use ScamType as St;
use Sector as Se;

const AUTH_URG: &[Lure] = &[Lu::Authority, Lu::TimeUrgency];
const AUTH_GREED: &[Lure] = &[Lu::Authority, Lu::NeedAndGreed];
const AUTH_GREED_URG: &[Lure] = &[Lu::Authority, Lu::NeedAndGreed, Lu::TimeUrgency];
const CONVO: &[Lure] = &[Lu::Distraction, Lu::Kindness];
const MUMDAD: &[Lure] = &[Lu::Distraction, Lu::Kindness, Lu::TimeUrgency];
const GREED_HERD: &[Lure] = &[Lu::NeedAndGreed, Lu::Herd];

/// Hand-written templates for the major languages.
const SOURCES: &[Src] = &[
    // ================= English =================
    // Banking
    (St::Banking, L::English, AUTH_URG,
     "{brand} ALERT: Your account has been suspended due to unusual activity. Verify your details within 24 hours at {url} or your account will be closed.",
     "{brand} ALERT: Your account has been suspended due to unusual activity. Verify your details within 24 hours at {url} or your account will be closed.",
     Some(Se::Banking)),
    (St::Banking, L::English, AUTH_URG,
     "{brand}: A new device has logged into your account. If this was not you, secure your account immediately at {url}",
     "{brand}: A new device has logged into your account. If this was not you, secure your account immediately at {url}",
     Some(Se::Banking)),
    (St::Banking, L::English, AUTH_URG,
     "Dear customer, your {brand} net banking will be blocked today. Please update your KYC at {url} urgently.",
     "Dear customer, your {brand} net banking will be blocked today. Please update your KYC at {url} urgently.",
     Some(Se::Banking)),
    (St::Banking, L::English, AUTH_URG,
     "{brand}: your card has been frozen after a payment of {amount} was attempted. Review this payment now at {url}",
     "{brand}: your card has been frozen after a payment of {amount} was attempted. Review this payment now at {url}",
     Some(Se::Banking)),
    (St::Banking, L::English, AUTH_GREED,
     "{brand}: you have received a refund of {amount}. Claim your refund here: {url}",
     "{brand}: you have received a refund of {amount}. Claim your refund here: {url}",
     Some(Se::Banking)),
    (St::Banking, L::English, AUTH_URG,
     "{brand} security: your password expires today. Reset it at {url} to keep access to your account.",
     "{brand} security: your password expires today. Reset it at {url} to keep access to your account.",
     Some(Se::Banking)),
    // Delivery
    (St::Delivery, L::English, AUTH_URG,
     "{brand}: your parcel {tracking} is held at our depot. A redelivery fee of {amount} is due. Pay within 24 hours at {url}",
     "{brand}: your parcel {tracking} is held at our depot. A redelivery fee of {amount} is due. Pay within 24 hours at {url}",
     Some(Se::Delivery)),
    (St::Delivery, L::English, AUTH_URG,
     "{brand}: we attempted delivery of parcel {tracking} today. Reschedule immediately at {url} or it will be returned.",
     "{brand}: we attempted delivery of parcel {tracking} today. Reschedule immediately at {url} or it will be returned.",
     Some(Se::Delivery)),
    (St::Delivery, L::English, AUTH_URG,
     "{brand}: a customs charge of {amount} is outstanding on your package {tracking}. Settle it now at {url}",
     "{brand}: a customs charge of {amount} is outstanding on your package {tracking}. Settle it now at {url}",
     Some(Se::Delivery)),
    (St::Delivery, L::English, AUTH_URG,
     "Your {brand} package could not be delivered due to an incomplete address. Update your address today: {url}",
     "Your {brand} package could not be delivered due to an incomplete address. Update your address today: {url}",
     Some(Se::Delivery)),
    (St::Delivery, L::English, AUTH_URG,
     "{brand}: final notice for parcel {tracking}. Confirm your details at {url} within 12 hours.",
     "{brand}: final notice for parcel {tracking}. Confirm your details at {url} within 12 hours.",
     Some(Se::Delivery)),
    // Government
    (St::Government, L::English, AUTH_GREED_URG,
     "{brand}: you are eligible for a tax refund of {amount}. Claim before the deadline at {url}",
     "{brand}: you are eligible for a tax refund of {amount}. Claim before the deadline at {url}",
     Some(Se::Government)),
    (St::Government, L::English, AUTH_URG,
     "{brand}: an unpaid toll of {amount} is registered to your vehicle. Pay immediately at {url} to avoid a penalty.",
     "{brand}: an unpaid toll of {amount} is registered to your vehicle. Pay immediately at {url} to avoid a penalty.",
     Some(Se::Government)),
    (St::Government, L::English, AUTH_URG,
     "{brand} FINAL NOTICE: your tax return is overdue. Failure to respond today leads to prosecution. Act now: {url}",
     "{brand} FINAL NOTICE: your tax return is overdue. Failure to respond today leads to prosecution. Act now: {url}",
     Some(Se::Government)),
    (St::Government, L::English, AUTH_URG,
     "{brand}: your driving licence points require urgent review. Check your record at {url}",
     "{brand}: your driving licence points require urgent review. Check your record at {url}",
     Some(Se::Government)),
    // Telecom
    (St::Telecom, L::English, AUTH_URG,
     "{brand}: your latest bill payment failed. Update your payment method today at {url} to avoid service suspension.",
     "{brand}: your latest bill payment failed. Update your payment method today at {url} to avoid service suspension.",
     Some(Se::Telecom)),
    (St::Telecom, L::English, AUTH_GREED_URG,
     "{brand}: your loyalty points worth {amount} expire today! Redeem your reward now: {url}",
     "{brand}: your loyalty points worth {amount} expire today! Redeem your reward now: {url}",
     Some(Se::Telecom)),
    (St::Telecom, L::English, AUTH_URG,
     "{brand}: your SIM will be deactivated within 24 hours. Re-verify your identity at {url}",
     "{brand}: your SIM will be deactivated within 24 hours. Re-verify your identity at {url}",
     Some(Se::Telecom)),
    (St::Telecom, L::English, AUTH_GREED,
     "{brand} thanks you for your loyalty! You can claim a free upgrade gift here: {url}",
     "{brand} thanks you for your loyalty! You can claim a free upgrade gift here: {url}",
     Some(Se::Telecom)),
    // Wrong number
    (St::WrongNumber, L::English, CONVO,
     "Hi {name}, are we still on for dinner on Saturday? It's been ages!",
     "Hi {name}, are we still on for dinner on Saturday? It's been ages!",
     None),
    (St::WrongNumber, L::English, CONVO,
     "Hello, is this {name}? I got your number from Jenny about the yoga class.",
     "Hello, is this {name}? I got your number from Jenny about the yoga class.",
     None),
    (St::WrongNumber, L::English, CONVO,
     "Hey {name}! Long time no see. How have you been? This is my new number by the way.",
     "Hey {name}! Long time no see. How have you been? This is my new number by the way.",
     None),
    (St::WrongNumber, L::English, CONVO,
     "Good morning! Is this the right number for {name}? I wanted to ask about the apartment.",
     "Good morning! Is this the right number for {name}? I wanted to ask about the apartment.",
     None),
    (St::WrongNumber, L::English, CONVO,
     "Hey, is this still {name}? It's me from the gym! My number changed, message me on WhatsApp instead: {url}",
     "Hey, is this still {name}? It's me from the gym! My number changed, message me on WhatsApp instead: {url}",
     None),
    // Hey mum/dad
    (St::HeyMumDad, L::English, MUMDAD,
     "Hi mum, my phone broke so message me on WhatsApp instead: {url} please, I need your help today x",
     "Hi mum, my phone broke so message me on WhatsApp instead: {url} please, I need your help today x",
     None),
    (St::HeyMumDad, L::English, MUMDAD,
     "Hi mum, I dropped my phone down the toilet, this is my new number. Please help, I need to pay a bill today and my payment app is locked out. Text me back asap x",
     "Hi mum, I dropped my phone down the toilet, this is my new number. Please help, I need to pay a bill today and my payment app is locked out. Text me back asap x",
     None),
    (St::HeyMumDad, L::English, MUMDAD,
     "Hey dad it's me, my phone broke so I'm using a friend's. Can you help me out? I need {amount} urgently for rent, I'll pay you back tomorrow. Message me on {number}",
     "Hey dad it's me, my phone broke so I'm using a friend's. Can you help me out? I need {amount} urgently for rent, I'll pay you back tomorrow. Message me on {number}",
     None),
    (St::HeyMumDad, L::English, MUMDAD,
     "Mum please save this number, my old phone is being repaired. Can you text me back quickly? It's important and I need your help x",
     "Mum please save this number, my old phone is being repaired. Can you text me back quickly? It's important and I need your help x",
     None),
    (St::HeyMumDad, L::English, MUMDAD,
     "Hi dad, my screen smashed and this is my temporary number. Please help, I locked myself out of my payments app and money is due today.",
     "Hi dad, my screen smashed and this is my temporary number. Please help, I locked myself out of my payments app and money is due today.",
     None),
    // Others
    (St::Others, L::English, AUTH_URG,
     "{brand}: your account will be charged {amount} unless you cancel your subscription renewal here: {url}",
     "{brand}: your account will be charged {amount} unless you cancel your subscription renewal here: {url}",
     Some(Se::Tech)),
    (St::Others, L::English, AUTH_URG,
     "{brand}: your account was accessed from a new location. Confirm it was you or your profile will be locked: {url}",
     "{brand}: your account was accessed from a new location. Confirm it was you or your profile will be locked: {url}",
     Some(Se::Tech)),
    (St::Others, L::English, &[Lu::Authority, Lu::NeedAndGreed, Lu::Herd],
     "Thousands of traders have already doubled their savings with {brand}. Join them and claim your {amount} welcome bonus: {url}",
     "Thousands of traders have already doubled their savings with {brand}. Join them and claim your {amount} welcome bonus: {url}",
     Some(Se::Crypto)),
    (St::Others, L::English, &[Lu::Dishonesty, Lu::NeedAndGreed],
     "Insider tip: move your crypto holdings before the announcement and pocket the profit quietly. Discreet access here: {url}",
     "Insider tip: move your crypto holdings before the announcement and pocket the profit quietly. Discreet access here: {url}",
     None),
    (St::Others, L::English, &[Lu::NeedAndGreed, Lu::TimeUrgency],
     "We reviewed your profile for a part-time job paying {amount} per day. Limited slots, apply today: {url}",
     "We reviewed your profile for a part-time job paying {amount} per day. Limited slots, apply today: {url}",
     None),
    (St::Others, L::English, AUTH_URG,
     "Your {brand} verification code is {code}. If you did not request this, call us back on {number} immediately.",
     "Your {brand} verification code is {code}. If you did not request this, call us back on {number} immediately.",
     Some(Se::Tech)),
    // Spam
    (St::Spam, L::English, &[Lu::NeedAndGreed, Lu::Herd, Lu::TimeUrgency],
     "MEGA CASINO: 50 free spins waiting! Players won {amount} this week alone. Play now: {url}",
     "MEGA CASINO: 50 free spins waiting! Players won {amount} this week alone. Play now: {url}",
     None),
    (St::Spam, L::English, &[Lu::NeedAndGreed],
     "FLASH SALE: 80% off everything this weekend only. Shop the deals: {url}",
     "FLASH SALE: 80% off everything this weekend only. Shop the deals: {url}",
     None),
    (St::Spam, L::English, &[Lu::NeedAndGreed, Lu::TimeUrgency],
     "You were selected in our monthly draw! Claim your prize of {amount} before Friday: {url}",
     "You were selected in our monthly draw! Claim your prize of {amount} before Friday: {url}",
     None),
    (St::Spam, L::English, &[Lu::NeedAndGreed],
     "Hot stock alert: NVT shares tipped to triple. Free newsletter: {url}",
     "Hot stock alert: NVT shares tipped to triple. Free newsletter: {url}",
     None),
    // ================= Spanish =================
    (St::Banking, L::Spanish, AUTH_URG,
     "{brand}: su cuenta ha sido suspendida por actividad inusual. Verifique sus datos hoy en {url} o su cuenta será bloqueada.",
     "{brand}: your account has been suspended for unusual activity. Verify your details today at {url} or your account will be blocked.",
     Some(Se::Banking)),
    (St::Banking, L::Spanish, AUTH_URG,
     "{brand}: se ha detectado un acceso no autorizado. Por favor confirme su identidad aquí: {url}",
     "{brand}: an unauthorized access has been detected. Please confirm your identity here: {url}",
     Some(Se::Banking)),
    (St::Banking, L::Spanish, AUTH_GREED,
     "{brand}: tiene un reembolso pendiente de {amount}. Reclámelo aquí hoy: {url}",
     "{brand}: you have a pending refund of {amount}. Claim it here today: {url}",
     Some(Se::Banking)),
    (St::Delivery, L::Spanish, AUTH_URG,
     "{brand}: su paquete {tracking} está retenido. Pague la tasa de aduana de {amount} aquí: {url}",
     "{brand}: your package {tracking} is held. Pay the customs fee of {amount} here: {url}",
     Some(Se::Delivery)),
    (St::Delivery, L::Spanish, AUTH_URG,
     "{brand}: no pudimos entregar su paquete hoy. Programe una nueva entrega en {url}",
     "{brand}: we could not deliver your package today. Schedule a new delivery at {url}",
     Some(Se::Delivery)),
    (St::Government, L::Spanish, AUTH_GREED_URG,
     "{brand}: usted tiene derecho a una devolución de {amount}. Solicítela antes del plazo en {url}",
     "{brand}: you are entitled to a refund of {amount}. Request it before the deadline at {url}",
     Some(Se::Government)),
    (St::Telecom, L::Spanish, AUTH_URG,
     "{brand}: su factura no ha sido pagada. Actualice su método de pago hoy en {url} para evitar la suspensión.",
     "{brand}: your bill has not been paid. Update your payment method today at {url} to avoid suspension.",
     Some(Se::Telecom)),
    (St::Telecom, L::Spanish, AUTH_GREED_URG,
     "{brand}: sus puntos de fidelidad por valor de {amount} caducan hoy. Canjéelos ahora aquí: {url}",
     "{brand}: your loyalty points worth {amount} expire today. Redeem them now here: {url}",
     Some(Se::Telecom)),
    (St::Others, L::Spanish, AUTH_URG,
     "{brand}: su suscripción ha sido suspendida por un problema de pago. Actualice sus datos aquí: {url}",
     "{brand}: your subscription has been suspended due to a payment problem. Update your details here: {url}",
     Some(Se::Tech)),
    (St::Spam, L::Spanish, GREED_HERD,
     "¡Usted ha sido seleccionado! Miles ya ganaron {amount}. Juegue hoy aquí: {url}",
     "You have been selected! Thousands already won {amount}. Play today here: {url}",
     None),
    (St::WrongNumber, L::Spanish, CONVO,
     "Hola, ¿eres {name}? Jenny me dio tu número para la clase de yoga de hoy.",
     "Hello, are you {name}? Jenny gave me your number for the yoga class this week.",
     None),
    (St::HeyMumDad, L::Spanish, MUMDAD,
     "Hola mamá, se me rompió el teléfono y este es mi número nuevo. ¿Puedes ayudarme hoy por favor? Es urgente, escríbeme x",
     "Hi mum, my phone broke and this is my new number. Can you help me today please? It is urgent, text me back x",
     None),
    // ================= Dutch =================
    (St::Banking, L::Dutch, AUTH_URG,
     "{brand}: uw rekening wordt vandaag geblokkeerd. Verifieer uw gegevens via {url} alstublieft.",
     "{brand}: your account will be blocked today. Please verify your details via {url}",
     Some(Se::Banking)),
    (St::Banking, L::Dutch, AUTH_URG,
     "{brand}: uw bankpas verloopt. Vraag vandaag een nieuwe pas aan via {url}",
     "{brand}: your bank card is expiring. Request a new card today via {url}",
     Some(Se::Banking)),
    (St::Delivery, L::Dutch, AUTH_URG,
     "{brand}: uw pakket {tracking} kon niet worden bezorgd. Klik hier om een nieuw moment te kiezen: {url}",
     "{brand}: your parcel {tracking} could not be delivered. Click here to choose a new time: {url}",
     Some(Se::Delivery)),
    (St::Government, L::Dutch, AUTH_URG,
     "{brand}: u heeft een openstaande schuld van {amount}. Betaal vandaag via {url} om beslaglegging te voorkomen.",
     "{brand}: you have an outstanding debt of {amount}. Pay today via {url} to prevent seizure.",
     Some(Se::Government)),
    (St::Telecom, L::Dutch, AUTH_URG,
     "{brand}: uw factuur is niet betaald. Werk uw betaalgegevens bij via {url}",
     "{brand}: your bill has not been paid. Update your payment details via {url}",
     Some(Se::Telecom)),
    (St::WrongNumber, L::Dutch, CONVO,
     "Hoi, ben jij {name}? Ik kreeg je nummer van Jenny over de yogales van vandaag.",
     "Hi, are you {name}? I got your number from Jenny about the yoga class this week.",
     None),
    (St::HeyMumDad, L::Dutch, MUMDAD,
     "Hoi mam, mijn telefoon is kapot, dit is mijn nieuwe nummer. Kun je me vandaag helpen? Het is dringend, stuur me een berichtje terug x",
     "Hi mum, my phone is broken, this is my new number. Can you help me today? It is urgent, text me back x",
     None),
    // ================= French =================
    (St::Banking, L::French, AUTH_URG,
     "{brand}: votre compte a été suspendu suite à une activité inhabituelle. Veuillez vérifier vos informations ici: {url}",
     "{brand}: your account has been suspended following unusual activity. Please verify your information here: {url}",
     Some(Se::Banking)),
    (St::Delivery, L::French, AUTH_URG,
     "{brand}: votre colis {tracking} est en attente. Des frais de douane de {amount} sont dus. Payez ici: {url}",
     "{brand}: your parcel {tracking} is pending. Customs fees of {amount} are due. Pay here: {url}",
     Some(Se::Delivery)),
    (St::Government, L::French, AUTH_GREED_URG,
     "{brand}: vous avez droit à un remboursement de {amount}. Faites votre demande dès aujourd'hui: {url}",
     "{brand}: you are entitled to a refund of {amount}. Make your claim today: {url}",
     Some(Se::Government)),
    (St::Government, L::French, AUTH_URG,
     "{brand}: amende impayée. Pour éviter une majoration, veuillez régulariser votre situation ici: {url}",
     "{brand}: unpaid fine. To avoid a surcharge, please regularize your situation here: {url}",
     Some(Se::Government)),
    (St::Telecom, L::French, AUTH_URG,
     "{brand}: votre dernière facture a été refusée. Mettez à jour votre moyen de paiement ici: {url}",
     "{brand}: your last bill was declined. Update your payment method here: {url}",
     Some(Se::Telecom)),
    (St::Telecom, L::French, AUTH_GREED,
     "{brand}: vos points fidélité expirent aujourd'hui! Échangez-les contre un cadeau ici: {url}",
     "{brand}: your loyalty points expire today! Exchange them for a gift here: {url}",
     Some(Se::Telecom)),
    // ================= German =================
    (St::Banking, L::German, AUTH_URG,
     "{brand}: Ihr Konto wurde gesperrt. Bitte bestätigen Sie Ihre Daten heute hier: {url}",
     "{brand}: your account has been locked. Please confirm your details here today: {url}",
     Some(Se::Banking)),
    (St::Delivery, L::German, AUTH_URG,
     "{brand}: Ihr Paket {tracking} wartet auf Zustellung. Bitte bestätigen Sie Ihre Adresse hier: {url}",
     "{brand}: your parcel {tracking} awaits delivery. Please confirm your address here: {url}",
     Some(Se::Delivery)),
    (St::Delivery, L::German, AUTH_URG,
     "{brand}: Zollgebühren von {amount} sind für Ihre Sendung fällig. Jetzt bezahlen und Rücksendung vermeiden: {url}",
     "{brand}: customs fees of {amount} are due for your shipment. Pay now and avoid return: {url}",
     Some(Se::Delivery)),
    (St::HeyMumDad, L::German, MUMDAD,
     "Hallo Mama, mein Handy ist kaputt und das ist meine neue Nummer. Kannst du mir bitte heute helfen? Es ist dringend, schreib mir zurück.",
     "Hello mum, my phone is broken and this is my new number. Can you please help me today? It is urgent, text me back.",
     None),
    // ================= Italian =================
    (St::Banking, L::Italian, AUTH_URG,
     "{brand}: il suo conto è stato bloccato per attività sospetta. Verifichi subito i suoi dati qui: {url}",
     "{brand}: your account has been blocked for suspicious activity. Verify your details immediately here: {url}",
     Some(Se::Banking)),
    (St::Banking, L::Italian, AUTH_URG,
     "{brand}: la sua carta è stata sospesa. Per riattivarla clicchi qui oggi: {url}",
     "{brand}: your card has been suspended. To reactivate it click here today: {url}",
     Some(Se::Banking)),
    (St::Delivery, L::Italian, AUTH_URG,
     "{brand}: il suo pacco {tracking} è in giacenza. Paghi la tassa di {amount} qui: {url}",
     "{brand}: your parcel {tracking} is in storage. Pay the fee of {amount} here: {url}",
     Some(Se::Delivery)),
    // ================= Indonesian =================
    (St::Others, L::Indonesian, &[Lu::NeedAndGreed, Lu::TimeUrgency],
     "Selamat! Anda terpilih untuk pekerjaan paruh waktu dengan gaji {amount} per hari. Segera daftar di sini: {url}",
     "Congratulations! You have been selected for a part-time job paying {amount} per day. Register here immediately: {url}",
     None),
    (St::Others, L::Indonesian, GREED_HERD,
     "Ribuan orang telah untung besar lewat investasi {brand}. Bergabunglah hari ini dan klaim bonus {amount}: {url}",
     "Thousands of people have already profited through {brand} investment. Join today and claim your {amount} bonus: {url}",
     Some(Se::Crypto)),
    (St::WrongNumber, L::Indonesian, CONVO,
     "Halo, apakah ini {name}? Saya dapat nomor Anda dari teman untuk urusan kemarin.",
     "Hello, is this {name}? I got your number from a friend about yesterday's matter.",
     None),
    (St::Banking, L::Indonesian, AUTH_URG,
     "{brand}: akun Anda telah diblokir sementara. Silakan verifikasi data Anda segera di sini: {url}",
     "{brand}: your account has been temporarily blocked. Please verify your details immediately here: {url}",
     Some(Se::Banking)),
    (St::Spam, L::Indonesian, GREED_HERD,
     "Promo spesial! Menangkan hadiah {amount} hari ini, sudah banyak pemenang. Main di sini: {url}",
     "Special promo! Win a prize of {amount} today, there are already many winners. Play here: {url}",
     None),
    // ================= Portuguese =================
    (St::Banking, L::Portuguese, AUTH_URG,
     "{brand}: sua conta foi bloqueada por segurança. Confirme seus dados hoje aqui: {url}",
     "{brand}: your account was blocked for security. Confirm your details here today: {url}",
     Some(Se::Banking)),
    (St::Banking, L::Portuguese, AUTH_GREED,
     "{brand}: você tem um estorno de {amount} disponível. Resgate aqui: {url}",
     "{brand}: you have a refund of {amount} available. Redeem it here: {url}",
     Some(Se::Banking)),
    (St::Government, L::Portuguese, AUTH_GREED_URG,
     "{brand}: você tem direito a um reembolso de {amount}. Solicite antes do prazo aqui: {url}",
     "{brand}: you are entitled to a refund of {amount}. Request it before the deadline here: {url}",
     Some(Se::Government)),
    (St::Delivery, L::Portuguese, AUTH_URG,
     "{brand}: seu pacote {tracking} está retido na alfândega. Pague a taxa de {amount} aqui hoje: {url}",
     "{brand}: your package {tracking} is held at customs. Pay the fee of {amount} here today: {url}",
     Some(Se::Delivery)),
    // ================= Japanese =================
    (St::Delivery, L::Japanese, AUTH_URG,
     "{brand}：お荷物のお届けにあがりましたが不在のため持ち帰りました。こちらからご確認ください {url}",
     "{brand}: we attempted to deliver your package but you were absent. Please confirm here {url}",
     Some(Se::Delivery)),
    (St::Others, L::Japanese, AUTH_URG,
     "{brand}：お支払い方法に問題があります。アカウントを確認してください {url}",
     "{brand}: there is a problem with your payment method. Please verify your account {url}",
     Some(Se::Tech)),
    (St::WrongNumber, L::Japanese, CONVO,
     "こんにちは、{name}さんですか？先日の件でご連絡しました。お返事ください。",
     "Hello, is this {name}? I am contacting you about the other day. Please reply.",
     None),
    // ================= Hindi =================
    (St::Banking, L::Hindi, AUTH_URG,
     "{brand}: आपका खाता आज बंद हो जाएगा। कृपया तुरंत अपना KYC यहाँ अपडेट करें: {url}",
     "{brand}: your account will be closed today. Please update your KYC here immediately: {url}",
     Some(Se::Banking)),
    (St::Banking, L::Hindi, AUTH_GREED,
     "{brand}: आपके खाते में {amount} का रिफंड है। कृपया यहाँ क्लिक करें: {url}",
     "{brand}: there is a refund of {amount} in your account. Please click here: {url}",
     Some(Se::Banking)),
    // ================= Tagalog =================
    (St::Banking, L::Tagalog, AUTH_URG,
     "{brand}: ang iyong account ay na-suspend. I-verify ang iyong detalye dito ngayon: {url}",
     "{brand}: your account has been suspended. Verify your details here now: {url}",
     Some(Se::Banking)),
    (St::Spam, L::Tagalog, GREED_HERD,
     "Congrats! Ikaw ay napili sa aming raffle, ang premyo ay {amount}. I-claim dito ngayon po: {url}",
     "Congrats! You were chosen in our raffle, the prize is {amount}. Claim it here now: {url}",
     None),
    // ================= Mandarin =================
    (St::WrongNumber, L::Mandarin, CONVO,
     "您好，请问是{name}吗？我是上次聚会认识的朋友，想和您聊聊。",
     "Hello, is this {name}? I am the friend from the last gathering, I would like to chat with you.",
     None),
    (St::Others, L::Mandarin, AUTH_URG,
     "{brand}：您的账户存在异常登录，请立即点击这里验证 {url}",
     "{brand}: your account has an abnormal login, please click here to verify immediately {url}",
     Some(Se::Tech)),
    // ================= Turkish =================
    (St::Banking, L::Turkish, AUTH_URG,
     "{brand}: hesabınız askıya alındı. Lütfen bilgilerinizi hemen buradan doğrulayın: {url}",
     "{brand}: your account has been suspended. Please verify your details here immediately: {url}",
     Some(Se::Banking)),
];

/// The template library: hand-written sources plus one lexicon-derived
/// banking template per tail language.
#[derive(Debug)]
pub struct TemplateLibrary {
    templates: Vec<Template>,
}

impl TemplateLibrary {
    /// The process-wide library.
    pub fn global() -> &'static TemplateLibrary {
        static LIB: OnceLock<TemplateLibrary> = OnceLock::new();
        LIB.get_or_init(|| {
            let mut templates = Vec::new();
            for &(scam, lang, lures, pattern, english, sector) in SOURCES {
                templates.push(Template {
                    id: templates.len(),
                    scam_type: scam,
                    language: lang,
                    lures: LureSet::from_slice(lures),
                    pattern: pattern.to_string(),
                    english: english.to_string(),
                    brand_sector: sector,
                });
            }
            // Tail languages: one lexicon-derived banking template each.
            let covered: std::collections::HashSet<Language> =
                templates.iter().map(|t| t.language).collect();
            for &lang in Language::ALL {
                if covered.contains(&lang) {
                    continue;
                }
                let lex = crate::lexicon::lexicon(lang);
                let pattern = format!("{{brand}}: {} {{url}}", lex.join(" "));
                templates.push(Template {
                    id: templates.len(),
                    scam_type: ScamType::Banking,
                    language: lang,
                    lures: LureSet::from_slice(AUTH_URG),
                    pattern,
                    english: "{brand}: your account has been suspended, please click here immediately to verify your bank details today: {url}".to_string(),
                    brand_sector: Some(Sector::Banking),
                });
            }
            TemplateLibrary { templates }
        })
    }

    /// All templates.
    pub fn all(&self) -> &[Template] {
        &self.templates
    }

    /// Templates of a scam type and language.
    pub fn for_scam_lang(&self, scam: ScamType, lang: Language) -> Vec<&Template> {
        self.templates
            .iter()
            .filter(|t| t.scam_type == scam && t.language == lang)
            .collect()
    }

    /// Templates of a scam type in any language.
    pub fn for_scam(&self, scam: ScamType) -> Vec<&Template> {
        self.templates
            .iter()
            .filter(|t| t.scam_type == scam)
            .collect()
    }

    /// Languages with at least one template.
    pub fn languages(&self) -> Vec<Language> {
        let mut ls: Vec<Language> = self.templates.iter().map(|t| t.language).collect();
        ls.sort();
        ls.dedup();
        ls
    }

    /// Find the template matching a rendered text, extracting its fillers.
    /// Tries same-language templates first when `lang_hint` is given.
    pub fn match_text(
        &self,
        text: &str,
        lang_hint: Option<Language>,
    ) -> Option<(&Template, Fills)> {
        if let Some(lang) = lang_hint {
            for t in self.templates.iter().filter(|t| t.language == lang) {
                if let Some(f) = match_pattern(&t.pattern, text) {
                    return Some((t, f));
                }
            }
        }
        for t in &self.templates {
            if Some(t.language) == lang_hint {
                continue;
            }
            if let Some(f) = match_pattern(&t.pattern, text) {
                return Some((t, f));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fills() -> Fills {
        Fills {
            brand: Some("SBI".into()),
            url: Some("https://bit.ly/x9".into()),
            name: Some("Alex".into()),
            amount: Some("₹4,500".into()),
            tracking: Some("RM123456789GB".into()),
            code: Some("284913".into()),
            number: Some("+447900000001".into()),
        }
    }

    #[test]
    fn library_covers_all_languages() {
        let lib = TemplateLibrary::global();
        assert_eq!(lib.languages().len(), Language::ALL.len());
        assert!(lib.all().len() > 100, "{} templates", lib.all().len());
    }

    #[test]
    fn every_scam_type_has_english_templates() {
        let lib = TemplateLibrary::global();
        for &scam in ScamType::ALL {
            assert!(
                !lib.for_scam_lang(scam, Language::English).is_empty(),
                "{scam:?} missing English templates"
            );
        }
    }

    #[test]
    fn pattern_and_english_share_placeholders() {
        let lib = TemplateLibrary::global();
        for t in lib.all() {
            let mut a = placeholders_of(&t.pattern);
            let mut b = placeholders_of(&t.english);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "template {} placeholder mismatch", t.id);
        }
    }

    #[test]
    fn render_and_rematch_round_trips() {
        let lib = TemplateLibrary::global();
        let f = fills();
        for t in lib.all() {
            let rendered = t.render(&f);
            let (matched, extracted) = lib
                .match_text(&rendered, Some(t.language))
                .unwrap_or_else(|| panic!("template {} did not rematch: {rendered}", t.id));
            // The matched template must reproduce the same English rendering
            // (several templates may be textually ambiguous, but fills must
            // transfer).
            for ph in t.placeholders() {
                assert_eq!(
                    extracted.get(ph),
                    f.get(ph),
                    "template {} (matched {}) filler {ph} mismatch",
                    t.id,
                    matched.id
                );
            }
        }
    }

    #[test]
    fn render_fills_placeholders() {
        let lib = TemplateLibrary::global();
        let t = &lib.all()[0];
        let rendered = t.render(&fills());
        assert!(rendered.contains("SBI"));
        assert!(rendered.contains("https://bit.ly/x9"));
        assert!(!rendered.contains('{'));
    }

    #[test]
    fn match_rejects_wrong_text() {
        assert_eq!(
            match_pattern("{brand}: pay at {url}", "completely unrelated text"),
            None
        );
        assert_eq!(
            match_pattern("literal only", "literal only"),
            Some(Fills::default())
        );
        assert_eq!(
            match_pattern("literal only", "literal only plus junk"),
            None
        );
    }

    #[test]
    fn match_extracts_fillers() {
        let f = match_pattern(
            "{brand}: your parcel {tracking} is held. Pay at {url}",
            "Evri: your parcel RM1234 is held. Pay at https://cutt.ly/ab",
        )
        .unwrap();
        assert_eq!(f.brand.as_deref(), Some("Evri"));
        assert_eq!(f.tracking.as_deref(), Some("RM1234"));
        assert_eq!(f.url.as_deref(), Some("https://cutt.ly/ab"));
    }

    #[test]
    fn languages_of_templates_self_identify() {
        // Rendered templates must be identified as their own language —
        // otherwise Table 11 cannot be reproduced.
        let lib = TemplateLibrary::global();
        let f = fills();
        let mut failures = Vec::new();
        for t in lib.all() {
            let rendered = t.render(&f);
            let detected = crate::langid::identify_language(&rendered);
            if detected != Some(t.language) {
                failures.push((t.id, t.language, detected, rendered));
            }
        }
        assert!(
            failures.len() <= lib.all().len() / 20,
            "too many language-ID failures: {failures:#?}"
        );
    }
}
