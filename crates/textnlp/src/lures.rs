//! Lure-principle detection (§3.3.6, §5.5, Table 13).
//!
//! Detects Stajano & Wilson's seven lures from cue phrases in the English
//! rendering. Authority additionally fires on a successfully extracted
//! brand (referencing a trusted third party *is* the authority lure).

use crate::brands::Brand;
use smishing_types::{Lure, LureSet};

const URGENCY: &[&str] = &[
    "urgent",
    "immediately",
    "today",
    " now",
    "asap",
    "final notice",
    "expires",
    "expire",
    "deadline",
    "within 24",
    "within 12",
    "within 48",
    "act now",
    "quickly",
    "last chance",
    "before friday",
    "right away",
    "hurry",
    "tonight",
    "suspension",
    "will be closed",
    "will be blocked",
    "will be returned",
    "will be deactivated",
    "will be locked",
    "unless you cancel",
];
const AUTHORITY_WORDS: &[&str] = &[
    "bank",
    "government",
    "official",
    "security",
    "customs",
    "tax",
    "police",
    "revenue",
    "agency",
    "court",
    "verification",
    "verify your",
    "confirm your identity",
];
const GREED: &[&str] = &[
    "refund",
    "prize",
    "reward",
    "bonus",
    "win",
    "won",
    "free",
    "claim",
    "gift",
    "cash",
    "discount",
    "deal",
    "offer",
    "paying",
    "salary",
    "per day",
    "points worth",
    "redeem",
    "jackpot",
    "% off",
    "sale",
    "profit",
    "tip:",
];
const KINDNESS: &[&str] = &[
    "help me",
    "need your help",
    "please help",
    "help, i",
    "help out",
    "can you help",
    "help others",
    "support me",
    "i need you",
    // Conversation openers exploit the recipient's willingness to help a
    // stranger who (apparently) mis-texted (§5.5, Table 13's W column).
    "is this",
    "right number for",
    "are we still on",
    "got your number from",
    "wanted to ask",
    "gave me your number",
    "how have you been",
    "long time no see",
];
const DISTRACTION: &[&str] = &[
    "new number",
    "phone broke",
    "phone is broken",
    "dropped my phone",
    "screen smashed",
    "being repaired",
    "using a friend",
    "by the way",
    "long time no see",
    "yoga class",
    "dinner on",
    "the apartment",
    "how have you been",
    "got your number",
    "the other day",
    "last gathering",
    "temporary number",
    "is my new number",
    "my number changed",
    "from the gym",
    "on whatsapp",
];
const HERD: &[&str] = &[
    "thousands",
    "others have",
    "many winners",
    "players won",
    "join them",
    "already won",
    "everyone is",
    "most popular",
    "already profited",
    "there are already",
];
const DISHONESTY: &[&str] = &[
    "insider",
    "avoid the tax",
    "discreet",
    "bypass",
    "under the table",
    "off the record",
    "before the announcement",
    "secret",
];

fn any(text: &str, cues: &[&str]) -> bool {
    cues.iter().any(|c| text.contains(c))
}

/// Detect the lures present in an English-rendered smishing text.
pub fn detect_lures(english_text: &str, brand: Option<&Brand>) -> LureSet {
    let lower = english_text.to_lowercase();
    let mut lures = LureSet::EMPTY;
    if any(&lower, URGENCY) {
        lures.insert(Lure::TimeUrgency);
    }
    if brand.is_some() || any(&lower, AUTHORITY_WORDS) {
        lures.insert(Lure::Authority);
    }
    if any(&lower, GREED) {
        lures.insert(Lure::NeedAndGreed);
    }
    if any(&lower, KINDNESS) {
        lures.insert(Lure::Kindness);
    }
    if any(&lower, DISTRACTION) {
        lures.insert(Lure::Distraction);
    }
    if any(&lower, HERD) {
        lures.insert(Lure::Herd);
    }
    if any(&lower, DISHONESTY) {
        lures.insert(Lure::Dishonesty);
    }
    lures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brands::BrandCatalog;

    #[test]
    fn banking_smish_carries_authority_and_urgency() {
        let brand = BrandCatalog::global().by_name("Santander");
        let lures = detect_lures(
            "Santander ALERT: Your account has been suspended. Verify your details within 24 hours or your account will be closed.",
            brand,
        );
        assert!(lures.contains(Lure::Authority));
        assert!(lures.contains(Lure::TimeUrgency));
        assert!(!lures.contains(Lure::Kindness));
    }

    #[test]
    fn hey_mum_dad_lures() {
        let lures = detect_lures(
            "Hi mum, I dropped my phone down the toilet, this is my new number. Please help, I need to pay a bill today. Text me back asap x",
            None,
        );
        assert!(lures.contains(Lure::Kindness));
        assert!(lures.contains(Lure::Distraction));
        assert!(lures.contains(Lure::TimeUrgency));
    }

    #[test]
    fn wrong_number_is_distraction_without_urgency() {
        let lures = detect_lures(
            "Hello, is this Maria? I got your number from Jenny about the yoga class.",
            None,
        );
        assert!(lures.contains(Lure::Distraction));
        assert!(!lures.contains(Lure::TimeUrgency));
        assert!(!lures.contains(Lure::Authority));
    }

    #[test]
    fn herd_and_greed() {
        let lures = detect_lures(
            "Thousands of traders have already doubled their savings. Join them and claim your bonus",
            None,
        );
        assert!(lures.contains(Lure::Herd));
        assert!(lures.contains(Lure::NeedAndGreed));
    }

    #[test]
    fn dishonesty_is_rare_and_specific() {
        let lures = detect_lures(
            "Insider tip: move your holdings before the announcement and avoid the tax hit.",
            None,
        );
        assert!(lures.contains(Lure::Dishonesty));
        let benign = detect_lures("Your parcel is held at the depot", None);
        assert!(!benign.contains(Lure::Dishonesty));
    }

    #[test]
    fn empty_text_has_no_lures() {
        assert!(detect_lures("", None).is_empty());
    }
}
