//! Unicode-aware tokenization.
//!
//! Splits on anything that is neither alphanumeric nor an in-word
//! apostrophe/hyphen. URLs are kept whole so downstream stages can skip
//! them when counting stopwords.

/// Tokenize text into word tokens, preserving URL-looking tokens intact.
pub fn tokenize(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    for raw in text.split_whitespace() {
        if looks_like_url(raw) {
            out.push(raw);
            continue;
        }
        let trimmed = raw.trim_matches(|c: char| !c.is_alphanumeric());
        if trimmed.is_empty() {
            continue;
        }
        // Split interior punctuation except ' and - (don't split "don't").
        let mut start = None;
        let bytes: Vec<(usize, char)> = trimmed.char_indices().collect();
        for &(i, c) in &bytes {
            let wordy = c.is_alphanumeric() || c == '\'' || c == '-';
            match (wordy, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    out.push(&trimmed[s..i]);
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            out.push(&trimmed[s..]);
        }
    }
    out
}

/// Heuristic: does this whitespace-token look like a URL?
pub fn looks_like_url(token: &str) -> bool {
    let t = token.to_ascii_lowercase();
    t.starts_with("http://")
        || t.starts_with("https://")
        || t.starts_with("hxxp")
        || t.starts_with("www.")
        || (t.contains('.') && t.contains('/'))
        || t.contains("[.]")
}

/// Lowercased word tokens with URLs removed — the unit the language
/// identifier and keyword classifiers operate on.
pub fn words_lower(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !looks_like_url(t))
        .map(|t| t.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_split() {
        assert_eq!(tokenize("Hello, world!"), vec!["Hello", "world"]);
    }

    #[test]
    fn keeps_urls_whole() {
        let toks = tokenize("pay at https://bit.ly/x now");
        assert!(toks.contains(&"https://bit.ly/x"));
    }

    #[test]
    fn keeps_apostrophes_and_hyphens() {
        assert_eq!(tokenize("don't re-send"), vec!["don't", "re-send"]);
    }

    #[test]
    fn splits_interior_punctuation() {
        assert_eq!(
            tokenize("bank:account=locked"),
            vec!["bank", "account", "locked"]
        );
    }

    #[test]
    fn unicode_words() {
        assert_eq!(
            tokenize("Ihr Konto wurde gesperrt"),
            vec!["Ihr", "Konto", "wurde", "gesperrt"]
        );
        assert_eq!(tokenize("あなたの口座"), vec!["あなたの口座"]);
    }

    #[test]
    fn words_lower_drops_urls() {
        let ws = words_lower("URGENT visit https://evil.com/x today");
        assert_eq!(ws, vec!["urgent", "visit", "today"]);
    }
}
