//! Language identification (§3.3.6, Table 11).
//!
//! Two stages, like any classical identifier:
//!
//! 1. **Script detection** — count codepoints per Unicode block. A dominant
//!    non-Latin script narrows candidates drastically (Kana → Japanese;
//!    Han without Kana → Mandarin; Devanagari → Hindi/Marathi/Nepali...).
//! 2. **Stopword scoring** — among the candidate set, score lexicon hits
//!    per language and take the argmax (ties break toward the language
//!    with more total probability mass in the corpus, i.e. declaration
//!    order in [`Language::ALL`]).
//!
//! Returns `None` only for empty/URL-only text.

use crate::lexicon::lexicon;
use crate::tokenize::words_lower;
use smishing_types::{Language, Script};

fn script_of_char(c: char) -> Option<Script> {
    let u = c as u32;
    Some(match u {
        0x0041..=0x024F => Script::Latin,
        0x0370..=0x03FF => Script::Greek,
        0x0400..=0x04FF => Script::Cyrillic,
        0x0530..=0x058F => Script::Armenian,
        0x0590..=0x05FF => Script::Hebrew,
        0x0600..=0x06FF | 0x0750..=0x077F => Script::Arabic,
        0x0900..=0x097F => Script::Devanagari,
        0x0980..=0x09FF => Script::Bengali,
        0x0A00..=0x0A7F => Script::Gurmukhi,
        0x0A80..=0x0AFF => Script::Gujarati,
        0x0B80..=0x0BFF => Script::Tamil,
        0x0C00..=0x0C7F => Script::Telugu,
        0x0C80..=0x0CFF => Script::Kannada,
        0x0D00..=0x0D7F => Script::Malayalam,
        0x0D80..=0x0DFF => Script::Sinhala,
        0x0E00..=0x0E7F => Script::Thai,
        0x0E80..=0x0EFF => Script::Lao,
        0x1000..=0x109F => Script::Myanmar,
        0x10A0..=0x10FF => Script::Georgian,
        0x1200..=0x137F => Script::Ethiopic,
        0x1780..=0x17FF => Script::Khmer,
        0x3040..=0x30FF => Script::Kana,
        0x4E00..=0x9FFF | 0x3400..=0x4DBF => Script::Han,
        0xAC00..=0xD7AF | 0x1100..=0x11FF => Script::Hangul,
        _ => return None,
    })
}

/// The dominant script of a text, by codepoint count over letters.
/// URL tokens are skipped — a short non-Latin smish with a long Latin URL
/// must not come back as Latin-script.
pub fn dominant_script(text: &str) -> Option<Script> {
    let mut counts: Vec<(Script, usize)> = Vec::new();
    let mut has_kana = false;
    for token in text.split_whitespace() {
        if crate::tokenize::looks_like_url(token) {
            continue;
        }
        for c in token.chars() {
            if let Some(s) = script_of_char(c) {
                if s == Script::Kana {
                    has_kana = true;
                }
                match counts.iter_mut().find(|(sc, _)| *sc == s) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((s, 1)),
                }
            }
        }
    }
    // Japanese mixes Kana and Han; any Kana at all marks the text Japanese.
    if has_kana {
        return Some(Script::Kana);
    }
    counts.into_iter().max_by_key(|&(_, n)| n).map(|(s, _)| s)
}

/// Identify the language of a text. `None` for empty/unscriptable input.
pub fn identify_language(text: &str) -> Option<Language> {
    let script = dominant_script(text)?;
    let candidates: Vec<Language> = Language::ALL
        .iter()
        .copied()
        .filter(|l| {
            l.script() == script
                // Han-script text may be Japanese written without kana; keep
                // both candidates and let stopwords decide.
                || (script == Script::Han && l.script() == Script::Kana)
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }
    if candidates.len() == 1 {
        return Some(candidates[0]);
    }

    // Stopword scoring. For scripts without word boundaries (Han, Kana,
    // Thai, Khmer, ...), fall back to substring counting.
    let words = words_lower(text);
    let spaced = !words.is_empty() && words.iter().any(|w| w.chars().count() < 8);
    let lower = text.to_lowercase();
    let mut best: Option<(Language, usize)> = None;
    for &lang in &candidates {
        let lex = lexicon(lang);
        let score = if spaced && script == Script::Latin {
            words.iter().filter(|w| lex.contains(&w.as_str())).count()
        } else {
            lex.iter().filter(|w| lower.contains(*w)).count()
        };
        if score > 0 && best.is_none_or(|(_, s)| score > s) {
            best = Some((lang, score));
        }
    }
    match best {
        Some((lang, _)) => Some(lang),
        // No stopword hit: take the most common language of the script
        // (declaration order in Language::ALL encodes corpus frequency).
        None => Some(candidates[0]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn major_latin_languages() {
        let cases = [
            (
                "Your account has been suspended, please click here",
                Language::English,
            ),
            (
                "Su cuenta ha sido bloqueada, haga clic aquí hoy",
                Language::Spanish,
            ),
            (
                "Uw rekening wordt geblokkeerd, klik hier vandaag",
                Language::Dutch,
            ),
            ("Votre compte a été suspendu, cliquez ici", Language::French),
            (
                "Ihr Konto wurde gesperrt, bitte hier klicken",
                Language::German,
            ),
            (
                "Il suo conto è stato bloccato, clicchi qui subito",
                Language::Italian,
            ),
            (
                "Akun Anda telah diblokir, silakan klik di sini segera",
                Language::Indonesian,
            ),
            (
                "Sua conta foi bloqueada, clique aqui hoje",
                Language::Portuguese,
            ),
        ];
        for (text, expect) in cases {
            assert_eq!(identify_language(text), Some(expect), "{text:?}");
        }
    }

    #[test]
    fn script_languages() {
        assert_eq!(
            identify_language("あなたの口座を確認してください"),
            Some(Language::Japanese)
        );
        assert_eq!(
            identify_language("您的账户已被冻结，请点击这里"),
            Some(Language::Mandarin)
        );
        assert_eq!(
            identify_language("आपका खाता बंद है कृपया क्लिक करें"),
            Some(Language::Hindi)
        );
        assert_eq!(
            identify_language("ваш счёт был заблокирован, пожалуйста нажмите здесь"),
            Some(Language::Russian)
        );
        assert_eq!(
            identify_language("حسابك تم إيقافه الرجاء انقر هنا"),
            Some(Language::Arabic)
        );
        assert_eq!(
            identify_language("บัญชีของคุณถูกระงับ กรุณาคลิกที่นี่"),
            Some(Language::Thai)
        );
    }

    #[test]
    fn cyrillic_disambiguation() {
        assert_eq!(
            identify_language("ваш рахунок було заблоковано, натисніть тут терміново"),
            Some(Language::Ukrainian)
        );
        assert_eq!(
            identify_language("вашата сметка беше блокирана, моля кликнете тук днес"),
            Some(Language::Bulgarian)
        );
    }

    #[test]
    fn devanagari_disambiguation() {
        assert_eq!(
            identify_language("तुमचे खाते बंद आहे कृपया येथे क्लिक करा त्वरित"),
            Some(Language::Marathi)
        );
    }

    #[test]
    fn empty_and_url_only() {
        assert_eq!(identify_language(""), None);
        assert_eq!(identify_language("12345 !!!"), None);
    }

    #[test]
    fn urls_do_not_poison_detection() {
        let t = "Su cuenta ha sido bloqueada hoy: https://the-click-here-account.com/please";
        assert_eq!(identify_language(t), Some(Language::Spanish));
    }

    #[test]
    fn all_lexicons_self_identify() {
        // Rendering a sentence purely from a language's lexicon must come
        // back as that language — the invariant the template corpus needs.
        for &lang in Language::ALL {
            let text = crate::lexicon::lexicon(lang).join(" ");
            assert_eq!(identify_language(&text), Some(lang), "{lang:?}: {text}");
        }
    }
}
