//! Annotator models for the §3.4 inter-rater study.
//!
//! Three parties annotate messages with (scam type, brand, lures):
//!
//! - [`PipelineAnnotator`] — the GPT-4o stand-in: language ID, translation,
//!   brand NER, scam classification and lure detection from the text alone,
//! - [`HumanAnnotator`] — a human expert model: reads the message with full
//!   understanding (ground truth) but makes idiosyncratic mistakes at
//!   calibrated rates. Two humans with independent seeds reproduce the
//!   paper's human–human κ levels (brands 0.82, scam types 0.94, lures 0.85).

use crate::brands::BrandCatalog;
use crate::langid::identify_language;
use crate::lures::detect_lures;
use crate::ner::extract_brand;
use crate::scamclass::classify_scam;
use crate::translate::{TemplateTranslator, Translator};
use smishing_types::{Language, Lure, LureSet, MessageTruth, ScamType};

/// One annotation of one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Detected language of the original text.
    pub language: Option<Language>,
    /// English rendering used for the label decisions.
    pub english_text: String,
    /// Assigned scam category.
    pub scam_type: ScamType,
    /// Canonical impersonated-brand name, if identified.
    pub brand: Option<String>,
    /// Detected lure set.
    pub lures: LureSet,
}

/// Text-only annotator interface.
pub trait Annotator {
    /// Annotate a message from its raw text.
    fn annotate(&self, text: &str) -> Annotation;
}

/// The GPT-4o stand-in: the full text pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineAnnotator {
    translator: TemplateTranslator,
}

impl PipelineAnnotator {
    /// Build the annotator.
    pub fn new() -> PipelineAnnotator {
        PipelineAnnotator::default()
    }
}

impl Annotator for PipelineAnnotator {
    fn annotate(&self, text: &str) -> Annotation {
        let language = identify_language(text);
        let english = self
            .translator
            .to_english(text, language)
            .text()
            .to_string();
        // Brand aliases are proper names: look in both renderings.
        let brand = extract_brand(&english).or_else(|| extract_brand(text));
        let scam_type = classify_scam(&english, brand);
        let lures = detect_lures(&english, brand);
        Annotation {
            language,
            english_text: english,
            scam_type,
            brand: brand.map(|b| b.name.to_string()),
            lures,
        }
    }
}

/// A human expert with calibrated error rates (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct HumanAnnotator {
    seed: u64,
    /// Probability of mislabelling the scam type.
    pub scam_error: f64,
    /// Probability of missing / confusing the brand.
    pub brand_error: f64,
    /// Probability of dropping a present lure.
    pub lure_miss: f64,
    /// Probability of adding an absent lure.
    pub lure_add: f64,
}

impl HumanAnnotator {
    /// Default calibration reproducing the paper's human–human κ.
    pub fn new(seed: u64) -> HumanAnnotator {
        HumanAnnotator {
            seed,
            scam_error: 0.03,
            brand_error: 0.09,
            lure_miss: 0.02,
            lure_add: 0.003,
        }
    }

    fn unit(&self, item: u64, salt: u64) -> f64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.wrapping_mul(0x1000_0001b3);
        for b in item.to_le_bytes().iter().chain(salt.to_le_bytes().iter()) {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        ((h ^ (h >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Annotate message `item` whose ground truth is `truth`.
    ///
    /// Humans read the (translated) message correctly, so the language and
    /// English text come straight from the truth; the *labels* carry the
    /// annotator's idiosyncratic noise.
    pub fn annotate_truth(&self, item: u64, truth: &MessageTruth) -> Annotation {
        // Scam type: occasionally filed under Others (the catch-all is the
        // realistic confusion for scams with unusual wording).
        let scam_type = if self.unit(item, 1) < self.scam_error {
            if truth.scam_type == ScamType::Others {
                ScamType::Spam
            } else {
                ScamType::Others
            }
        } else {
            truth.scam_type
        };

        // Brand: missed (None) or, rarely, confused with another brand of
        // the same sector.
        let brand = match &truth.brand {
            None => None,
            Some(name) => {
                let u = self.unit(item, 2);
                if u < self.brand_error * 0.75 {
                    None
                } else if u < self.brand_error {
                    let cat = BrandCatalog::global();
                    cat.by_name(name)
                        .map(|b| {
                            let same_sector = cat.of_sector(b.sector);
                            let idx = (self.unit(item, 3) * same_sector.len() as f64) as usize;
                            same_sector[idx.min(same_sector.len() - 1)].name.to_string()
                        })
                        .or_else(|| Some(name.clone()))
                } else {
                    Some(name.clone())
                }
            }
        };

        // Lures: per-label drop/add noise.
        let mut lures = LureSet::EMPTY;
        for (i, &lure) in Lure::ALL.iter().enumerate() {
            let u = self.unit(item, 10 + i as u64);
            let present = truth.lures.contains(lure);
            let keep = if present {
                u >= self.lure_miss
            } else {
                u < self.lure_add
            };
            if keep {
                lures.insert(lure);
            }
        }

        Annotation {
            language: Some(truth.language),
            english_text: truth.english_text.clone(),
            scam_type,
            brand,
            lures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smishing_types::Country;

    fn truth(scam: ScamType, brand: Option<&str>, lures: &[Lure]) -> MessageTruth {
        MessageTruth {
            scam_type: scam,
            lures: LureSet::from_slice(lures),
            brand: brand.map(str::to_string),
            language: Language::English,
            english_text: "text".into(),
            recipient_country: Country::UnitedKingdom,
        }
    }

    #[test]
    fn pipeline_annotates_end_to_end() {
        let ann = PipelineAnnotator::new().annotate(
            "Evri: your parcel RM12345 is held at our depot. A redelivery fee of £1.99 is due. Pay within 24 hours at https://cutt.ly/ab12",
        );
        assert_eq!(ann.scam_type, ScamType::Delivery);
        assert_eq!(ann.brand.as_deref(), Some("Evri"));
        assert_eq!(ann.language, Some(Language::English));
        assert!(ann.lures.contains(Lure::TimeUrgency));
        assert!(ann.lures.contains(Lure::Authority));
    }

    #[test]
    fn pipeline_translates_before_classifying() {
        let ann = PipelineAnnotator::new().annotate(
            "Rabobank: uw rekening wordt vandaag geblokkeerd. Verifieer uw gegevens via https://is.gd/q7 alstublieft.",
        );
        assert_eq!(ann.language, Some(Language::Dutch));
        assert_eq!(ann.scam_type, ScamType::Banking);
        assert_eq!(ann.brand.as_deref(), Some("Rabobank"));
    }

    #[test]
    fn humans_mostly_agree_with_truth() {
        let h = HumanAnnotator::new(1);
        let t = truth(
            ScamType::Banking,
            Some("Santander"),
            &[Lure::Authority, Lure::TimeUrgency],
        );
        let mut scam_agree = 0;
        let n = 2000;
        for item in 0..n {
            let a = h.annotate_truth(item, &t);
            if a.scam_type == t.scam_type {
                scam_agree += 1;
            }
        }
        let rate = scam_agree as f64 / n as f64;
        assert!((0.94..0.995).contains(&rate), "{rate}");
    }

    #[test]
    fn two_humans_disagree_sometimes() {
        let h1 = HumanAnnotator::new(1);
        let h2 = HumanAnnotator::new(2);
        let t = truth(ScamType::Delivery, Some("Evri"), &[Lure::Authority]);
        let mut diff = 0;
        for item in 0..2000 {
            if h1.annotate_truth(item, &t) != h2.annotate_truth(item, &t) {
                diff += 1;
            }
        }
        assert!(diff > 100, "{diff} disagreements in 2000");
    }

    #[test]
    fn human_annotation_is_deterministic() {
        let h = HumanAnnotator::new(9);
        let t = truth(ScamType::Banking, Some("Chase"), &[Lure::Authority]);
        assert_eq!(h.annotate_truth(42, &t), h.annotate_truth(42, &t));
    }
}
