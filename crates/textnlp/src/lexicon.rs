//! Per-language function-word lexicons.
//!
//! Each of the 66+ modelled languages has a small lexicon of function words
//! and smishing-domain vocabulary. Two consumers share it:
//!
//! 1. the template corpus ([`crate::templates`]) renders tail-language
//!    messages from these words, and
//! 2. the language identifier ([`crate::langid`]) scores Latin-script text
//!    against these same lists.
//!
//! **Honesty note (see DESIGN.md):** this is deliberately circular for the
//! long-tail languages — we did not license 66 real corpora. The *mechanism*
//! (script detection, then stopword profiles) is the faithful part; the
//! vocabulary for tail languages is a minimal stand-in. The 13 major
//! languages (>100 messages in Table 11) carry realistic phrasebooks in the
//! template corpus on top of these lists.

use smishing_types::Language;

/// Characteristic words of a language, lowercase.
pub fn lexicon(lang: Language) -> &'static [&'static str] {
    use Language::*;
    match lang {
        English => &[
            "the", "your", "has", "been", "please", "click", "here", "account", "with", "have",
            "is", "at", "to", "our", "will", "be", "or", "and", "you", "of",
        ],
        Spanish => &[
            "su", "cuenta", "ha", "sido", "aquí", "usted", "para", "por", "favor", "hoy",
        ],
        Dutch => &[
            "uw",
            "het",
            "een",
            "niet",
            "wordt",
            "klik",
            "hier",
            "alstublieft",
            "vandaag",
            "rekening",
        ],
        French => &[
            "votre",
            "compte",
            "été",
            "cliquez",
            "ici",
            "vous",
            "pour",
            "veuillez",
            "aujourd'hui",
            "dès",
        ],
        German => &[
            "ihr", "konto", "wurde", "gesperrt", "bitte", "hier", "klicken", "sie", "und", "heute",
        ],
        Italian => &[
            "il", "suo", "conto", "stato", "bloccato", "clicchi", "qui", "per", "subito", "oggi",
        ],
        Indonesian => &[
            "anda", "akun", "telah", "diblokir", "silakan", "klik", "di", "sini", "untuk", "segera",
        ],
        Portuguese => &[
            "sua",
            "conta",
            "foi",
            "bloqueada",
            "clique",
            "aqui",
            "você",
            "para",
            "não",
            "hoje",
        ],
        Japanese => &[
            "あなた",
            "の",
            "です",
            "ます",
            "ください",
            "口座",
            "確認",
            "こちら",
        ],
        Hindi => &["आपका", "खाता", "है", "कृपया", "करें", "बैंक", "तुरंत", "यहाँ"],
        Tagalog => &[
            "ang",
            "iyong",
            "ay",
            "na",
            "dito",
            "po",
            "ninyo",
            "upang",
            "ngayon",
            "mag-click",
        ],
        Mandarin => &["您的", "账户", "已", "请", "点击", "银行", "立即", "这里"],
        Turkish => &[
            "hesabınız",
            "lütfen",
            "için",
            "tıklayın",
            "bir",
            "ve",
            "bu",
            "bugün",
            "hemen",
            "banka",
        ],
        Arabic => &["حسابك", "تم", "الرجاء", "انقر", "هنا", "البنك", "فوراً"],
        Russian => &[
            "ваш",
            "счёт",
            "был",
            "пожалуйста",
            "нажмите",
            "здесь",
            "банк",
            "срочно",
        ],
        Ukrainian => &[
            "ваш",
            "рахунок",
            "було",
            "будь",
            "ласка",
            "натисніть",
            "тут",
            "терміново",
        ],
        Polish => &[
            "twoje", "konto", "zostało", "proszę", "kliknij", "tutaj", "bank", "dzisiaj",
        ],
        Czech => &[
            "váš",
            "účet",
            "byl",
            "prosím",
            "klikněte",
            "zde",
            "banka",
            "dnes",
        ],
        Slovak => &[
            "váš", "účet", "bol", "prosím", "kliknite", "tu", "banka", "dnes",
        ],
        Hungarian => &[
            "az",
            "ön",
            "számlája",
            "kérjük",
            "kattintson",
            "ide",
            "bank",
            "ma",
        ],
        Romanian => &[
            "contul",
            "dumneavoastră",
            "fost",
            "vă",
            "rugăm",
            "apăsați",
            "aici",
            "astăzi",
        ],
        Bulgarian => &[
            "вашата",
            "сметка",
            "беше",
            "моля",
            "кликнете",
            "тук",
            "банка",
            "днес",
        ],
        Greek => &[
            "ο",
            "λογαριασμός",
            "σας",
            "παρακαλώ",
            "κάντε",
            "κλικ",
            "εδώ",
            "τράπεζα",
        ],
        Swedish => &[
            "ditt",
            "konto",
            "har",
            "vänligen",
            "klicka",
            "här",
            "banken",
            "idag",
        ],
        Norwegian => &[
            "din",
            "konto",
            "har",
            "vennligst",
            "klikk",
            "her",
            "banken",
            "dag",
        ],
        Danish => &[
            "din", "konto", "er", "venligst", "klik", "her", "banken", "dag",
        ],
        Finnish => &[
            "tilisi",
            "on",
            "ole",
            "hyvä",
            "napsauta",
            "tästä",
            "pankki",
            "tänään",
        ],
        Catalan => &[
            "el", "vostre", "compte", "ha", "estat", "cliqueu", "aquí", "avui",
        ],
        Galician => &["a", "súa", "conta", "foi", "prema", "aquí", "banco", "hoxe"],
        Basque => &[
            "zure", "kontua", "izan", "da", "egin", "klik", "hemen", "gaur",
        ],
        Croatian => &[
            "vaš", "račun", "je", "molimo", "kliknite", "ovdje", "banka", "danas",
        ],
        Serbian => &[
            "ваш",
            "рачун",
            "је",
            "молимо",
            "кликните",
            "овде",
            "банка",
            "данас",
        ],
        Slovenian => &[
            "vaš", "račun", "je", "prosimo", "kliknite", "tukaj", "banka", "danes",
        ],
        Lithuanian => &[
            "jūsų",
            "sąskaita",
            "buvo",
            "prašome",
            "spustelėkite",
            "čia",
            "bankas",
            "šiandien",
        ],
        Latvian => &[
            "jūsu",
            "konts",
            "ir",
            "lūdzu",
            "noklikšķiniet",
            "šeit",
            "banka",
            "šodien",
        ],
        Estonian => &[
            "teie",
            "konto",
            "on",
            "palun",
            "klõpsake",
            "siin",
            "pank",
            "täna",
        ],
        Korean => &[
            "귀하의",
            "계좌",
            "가",
            "되었습니다",
            "클릭",
            "여기",
            "은행",
            "즉시",
        ],
        Vietnamese => &[
            "tài", "khoản", "của", "bạn", "đã", "vui", "lòng", "nhấp", "vào", "đây",
        ],
        Thai => &["บัญชี", "ของคุณ", "ถูก", "กรุณา", "คลิก", "ที่นี่", "ธนาคาร", "ทันที"],
        Malay => &[
            "akaun", "anda", "telah", "sila", "klik", "di", "sini", "bank", "segera", "hari",
        ],
        Bengali => &[
            "আপনার",
            "অ্যাকাউন্ট",
            "হয়েছে",
            "দয়া",
            "করে",
            "ক্লিক",
            "এখানে",
            "ব্যাংক",
        ],
        Punjabi => &["ਤੁਹਾਡਾ", "ਖਾਤਾ", "ਹੈ", "ਕਿਰਪਾ", "ਕਰਕੇ", "ਕਲਿੱਕ", "ਇੱਥੇ", "ਬੈਂਕ"],
        Gujarati => &["તમારું", "ખાતું", "છે", "કૃપા", "કરીને", "ક્લિક", "અહીં", "બેંક"],
        Tamil => &[
            "உங்கள்",
            "கணக்கு",
            "உள்ளது",
            "தயவுசெய்து",
            "கிளிக்",
            "இங்கே",
            "வங்கி",
        ],
        Telugu => &["మీ", "ఖాతా", "ఉంది", "దయచేసి", "క్లిక్", "ఇక్కడ", "బ్యాంక్"],
        Kannada => &["ನಿಮ್ಮ", "ಖಾತೆ", "ಇದೆ", "ದಯವಿಟ್ಟು", "ಕ್ಲಿಕ್", "ಇಲ್ಲಿ", "ಬ್ಯಾಂಕ್"],
        Malayalam => &["നിങ്ങളുടെ", "അക്കൗണ്ട്", "ആണ്", "ദയവായി", "ക്ലിക്ക്", "ഇവിടെ", "ബാങ്ക്"],
        Marathi => &["तुमचे", "खाते", "आहे", "कृपया", "क्लिक", "येथे", "बँक", "त्वरित"],
        Urdu => &["آپ", "کا", "اکاؤنٹ", "ہے", "براہ", "کرم", "کلک", "یہاں"],
        Sinhala => &["ඔබේ", "ගිණුම", "ඇත", "කරුණාකර", "ක්ලික්", "මෙතන", "බැංකුව"],
        Nepali => &["तपाईंको", "खाता", "छ", "कृपया", "क्लिक", "यहाँ", "बैंक"],
        Hebrew => &["החשבון", "שלך", "נא", "לחץ", "כאן", "בנק", "מיד"],
        Persian => &["حساب", "شما", "است", "لطفا", "کلیک", "اینجا", "بانک"],
        Swahili => &[
            "akaunti",
            "yako",
            "imefungwa",
            "tafadhali",
            "bonyeza",
            "hapa",
            "benki",
            "leo",
        ],
        Amharic => &["የእርስዎ", "መለያ", "ነው", "እባክዎ", "ጠቅ", "እዚህ", "ባንክ"],
        Hausa => &[
            "asusunka", "an", "don", "allah", "danna", "nan", "banki", "yau",
        ],
        Yoruba => &["àkántì", "rẹ", "ti", "jọwọ", "tẹ", "níbí", "báńkì", "lónìí"],
        Afrikaans => &[
            "jou",
            "rekening",
            "is",
            "asseblief",
            "kliek",
            "hier",
            "bank",
            "vandag",
        ],
        Burmese => &["သင့်", "အကောင့်", "သည်", "ကျေးဇူးပြု၍", "နှိပ်ပါ", "ဤနေရာ", "ဘဏ်"],
        Khmer => &["គណនី", "របស់អ្នក", "ត្រូវបាន", "សូម", "ចុច", "ទីនេះ", "ធនាគារ"],
        Lao => &["ບັນຊີ", "ຂອງທ່ານ", "ຖືກ", "ກະລຸນາ", "ກົດ", "ທີ່ນີ້", "ທະນາຄານ"],
        Georgian => &[
            "თქვენი",
            "ანგარიში",
            "არის",
            "გთხოვთ",
            "დააჭირეთ",
            "აქ",
            "ბანკი",
        ],
        Armenian => &[
            "ձեր",
            "հաշիվը",
            "է",
            "խնդրում",
            "ենք",
            "սեղմեք",
            "այստեղ",
            "բանկ",
        ],
        Azerbaijani => &[
            "sizin",
            "hesabınız",
            "olub",
            "zəhmət",
            "olmasa",
            "klikləyin",
            "bura",
            "bank",
        ],
        Kazakh => &[
            "сіздің",
            "шотыңыз",
            "болды",
            "өтінеміз",
            "басыңыз",
            "осында",
            "банк",
        ],
        Uzbek => &[
            "sizning",
            "hisobingiz",
            "bo'ldi",
            "iltimos",
            "bosing",
            "shu",
            "yerga",
            "bank",
        ],
        Albanian => &[
            "llogaria", "juaj", "është", "ju", "lutemi", "klikoni", "këtu", "banka",
        ],
        Macedonian => &[
            "вашата",
            "сметка",
            "е",
            "ве",
            "молиме",
            "кликнете",
            "овде",
            "банка",
        ],
        Icelandic => &[
            "reikningurinn",
            "þinn",
            "hefur",
            "vinsamlegast",
            "smelltu",
            "hér",
            "banki",
            "dag",
        ],
        Maltese => &[
            "il-kont",
            "tiegħek",
            "ġie",
            "jekk",
            "jogħġbok",
            "ikklikkja",
            "hawn",
            "bank",
        ],
        Welsh => &[
            "eich", "cyfrif", "wedi", "cliciwch", "yma", "banc", "heddiw", "os", "gwelwch", "dda",
        ],
        Irish => &[
            "do",
            "chuntas",
            "tá",
            "cliceáil",
            "anseo",
            "banc",
            "inniu",
            "le",
            "thoil",
            "déan",
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_language_has_a_lexicon() {
        for &lang in Language::ALL {
            assert!(lexicon(lang).len() >= 5, "{lang:?} lexicon too small");
        }
    }

    #[test]
    fn lexicons_are_lowercase() {
        for &lang in Language::ALL {
            for w in lexicon(lang) {
                assert_eq!(&w.to_lowercase(), w, "{lang:?}: {w}");
            }
        }
    }

    #[test]
    fn latin_script_lexicons_are_mostly_distinct() {
        use smishing_types::Script;
        // For any two Latin-script languages, the lexicons must not overlap
        // so much that scoring cannot separate them.
        let latin: Vec<_> = Language::ALL
            .iter()
            .copied()
            .filter(|l| l.script() == Script::Latin)
            .collect();
        for (i, &a) in latin.iter().enumerate() {
            for &b in &latin[i + 1..] {
                let la = lexicon(a);
                let lb = lexicon(b);
                let overlap = la.iter().filter(|w| lb.contains(w)).count();
                let max_allowed = la.len().min(lb.len()) - 2;
                assert!(
                    overlap <= max_allowed,
                    "{a:?} and {b:?} share {overlap} of {} words",
                    la.len()
                );
            }
        }
    }
}
