//! Scam-type classification (§3.3.6, Table 10).
//!
//! Runs on the *English* text (the pipeline translates first, §3.2) and
//! combines two signals:
//!
//! 1. keyword scores per category,
//! 2. the impersonated brand's sector as a strong prior (an Evri smish with
//!    generic wording is still a delivery scam).
//!
//! Conversational scams are matched by structural cues (family address +
//! changed-number story; stranger greeting) before the keyword scoring, as
//! they rarely contain category vocabulary.

use crate::brands::Brand;
use crate::tokenize::words_lower;
use smishing_types::ScamType;

fn contains_any(text: &str, cues: &[&str]) -> usize {
    cues.iter().filter(|c| text.contains(*c)).count()
}

const FAMILY: &[&str] = &["mum", "mom", "dad", "mama", "papa"];
const CHANGED_PHONE: &[&str] = &[
    "new number",
    "phone broke",
    "phone is broken",
    "dropped my phone",
    "screen smashed",
    "being repaired",
    "using a friend",
    "temporary number",
    "save this number",
    "my phone down",
];
const STRANGER_OPENER: &[&str] = &[
    "is this",
    "are you ",
    "long time no see",
    "got your number",
    "gave me your number",
    "how have you been",
    "right number for",
    "the other day",
    "my number changed",
    "from the gym",
    "from the last gathering",
];
const DELIVERY: &[&str] = &[
    "parcel",
    "package",
    "delivery",
    "deliver",
    "courier",
    "shipment",
    "tracking",
    "customs",
    "depot",
    "redeliver",
    "reschedule",
    "address",
    "shipping",
    "post office",
];
const GOVERNMENT: &[&str] = &[
    "tax",
    "toll",
    "fine",
    "penalty",
    "licence",
    "license",
    "prosecution",
    "revenue",
    "benefit",
    "seizure",
    "vehicle",
    "court",
    "regularize",
];
const TELECOM: &[&str] = &[
    "sim",
    "bill",
    "network",
    "data plan",
    "loyalty",
    "top-up",
    "topup",
    "airtime",
    "service suspension",
    "operator",
    "tariff",
    "upgrade",
];
const BANKING: &[&str] = &[
    "bank",
    "account",
    "card",
    "kyc",
    "net banking",
    "password",
    "transaction",
    "payment",
    "debited",
    "credited",
    "online banking",
    "iban",
    "refund",
];
const SPAM: &[&str] = &[
    "casino",
    "free spins",
    "sale",
    "% off",
    "discount",
    "draw",
    "prize",
    "newsletter",
    "stock alert",
    "play now",
    "shop",
    "promo",
    "raffle",
    "betting",
];
const OTHERS: &[&str] = &[
    "subscription",
    "profile",
    "verification code",
    "job",
    "traders",
    "investment",
    "crypto",
    "wallet",
    "bonus",
    "streaming",
    "logged into your",
    "accessed from",
];

/// Classify the scam type of an English-rendered smishing text.
pub fn classify_scam(english_text: &str, brand: Option<&Brand>) -> ScamType {
    let lower = english_text.to_lowercase();
    let words = words_lower(english_text);

    // Conversational structures first.
    let family = FAMILY.iter().any(|f| words.iter().any(|w| w == f));
    if family && contains_any(&lower, CHANGED_PHONE) > 0 {
        return ScamType::HeyMumDad;
    }
    let greetingish = ["hi", "hey", "hello", "good"]
        .iter()
        .any(|g| words.first().map(String::as_str) == Some(*g));
    if greetingish && contains_any(&lower, STRANGER_OPENER) > 0 && brand.is_none() {
        return ScamType::WrongNumber;
    }

    // Keyword scores.
    let mut scores: Vec<(ScamType, f64)> = vec![
        (ScamType::Delivery, contains_any(&lower, DELIVERY) as f64),
        (
            ScamType::Government,
            contains_any(&lower, GOVERNMENT) as f64,
        ),
        (ScamType::Telecom, contains_any(&lower, TELECOM) as f64),
        (ScamType::Banking, contains_any(&lower, BANKING) as f64),
        (ScamType::Spam, contains_any(&lower, SPAM) as f64),
        (ScamType::Others, contains_any(&lower, OTHERS) as f64),
    ];

    // Brand sector prior.
    if let Some(b) = brand {
        let target = b.sector.typical_scam_type();
        for (st, s) in scores.iter_mut() {
            if *st == target {
                *s += 2.5;
            }
        }
    }

    let (best, score) = scores
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"))
        .expect("non-empty scores");
    if score <= 0.0 {
        return ScamType::Others;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brands::BrandCatalog;

    fn brand(name: &str) -> Option<&'static Brand> {
        BrandCatalog::global().by_name(name)
    }

    #[test]
    fn banking() {
        let t = "SBI ALERT: Your account has been suspended. Verify your details at https://x.co/1";
        assert_eq!(
            classify_scam(t, brand("State Bank of India")),
            ScamType::Banking
        );
    }

    #[test]
    fn delivery_by_keywords_and_brand() {
        let t = "Your parcel is held at the depot, pay the redelivery fee";
        assert_eq!(classify_scam(t, None), ScamType::Delivery);
        let generic = "A fee is due on your item, see link";
        assert_eq!(classify_scam(generic, brand("Evri")), ScamType::Delivery);
    }

    #[test]
    fn government() {
        let t = "HMRC: you are eligible for a tax refund, claim before the deadline";
        assert_eq!(classify_scam(t, brand("HMRC")), ScamType::Government);
        let toll = "An unpaid toll is registered to your vehicle, pay to avoid a penalty";
        assert_eq!(classify_scam(toll, None), ScamType::Government);
    }

    #[test]
    fn telecom() {
        let t = "Your SIM will be deactivated, re-verify your identity";
        assert_eq!(classify_scam(t, None), ScamType::Telecom);
    }

    #[test]
    fn hey_mum_dad() {
        let t = "Hi mum, I dropped my phone down the toilet, this is my new number. Text me back";
        assert_eq!(classify_scam(t, None), ScamType::HeyMumDad);
    }

    #[test]
    fn wrong_number() {
        let t = "Hello, is this Maria? I got your number from Jenny about the yoga class.";
        assert_eq!(classify_scam(t, None), ScamType::WrongNumber);
    }

    #[test]
    fn spam() {
        let t = "MEGA CASINO: 50 free spins waiting! Play now";
        assert_eq!(classify_scam(t, None), ScamType::Spam);
    }

    #[test]
    fn others_tech_brand_overrides_banking_words() {
        let t = "Netflix: your account will be charged unless you cancel your subscription";
        assert_eq!(classify_scam(t, brand("Netflix")), ScamType::Others);
    }

    #[test]
    fn unclassifiable_defaults_to_others() {
        assert_eq!(
            classify_scam("random words entirely", None),
            ScamType::Others
        );
    }

    #[test]
    fn refund_with_bank_brand_is_banking() {
        let t = "Santander: you have received a refund of £120. Claim here";
        assert_eq!(classify_scam(t, brand("Santander")), ScamType::Banking);
    }
}
