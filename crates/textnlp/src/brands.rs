//! The impersonated-brand catalog (Table 12).
//!
//! Brands carry the sector (which maps to the scam category the brand is
//! typically impersonated for), the home market (driving which recipient
//! countries see the brand) and alias strings (what the smish actually
//! writes, including abbreviations like "SBI").

use smishing_types::{Country, Sector};
use std::sync::OnceLock;

/// One brand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Brand {
    /// Canonical name, as the paper's Table 12 prints it.
    pub name: &'static str,
    /// Business sector.
    pub sector: Sector,
    /// Primary market(s).
    pub countries: &'static [Country],
    /// Surface forms the message may use (lowercase, pre-normalization).
    pub aliases: &'static [&'static str],
    /// Whether the brand is global (targets any country).
    pub global: bool,
}

use Country as C;
use Sector as S;

const fn b(
    name: &'static str,
    sector: Sector,
    countries: &'static [Country],
    aliases: &'static [&'static str],
    global: bool,
) -> Brand {
    Brand {
        name,
        sector,
        countries,
        aliases,
        global,
    }
}

/// The catalog. Order within a sector roughly follows Table 12 prominence.
pub const BRANDS: &[Brand] = &[
    // ---- Banking: India (SBI tops Table 12) ----
    b(
        "State Bank of India",
        S::Banking,
        &[C::India],
        &["sbi", "state bank", "sbi bank", "sbi yono"],
        false,
    ),
    b(
        "PayTM",
        S::Banking,
        &[C::India],
        &["paytm", "paytm kyc"],
        false,
    ),
    b(
        "HDFC Bank",
        S::Banking,
        &[C::India],
        &["hdfc", "hdfc bank", "hdfc netbanking"],
        false,
    ),
    b(
        "ICICI Bank",
        S::Banking,
        &[C::India],
        &["icici", "icici bank"],
        false,
    ),
    b(
        "Axis Bank",
        S::Banking,
        &[C::India],
        &["axis bank", "axis"],
        false,
    ),
    b(
        "Punjab National Bank",
        S::Banking,
        &[C::India],
        &["pnb", "punjab national bank"],
        false,
    ),
    // ---- Banking: Europe ----
    b(
        "Santander",
        S::Banking,
        &[C::Spain, C::UnitedKingdom, C::Brazil, C::Portugal],
        &["santander"],
        false,
    ),
    b(
        "Rabobank",
        S::Banking,
        &[C::Netherlands],
        &["rabobank", "rabo"],
        false,
    ),
    b("BBVA", S::Banking, &[C::Spain, C::Mexico], &["bbva"], false),
    b(
        "CaixaBank",
        S::Banking,
        &[C::Spain, C::Portugal],
        &["caixabank", "caixa", "la caixa"],
        false,
    ),
    b(
        "ING",
        S::Banking,
        &[C::Netherlands, C::Belgium, C::Germany],
        &["ing", "ing bank"],
        false,
    ),
    b(
        "ABN AMRO",
        S::Banking,
        &[C::Netherlands],
        &["abn amro", "abn"],
        false,
    ),
    b(
        "Barclays",
        S::Banking,
        &[C::UnitedKingdom],
        &["barclays"],
        false,
    ),
    b(
        "HSBC",
        S::Banking,
        &[C::UnitedKingdom, C::HongKong],
        &["hsbc"],
        false,
    ),
    b(
        "Lloyds Bank",
        S::Banking,
        &[C::UnitedKingdom],
        &["lloyds", "lloyds bank"],
        false,
    ),
    b(
        "NatWest",
        S::Banking,
        &[C::UnitedKingdom],
        &["natwest"],
        false,
    ),
    b("Monzo", S::Banking, &[C::UnitedKingdom], &["monzo"], false),
    b(
        "Revolut",
        S::Banking,
        &[C::UnitedKingdom, C::Ireland],
        &["revolut"],
        false,
    ),
    b(
        "BNP Paribas",
        S::Banking,
        &[C::France],
        &["bnp", "bnp paribas"],
        false,
    ),
    b(
        "Credit Agricole",
        S::Banking,
        &[C::France],
        &["credit agricole", "crédit agricole"],
        false,
    ),
    b(
        "Societe Generale",
        S::Banking,
        &[C::France],
        &["societe generale", "société générale"],
        false,
    ),
    b(
        "Deutsche Bank",
        S::Banking,
        &[C::Germany],
        &["deutsche bank"],
        false,
    ),
    b(
        "Commerzbank",
        S::Banking,
        &[C::Germany],
        &["commerzbank"],
        false,
    ),
    b(
        "Sparkasse",
        S::Banking,
        &[C::Germany],
        &["sparkasse"],
        false,
    ),
    b("UniCredit", S::Banking, &[C::Italy], &["unicredit"], false),
    b(
        "Intesa Sanpaolo",
        S::Banking,
        &[C::Italy],
        &["intesa", "intesa sanpaolo"],
        false,
    ),
    b("KBC", S::Banking, &[C::Belgium], &["kbc"], false),
    b("Belfius", S::Banking, &[C::Belgium], &["belfius"], false),
    // ---- Banking: Americas / APAC ----
    b(
        "Chase",
        S::Banking,
        &[C::UnitedStates],
        &["chase", "jpmorgan chase"],
        false,
    ),
    b(
        "Bank of America",
        S::Banking,
        &[C::UnitedStates],
        &["bank of america", "bofa"],
        false,
    ),
    b(
        "Wells Fargo",
        S::Banking,
        &[C::UnitedStates],
        &["wells fargo"],
        false,
    ),
    b(
        "Citibank",
        S::Banking,
        &[C::UnitedStates],
        &["citi", "citibank"],
        false,
    ),
    b("Zelle", S::Banking, &[C::UnitedStates], &["zelle"], false),
    b(
        "Commonwealth Bank",
        S::Banking,
        &[C::Australia],
        &["commbank", "commonwealth bank"],
        false,
    ),
    b(
        "ANZ",
        S::Banking,
        &[C::Australia, C::NewZealand],
        &["anz"],
        false,
    ),
    b("Westpac", S::Banking, &[C::Australia], &["westpac"], false),
    b("Maybank", S::Banking, &[C::Malaysia], &["maybank"], false),
    b(
        "Bank Mandiri",
        S::Banking,
        &[C::Indonesia],
        &["mandiri", "bank mandiri"],
        false,
    ),
    b(
        "BCA",
        S::Banking,
        &[C::Indonesia],
        &["bca", "bank central asia"],
        false,
    ),
    b("PayPal", S::Banking, &[C::UnitedStates], &["paypal"], true),
    b(
        "Royal Bank of Canada",
        S::Banking,
        &[C::Canada],
        &["rbc", "royal bank"],
        false,
    ),
    b(
        "TD Bank",
        S::Banking,
        &[C::Canada],
        &["td bank", "td canada"],
        false,
    ),
    b("MUFG", S::Banking, &[C::Japan], &["mufg", "三菱ufj"], false),
    b(
        "Ziraat Bankasi",
        S::Banking,
        &[C::Turkey],
        &["ziraat", "ziraat bankasi"],
        false,
    ),
    b(
        "BDO Unibank",
        S::Banking,
        &[C::Philippines],
        &["bdo", "bdo unibank"],
        false,
    ),
    b(
        "M-PESA",
        S::Banking,
        &[C::Kenya],
        &["m-pesa", "mpesa"],
        false,
    ),
    b(
        "GTBank",
        S::Banking,
        &[C::Nigeria],
        &["gtbank", "gtb"],
        false,
    ),
    b(
        "Ceska Sporitelna",
        S::Banking,
        &[C::Czechia],
        &["ceska sporitelna", "česká spořitelna"],
        false,
    ),
    b(
        "Banca Transilvania",
        S::Banking,
        &[C::Romania],
        &["banca transilvania", "bt pay"],
        false,
    ),
    b(
        "OTP Bank",
        S::Banking,
        &[C::Hungary],
        &["otp", "otp bank"],
        false,
    ),
    b(
        "PrivatBank",
        S::Banking,
        &[C::Ukraine],
        &["privatbank", "privat24"],
        false,
    ),
    b("QNB", S::Banking, &[C::Qatar], &["qnb"], false),
    b(
        "Bank of Ceylon",
        S::Banking,
        &[C::SriLanka],
        &["bank of ceylon", "boc"],
        false,
    ),
    b(
        "GCB Bank",
        S::Banking,
        &[C::Ghana],
        &["gcb", "gcb bank"],
        false,
    ),
    b("DBS", S::Banking, &[C::Singapore], &["dbs", "posb"], false),
    b("BNZ", S::Banking, &[C::NewZealand], &["bnz"], false),
    b(
        "FNB",
        S::Banking,
        &[C::SouthAfrica],
        &["fnb", "first national bank"],
        false,
    ),
    b(
        "Kiwibank",
        S::Banking,
        &[C::NewZealand],
        &["kiwibank"],
        false,
    ),
    // ---- Delivery ----
    b(
        "USPS",
        S::Delivery,
        &[C::UnitedStates],
        &["usps", "us postal"],
        false,
    ),
    b("Correos", S::Delivery, &[C::Spain], &["correos"], false),
    b(
        "Royal Mail",
        S::Delivery,
        &[C::UnitedKingdom],
        &["royal mail", "royalmail"],
        false,
    ),
    b(
        "Evri",
        S::Delivery,
        &[C::UnitedKingdom],
        &["evri", "hermes"],
        false,
    ),
    b("DHL", S::Delivery, &[C::Germany], &["dhl"], true),
    b(
        "DPD",
        S::Delivery,
        &[C::UnitedKingdom, C::Germany, C::France],
        &["dpd"],
        false,
    ),
    b(
        "FedEx",
        S::Delivery,
        &[C::UnitedStates, C::India],
        &["fedex"],
        true,
    ),
    b("UPS", S::Delivery, &[C::UnitedStates], &["ups"], true),
    b("PostNL", S::Delivery, &[C::Netherlands], &["postnl"], false),
    b("bpost", S::Delivery, &[C::Belgium], &["bpost"], false),
    b(
        "La Poste",
        S::Delivery,
        &[C::France],
        &["la poste", "laposte", "colissimo"],
        false,
    ),
    b(
        "Chronopost",
        S::Delivery,
        &[C::France],
        &["chronopost"],
        false,
    ),
    b(
        "Australia Post",
        S::Delivery,
        &[C::Australia],
        &["auspost", "australia post"],
        false,
    ),
    b(
        "Canada Post",
        S::Delivery,
        &[C::Canada],
        &["canada post"],
        false,
    ),
    b(
        "Japan Post",
        S::Delivery,
        &[C::Japan],
        &["japan post", "日本郵便"],
        false,
    ),
    b(
        "Ceska Posta",
        S::Delivery,
        &[C::Czechia],
        &["ceska posta", "česká pošta"],
        false,
    ),
    b(
        "PostNord",
        S::Delivery,
        &[C::Sweden, C::Denmark],
        &["postnord"],
        false,
    ),
    b(
        "India Post",
        S::Delivery,
        &[C::India],
        &["india post"],
        false,
    ),
    // ---- Government ----
    b(
        "IRS",
        S::Government,
        &[C::UnitedStates],
        &["irs", "internal revenue service"],
        false,
    ),
    b(
        "HMRC",
        S::Government,
        &[C::UnitedKingdom],
        &["hmrc", "hm revenue"],
        false,
    ),
    b("DVLA", S::Government, &[C::UnitedKingdom], &["dvla"], false),
    b(
        "GOV.UK",
        S::Government,
        &[C::UnitedKingdom],
        &["gov.uk", "govuk"],
        false,
    ),
    b(
        "E-ZPass",
        S::Government,
        &[C::UnitedStates],
        &["e-zpass", "ezpass", "ez pass"],
        false,
    ),
    b(
        "Agencia Tributaria",
        S::Government,
        &[C::Spain],
        &["agencia tributaria", "aeat"],
        false,
    ),
    b(
        "Belastingdienst",
        S::Government,
        &[C::Netherlands],
        &["belastingdienst"],
        false,
    ),
    b(
        "DGFiP",
        S::Government,
        &[C::France],
        &["impots.gouv", "dgfip", "impots"],
        false,
    ),
    b(
        "CRA",
        S::Government,
        &[C::Canada],
        &["cra", "canada revenue"],
        false,
    ),
    b(
        "ATO",
        S::Government,
        &[C::Australia],
        &["ato", "australian taxation"],
        false,
    ),
    b("myGov", S::Government, &[C::Australia], &["mygov"], false),
    b(
        "Income Tax Dept",
        S::Government,
        &[C::India],
        &["income tax", "incometax"],
        false,
    ),
    // ---- Telecom ----
    b(
        "Vodafone",
        S::Telecom,
        &[C::UnitedKingdom, C::India, C::Spain, C::Germany],
        &["vodafone", "vodafone idea"],
        false,
    ),
    b(
        "O2",
        S::Telecom,
        &[C::UnitedKingdom, C::Germany],
        &["o2"],
        false,
    ),
    b("EE", S::Telecom, &[C::UnitedKingdom], &["ee"], false),
    b(
        "Three",
        S::Telecom,
        &[C::UnitedKingdom],
        &["three", "three uk"],
        false,
    ),
    b(
        "T-Mobile",
        S::Telecom,
        &[C::UnitedStates, C::Netherlands],
        &["t-mobile", "tmobile"],
        false,
    ),
    b(
        "Verizon",
        S::Telecom,
        &[C::UnitedStates],
        &["verizon"],
        false,
    ),
    b(
        "AT&T",
        S::Telecom,
        &[C::UnitedStates],
        &["at&t", "att"],
        false,
    ),
    b(
        "Orange",
        S::Telecom,
        &[C::France, C::Spain],
        &["orange"],
        false,
    ),
    b("SFR", S::Telecom, &[C::France], &["sfr"], false),
    b("KPN", S::Telecom, &[C::Netherlands], &["kpn"], false),
    b("Telstra", S::Telecom, &[C::Australia], &["telstra"], false),
    b("Airtel", S::Telecom, &[C::India], &["airtel"], false),
    b(
        "Jio",
        S::Telecom,
        &[C::India],
        &["jio", "reliance jio"],
        false,
    ),
    b("Movistar", S::Telecom, &[C::Spain], &["movistar"], false),
    b(
        "China Telecom",
        S::Telecom,
        &[C::China],
        &["china telecom", "china-telecom"],
        false,
    ),
    // ---- Tech / streaming / marketplaces (Table 12 "Others") ----
    b(
        "Amazon",
        S::Tech,
        &[C::UnitedStates, C::UnitedKingdom, C::Japan],
        &["amazon", "amzn"],
        true,
    ),
    b(
        "Netflix",
        S::Tech,
        &[C::UnitedStates],
        &["netflix", "nflx"],
        true,
    ),
    b(
        "Apple",
        S::Tech,
        &[C::UnitedStates],
        &["apple", "icloud", "apple id"],
        true,
    ),
    b(
        "Google",
        S::Tech,
        &[C::UnitedStates],
        &["google", "gmail"],
        true,
    ),
    b(
        "Facebook",
        S::Tech,
        &[C::UnitedStates],
        &["facebook", "fb"],
        true,
    ),
    b(
        "Instagram",
        S::Tech,
        &[C::UnitedStates],
        &["instagram"],
        true,
    ),
    b("WhatsApp", S::Tech, &[C::UnitedStates], &["whatsapp"], true),
    b("Telegram", S::Tech, &[C::UnitedStates], &["telegram"], true),
    b(
        "Microsoft",
        S::Tech,
        &[C::UnitedStates],
        &["microsoft", "outlook"],
        true,
    ),
    // ---- Crypto ----
    b("Binance", S::Crypto, &[C::UnitedStates], &["binance"], true),
    b(
        "Coinbase",
        S::Crypto,
        &[C::UnitedStates],
        &["coinbase"],
        true,
    ),
    b(
        "Ledger",
        S::Crypto,
        &[C::France],
        &["ledger", "ledger wallet"],
        true,
    ),
    b(
        "MetaMask",
        S::Crypto,
        &[C::UnitedStates],
        &["metamask"],
        true,
    ),
    b(
        "Trust Wallet",
        S::Crypto,
        &[C::UnitedStates],
        &["trust wallet"],
        true,
    ),
];

/// Catalog queries.
#[derive(Debug)]
pub struct BrandCatalog {
    /// Normalized alias → brand index. Aliases are normalized with
    /// [`crate::normalize::normalize_token`] per word.
    alias_index: Vec<(String, usize)>,
}

impl BrandCatalog {
    /// The process-wide catalog.
    pub fn global() -> &'static BrandCatalog {
        static CAT: OnceLock<BrandCatalog> = OnceLock::new();
        CAT.get_or_init(|| {
            let mut alias_index = Vec::new();
            for (i, brand) in BRANDS.iter().enumerate() {
                for alias in brand.aliases {
                    let norm = crate::normalize::normalize_text(alias);
                    alias_index.push((norm, i));
                }
                alias_index.push((crate::normalize::normalize_text(brand.name), i));
            }
            // Longer aliases first so multi-word matches win.
            alias_index.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
            BrandCatalog { alias_index }
        })
    }

    /// All brands.
    pub fn brands(&self) -> &'static [Brand] {
        BRANDS
    }

    /// Look up a brand by canonical name.
    pub fn by_name(&self, name: &str) -> Option<&'static Brand> {
        BRANDS.iter().find(|b| b.name.eq_ignore_ascii_case(name))
    }

    /// The normalized alias index (longest first).
    pub(crate) fn alias_index(&self) -> &[(String, usize)] {
        &self.alias_index
    }

    /// Brands of a sector.
    pub fn of_sector(&self, sector: Sector) -> Vec<&'static Brand> {
        BRANDS.iter().filter(|b| b.sector == sector).collect()
    }

    /// Brands plausible for a recipient country: home-market brands plus
    /// globals.
    pub fn for_country(&self, country: Country) -> Vec<&'static Brand> {
        BRANDS
            .iter()
            .filter(|b| b.global || b.countries.contains(&country))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_large() {
        assert!(BRANDS.len() >= 80, "{} brands", BRANDS.len());
    }

    #[test]
    fn table12_brands_present() {
        let cat = BrandCatalog::global();
        for name in [
            "State Bank of India",
            "PayTM",
            "HDFC Bank",
            "Santander",
            "Amazon",
            "IRS",
            "Rabobank",
            "BBVA",
            "Netflix",
            "CaixaBank",
        ] {
            assert!(cat.by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn sector_queries() {
        let cat = BrandCatalog::global();
        let banks = cat.of_sector(Sector::Banking);
        assert!(banks.len() >= 30, "{} banks", banks.len());
        let delivery = cat.of_sector(Sector::Delivery);
        assert!(delivery.len() >= 15, "{}", delivery.len());
    }

    #[test]
    fn country_filter_includes_globals() {
        let cat = BrandCatalog::global();
        let nl = cat.for_country(Country::Netherlands);
        let names: Vec<_> = nl.iter().map(|b| b.name).collect();
        assert!(names.contains(&"Rabobank"));
        assert!(names.contains(&"PostNL"));
        assert!(names.contains(&"Netflix"), "global brands everywhere");
        assert!(!names.contains(&"State Bank of India"));
    }

    #[test]
    fn unique_brand_names() {
        let mut names: Vec<_> = BRANDS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BRANDS.len());
    }

    #[test]
    fn every_brand_has_aliases_and_countries() {
        for b in BRANDS {
            assert!(!b.aliases.is_empty(), "{}", b.name);
            assert!(!b.countries.is_empty(), "{}", b.name);
        }
    }
}
