//! Legitimate ("ham") SMS templates.
//!
//! §7.2 recommends building detection models on the released dataset;
//! §2 complains that prior work trains on decade-old spam/ham corpora. A
//! detector needs negatives, so this module carries the benign traffic a
//! modern handset actually receives: OTPs, genuine delivery notices,
//! appointment reminders, personal chatter. The `smishing-detect` crate
//! trains against these.

use crate::templates::{render_pattern, Fills};
use rand::Rng;
use smishing_types::{Language, Lure, LureSet, ScamType};

/// A benign message category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HamKind {
    /// One-time passcodes from real services.
    Otp,
    /// Genuine delivery notifications (no fee, no link pressure).
    Delivery,
    /// Bank notifications (balance alerts, card-used notices).
    Banking,
    /// Appointment / booking reminders.
    Appointment,
    /// Personal conversation.
    Personal,
    /// Legitimate marketing the user opted into.
    Marketing,
}

impl HamKind {
    /// All kinds.
    pub const ALL: &'static [HamKind] = &[
        HamKind::Otp,
        HamKind::Delivery,
        HamKind::Banking,
        HamKind::Appointment,
        HamKind::Personal,
        HamKind::Marketing,
    ];
}

/// Ham templates (English; the detector study mirrors the paper's
/// English-centric evaluation).
pub const HAM_TEMPLATES: &[(HamKind, &str)] = &[
    // OTPs — note: legitimate OTPs never ask you to call back.
    (HamKind::Otp, "{code} is your verification code. It expires in 10 minutes. Do not share it with anyone."),
    (HamKind::Otp, "Your one-time passcode is {code}. If you didn't request this, you can ignore this message."),
    (HamKind::Otp, "Use code {code} to sign in. We will never ask you for this code."),
    // Delivery — tracking info without payment demands.
    (HamKind::Delivery, "Your parcel {tracking} has been dispatched and will arrive tomorrow between 9am and 1pm."),
    (HamKind::Delivery, "Good news! Your order was delivered today at 14:02. Thanks for shopping with us."),
    (HamKind::Delivery, "Driver update: your package {tracking} is 3 stops away."),
    // Banking — informational, no links demanding action.
    (HamKind::Banking, "You spent {amount} at TESCO STORES on your card ending 4821. Your new balance is available in the app."),
    (HamKind::Banking, "Direct debit of {amount} to GREEN ENERGY CO will be taken on 28 Aug."),
    (HamKind::Banking, "Your salary of {amount} has been credited to your account."),
    // Appointments.
    (HamKind::Appointment, "Reminder: you have a dental appointment on Thursday at 15:30. Reply C to confirm or R to reschedule."),
    (HamKind::Appointment, "Your table for 2 at Nonna's is confirmed for Friday 19:00. See you then!"),
    (HamKind::Appointment, "GP surgery: your repeat prescription is ready for collection."),
    // Personal.
    (HamKind::Personal, "Running 10 mins late, order me a flat white please x"),
    (HamKind::Personal, "Happy birthday!! Hope you have a lovely day, see you Saturday"),
    (HamKind::Personal, "Did you feed the cat before you left?"),
    (HamKind::Personal, "Train's delayed again, don't wait for me for dinner"),
    // Opted-in marketing (distinct from scam/spam: no prize bait).
    (HamKind::Marketing, "Your loyalty statement is ready: you earned 240 points in July. Manage preferences in the app."),
    (HamKind::Marketing, "Flash reminder: your basket is still waiting. Items are reserved until midnight."),
];

/// A generated ham message with its kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HamMessage {
    /// Category.
    pub kind: HamKind,
    /// The text.
    pub text: String,
}

/// Generate `n` ham messages (deterministic under the RNG).
pub fn generate_ham<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<HamMessage> {
    (0..n)
        .map(|_| {
            let (kind, pattern) = HAM_TEMPLATES[rng.gen_range(0..HAM_TEMPLATES.len())];
            let fills = Fills {
                brand: None,
                url: None,
                name: None,
                amount: Some(format!("£{:.2}", rng.gen_range(2.0..900.0))),
                tracking: Some(format!("JD{:010}", rng.gen_range(0..10_000_000_000u64))),
                code: Some(format!("{:06}", rng.gen_range(0..1_000_000u32))),
                number: None,
            };
            HamMessage {
                kind,
                text: render_pattern(pattern, &fills),
            }
        })
        .collect()
}

/// Ground-truth-shaped annotation for a ham message: no scam, no lures.
/// Useful when mixing ham into annotated corpora.
pub fn ham_truth_labels() -> (Option<ScamType>, LureSet, Option<Language>) {
    let _ = Lure::ALL; // (kept for symmetry with the scam taxonomy docs)
    (None, LureSet::EMPTY, Some(Language::English))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_filled_messages() {
        let mut rng = StdRng::seed_from_u64(1);
        let ham = generate_ham(200, &mut rng);
        assert_eq!(ham.len(), 200);
        for m in &ham {
            assert!(!m.text.contains('{'), "{}", m.text);
            assert!(!m.text.is_empty());
        }
    }

    #[test]
    fn all_kinds_appear() {
        let mut rng = StdRng::seed_from_u64(2);
        let ham = generate_ham(500, &mut rng);
        for kind in HamKind::ALL {
            assert!(ham.iter().any(|m| m.kind == *kind), "{kind:?} missing");
        }
    }

    #[test]
    fn ham_carries_no_scam_cues_the_detector_relies_on() {
        // Ham may mention money and parcels, but never the smishing core:
        // a URL plus an action demand.
        let mut rng = StdRng::seed_from_u64(3);
        for m in generate_ham(300, &mut rng) {
            assert!(!m.text.contains("http"), "{}", m.text);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_ham(50, &mut StdRng::seed_from_u64(9));
        let b = generate_ham(50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
