//! Property-based tests for the statistics primitives: bounds, identities
//! and invariants that must hold on *arbitrary* inputs, not just the
//! curated fixtures the unit tests use.

use proptest::prelude::*;
use smishing_stats::quantile::{five_number_summary, quantile};
use smishing_stats::{
    cohen_kappa, ks_two_sample, mean, median, reservoir_sample, stddev, Counter, Histogram,
    UnionFind,
};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, 1..max_len)
}

proptest! {
    // ---- Cohen's kappa ----

    #[test]
    fn kappa_is_bounded(labels in prop::collection::vec(0u8..5, 2..60),
                        flips in prop::collection::vec(0u8..5, 2..60)) {
        let n = labels.len().min(flips.len());
        let a = &labels[..n];
        let b = &flips[..n];
        if let Some(k) = cohen_kappa(a, b) {
            prop_assert!((-1.0..=1.0 + 1e-9).contains(&k), "kappa {k}");
        }
    }

    #[test]
    fn kappa_of_self_agreement_is_perfect(labels in prop::collection::vec(0u8..4, 2..60)) {
        // Degenerate single-label vectors have no chance-corrected kappa.
        if labels.iter().any(|&l| l != labels[0]) {
            let k = cohen_kappa(&labels, &labels).unwrap();
            prop_assert!((k - 1.0).abs() < 1e-9, "self kappa {k}");
        }
    }

    #[test]
    fn kappa_is_symmetric(a in prop::collection::vec(0u8..4, 2..50),
                          b in prop::collection::vec(0u8..4, 2..50)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        match (cohen_kappa(a, b), cohen_kappa(b, a)) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}"),
            (None, None) => {}
            (x, y) => prop_assert!(false, "asymmetric None: {x:?} vs {y:?}"),
        }
    }

    // ---- Kolmogorov–Smirnov ----

    #[test]
    fn ks_statistic_and_p_are_bounded(a in finite_vec(80), b in finite_vec(80)) {
        let r = ks_two_sample(&a, &b).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.statistic), "D {}", r.statistic);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.p_value), "p {}", r.p_value);
    }

    #[test]
    fn ks_identical_samples_have_zero_distance(a in finite_vec(80)) {
        let r = ks_two_sample(&a, &a).unwrap();
        prop_assert!(r.statistic.abs() < 1e-12, "D {}", r.statistic);
        prop_assert!(r.p_value > 0.99, "p {}", r.p_value);
    }

    #[test]
    fn ks_disjoint_samples_have_full_distance(a in finite_vec(40)) {
        let shift = 1.0e7;
        let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        prop_assert!((r.statistic - 1.0).abs() < 1e-12, "D {}", r.statistic);
    }

    // ---- Quantiles ----

    #[test]
    fn quantiles_are_monotone_and_within_range(s in finite_vec(100),
                                               qs in prop::collection::vec(0.0..=1.0f64, 2..6)) {
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = s.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = quantile(&s, q).unwrap();
            prop_assert!(v >= prev - 1e-9, "monotone violated at q={q}");
            prop_assert!((lo - 1e-9..=hi + 1e-9).contains(&v), "{v} outside [{lo},{hi}]");
            prev = v;
        }
    }

    #[test]
    fn five_numbers_are_ordered(s in finite_vec(100)) {
        let (min, q1, med, q3, max) = five_number_summary(&s).unwrap();
        prop_assert!(min <= q1 + 1e-9 && q1 <= med + 1e-9 && med <= q3 + 1e-9 && q3 <= max + 1e-9);
        prop_assert!((median(&s).unwrap() - med).abs() < 1e-12);
    }

    #[test]
    fn mean_lies_within_range_and_stddev_nonnegative(s in finite_vec(100)) {
        let m = mean(&s).unwrap();
        let lo = s.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((lo - 1e-6..=hi + 1e-6).contains(&m));
        if let Some(sd) = stddev(&s) {
            prop_assert!(sd >= 0.0);
        }
    }

    // ---- Counter ----

    #[test]
    fn counter_total_and_topk_are_consistent(keys in prop::collection::vec(0u16..50, 0..200),
                                             k in 1usize..12) {
        let c: Counter<u16> = keys.iter().copied().collect();
        prop_assert_eq!(c.total() as usize, keys.len());
        let top = c.top_k(k);
        prop_assert!(top.len() <= k.min(c.distinct()));
        // Sorted descending by count.
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        // The head is never smaller than any unreturned tail count.
        if let Some(last) = top.last() {
            if top.len() == k {
                for (key, n) in c.iter() {
                    if !top.iter().any(|(tk, _)| tk == key) {
                        prop_assert!(n <= last.1);
                    }
                }
            }
        }
        // Shares sum to 1 over all keys.
        if !c.is_empty() {
            let sum: f64 = c.iter().map(|(key, _)| c.share(key)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "{sum}");
        }
    }

    #[test]
    fn counter_merge_adds(a in prop::collection::vec(0u16..20, 0..100),
                          b in prop::collection::vec(0u16..20, 0..100)) {
        let ca: Counter<u16> = a.iter().copied().collect();
        let cb: Counter<u16> = b.iter().copied().collect();
        let mut merged = ca.clone();
        merged.merge(&cb);
        prop_assert_eq!(merged.total(), ca.total() + cb.total());
        for key in 0u16..20 {
            prop_assert_eq!(merged.get(&key), ca.get(&key) + cb.get(&key));
        }
    }

    // ---- Histogram ----

    #[test]
    fn histogram_conserves_mass(values in finite_vec(200)) {
        let mut h = Histogram::new(-1.0e6, 1.0e6, 32);
        for &v in &values {
            h.add(v);
        }
        let (below, above) = h.out_of_range();
        let binned: u64 = h.bins().iter().sum();
        prop_assert_eq!(binned + below + above, values.len() as u64);
        prop_assert_eq!(h.count(), binned);
    }

    // ---- Union-find ----

    #[test]
    fn unionfind_components_decrease_by_successful_unions(
        n in 2usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let mut uf = UnionFind::new(n);
        let mut merges = 0;
        for &(a, b) in &edges {
            let (a, b) = (a % n, b % n);
            if uf.union(a, b) {
                merges += 1;
            }
            prop_assert!(uf.connected(a, b));
        }
        prop_assert_eq!(uf.components(), n - merges);
        // clusters() is a partition into compacted ids: same id exactly
        // when connected, ids are dense 0..components, first-appearance
        // ordered (element 0 always gets id 0).
        let ids = uf.clusters();
        prop_assert_eq!(ids.len(), n);
        prop_assert_eq!(ids[0], 0);
        let max_id = ids.iter().copied().max().unwrap();
        prop_assert_eq!(max_id + 1, uf.components());
        for i in 0..n {
            for j in (i + 1)..n {
                prop_assert_eq!(ids[i] == ids[j], uf.connected(i, j));
            }
        }
    }

    // ---- Reservoir sampling ----

    #[test]
    fn reservoir_sample_is_a_subset_of_the_right_size(items in prop::collection::vec(0u32..1000, 0..120),
                                                      k in 0usize..20,
                                                      seed in 0u64..1000) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = reservoir_sample(items.iter().copied(), k, &mut rng);
        prop_assert_eq!(sample.len(), k.min(items.len()));
        for s in &sample {
            prop_assert!(items.contains(s));
        }
    }
}
