//! Quantiles and medians (Fig. 2 reports per-weekday medians like
//! "Mon – 12:38:00").
//!
//! Uses the linear-interpolation definition (type 7 in the R taxonomy),
//! which is also NumPy's default — what the paper's plotting code would
//! have computed.

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation.
/// Returns `None` on an empty sample or out-of-range `q`.
pub fn quantile(sample: &[f64], q: f64) -> Option<f64> {
    if sample.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut s = sample.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    Some(quantile_sorted(&s, q))
}

/// Like [`quantile`] but assumes `sorted` is already ascending (no checks).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The median of a sample. `None` on empty input.
pub fn median(sample: &[f64]) -> Option<f64> {
    quantile(sample, 0.5)
}

/// The five-number summary used by boxplots: (min, q1, median, q3, max).
pub fn five_number_summary(sample: &[f64]) -> Option<(f64, f64, f64, f64, f64)> {
    if sample.is_empty() {
        return None;
    }
    let mut s = sample.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    Some((
        s[0],
        quantile_sorted(&s, 0.25),
        quantile_sorted(&s, 0.5),
        quantile_sorted(&s, 0.75),
        s[s.len() - 1],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[7.0]), Some(7.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn quartiles_interpolate() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.25), Some(1.75));
        assert_eq!(quantile(&s, 0.75), Some(3.25));
        assert_eq!(quantile(&s, 0.0), Some(1.0));
        assert_eq!(quantile(&s, 1.0), Some(4.0));
    }

    #[test]
    fn out_of_range_q() {
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
    }

    #[test]
    fn five_numbers() {
        let (min, q1, med, q3, max) = five_number_summary(&[5.0, 1.0, 4.0, 2.0, 3.0]).unwrap();
        assert_eq!((min, q1, med, q3, max), (1.0, 2.0, 3.0, 4.0, 5.0));
    }

    #[test]
    fn unsorted_input_is_fine() {
        assert_eq!(quantile(&[9.0, 1.0, 5.0], 0.5), Some(5.0));
    }
}
