//! Seeded sampling.
//!
//! The paper draws a 150-message random subset for the IRR study (§3.4) and
//! a 200-report sample for the active case study (§3.3.5). Reservoir
//! sampling with an explicit RNG keeps both draws reproducible.

use rand::Rng;

/// Uniform reservoir sample of `k` items from an iterator (Algorithm R).
///
/// Returns fewer than `k` items if the iterator is shorter. Order of the
/// returned items is the reservoir order (not the stream order).
pub fn reservoir_sample<T, I, R>(iter: I, k: usize, rng: &mut R) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng + ?Sized,
{
    if k == 0 {
        return Vec::new();
    }
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn short_stream_returns_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = reservoir_sample(0..3, 10, &mut rng);
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn exact_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = reservoir_sample(0..10_000, 150, &mut rng);
        assert_eq!(s.len(), 150);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 150, "no duplicates");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = reservoir_sample(0..1000, 20, &mut StdRng::seed_from_u64(42));
        let b = reservoir_sample(0..1000, 20, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = reservoir_sample(0..1000, 20, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c, "different seed should (overwhelmingly) differ");
    }

    #[test]
    fn roughly_uniform() {
        // Each of 100 items should be picked ~ (10/100) of the time over
        // many trials; bound loosely.
        let mut hits = [0u32; 100];
        for seed in 0..2000 {
            let mut rng = StdRng::seed_from_u64(seed);
            for v in reservoir_sample(0..100, 10, &mut rng) {
                hits[v as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!((100..320).contains(&h), "item {i} hit {h} times");
        }
    }

    #[test]
    fn k_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(reservoir_sample(0..100, 0, &mut rng).is_empty());
    }
}
