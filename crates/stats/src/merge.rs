//! Mergeable accumulator primitives for sharded streaming analysis.
//!
//! The streaming engine (`smishing-stream`) splits the report feed across
//! worker shards, each folding its slice into per-analysis accumulators,
//! and periodically merges shard states into one result that must equal the
//! batch computation exactly. Two primitives make that exactness possible:
//!
//! - [`RefCount`]: a multiset with *subtraction*, so a shard can retract a
//!   contribution when a later, lower-`post_id` duplicate displaces the
//!   record that produced it. [`RefCount::to_counter`] emits only keys with
//!   a non-zero count, so a fully retracted key leaves no trace — exactly
//!   as if it had never been counted.
//! - [`FirstClaim`]: "first writer wins" with retraction. Batch analyses
//!   repeatedly do `if seen.insert(key) { use this record }` while walking
//!   records in `post_id` order, so the *winning* record for a key is the
//!   one with the smallest `post_id`. `FirstClaim` keeps every live claim
//!   keyed by claimant id; the winner is always the minimum claimant, which
//!   makes `merge` order-independent and `sub` exact (the next-smallest
//!   claim takes over, even across shard boundaries).
//!
//! Both types obey merge laws (commutative, associative, identity on the
//! empty value) verified by property tests in `smishing-core`.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

use crate::Counter;

/// A multiset over hashable keys supporting exact retraction and merge.
#[derive(Debug, Clone)]
pub struct RefCount<K: Eq + Hash> {
    counts: HashMap<K, u64>,
}

impl<K: Eq + Hash> Default for RefCount<K> {
    fn default() -> Self {
        RefCount {
            counts: HashMap::new(),
        }
    }
}

impl<K: Eq + Hash + Clone + Ord> RefCount<K> {
    /// New empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one occurrence of `key`.
    pub fn add(&mut self, key: K) {
        self.add_n(key, 1);
    }

    /// Add `n` occurrences of `key`.
    pub fn add_n(&mut self, key: K, n: u64) {
        if n > 0 {
            *self.counts.entry(key).or_insert(0) += n;
        }
    }

    /// Retract one occurrence of `key`. Panics if the key's count is zero —
    /// a retraction without a matching addition is always an engine bug.
    pub fn sub(&mut self, key: &K) {
        let c = self
            .counts
            .get_mut(key)
            .unwrap_or_else(|| panic!("RefCount::sub on absent key"));
        *c -= 1;
        if *c == 0 {
            self.counts.remove(key);
        }
    }

    /// Count for one key (0 if absent).
    pub fn get(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct keys with a non-zero count.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total multiplicity across all keys.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Whether the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate over `(key, count)` pairs in unspecified order; counts are
    /// always non-zero.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }

    /// Absorb another multiset.
    pub fn merge(&mut self, other: RefCount<K>) {
        for (k, c) in other.counts {
            self.add_n(k, c);
        }
    }

    /// Snapshot into a plain [`Counter`] (only non-zero keys appear, so the
    /// result is identical to counting the surviving occurrences directly).
    pub fn to_counter(&self) -> Counter<K> {
        let mut c = Counter::new();
        for (k, n) in self.counts.iter() {
            c.add_n(k.clone(), *n);
        }
        c
    }
}

impl<K: Eq + Hash + Clone + Ord> FromIterator<K> for RefCount<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut rc = RefCount::new();
        for k in iter {
            rc.add(k);
        }
        rc
    }
}

/// First-writer-wins map with exact retraction and order-independent merge.
///
/// Each `(key, claimant, value)` triple records that the record with id
/// `claimant` would contribute `value` for `key`. The *winner* for a key is
/// the claim with the smallest claimant id — matching batch code that walks
/// records in ascending `post_id` order and keeps the first per key.
#[derive(Debug, Clone)]
pub struct FirstClaim<K: Eq + Hash, V> {
    claims: HashMap<K, BTreeMap<u64, V>>,
}

impl<K: Eq + Hash, V> Default for FirstClaim<K, V> {
    fn default() -> Self {
        FirstClaim {
            claims: HashMap::new(),
        }
    }
}

impl<K: Eq + Hash + Clone + Ord, V> FirstClaim<K, V> {
    /// New empty claim map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a claim. Panics on a duplicate `(key, claimant)` pair — a
    /// claimant (post id) claims any key at most once.
    pub fn add(&mut self, key: K, claimant: u64, value: V) {
        let prev = self.claims.entry(key).or_default().insert(claimant, value);
        assert!(
            prev.is_none(),
            "FirstClaim::add: duplicate claimant {claimant}"
        );
    }

    /// Retract a claim. Panics if the claim does not exist.
    pub fn sub(&mut self, key: &K, claimant: u64) {
        let per_key = self
            .claims
            .get_mut(key)
            .unwrap_or_else(|| panic!("FirstClaim::sub on absent key"));
        per_key
            .remove(&claimant)
            .unwrap_or_else(|| panic!("FirstClaim::sub on absent claimant {claimant}"));
        if per_key.is_empty() {
            self.claims.remove(key);
        }
    }

    /// The winning claim for `key`, if any: `(claimant, value)` with the
    /// smallest claimant id.
    pub fn winner(&self, key: &K) -> Option<(u64, &V)> {
        self.claims
            .get(key)
            .and_then(|m| m.iter().next())
            .map(|(&c, v)| (c, v))
    }

    /// Iterate winners over all keys in unspecified key order.
    pub fn winners(&self) -> impl Iterator<Item = (&K, u64, &V)> {
        self.claims
            .iter()
            .filter_map(|(k, m)| m.iter().next().map(|(&c, v)| (k, c, v)))
    }

    /// Winners sorted by claimant id ascending — the order batch code
    /// encounters them when walking records by `post_id`.
    pub fn winners_by_claimant(&self) -> Vec<(&K, u64, &V)> {
        let mut out: Vec<(&K, u64, &V)> = self.winners().collect();
        out.sort_by_key(|&(_, c, _)| c);
        out
    }

    /// Number of keys holding at least one live claim.
    pub fn len(&self) -> usize {
        self.claims.len()
    }

    /// Whether no claims are held.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }

    /// Absorb another claim map. Claim sets for shared keys are unioned, so
    /// the winner after merging is the global minimum claimant regardless
    /// of which shard saw it.
    pub fn merge(&mut self, other: FirstClaim<K, V>) {
        for (k, m) in other.claims {
            let per_key = self.claims.entry(k).or_default();
            for (c, v) in m {
                let prev = per_key.insert(c, v);
                assert!(prev.is_none(), "FirstClaim::merge: duplicate claimant {c}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refcount_add_sub_roundtrip() {
        let mut rc: RefCount<&str> = RefCount::new();
        rc.add("a");
        rc.add("a");
        rc.add("b");
        assert_eq!(rc.get(&"a"), 2);
        rc.sub(&"a");
        rc.sub(&"b");
        assert_eq!(rc.get(&"a"), 1);
        // Fully retracted keys vanish from the counter snapshot.
        let c = rc.to_counter();
        assert_eq!(c.distinct(), 1);
        assert_eq!(c.get(&"b"), 0);
        assert_eq!(rc.total(), 1);
    }

    #[test]
    #[should_panic(expected = "absent key")]
    fn refcount_oversub_panics() {
        let mut rc: RefCount<u8> = RefCount::new();
        rc.sub(&1);
    }

    #[test]
    fn refcount_merge_is_sum() {
        let mut a: RefCount<char> = ['x', 'y'].into_iter().collect();
        let b: RefCount<char> = ['y', 'z'].into_iter().collect();
        a.merge(b);
        assert_eq!(a.get(&'y'), 2);
        assert_eq!(a.distinct(), 3);
    }

    #[test]
    fn first_claim_min_claimant_wins() {
        let mut fc: FirstClaim<&str, u32> = FirstClaim::new();
        fc.add("d.com", 30, 300);
        fc.add("d.com", 10, 100);
        fc.add("d.com", 20, 200);
        assert_eq!(fc.winner(&"d.com"), Some((10, &100)));
        // Retract the winner: the next-smallest claim takes over.
        fc.sub(&"d.com", 10);
        assert_eq!(fc.winner(&"d.com"), Some((20, &200)));
        fc.sub(&"d.com", 20);
        fc.sub(&"d.com", 30);
        assert!(fc.is_empty());
    }

    #[test]
    fn first_claim_merge_resolves_cross_shard_winner() {
        let mut a: FirstClaim<&str, &str> = FirstClaim::new();
        a.add("d.com", 50, "shard-a");
        let mut b: FirstClaim<&str, &str> = FirstClaim::new();
        b.add("d.com", 7, "shard-b");
        b.add("e.org", 9, "shard-b");
        a.merge(b);
        assert_eq!(a.winner(&"d.com"), Some((7, &"shard-b")));
        assert_eq!(a.len(), 2);
        let by_claimant = a.winners_by_claimant();
        assert_eq!(by_claimant[0].1, 7);
        assert_eq!(by_claimant[1].1, 9);
    }

    #[test]
    #[should_panic(expected = "duplicate claimant")]
    fn first_claim_duplicate_claim_panics() {
        let mut fc: FirstClaim<u8, u8> = FirstClaim::new();
        fc.add(1, 5, 0);
        fc.add(1, 5, 1);
    }
}
