//! Fixed-bin histograms.
//!
//! Fig. 2 is rendered from hour-of-day densities per weekday; a fixed-bin
//! histogram over `[0, 86400)` seconds is the underlying structure.

/// A histogram over a fixed numeric range with equal-width bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Build a histogram over `[lo, hi)` with `n_bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `n_bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Histogram {
        assert!(n_bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record a value.
    pub fn add(&mut self, value: f64) {
        self.count += 1;
        if value < self.lo {
            self.underflow += 1;
            return;
        }
        if value >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((value - self.lo) / width) as usize;
        let idx = idx.min(self.bins.len() - 1); // guard FP edge
        self.bins[idx] += 1;
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total values recorded (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Values that fell below/above the range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Index of the fullest bin (first on ties).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            if c > self.bins[best] {
                best = i;
            }
        }
        best
    }

    /// Normalized densities summing to 1 over in-range values (all zeros if
    /// nothing in range).
    pub fn densities(&self) -> Vec<f64> {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins
            .iter()
            .map(|&c| c as f64 / in_range as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1] {
            h.add(v);
        }
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn centers_and_mode() {
        let mut h = Histogram::new(0.0, 24.0, 24);
        for _ in 0..5 {
            h.add(13.5);
        }
        h.add(2.0);
        assert_eq!(h.mode_bin(), 13);
        assert!((h.bin_center(13) - 13.5).abs() < 1e-12);
    }

    #[test]
    fn densities_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        let sum: f64 = h.densities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
