//! Frequency counting with deterministic top-k.
//!
//! Every "Top 10 ..." table in the paper (Tables 4–8, 11, 12, 14, 17) is a
//! frequency count followed by a top-k cut. [`Counter`] makes the tie-break
//! deterministic (count descending, then key ascending) so that repeated
//! runs and tests produce identical tables.

use std::collections::HashMap;
use std::hash::Hash;

/// A frequency counter over hashable keys.
#[derive(Debug, Clone)]
pub struct Counter<K: Eq + Hash> {
    counts: HashMap<K, u64>,
    total: u64,
}

impl<K: Eq + Hash> Default for Counter<K> {
    fn default() -> Self {
        Counter {
            counts: HashMap::new(),
            total: 0,
        }
    }
}

impl<K: Eq + Hash + Clone + Ord> Counter<K> {
    /// New empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one occurrence of `key`.
    pub fn add(&mut self, key: K) {
        self.add_n(key, 1);
    }

    /// Count `n` occurrences of `key`.
    pub fn add_n(&mut self, key: K, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// Total number of occurrences counted (with multiplicity).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count for a single key (0 if unseen).
    pub fn get(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Share of the total held by `key`, in `[0, 1]`; 0 when empty.
    pub fn share(&self, key: &K) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.get(key) as f64 / self.total as f64
        }
    }

    /// The `k` most frequent keys with their counts, sorted by count
    /// descending then key ascending (deterministic).
    pub fn top_k(&self, k: usize) -> Vec<(K, u64)> {
        let mut all = self.sorted();
        all.truncate(k);
        all
    }

    /// All (key, count) pairs sorted by count descending then key ascending.
    pub fn sorted(&self) -> Vec<(K, u64)> {
        let mut all: Vec<(K, u64)> = self.counts.iter().map(|(k, &c)| (k.clone(), c)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all
    }

    /// Iterate over raw entries (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &Counter<K>) {
        for (k, c) in other.counts.iter() {
            self.add_n(k.clone(), *c);
        }
    }

    /// Whether nothing has been counted.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

impl<K: Eq + Hash + Clone + Ord> FromIterator<K> for Counter<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut c = Counter::new();
        for k in iter {
            c.add(k);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_shares() {
        let c: Counter<&str> = ["a", "b", "a", "a", "c"].into_iter().collect();
        assert_eq!(c.total(), 5);
        assert_eq!(c.distinct(), 3);
        assert_eq!(c.get(&"a"), 3);
        assert_eq!(c.get(&"z"), 0);
        assert!((c.share(&"a") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn top_k_is_deterministic_on_ties() {
        let c: Counter<&str> = ["b", "a", "c", "a", "b", "c"].into_iter().collect();
        // All tied at 2 — must come back in key order.
        assert_eq!(c.top_k(3), vec![("a", 2), ("b", 2), ("c", 2)]);
        assert_eq!(c.top_k(2), vec![("a", 2), ("b", 2)]);
    }

    #[test]
    fn top_k_larger_than_population() {
        let c: Counter<u8> = [1u8, 1, 2].into_iter().collect();
        assert_eq!(c.top_k(10).len(), 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a: Counter<char> = ['x', 'y'].into_iter().collect();
        let b: Counter<char> = ['y', 'z'].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.get(&'y'), 2);
        assert_eq!(a.total(), 4);
        assert_eq!(a.distinct(), 3);
    }

    #[test]
    fn empty_counter() {
        let c: Counter<u32> = Counter::new();
        assert!(c.is_empty());
        assert_eq!(c.share(&1), 0.0);
        assert!(c.top_k(5).is_empty());
    }

    #[test]
    fn add_n_bulk() {
        let mut c = Counter::new();
        c.add_n("bit.ly", 1830);
        c.add_n("is.gd", 1023);
        assert_eq!(c.top_k(1), vec![("bit.ly", 1830)]);
    }
}
