//! Descriptive statistics (mean/variance) — §4.5 reports mean 39 and
//! median 4 certificates per domain.

/// Arithmetic mean; `None` on empty input.
pub fn mean(sample: &[f64]) -> Option<f64> {
    if sample.is_empty() {
        return None;
    }
    Some(sample.iter().sum::<f64>() / sample.len() as f64)
}

/// Sample variance (Bessel-corrected); `None` for fewer than two points.
pub fn variance(sample: &[f64]) -> Option<f64> {
    if sample.len() < 2 {
        return None;
    }
    let m = mean(sample)?;
    let ss: f64 = sample.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / (sample.len() - 1) as f64)
}

/// Sample standard deviation; `None` for fewer than two points.
pub fn stddev(sample: &[f64]) -> Option<f64> {
    variance(sample).map(f64::sqrt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_known_value() {
        // Var of [2,4,4,4,5,5,7,9] is 32/7 with Bessel correction.
        let s = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let v = variance(&s).unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        assert_eq!(stddev(&[3.0, 3.0, 3.0]), Some(0.0));
        assert_eq!(stddev(&[3.0]), None);
    }
}
