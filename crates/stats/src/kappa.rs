//! Cohen's κ for inter-rater reliability (§3.4).
//!
//! The paper compares two human annotators, then GPT-4o against the human
//! consensus, on three properties (brand, scam type, lure principle). Scam
//! type and brand are single-label nominal; lures are multi-label, which we
//! handle as the mean of per-label binary κ (a common multi-label IRR
//! treatment that matches the paper's single reported number).

use std::collections::HashMap;
use std::hash::Hash;

/// Qualitative agreement bands (Landis & Koch), as the paper phrases them
/// ("substantial agreement", "near-perfect agreement").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgreementLevel {
    /// κ ≤ 0 — no better than chance.
    Poor,
    /// 0 < κ ≤ 0.20.
    Slight,
    /// 0.20 < κ ≤ 0.40.
    Fair,
    /// 0.40 < κ ≤ 0.60.
    Moderate,
    /// 0.60 < κ ≤ 0.80 — "substantial".
    Substantial,
    /// κ > 0.80 — "near-perfect".
    NearPerfect,
}

impl AgreementLevel {
    /// Band for a κ value.
    pub fn of(kappa: f64) -> AgreementLevel {
        match kappa {
            k if k <= 0.0 => AgreementLevel::Poor,
            k if k <= 0.20 => AgreementLevel::Slight,
            k if k <= 0.40 => AgreementLevel::Fair,
            k if k <= 0.60 => AgreementLevel::Moderate,
            k if k <= 0.80 => AgreementLevel::Substantial,
            _ => AgreementLevel::NearPerfect,
        }
    }

    /// The phrase used in the paper's §3.4.
    pub fn phrase(self) -> &'static str {
        match self {
            AgreementLevel::Poor => "poor",
            AgreementLevel::Slight => "slight",
            AgreementLevel::Fair => "fair",
            AgreementLevel::Moderate => "moderate",
            AgreementLevel::Substantial => "substantial",
            AgreementLevel::NearPerfect => "near-perfect",
        }
    }
}

/// Cohen's κ over paired nominal labels.
///
/// Returns `None` if the slices differ in length or are empty. By
/// convention κ = 1 when both raters agree perfectly *and* use a single
/// category (expected agreement 1); this avoids a 0/0.
pub fn cohen_kappa<L: Eq + Hash + Clone>(rater_a: &[L], rater_b: &[L]) -> Option<f64> {
    if rater_a.len() != rater_b.len() || rater_a.is_empty() {
        return None;
    }
    let n = rater_a.len() as f64;
    let mut observed = 0usize;
    // Marginals in first-seen order: summation order is deterministic, so
    // repeated runs produce bit-identical kappa values.
    let mut marg_a: Vec<(&L, f64)> = Vec::new();
    let mut marg_b: HashMap<&L, f64> = HashMap::new();
    for (a, b) in rater_a.iter().zip(rater_b.iter()) {
        if a == b {
            observed += 1;
        }
        match marg_a.iter_mut().find(|(l, _)| *l == a) {
            Some((_, c)) => *c += 1.0,
            None => marg_a.push((a, 1.0)),
        }
        *marg_b.entry(b).or_insert(0.0) += 1.0;
    }
    let po = observed as f64 / n;
    let mut pe = 0.0;
    for (label, ca) in marg_a.iter() {
        if let Some(cb) = marg_b.get(*label) {
            pe += (ca / n) * (cb / n);
        }
    }
    if (1.0 - pe).abs() < 1e-12 {
        // Degenerate marginals: perfect expected agreement. κ is defined as
        // 1 when observed agreement is also perfect, else 0.
        return Some(if (po - 1.0).abs() < 1e-12 { 1.0 } else { 0.0 });
    }
    Some((po - pe) / (1.0 - pe))
}

/// Multi-label κ: mean of per-label binary κ over the label universe.
///
/// Each item is a set of labels (here represented as sorted `Vec`s of some
/// label type). Labels that neither rater ever uses are skipped. Per-label
/// κ that is degenerate-but-agreeing contributes 1.0.
pub fn kappa_from_labels<L: Eq + Hash + Clone + Ord>(
    rater_a: &[Vec<L>],
    rater_b: &[Vec<L>],
    universe: &[L],
) -> Option<f64> {
    if rater_a.len() != rater_b.len() || rater_a.is_empty() {
        return None;
    }
    let mut kappas = Vec::new();
    for label in universe {
        let a: Vec<bool> = rater_a.iter().map(|s| s.contains(label)).collect();
        let b: Vec<bool> = rater_b.iter().map(|s| s.contains(label)).collect();
        if a.iter().all(|&x| !x) && b.iter().all(|&x| !x) {
            continue; // label never used by either rater
        }
        kappas.push(cohen_kappa(&a, &b)?);
    }
    if kappas.is_empty() {
        return None;
    }
    Some(kappas.iter().sum::<f64>() / kappas.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        let a = vec!["x", "y", "x", "z"];
        assert!((cohen_kappa(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_example() {
        // Classic 2x2 example: 50 items, raters agree on 20 yes + 15 no,
        // disagree on 15. po = 0.7, pe = 0.5 -> kappa = 0.4.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..20 {
            a.push(true);
            b.push(true);
        }
        for _ in 0..15 {
            a.push(false);
            b.push(false);
        }
        for _ in 0..10 {
            a.push(true);
            b.push(false);
        }
        for _ in 0..5 {
            a.push(false);
            b.push(true);
        }
        // marginals: a: 30 yes / 20 no; b: 25 yes / 25 no
        // pe = 0.6*0.5 + 0.4*0.5 = 0.5; po = 35/50 = 0.7; kappa = 0.4
        let k = cohen_kappa(&a, &b).unwrap();
        assert!((k - 0.4).abs() < 1e-12, "{k}");
    }

    #[test]
    fn chance_level_is_near_zero() {
        // Rater B's labels are independent of A's: alternate pattern with
        // identical marginals gives kappa close to 0.
        let a = vec![true, true, false, false];
        let b = vec![true, false, true, false];
        let k = cohen_kappa(&a, &b).unwrap();
        assert!(k.abs() < 1e-9, "{k}");
    }

    #[test]
    fn degenerate_single_category() {
        let a = vec!["x"; 10];
        assert_eq!(cohen_kappa(&a, &a), Some(1.0));
        let mut b = a.clone();
        b[0] = "y";
        // Not degenerate: b has two categories now.
        let k = cohen_kappa(&a, &b).unwrap();
        assert!(k <= 0.0, "{k}");
    }

    #[test]
    fn mismatched_or_empty_inputs() {
        let a = vec![1, 2];
        let b = vec![1];
        assert_eq!(cohen_kappa(&a, &b), None);
        let e: Vec<i32> = vec![];
        assert_eq!(cohen_kappa(&e, &e), None);
    }

    #[test]
    fn multilabel_perfect() {
        let a = vec![vec!["auth", "urgency"], vec!["herd"]];
        let universe = vec!["auth", "urgency", "herd", "kindness"];
        assert!((kappa_from_labels(&a, &a, &universe).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multilabel_partial_disagreement_lands_between() {
        let a = vec![
            vec!["auth"],
            vec!["auth", "urgency"],
            vec!["urgency"],
            vec!["auth"],
            vec!["urgency"],
            vec!["auth", "urgency"],
        ];
        let mut b = a.clone();
        b[0] = vec!["urgency"]; // one item fully flipped
        let universe = vec!["auth", "urgency"];
        let k = kappa_from_labels(&a, &b, &universe).unwrap();
        assert!(k > 0.0 && k < 1.0, "{k}");
    }

    #[test]
    fn agreement_bands_match_paper_phrasing() {
        assert_eq!(AgreementLevel::of(0.94), AgreementLevel::NearPerfect);
        assert_eq!(AgreementLevel::of(0.70), AgreementLevel::Substantial);
        assert_eq!(AgreementLevel::of(0.82).phrase(), "near-perfect");
        assert_eq!(AgreementLevel::of(-0.1), AgreementLevel::Poor);
    }
}
