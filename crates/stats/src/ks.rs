//! Two-sample Kolmogorov–Smirnov test.
//!
//! §5.1 runs pairwise two-sample KS tests over the per-weekday
//! time-of-day distributions and reports which pairs differ at p < 0.05.
//! We implement the exact D statistic and the standard asymptotic p-value
//! (the Kolmogorov distribution series with the effective sample size).

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic D = sup |F1(x) − F2(x)|.
    pub statistic: f64,
    /// Asymptotic two-sided p-value.
    pub p_value: f64,
    /// Sizes of the two samples.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl KsResult {
    /// Whether the distributions differ at the given significance level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample KS test over real-valued samples.
///
/// Returns `None` if either sample is empty. Ties are handled by stepping
/// both empirical CDFs through the pooled sorted order, evaluating the gap
/// only between distinct values (the standard treatment).
pub fn ks_two_sample(sample1: &[f64], sample2: &[f64]) -> Option<KsResult> {
    if sample1.is_empty() || sample2.is_empty() {
        return None;
    }
    let mut a: Vec<f64> = sample1.to_vec();
    let mut b: Vec<f64> = sample2.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("no NaN in KS input"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("no NaN in KS input"));
    let (n1, n2) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let x = a[i].min(b[j]);
        while i < n1 && a[i] <= x {
            i += 1;
        }
        while j < n2 && b[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }
    let en = ((n1 * n2) as f64 / (n1 + n2) as f64).sqrt();
    // Numerical-recipes style corrected argument for better small-sample accuracy.
    let lambda = (en + 0.12 + 0.11 / en) * d;
    let p_value = kolmogorov_survival(lambda);
    Some(KsResult {
        statistic: d,
        p_value,
        n1,
        n2,
    })
}

/// Q_KS(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2 k² λ²}, clamped to [0, 1].
fn kolmogorov_survival(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_not_significant() {
        let s: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let r = ks_two_sample(&s, &s).unwrap();
        assert!(r.statistic < 1e-12);
        assert!(r.p_value > 0.99);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn shifted_samples_are_significant() {
        let s1: Vec<f64> = (0..300).map(|i| (i % 100) as f64).collect();
        let s2: Vec<f64> = (0..300).map(|i| (i % 100) as f64 + 50.0).collect();
        let r = ks_two_sample(&s1, &s2).unwrap();
        assert!(r.statistic > 0.4, "D = {}", r.statistic);
        assert!(r.significant_at(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn small_shift_large_n_detected() {
        // Deterministic quasi-uniform grids offset by 10%.
        let s1: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let s2: Vec<f64> = (0..1000).map(|i| (i as f64 / 1000.0).powf(1.3)).collect();
        let r = ks_two_sample(&s1, &s2).unwrap();
        assert!(r.significant_at(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn handles_ties() {
        let s1 = vec![1.0, 1.0, 1.0, 2.0, 2.0];
        let s2 = vec![1.0, 2.0, 2.0, 2.0, 2.0];
        let r = ks_two_sample(&s1, &s2).unwrap();
        // F1(1) = 0.6, F2(1) = 0.2 -> D = 0.4
        assert!((r.statistic - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_none() {
        assert_eq!(ks_two_sample(&[], &[1.0]), None);
        assert_eq!(ks_two_sample(&[1.0], &[]), None);
    }

    #[test]
    fn survival_function_bounds() {
        assert_eq!(kolmogorov_survival(0.0), 1.0);
        assert!(kolmogorov_survival(0.5) > kolmogorov_survival(1.0));
        assert!(kolmogorov_survival(3.0) < 1e-6);
    }

    #[test]
    fn d_statistic_bounded() {
        let s1 = vec![0.0; 10];
        let s2 = vec![1.0; 10];
        let r = ks_two_sample(&s1, &s2).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
    }
}
