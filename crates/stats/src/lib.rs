//! # smishing-stats
//!
//! The statistics toolkit the paper's analyses rely on:
//!
//! - [`kappa`]: Cohen's κ for inter-rater reliability (§3.4),
//! - [`ks`]: two-sample Kolmogorov–Smirnov test for the per-weekday
//!   send-time distributions (§5.1 / Fig. 2),
//! - [`mod@quantile`]: medians and percentiles for the Fig. 2 boxplots,
//! - [`counter`]: frequency counting with deterministic top-k used by every
//!   "Top 10 ..." table,
//! - [`histogram`]: fixed-bin histograms for time-of-day densities,
//! - [`descriptive`]: means/variance for the TLS certificate counts (§4.5),
//! - [`sample`]: seeded reservoir sampling (the 150-message IRR subset and
//!   the 200-report case-study sample),
//! - [`unionfind`]: disjoint-set union for campaign linking,
//! - [`merge`]: mergeable accumulator primitives (multisets with
//!   retraction, first-writer-wins claims) for the streaming engine.
//!
//! Everything is deterministic: functions either take no randomness or take
//! an explicit `&mut impl Rng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod descriptive;
pub mod histogram;
pub mod kappa;
pub mod ks;
pub mod merge;
pub mod quantile;
pub mod sample;
pub mod unionfind;

pub use counter::Counter;
pub use descriptive::{mean, stddev, variance};
pub use histogram::Histogram;
pub use kappa::{cohen_kappa, kappa_from_labels, AgreementLevel};
pub use ks::{ks_two_sample, KsResult};
pub use merge::{FirstClaim, RefCount};
pub use quantile::{median, quantile};
pub use sample::reservoir_sample;
pub use unionfind::UnionFind;
