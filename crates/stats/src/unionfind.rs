//! Disjoint-set union (union-find) with path compression and union by
//! rank — the clustering backbone for campaign linking.

/// A disjoint-set structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns true if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Cluster assignment: element → compacted cluster id (0-based, in
    /// order of first appearance).
    pub fn clusters(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut map = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let root = self.find(i);
            let next = map.len();
            let id = *map.entry(root).or_insert(next);
            out.push(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn clusters_are_compact() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let c = uf.clusters();
        assert_eq!(c.len(), 6);
        assert_eq!(c[0], c[3]);
        assert_eq!(c[4], c[5]);
        assert_ne!(c[0], c[4]);
        let max = *c.iter().max().unwrap();
        assert_eq!(max + 1, uf.components());
    }

    #[test]
    fn chain_compresses() {
        let mut uf = UnionFind::new(1000);
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, 999));
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.clusters().is_empty());
    }
}
