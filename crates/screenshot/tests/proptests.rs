//! Property-based tests over the screenshot renderer and extractors.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smishing_screenshot::render::wrap;
use smishing_screenshot::{
    render_sms, AppTheme, Extractor, LlmExtractor, NaiveOcr, RenderSpec, VisionOcr,
};
use smishing_types::{CivilDateTime, Date, TimeOfDay, TimestampStyle};

fn spec(text: String, theme: AppTheme, noise: f64) -> RenderSpec {
    RenderSpec {
        sender: Some("+447900000001".into()),
        text,
        url: None,
        received: CivilDateTime::new(
            Date::new(2022, 6, 10).unwrap(),
            TimeOfDay::new(14, 5, 0).unwrap(),
        ),
        timestamp_style: Some(TimestampStyle::Iso),
        theme,
        noise,
    }
}

proptest! {
    #[test]
    fn wrap_preserves_characters(text in "[a-zA-Z0-9 ./:-]{1,200}", width in 8usize..50) {
        let lines = wrap(&text, width);
        for l in &lines {
            prop_assert!(l.chars().count() <= width, "{l:?} too long for {width}");
        }
        let rejoined_chars: String =
            lines.join("").chars().filter(|c| *c != ' ').collect();
        let original_chars: String = text.chars().filter(|c| *c != ' ').collect();
        prop_assert_eq!(rejoined_chars, original_chars);
    }

    #[test]
    fn extractors_never_panic(
        text in "\\PC{1,150}",
        theme_idx in 0usize..6,
        noise in 0.0f64..1.0,
        seed in 0u64..50,
    ) {
        prop_assume!(!text.trim().is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let theme = AppTheme::ALL[theme_idx];
        let shot = render_sms(&spec(text, theme, noise), &mut rng);
        let _ = NaiveOcr::new(seed).extract(&shot);
        let _ = VisionOcr::new(seed).extract(&shot);
        let _ = LlmExtractor::new(seed).extract(&shot);
    }

    #[test]
    fn llm_recovers_simple_texts_exactly(
        words in prop::collection::vec("[a-z]{1,9}", 3..25),
        theme_idx in 0usize..6,
        seed in 0u64..50,
    ) {
        // Texts of plain short words have no rejoin ambiguity: recovery
        // must be exact on every theme.
        let text = words.join(" ");
        let mut rng = StdRng::seed_from_u64(seed);
        let theme = AppTheme::ALL[theme_idx];
        let shot = render_sms(&spec(text.clone(), theme, 0.1), &mut rng);
        // Disable the (realistic) 1% SMS-discrimination error: this
        // property is about text reconstruction, not discrimination.
        let mut llm = LlmExtractor::new(seed);
        llm.discrimination_error = 0.0;
        let e = llm.extract(&shot);
        prop_assert_eq!(e.text.as_deref(), Some(text.as_str()));
        prop_assert_eq!(e.sender.as_deref(), Some("+447900000001"));
    }

    #[test]
    fn extraction_is_deterministic(text in "[a-z ]{5,80}", seed in 0u64..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shot = render_sms(&spec(text, AppTheme::Imessage, 0.3), &mut rng);
        let llm = LlmExtractor::new(seed);
        prop_assert_eq!(llm.extract(&shot), llm.extract(&shot));
        let naive = NaiveOcr::new(seed);
        prop_assert_eq!(naive.extract(&shot), naive.extract(&shot));
    }
}
