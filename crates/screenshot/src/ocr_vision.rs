//! The Google-Vision-like block OCR (§3.2).
//!
//! Characters come out clean on every theme, but the engine returns text
//! *blocks* whose ordering does not follow reading order: it groups by
//! column position first, and interleaves bubble lines. A URL wrapped
//! across two bubble lines therefore ends up with unrelated text between
//! its halves — "Incorrect ordering can fail to extract the complete URL."

use crate::image::{Extraction, Extractor, Screenshot, TextBlock};
use crate::ocr_naive::confuse;

/// The Vision-API-like extractor.
#[derive(Debug, Clone, Copy)]
pub struct VisionOcr {
    seed: u64,
}

impl VisionOcr {
    /// Build with a seed for the (rare) confusion draws.
    pub fn new(seed: u64) -> VisionOcr {
        VisionOcr { seed }
    }
}

impl Extractor for VisionOcr {
    fn name(&self) -> &'static str {
        "google-vision"
    }

    fn extract(&self, shot: &Screenshot) -> Extraction {
        // Block detection: x-position major, then an even/odd interleave of
        // rows — the scrambled order real block OCR produces on chat UIs.
        let mut blocks: Vec<&TextBlock> = shot.blocks.iter().collect();
        blocks.sort_by_key(|b| (b.x, b.y % 2, b.y));
        let text: Vec<String> = blocks
            .iter()
            .map(|b| confuse(&b.text, 0.01 + shot.noise * 0.02, self.seed))
            .collect();
        Extraction {
            is_sms_screenshot: true, // no discrimination either
            text: Some(text.join("\n")),
            url: None,
            sender: None,
            timestamp_raw: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::AppTheme;
    use crate::render::{render_sms, RenderSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smishing_types::{CivilDateTime, Date, TimeOfDay, TimestampStyle};

    fn long_url_shot(theme: AppTheme) -> Screenshot {
        let mut rng = StdRng::seed_from_u64(1);
        let url = "https://secure-banking-verification-portal.example.com/login/session/renew";
        render_sms(
            &RenderSpec {
                sender: Some("+447900000001".into()),
                text: format!(
                    "URGENT: your account is locked. Visit {url} immediately to restore access."
                ),
                url: Some(url.into()),
                received: CivilDateTime::new(
                    Date::new(2022, 6, 10).unwrap(),
                    TimeOfDay::new(9, 30, 0).unwrap(),
                ),
                timestamp_style: Some(TimestampStyle::WeekdayTime),
                theme,
                noise: 0.0,
            },
            &mut rng,
        )
    }

    #[test]
    fn works_on_custom_backgrounds() {
        let e = VisionOcr::new(1).extract(&long_url_shot(AppTheme::CustomThemed));
        assert!(e.text.is_some(), "vision OCR handles themed apps");
    }

    #[test]
    fn scrambles_reading_order_breaking_urls() {
        let shot = long_url_shot(AppTheme::Imessage);
        let url = shot.truth.url.clone().unwrap();
        let e = VisionOcr::new(1).extract(&shot);
        let text = e.text.unwrap();
        // Joining adjacent lines does NOT reconstruct the URL: the two
        // halves are no longer adjacent.
        let squashed: String = text.replace(['\n', ' '], "");
        assert!(
            !squashed.contains(&url.replace(' ', "")),
            "vision output should not contain the full URL contiguously: {text}"
        );
        // But the characters themselves are mostly clean: some fragment of
        // the URL survives.
        assert!(text.contains("secure-banking"), "{text}");
    }

    #[test]
    fn deterministic() {
        let shot = long_url_shot(AppTheme::Imessage);
        let a = VisionOcr::new(1).extract(&shot);
        let b = VisionOcr::new(1).extract(&shot);
        assert_eq!(a, b);
    }
}
