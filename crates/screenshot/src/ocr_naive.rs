//! The Pytesseract-like baseline extractor (§3.2).
//!
//! Failure modes modelled, all from the paper:
//!
//! - returns nothing on themes with custom backgrounds/colors,
//! - confuses visually similar characters (`l`/`I`, `0`/`O`) — fatal for
//!   evasion-squatted domains,
//! - has no notion of fields: output is one blob including the status bar
//!   clock and the sender header,
//! - cannot tell an SMS screenshot from an awareness poster.

use crate::image::{Extraction, Extractor, Screenshot};

/// Stable hash for deterministic confusion decisions.
fn hash(s: &str, salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt.wrapping_mul(0x100_0000_01b3);
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ (h >> 31)
}

/// Apply OCR character confusion to a line. `rate` is per-candidate-char.
pub(crate) fn confuse(line: &str, rate: f64, salt: u64) -> String {
    let mut out = String::with_capacity(line.len());
    for (i, c) in line.chars().enumerate() {
        let roll = (hash(line, salt.wrapping_add(i as u64)) >> 11) as f64 / (1u64 << 53) as f64;
        let swapped = if roll < rate {
            match c {
                'l' => Some('I'),
                'I' => Some('l'),
                '0' => Some('O'),
                'O' => Some('0'),
                '1' => Some('l'),
                'S' => Some('5'),
                'B' => Some('8'),
                _ => None,
            }
        } else {
            None
        };
        out.push(swapped.unwrap_or(c));
    }
    out
}

/// The naive OCR extractor.
#[derive(Debug, Clone, Copy)]
pub struct NaiveOcr {
    seed: u64,
}

impl NaiveOcr {
    /// Build with a seed for the deterministic confusion draws.
    pub fn new(seed: u64) -> NaiveOcr {
        NaiveOcr { seed }
    }
}

impl Extractor for NaiveOcr {
    fn name(&self) -> &'static str {
        "pytesseract"
    }

    fn extract(&self, shot: &Screenshot) -> Extraction {
        // Custom backgrounds defeat binarization entirely.
        if shot.theme.custom_background() {
            return Extraction {
                is_sms_screenshot: true,
                ..Extraction::default()
            };
        }
        // Heavy photo noise also kills it.
        if shot.noise > 0.7 {
            return Extraction {
                is_sms_screenshot: true,
                ..Extraction::default()
            };
        }
        let rate = 0.08 + shot.noise * 0.25;
        let mut blocks: Vec<&crate::image::TextBlock> = shot.blocks.iter().collect();
        blocks.sort_by_key(|b| (b.y, b.x));
        let blob: Vec<String> = blocks
            .iter()
            .map(|b| confuse(&b.text, rate, self.seed))
            .collect();
        Extraction {
            is_sms_screenshot: true, // cannot discriminate
            text: Some(blob.join("\n")),
            url: None,
            sender: None,
            timestamp_raw: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::AppTheme;
    use crate::render::{render_sms, RenderSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smishing_types::{CivilDateTime, Date, TimeOfDay, TimestampStyle};

    fn shot(theme: AppTheme, noise: f64) -> Screenshot {
        let mut rng = StdRng::seed_from_u64(1);
        render_sms(
            &RenderSpec {
                sender: Some("SBIBNK".into()),
                text: "Dear customer, your SBI net banking will be blocked. Visit https://sbl-kyc.com/login today.".into(),
                url: Some("https://sbl-kyc.com/login".into()),
                received: CivilDateTime::new(
                    Date::new(2021, 8, 3).unwrap(),
                    TimeOfDay::new(11, 34, 0).unwrap(),
                ),
                timestamp_style: Some(TimestampStyle::Iso),
                theme,
                noise,
            },
            &mut rng,
        )
    }

    #[test]
    fn fails_on_custom_backgrounds() {
        let ocr = NaiveOcr::new(1);
        let e = ocr.extract(&shot(AppTheme::CustomThemed, 0.1));
        assert_eq!(e.text, None);
        let e = ocr.extract(&shot(AppTheme::WhatsApp, 0.1));
        assert_eq!(e.text, None);
    }

    #[test]
    fn blob_includes_chrome() {
        let ocr = NaiveOcr::new(1);
        let e = ocr.extract(&shot(AppTheme::Imessage, 0.0));
        let text = e.text.unwrap();
        assert!(
            text.contains("LTE"),
            "status bar leaks into the blob: {text}"
        );
        assert!(e.url.is_none() && e.sender.is_none(), "no field structure");
    }

    #[test]
    fn confusion_mangles_characters() {
        // At a high rate, 'l' and 'I' swap — the squatting-evasion problem.
        let out = confuse("Illlllllllllllllllllll", 1.0, 7);
        assert!(out.contains('I') && out.contains('l'));
        assert_ne!(out, "Illlllllllllllllllllll");
        // Zero rate is the identity.
        assert_eq!(confuse("hello l I 0 O", 0.0, 7), "hello l I 0 O");
    }

    #[test]
    fn confusion_is_deterministic() {
        assert_eq!(
            confuse("sbl-kyc.com", 0.5, 3),
            confuse("sbl-kyc.com", 0.5, 3)
        );
    }

    #[test]
    fn cannot_discriminate_posters() {
        let mut rng = StdRng::seed_from_u64(5);
        let poster =
            crate::render::render_noise_image(smishing_types::NoiseKind::AwarenessPoster, &mut rng);
        let e = NaiveOcr::new(1).extract(&poster);
        assert!(
            e.is_sms_screenshot,
            "naive OCR believes everything is an SMS"
        );
    }
}
