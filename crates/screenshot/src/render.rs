//! The layout engine: message → positioned text blocks.

use crate::image::{AppTheme, BlockKind, Screenshot, ScreenshotTruth, TextBlock};
use rand::Rng;
use smishing_types::{CivilDateTime, NoiseKind, TimestampStyle};

/// Inputs for rendering one SMS screenshot.
#[derive(Debug, Clone)]
pub struct RenderSpec {
    /// Sender ID as the app displays it (`None` = reporter cropped it out
    /// or the app hid it).
    pub sender: Option<String>,
    /// Full message text (URL inline, as sent).
    pub text: String,
    /// The URL inside `text`, if any (ground truth for evaluation).
    pub url: Option<String>,
    /// When the message was received.
    pub received: CivilDateTime,
    /// How the app renders the timestamp (`None` = timestamp not visible).
    pub timestamp_style: Option<TimestampStyle>,
    /// App theme.
    pub theme: AppTheme,
    /// Photo/compression noise in `[0, 1]`.
    pub noise: f64,
}

/// Greedy word wrap at `width` columns. Overlong words (URLs!) are split
/// hard mid-word — exactly what makes URLs span bubble lines (§3.2).
pub fn wrap(text: &str, width: usize) -> Vec<String> {
    assert!(width >= 4, "unreasonable wrap width");
    let mut lines: Vec<String> = Vec::new();
    let mut line = String::new();
    for word in text.split_whitespace() {
        let mut w = word;
        loop {
            let need = if line.is_empty() {
                w.chars().count()
            } else {
                w.chars().count() + 1
            };
            let used = line.chars().count();
            if used + need <= width {
                if !line.is_empty() {
                    line.push(' ');
                }
                line.push_str(w);
                break;
            }
            if line.is_empty() {
                // Hard-split an overlong word.
                let split_at = w
                    .char_indices()
                    .nth(width)
                    .map(|(i, _)| i)
                    .unwrap_or(w.len());
                line.push_str(&w[..split_at]);
                lines.push(std::mem::take(&mut line));
                w = &w[split_at..];
                if w.is_empty() {
                    break;
                }
                continue;
            }
            lines.push(std::mem::take(&mut line));
        }
    }
    if !line.is_empty() {
        lines.push(line);
    }
    lines
}

/// Render an SMS screenshot from a spec.
pub fn render_sms<R: Rng + ?Sized>(spec: &RenderSpec, rng: &mut R) -> Screenshot {
    let mut blocks = Vec::new();
    // Status bar: carrier + an unrelated wall-clock time (OCR trap).
    let clock_h: u8 = rng.gen_range(0..24);
    let clock_m: u8 = rng.gen_range(0..60);
    blocks.push(TextBlock {
        kind: BlockKind::StatusBar,
        text: format!("{:02}:{:02}  LTE  87%", clock_h, clock_m),
        x: 0,
        y: 0,
    });
    if let Some(sender) = &spec.sender {
        blocks.push(TextBlock {
            kind: BlockKind::SenderHeader,
            text: sender.clone(),
            x: 4,
            y: 1,
        });
    }
    let ts_string = spec
        .timestamp_style
        .map(|style| style.format(spec.received));
    if let Some(ts) = &ts_string {
        blocks.push(TextBlock {
            kind: BlockKind::Timestamp,
            text: ts.clone(),
            x: 10,
            y: 2,
        });
    }
    for (i, line) in wrap(&spec.text, spec.theme.chars_per_line())
        .into_iter()
        .enumerate()
    {
        blocks.push(TextBlock {
            kind: BlockKind::BubbleLine,
            text: line,
            x: 2,
            y: 3 + i as u16,
        });
    }
    Screenshot {
        theme: spec.theme,
        blocks,
        is_sms: true,
        noise_kind: None,
        noise: spec.noise.clamp(0.0, 1.0),
        truth: ScreenshotTruth {
            text: Some(spec.text.clone()),
            url: spec.url.clone(),
            sender: spec.sender.clone(),
            timestamp: ts_string,
        },
    }
}

/// Render a keyword-matched image that is NOT an SMS screenshot: awareness
/// posters and unrelated screenshots (§3.2 instructs the extractor to
/// dismiss these).
pub fn render_noise_image<R: Rng + ?Sized>(kind: NoiseKind, rng: &mut R) -> Screenshot {
    let captions: &[&str] = match kind {
        NoiseKind::AwarenessPoster => &[
            "STOP SMISHING — think before you click",
            "Report scam texts to 7726",
            "Protect yourself from SMS phishing scams",
        ],
        _ => &[
            "Inbox (3 unread) — Promotions tab",
            "Breaking: new wave of text scams hits users",
            "Settings > Notifications > Messages",
        ],
    };
    let text = captions[rng.gen_range(0..captions.len())];
    Screenshot {
        theme: AppTheme::AndroidMessages,
        blocks: vec![
            TextBlock {
                kind: BlockKind::Caption,
                text: text.to_string(),
                x: 0,
                y: 0,
            },
            TextBlock {
                kind: BlockKind::Caption,
                text: "shared image".to_string(),
                x: 0,
                y: 1,
            },
        ],
        is_sms: false,
        noise_kind: Some(kind),
        noise: rng.gen_range(0.0..0.4),
        truth: ScreenshotTruth::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smishing_types::{Date, TimeOfDay};

    fn spec(text: &str, theme: AppTheme) -> RenderSpec {
        RenderSpec {
            sender: Some("+447900000001".into()),
            text: text.into(),
            url: None,
            received: CivilDateTime::new(
                Date::new(2022, 6, 10).unwrap(),
                TimeOfDay::new(14, 5, 0).unwrap(),
            ),
            timestamp_style: Some(TimestampStyle::Iso),
            theme,
            noise: 0.1,
        }
    }

    #[test]
    fn wrap_basic() {
        let lines = wrap("one two three four five six seven", 12);
        assert!(lines.iter().all(|l| l.chars().count() <= 12), "{lines:?}");
        assert_eq!(lines.join(" "), "one two three four five six seven");
    }

    #[test]
    fn wrap_splits_long_urls() {
        let url = "https://secure-banking-verification-portal.example.com/login/session";
        let lines = wrap(&format!("Visit {url} now"), 30);
        assert!(lines.len() >= 3, "{lines:?}");
        // Rejoining the split fragments reconstructs the URL.
        let joined = lines.join("");
        assert!(
            joined.replace(' ', "").contains(&url.replace(' ', "")),
            "{joined}"
        );
    }

    #[test]
    fn wrap_width_respected_for_multibyte() {
        let lines = wrap("ありがとうございますありがとうございます", 10);
        assert!(lines.iter().all(|l| l.chars().count() <= 10), "{lines:?}");
    }

    #[test]
    fn rendered_screenshot_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let shot = render_sms(
            &spec(
                "Your account is locked. Visit the branch today.",
                AppTheme::Imessage,
            ),
            &mut rng,
        );
        assert!(shot.is_sms);
        assert!(!shot.blocks_of(BlockKind::StatusBar).is_empty());
        assert!(!shot.blocks_of(BlockKind::SenderHeader).is_empty());
        assert!(!shot.blocks_of(BlockKind::Timestamp).is_empty());
        assert!(shot.blocks_of(BlockKind::BubbleLine).len() >= 2);
        assert_eq!(shot.truth.sender.as_deref(), Some("+447900000001"));
    }

    #[test]
    fn noise_images_are_not_sms() {
        let mut rng = StdRng::seed_from_u64(2);
        let shot = render_noise_image(NoiseKind::AwarenessPoster, &mut rng);
        assert!(!shot.is_sms);
        assert!(shot.truth.text.is_none());
    }

    #[test]
    fn missing_sender_and_timestamp_supported() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = spec("hello there friend", AppTheme::Imessage);
        s.sender = None;
        s.timestamp_style = None;
        let shot = render_sms(&s, &mut rng);
        assert!(shot.blocks_of(BlockKind::SenderHeader).is_empty());
        assert!(shot.blocks_of(BlockKind::Timestamp).is_empty());
        assert_eq!(shot.truth.timestamp, None);
    }
}
