//! Extractor evaluation against screenshot ground truth (§3.2's
//! methodology comparison, reproduced as experiment CUR).

use crate::image::{Extractor, Screenshot};

/// Field-level accuracy of one extractor over a screenshot set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExtractionScore {
    /// Screenshots evaluated.
    pub n: usize,
    /// Exact text recovery rate (over true SMS screenshots).
    pub text_exact: f64,
    /// Exact URL recovery rate (over SMS screenshots that carried a URL).
    pub url_exact: f64,
    /// Sender recovery rate (over SMS screenshots showing a sender).
    pub sender_exact: f64,
    /// Timestamp recovery rate (over SMS screenshots showing one).
    pub timestamp_found: f64,
    /// SMS-vs-not discrimination accuracy (over all screenshots).
    pub discrimination: f64,
}

/// Evaluate an extractor over a set of rendered screenshots.
pub fn evaluate<E: Extractor>(extractor: &E, shots: &[Screenshot]) -> ExtractionScore {
    let mut text_hit = 0usize;
    let mut text_n = 0usize;
    let mut url_hit = 0usize;
    let mut url_n = 0usize;
    let mut sender_hit = 0usize;
    let mut sender_n = 0usize;
    let mut ts_hit = 0usize;
    let mut ts_n = 0usize;
    let mut disc_hit = 0usize;
    for shot in shots {
        let e = extractor.extract(shot);
        if e.is_sms_screenshot == shot.is_sms {
            disc_hit += 1;
        }
        if !shot.is_sms {
            continue;
        }
        if let Some(truth) = &shot.truth.text {
            text_n += 1;
            if e.text.as_deref() == Some(truth.as_str()) {
                text_hit += 1;
            }
        }
        if let Some(truth) = &shot.truth.url {
            url_n += 1;
            if e.url.as_deref() == Some(truth.as_str()) {
                url_hit += 1;
            }
        }
        if let Some(truth) = &shot.truth.sender {
            sender_n += 1;
            if e.sender.as_deref() == Some(truth.as_str()) {
                sender_hit += 1;
            }
        }
        if let Some(truth) = &shot.truth.timestamp {
            ts_n += 1;
            if e.timestamp_raw.as_deref() == Some(truth.as_str()) {
                ts_hit += 1;
            }
        }
    }
    let rate = |hit: usize, n: usize| if n == 0 { 0.0 } else { hit as f64 / n as f64 };
    ExtractionScore {
        n: shots.len(),
        text_exact: rate(text_hit, text_n),
        url_exact: rate(url_hit, url_n),
        sender_exact: rate(sender_hit, sender_n),
        timestamp_found: rate(ts_hit, ts_n),
        discrimination: rate(disc_hit, shots.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract_llm::LlmExtractor;
    use crate::image::AppTheme;
    use crate::ocr_naive::NaiveOcr;
    use crate::ocr_vision::VisionOcr;
    use crate::render::{render_noise_image, render_sms, RenderSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use smishing_types::{CivilDateTime, Date, NoiseKind, TimeOfDay, TimestampStyle};

    fn corpus(n: usize) -> Vec<Screenshot> {
        let mut rng = StdRng::seed_from_u64(99);
        let mut shots = Vec::new();
        for i in 0..n {
            if i % 7 == 0 {
                shots.push(render_noise_image(NoiseKind::AwarenessPoster, &mut rng));
                continue;
            }
            let theme = AppTheme::ALL[rng.gen_range(0..AppTheme::ALL.len())];
            let url = format!("https://evil-campaign-{i}.example-login-portal.com/verify/session");
            let text = format!("URGENT alert {i}: your account is locked, verify at {url} now");
            shots.push(render_sms(
                &RenderSpec {
                    sender: Some(format!("+4479{:08}", i)),
                    text,
                    url: Some(url),
                    received: CivilDateTime::new(
                        Date::new(2022, 5, 20).unwrap(),
                        TimeOfDay::new(12, 0, 0).unwrap(),
                    ),
                    timestamp_style: Some(TimestampStyle::Iso),
                    theme,
                    noise: rng.gen_range(0.0..0.5),
                },
                &mut rng,
            ));
        }
        shots
    }

    #[test]
    fn llm_beats_vision_beats_naive() {
        // The §3.2 methodology ranking must hold on the modelled corpus.
        let shots = corpus(300);
        let naive = evaluate(&NaiveOcr::new(1), &shots);
        let vision = evaluate(&VisionOcr::new(1), &shots);
        let llm = evaluate(&LlmExtractor::new(1), &shots);

        assert!(llm.url_exact > 0.88, "llm url {:?}", llm.url_exact);
        assert!(
            vision.url_exact < 0.05,
            "vision splits URLs: {:?}",
            vision.url_exact
        );
        assert_eq!(naive.url_exact, 0.0, "naive has no URL field");
        assert!(llm.text_exact > 0.9, "{:?}", llm.text_exact);
        assert!(naive.text_exact < 0.05, "naive blob ≠ message text");
        assert!(llm.discrimination > 0.95);
        assert!(naive.discrimination < 0.95, "naive can't dismiss posters");
        assert!(llm.sender_exact > 0.95 && llm.timestamp_found > 0.95);
    }

    #[test]
    fn empty_corpus() {
        let score = evaluate(&LlmExtractor::new(1), &[]);
        assert_eq!(score.n, 0);
        assert_eq!(score.discrimination, 0.0);
    }
}
