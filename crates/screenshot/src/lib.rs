//! # smishing-screenshot
//!
//! A structured model of SMS screenshots and the three field extractors the
//! paper compares in §3.2:
//!
//! - [`ocr_naive::NaiveOcr`] — the Pytesseract baseline: breaks on custom
//!   themes/backgrounds, confuses `l`/`I` and friends, cannot tell an SMS
//!   screenshot from an awareness poster, and reads the status-bar clock as
//!   if it were message text,
//! - [`ocr_vision::VisionOcr`] — the Google-Vision-like block OCR: clean
//!   characters, but block ordering scrambles multi-line messages, so URLs
//!   wrapped across bubble lines come out incomplete,
//! - [`extract_llm::LlmExtractor`] — the OpenAI-Vision-like structured
//!   extractor: discriminates SMS vs non-SMS images, reads bubbles in
//!   order, rejoins wrapped URLs and returns (text, URL, sender,
//!   timestamp) as separate fields.
//!
//! Screenshots are *glyph-structured*, not rasterized: a list of positioned
//! text blocks with theme metadata. That is sufficient to reproduce every
//! failure mode §3.2's methodology decision rests on (see DESIGN.md's
//! substitution table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod extract_llm;
pub mod image;
pub mod ocr_naive;
pub mod ocr_vision;
pub mod render;

pub use compare::{evaluate, ExtractionScore};
pub use extract_llm::LlmExtractor;
pub use image::{AppTheme, BlockKind, Extraction, Extractor, Screenshot, TextBlock};
pub use ocr_naive::NaiveOcr;
pub use ocr_vision::VisionOcr;
pub use render::{render_noise_image, render_sms, RenderSpec};
