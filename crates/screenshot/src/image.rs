//! The screenshot model.

use smishing_types::NoiseKind;

/// Messaging-app theme of a screenshot.
///
/// §3.2: "OCR fails to extract text from multiple mobile messaging apps
/// with custom background colors and designs" — themes carry exactly the
/// properties that break each extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppTheme {
    /// iOS Messages, light.
    Imessage,
    /// Google Messages, light.
    AndroidMessages,
    /// Google Messages, dark mode.
    AndroidMessagesDark,
    /// Samsung Messages.
    SamsungMessages,
    /// WhatsApp (its default patterned wallpaper).
    WhatsApp,
    /// A third-party SMS app with a custom background image.
    CustomThemed,
}

impl AppTheme {
    /// All themes.
    pub const ALL: &'static [AppTheme] = &[
        AppTheme::Imessage,
        AppTheme::AndroidMessages,
        AppTheme::AndroidMessagesDark,
        AppTheme::SamsungMessages,
        AppTheme::WhatsApp,
        AppTheme::CustomThemed,
    ];

    /// Whether the background defeats threshold-based OCR (naive OCR
    /// returns garbage on these).
    pub fn custom_background(self) -> bool {
        matches!(
            self,
            AppTheme::WhatsApp | AppTheme::CustomThemed | AppTheme::AndroidMessagesDark
        )
    }

    /// Characters that fit on one bubble line in this theme.
    pub fn chars_per_line(self) -> usize {
        match self {
            AppTheme::Imessage => 34,
            AppTheme::AndroidMessages | AppTheme::AndroidMessagesDark => 38,
            AppTheme::SamsungMessages => 36,
            AppTheme::WhatsApp => 32,
            AppTheme::CustomThemed => 30,
        }
    }
}

/// What a text block on the screenshot is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// The phone status bar (carrier, battery, *clock* — a classic OCR trap).
    StatusBar,
    /// The conversation header showing the sender ID.
    SenderHeader,
    /// The per-message timestamp line.
    Timestamp,
    /// One wrapped line of the message bubble.
    BubbleLine,
    /// Poster / unrelated caption text (noise images).
    Caption,
}

/// One positioned text block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextBlock {
    /// Block kind.
    pub kind: BlockKind,
    /// The text content.
    pub text: String,
    /// Horizontal position (column units).
    pub x: u16,
    /// Vertical position (row units); reading order is by `y` then `x`.
    pub y: u16,
}

/// Ground truth attached to a rendered screenshot, for extractor
/// evaluation only — extractors must never read it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScreenshotTruth {
    /// The full message text as sent.
    pub text: Option<String>,
    /// The URL in the message, if any.
    pub url: Option<String>,
    /// The sender ID displayed.
    pub sender: Option<String>,
    /// The rendered timestamp string.
    pub timestamp: Option<String>,
}

/// A synthetic screenshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Screenshot {
    /// App theme.
    pub theme: AppTheme,
    /// Positioned text blocks.
    pub blocks: Vec<TextBlock>,
    /// Whether the image actually shows an SMS conversation.
    pub is_sms: bool,
    /// For non-SMS images, what they are instead.
    pub noise_kind: Option<NoiseKind>,
    /// Photo-of-screen / compression noise in `[0, 1]`.
    pub noise: f64,
    /// Evaluation-only ground truth (see [`ScreenshotTruth`]).
    pub truth: ScreenshotTruth,
}

impl Screenshot {
    /// Blocks of one kind, in reading order.
    pub fn blocks_of(&self, kind: BlockKind) -> Vec<&TextBlock> {
        let mut v: Vec<&TextBlock> = self.blocks.iter().filter(|b| b.kind == kind).collect();
        v.sort_by_key(|b| (b.y, b.x));
        v
    }
}

/// What an extractor managed to pull out of a screenshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Extraction {
    /// Whether the extractor believes the image is an SMS screenshot.
    /// Extractors without that capability report `true` for everything.
    pub is_sms_screenshot: bool,
    /// Extracted message text.
    pub text: Option<String>,
    /// Extracted URL.
    pub url: Option<String>,
    /// Extracted sender ID.
    pub sender: Option<String>,
    /// Extracted raw timestamp string (unparsed).
    pub timestamp_raw: Option<String>,
}

/// The extractor interface (§3.2's three contenders implement this).
pub trait Extractor {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
    /// Run extraction on one screenshot.
    fn extract(&self, shot: &Screenshot) -> Extraction;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theme_properties() {
        assert!(AppTheme::CustomThemed.custom_background());
        assert!(AppTheme::WhatsApp.custom_background());
        assert!(!AppTheme::Imessage.custom_background());
        for t in AppTheme::ALL {
            assert!(t.chars_per_line() >= 28);
        }
    }

    #[test]
    fn blocks_of_sorts_by_reading_order() {
        let shot = Screenshot {
            theme: AppTheme::Imessage,
            blocks: vec![
                TextBlock {
                    kind: BlockKind::BubbleLine,
                    text: "second".into(),
                    x: 0,
                    y: 2,
                },
                TextBlock {
                    kind: BlockKind::BubbleLine,
                    text: "first".into(),
                    x: 0,
                    y: 1,
                },
            ],
            is_sms: true,
            noise_kind: None,
            noise: 0.0,
            truth: ScreenshotTruth::default(),
        };
        let lines = shot.blocks_of(BlockKind::BubbleLine);
        assert_eq!(lines[0].text, "first");
        assert_eq!(lines[1].text, "second");
    }
}
