//! The OpenAI-Vision-like structured extractor (§3.2, prompt in Appendix
//! D.1).
//!
//! What the paper's prompt asks for, this extractor does mechanically:
//!
//! - dismiss images that are not SMS screenshots,
//! - return `text`, `url`, `sender-id` and `timestamp` as separate fields,
//! - read bubble lines in true reading order and **rejoin hard-wrapped
//!   words**: a bubble line that is exactly full-width was wrapped
//!   mid-word, so it concatenates with the next line without a space —
//!   inverting the layout engine and recovering complete URLs.

use crate::image::{BlockKind, Extraction, Extractor, Screenshot};

/// The structured (LLM-style) extractor.
#[derive(Debug, Clone, Copy)]
pub struct LlmExtractor {
    seed: u64,
    /// Probability of misjudging whether an image is an SMS screenshot.
    pub discrimination_error: f64,
}

impl LlmExtractor {
    /// Build with a seed.
    pub fn new(seed: u64) -> LlmExtractor {
        LlmExtractor {
            seed,
            discrimination_error: 0.01,
        }
    }

    fn unit(&self, s: &str, salt: u64) -> f64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.wrapping_mul(0x100_0000_01b3);
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= salt;
        h = h.wrapping_mul(0x100_0000_01b3);
        ((h ^ (h >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Rejoin wrapped bubble lines.
///
/// Only hard-split words (URLs, tracking codes) must be glued back without
/// a space — see [`should_glue`] for the cue cascade. A full-width line
/// that merely ends on a short word keeps its space: "verify at" +
/// "https://…" must not become "athttps://…".
pub(crate) fn rejoin_lines(lines: &[&str], width: usize) -> String {
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 < lines.len() && !should_glue(line, lines[i + 1], width) {
            out.push(' ');
        }
    }
    out
}

/// English function words that start lines after a URL that merely ended at
/// the wrap boundary — never glue into these.
const NON_CONTINUATION_WORDS: &[&str] = &[
    "to",
    "the",
    "now",
    "at",
    "or",
    "and",
    "for",
    "today",
    "please",
    "a",
    "in",
    "of",
    "is",
    "it",
    "on",
    "by",
    "x",
    "asap",
    "urgently",
    "immediately",
    // Common sentence enders in the non-English corpus.
    "hoy",
    "aqui",
    "aquí",
    "ahora",
    "vandaag",
    "oggi",
    "hier",
    "heute",
    "segera",
    "ngayon",
    "ici",
];

fn should_glue(line: &str, next: &str, width: usize) -> bool {
    if line.chars().count() < width {
        return false; // not full-width: the wrap broke at a word boundary
    }
    let last = line.rsplit(' ').next().unwrap_or("");
    let urlish = last.contains("://")
        || last.starts_with("www.")
        || last.contains("[.]")
        // The split may land inside the scheme itself ("https:"): prefixes
        // of 4+ chars count; shorter ones ("h") are indistinguishable from
        // ordinary words.
        || (last.len() >= 4 && ("https://".starts_with(last) || "http://".starts_with(last)));
    let giant = !line.contains(' ');
    if !(urlish || giant) {
        return false;
    }
    // Mid-token punctuation at the break is the strongest continuation cue:
    // URLs don't naturally stop at '?', '=', '&', '-', or '/' mid-text.
    if last.ends_with(['/', '?', '=', '&', '-', '.']) {
        return true;
    }
    let next_first = next.split(' ').next().unwrap_or("");
    if next_first.contains(['/', '.', '=', '&', '?']) || next_first.starts_with('-') {
        return true;
    }
    if next.chars().count() >= width {
        return true; // next line is itself full-width: still mid-token
    }
    // A short leading fragment ("ssion now", or a lone "m" when the URL is
    // the last thing in the message) is a split tail — unless it reads as a
    // plain function word ("to keep", trailing "now").
    let word = next_first
        .trim_end_matches(['.', ',', '!', '?', ':'])
        .to_ascii_lowercase();
    next_first.chars().count() <= 6 && !NON_CONTINUATION_WORDS.contains(&word.as_str())
}

/// First URL-looking token of a text, if any.
fn first_url_token(text: &str) -> Option<String> {
    for token in text.split_whitespace() {
        let t = token.trim_end_matches(['.', ',', '!', ';']);
        let lower = t.to_ascii_lowercase();
        if lower.starts_with("http://")
            || lower.starts_with("https://")
            || lower.starts_with("hxxp")
            || lower.starts_with("www.")
            || (lower.contains('.') && lower.contains('/'))
            || lower.contains("[.]")
        {
            return Some(t.to_string());
        }
    }
    None
}

impl Extractor for LlmExtractor {
    fn name(&self) -> &'static str {
        "llm-vision"
    }

    fn extract(&self, shot: &Screenshot) -> Extraction {
        let fingerprint: String = shot
            .blocks
            .iter()
            .map(|b| b.text.as_str())
            .collect::<Vec<_>>()
            .join("|");
        // SMS-vs-not discrimination with a small error rate.
        let believes_sms = if self.unit(&fingerprint, 1) < self.discrimination_error {
            !shot.is_sms
        } else {
            shot.is_sms
        };
        if !believes_sms {
            return Extraction::default();
        }
        if !shot.is_sms {
            // Misjudged a poster as an SMS: extract caption text as "SMS".
            let caption = shot
                .blocks_of(BlockKind::Caption)
                .iter()
                .map(|b| b.text.clone())
                .collect::<Vec<_>>()
                .join(" ");
            return Extraction {
                is_sms_screenshot: true,
                text: Some(caption),
                ..Extraction::default()
            };
        }

        let lines: Vec<&str> = shot
            .blocks_of(BlockKind::BubbleLine)
            .iter()
            .map(|b| b.text.as_str())
            .collect();
        let text = rejoin_lines(&lines, shot.theme.chars_per_line());
        let url = first_url_token(&text);
        let sender = shot
            .blocks_of(BlockKind::SenderHeader)
            .first()
            .map(|b| b.text.clone());
        let timestamp_raw = shot
            .blocks_of(BlockKind::Timestamp)
            .first()
            .map(|b| b.text.clone());
        Extraction {
            is_sms_screenshot: true,
            text: Some(text),
            url,
            sender,
            timestamp_raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::AppTheme;
    use crate::render::{render_noise_image, render_sms, RenderSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smishing_types::{CivilDateTime, Date, NoiseKind, TimeOfDay, TimestampStyle};

    fn spec(text: &str, url: Option<&str>, theme: AppTheme) -> RenderSpec {
        RenderSpec {
            sender: Some("+34612345678".into()),
            text: text.into(),
            url: url.map(str::to_string),
            received: CivilDateTime::new(
                Date::new(2023, 2, 17).unwrap(),
                TimeOfDay::new(16, 45, 0).unwrap(),
            ),
            timestamp_style: Some(TimestampStyle::EuSlash),
            theme,
            noise: 0.2,
        }
    }

    #[test]
    fn recovers_all_fields() {
        let mut rng = StdRng::seed_from_u64(1);
        let url = "https://correos-aduana-pagos.example.com/tasa/pagar/ahora";
        let text = format!("Correos: su paquete está retenido. Pague la tasa aquí: {url}");
        let shot = render_sms(&spec(&text, Some(url), AppTheme::WhatsApp), &mut rng);
        let e = LlmExtractor::new(7).extract(&shot);
        assert!(e.is_sms_screenshot);
        assert_eq!(e.sender.as_deref(), Some("+34612345678"));
        assert_eq!(e.timestamp_raw.as_deref(), Some("17/02/2023 16:45"));
        assert_eq!(e.url.as_deref(), Some(url), "wrapped URL must be rejoined");
        assert_eq!(
            e.text.as_deref(),
            Some(text.as_str()),
            "text reconstructed exactly"
        );
    }

    #[test]
    fn dismisses_posters() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dismissed = 0;
        let llm = LlmExtractor::new(7);
        for _ in 0..100 {
            let poster = render_noise_image(NoiseKind::AwarenessPoster, &mut rng);
            let e = llm.extract(&poster);
            if !e.is_sms_screenshot {
                dismissed += 1;
            }
        }
        assert!(dismissed >= 95, "{dismissed}/100 posters dismissed");
    }

    #[test]
    fn works_on_every_theme() {
        let llm = LlmExtractor::new(7);
        for (i, &theme) in AppTheme::ALL.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(10 + i as u64);
            let url = "https://bank-verify-secure-portal.example.org/x";
            let text = format!("Your account is suspended, verify at {url} today");
            let shot = render_sms(&spec(&text, Some(url), theme), &mut rng);
            let e = llm.extract(&shot);
            assert_eq!(e.url.as_deref(), Some(url), "{theme:?}");
        }
    }

    #[test]
    fn rejoin_inverts_wrap() {
        // Property: rejoin(wrap(text)) == text for any width, as long as no
        // word ends exactly at the boundary (the documented ambiguity).
        let texts = [
            "short words only here",
            "averyveryverylongwordthatneedshardsplitting plus tail",
            "URL https://this-is-a-very-long-domain-name.example.com/with/a/long/path end",
        ];
        for text in texts {
            for width in [10usize, 17, 30, 40] {
                let wrapped = crate::render::wrap(text, width);
                let lines: Vec<&str> = wrapped.iter().map(String::as_str).collect();
                let rejoined = rejoin_lines(&lines, width);
                // Allow the boundary ambiguity: compare ignoring spaces.
                assert_eq!(
                    rejoined.replace(' ', ""),
                    text.replace(' ', ""),
                    "width {width}: {wrapped:?}"
                );
            }
        }
    }

    #[test]
    fn no_url_means_none() {
        let mut rng = StdRng::seed_from_u64(3);
        let shot = render_sms(
            &spec(
                "Hi mum, my phone broke, text me back",
                None,
                AppTheme::Imessage,
            ),
            &mut rng,
        );
        let e = LlmExtractor::new(7).extract(&shot);
        assert_eq!(e.url, None);
    }
}
