//! Offline template clustering: connected components over the signature
//! graph.
//!
//! Two indexed texts get an edge when their signatures are within the
//! configured Hamming budget *and* their exact n-gram Jaccard clears the
//! (stricter) `cluster_jaccard` floor — the Jaccard gate keeps transitive
//! chaining from welding unrelated templates together. Components are
//! then compacted into dense `template_id`s in first-appearance order,
//! so the assignment is deterministic for a fixed build order.

use crate::index::SimIndex;
use crate::sig::hamming;
use smishing_stats::unionfind::UnionFind;
use smishing_textnlp::ngram::jaccard;

/// Assign every indexed text a template id via connected components.
/// Returns `(template_of_doc, template_count)`.
///
/// Edge discovery reuses the banded candidate generator, so the pass is
/// near-linear: complete within the guarantee radius, best-effort (but
/// deterministic) beyond it.
pub fn connected_templates(idx: &SimIndex) -> (Vec<u32>, u32) {
    let n = idx.len();
    let mut uf = UnionFind::new(n);
    let cfg = *idx.config();
    for i in 0..n as u32 {
        let si = idx.shingles_of(i);
        if si.is_empty() {
            continue;
        }
        let sig_i = idx.sig(i);
        for j in idx.candidates(sig_i) {
            if j <= i {
                continue;
            }
            if hamming(sig_i, idx.sig(j)) > cfg.max_hamming {
                continue;
            }
            if jaccard(si, idx.shingles_of(j)) < cfg.cluster_jaccard {
                continue;
            }
            uf.union(i as usize, j as usize);
        }
    }
    let template: Vec<u32> = uf.clusters().into_iter().map(|c| c as u32).collect();
    (template, uf.components() as u32)
}

/// Incremental template assignment for a rebuild in which *every* doc of
/// `prev` was reused (`old_to_new[old] = Some(new id)`) plus the brand-new
/// docs in `fresh`.
///
/// Produces exactly the [`connected_templates`] partition without
/// re-scanning old↔old pairs: reused docs keep their signatures and
/// shingles, so the old↔old edge set is unchanged — band collisions,
/// Hamming, and Jaccard all depend only on the two endpoints — and its
/// transitive closure is the previous partition, which spanning unions
/// re-impose directly. Only edges incident to a new doc can be new, and
/// those are discovered from the new side (candidate generation is
/// symmetric, so every such edge is seen).
///
/// Dense ids come out identical too: [`UnionFind::clusters`] assigns them
/// by first appearance in doc order, independent of union order.
pub fn incremental_templates(
    idx: &SimIndex,
    prev: &SimIndex,
    old_to_new: &[Option<u32>],
    fresh: &[u32],
) -> (Vec<u32>, u32) {
    let n = idx.len();
    let mut uf = UnionFind::new(n);
    let cfg = *idx.config();
    // Re-impose the previous partition: union each reused doc with the
    // first reused doc of its previous template.
    let mut first_of: Vec<Option<u32>> = vec![None; prev.template_count() as usize];
    for (old, new) in old_to_new.iter().enumerate() {
        let new = new.expect("incremental templates require every prev doc reused");
        let t = prev.template_of(old as u32) as usize;
        match first_of[t] {
            Some(f) => {
                uf.union(f as usize, new as usize);
            }
            None => first_of[t] = Some(new),
        }
    }
    // Discover the edges incident to new docs, with the same gates as the
    // full pass (empty-shingle docs never edge: the outer skip here, the
    // zero Jaccard against a non-empty peer otherwise).
    for &i in fresh {
        let si = idx.shingles_of(i);
        if si.is_empty() {
            continue;
        }
        let sig_i = idx.sig(i);
        for j in idx.candidates(sig_i) {
            if j == i {
                continue;
            }
            if hamming(sig_i, idx.sig(j)) > cfg.max_hamming {
                continue;
            }
            if jaccard(si, idx.shingles_of(j)) < cfg.cluster_jaccard {
                continue;
            }
            uf.union(i as usize, j as usize);
        }
    }
    let template: Vec<u32> = uf.clusters().into_iter().map(|c| c as u32).collect();
    (template, uf.components() as u32)
}

#[cfg(test)]
mod tests {
    use crate::index::SimIndex;

    #[test]
    fn singletons_without_similar_peers() {
        let idx = SimIndex::build([
            "win a free cruise, claim your prize today",
            "your electricity bill is overdue, settle now",
            "package delivery failed, reschedule required",
        ]);
        assert_eq!(idx.template_count(), 3);
        let ids: Vec<u32> = (0..3).map(|i| idx.template_of(i)).collect();
        assert_eq!(ids, vec![0, 1, 2], "first-appearance dense ids");
    }

    #[test]
    fn empty_texts_never_cluster_together() {
        let idx = SimIndex::build([
            "https://url-only-one.test/a",
            "https://url-only-two.test/b",
            "actual words in a message here",
        ]);
        assert_ne!(idx.template_of(0), idx.template_of(1));
        assert_eq!(idx.template_count(), 3);
    }

    #[test]
    fn variants_share_a_template_across_url_rotation() {
        let idx = SimIndex::build([
            "Revolut: unusual sign-in detected, secure your account at https://rev-one.top/x now",
            "Revolut: unusual sign-in detected, secure your account at https://rev-two.xyz/y now",
            "totally different message about a dentist appointment on tuesday",
        ]);
        assert_eq!(idx.template_of(0), idx.template_of(1));
        assert_ne!(idx.template_of(0), idx.template_of(2));
        assert_eq!(idx.template_count(), 2);
    }
}
