//! Offline template clustering: connected components over the signature
//! graph.
//!
//! Two indexed texts get an edge when their signatures are within the
//! configured Hamming budget *and* their exact n-gram Jaccard clears the
//! (stricter) `cluster_jaccard` floor — the Jaccard gate keeps transitive
//! chaining from welding unrelated templates together. Components are
//! then compacted into dense `template_id`s in first-appearance order,
//! so the assignment is deterministic for a fixed build order.

use crate::index::SimIndex;
use crate::sig::hamming;
use smishing_stats::unionfind::UnionFind;
use smishing_textnlp::ngram::jaccard;

/// Assign every indexed text a template id via connected components.
/// Returns `(template_of_doc, template_count)`.
///
/// Edge discovery reuses the banded candidate generator, so the pass is
/// near-linear: complete within the guarantee radius, best-effort (but
/// deterministic) beyond it.
pub fn connected_templates(idx: &SimIndex) -> (Vec<u32>, u32) {
    let n = idx.len();
    let mut uf = UnionFind::new(n);
    let cfg = *idx.config();
    for i in 0..n as u32 {
        let si = idx.shingles_of(i);
        if si.is_empty() {
            continue;
        }
        let sig_i = idx.sig(i);
        for j in idx.candidates(sig_i) {
            if j <= i {
                continue;
            }
            if hamming(sig_i, idx.sig(j)) > cfg.max_hamming {
                continue;
            }
            if jaccard(si, idx.shingles_of(j)) < cfg.cluster_jaccard {
                continue;
            }
            uf.union(i as usize, j as usize);
        }
    }
    let template: Vec<u32> = uf.clusters().into_iter().map(|c| c as u32).collect();
    (template, uf.components() as u32)
}

#[cfg(test)]
mod tests {
    use crate::index::SimIndex;

    #[test]
    fn singletons_without_similar_peers() {
        let idx = SimIndex::build([
            "win a free cruise, claim your prize today",
            "your electricity bill is overdue, settle now",
            "package delivery failed, reschedule required",
        ]);
        assert_eq!(idx.template_count(), 3);
        let ids: Vec<u32> = (0..3).map(|i| idx.template_of(i)).collect();
        assert_eq!(ids, vec![0, 1, 2], "first-appearance dense ids");
    }

    #[test]
    fn empty_texts_never_cluster_together() {
        let idx = SimIndex::build([
            "https://url-only-one.test/a",
            "https://url-only-two.test/b",
            "actual words in a message here",
        ]);
        assert_ne!(idx.template_of(0), idx.template_of(1));
        assert_eq!(idx.template_count(), 3);
    }

    #[test]
    fn variants_share_a_template_across_url_rotation() {
        let idx = SimIndex::build([
            "Revolut: unusual sign-in detected, secure your account at https://rev-one.top/x now",
            "Revolut: unusual sign-in detected, secure your account at https://rev-two.xyz/y now",
            "totally different message about a dentist appointment on tuesday",
        ]);
        assert_eq!(idx.template_of(0), idx.template_of(1));
        assert_ne!(idx.template_of(0), idx.template_of(2));
        assert_eq!(idx.template_count(), 2);
    }
}
