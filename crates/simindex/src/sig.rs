//! 64-bit SimHash signatures over hashed n-gram shingles.
//!
//! Charikar-style SimHash: every shingle hash votes ±1 on each of the 64
//! signature bits, and the sign of the tally becomes the bit. Similar
//! shingle sets therefore produce signatures at small Hamming distance,
//! which is what the banded index exploits.

use smishing_textnlp::ngram::hashed_ngrams;

/// SplitMix64 finalizer — diffuses FNV shingle hashes so every signature
/// bit sees an independent coin flip.
fn diffuse(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// 64-bit SimHash of a shingle set. The empty set hashes to 0.
pub fn simhash(shingles: &[u64]) -> u64 {
    let mut votes = [0i32; 64];
    for &s in shingles {
        let h = diffuse(s);
        for (b, v) in votes.iter_mut().enumerate() {
            if (h >> b) & 1 == 1 {
                *v += 1;
            } else {
                *v -= 1;
            }
        }
    }
    let mut sig = 0u64;
    for (b, &v) in votes.iter().enumerate() {
        if v > 0 {
            sig |= 1 << b;
        }
    }
    sig
}

/// Hamming distance between two signatures.
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// Order-insensitive hash of a whole shingle set — a cheap stable
/// fingerprint for negative-result caching.
pub fn set_hash(shingles: &[u64]) -> u64 {
    shingles
        .iter()
        .fold(shingles.len() as u64, |acc, &s| acc ^ diffuse(s))
}

/// A query prepared for the index: the text's shingle set and signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimQuery {
    /// 64-bit SimHash of the shingle set.
    pub sig: u64,
    /// Sorted, deduplicated n-gram shingle hashes.
    pub shingles: Vec<u64>,
}

impl SimQuery {
    /// Shingle and sign `text` with character n-grams of size `ngram`.
    pub fn of(text: &str, ngram: usize) -> SimQuery {
        let shingles = hashed_ngrams(text, ngram);
        let sig = simhash(&shingles);
        SimQuery { sig, shingles }
    }

    /// Whether the text produced no shingles (empty or URL-only).
    pub fn is_empty(&self) -> bool {
        self.shingles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_identical_signatures() {
        let a = SimQuery::of("your parcel is held, pay the customs fee", 4);
        let b = SimQuery::of("your parcel is held, pay the customs fee", 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn near_duplicates_are_close_unrelated_far() {
        let a = SimQuery::of(
            "USPS: your parcel is held at the depot, pay the fee to release it",
            4,
        );
        let b = SimQuery::of(
            "USPS: your parcel is held at the depot, pay the toll to release it",
            4,
        );
        let c = SimQuery::of("are we still on for dinner tonight with the kids", 4);
        let near = hamming(a.sig, b.sig);
        let far = hamming(a.sig, c.sig);
        assert!(near < far, "near={near} far={far}");
    }

    #[test]
    fn empty_set_signs_to_zero() {
        assert_eq!(simhash(&[]), 0);
        assert!(SimQuery::of("https://only-a-url.test/x", 4).is_empty());
    }

    #[test]
    fn hamming_is_a_metric_on_bits() {
        assert_eq!(hamming(0, 0), 0);
        assert_eq!(hamming(u64::MAX, 0), 64);
        assert_eq!(hamming(0b1010, 0b0110), 2);
    }

    #[test]
    fn set_hash_is_order_insensitive_but_content_sensitive() {
        assert_eq!(set_hash(&[1, 2, 3]), set_hash(&[3, 2, 1]));
        assert_ne!(set_hash(&[1, 2, 3]), set_hash(&[1, 2, 4]));
        assert_ne!(set_hash(&[]), set_hash(&[0]));
    }
}
