//! # smishing-simindex
//!
//! Near-duplicate message index for the intelligence serving layer — the
//! similarity tier that catches campaigns after they rotate every exact
//! indicator (URL, domain, sender, phone), the evasion the paper's RQ2
//! lure analysis groups into campaign templates.
//!
//! Three pieces:
//!
//! - [`sig`]: 64-bit SimHash signatures over hashed character n-grams
//!   (shingling lives in `smishing_textnlp::ngram` so the index and any
//!   other consumer tokenize identically),
//! - [`index`]: [`SimIndex`] — a flat, cache-friendly layout (one
//!   contiguous `u64` signature array, one contiguous shingle pool,
//!   packed per-band postings) with banded-prefix candidate generation:
//!   each signature is split into `k` bands, each band hash-bucketed, and
//!   a query unions its `k` bucket lists, ranks by Hamming distance, then
//!   re-ranks survivors by exact n-gram Jaccard,
//! - [`cluster`]: an offline connected-components pass over the signature
//!   graph that assigns every indexed text a dense `template_id` — the
//!   campaign-template clusters of the paper's lure analysis.
//!
//! The index is immutable after [`SimIndex::build`]: it is constructed
//! once per epoch alongside the intel snapshot and published through the
//! same epoch-swapped `Arc`, so the read path takes zero locks.
//!
//! By pigeonhole, banded candidate generation is *complete* up to
//! Hamming distance `bands - 1` ([`SimIndex::guarantee_radius`]): a pair
//! closer than that differs in fewer bits than there are bands, so at
//! least one band is untouched and they collide in that band's bucket.
//! Beyond the guarantee radius recall is best-effort but deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod index;
pub mod sig;

pub use index::{DocInput, NearResult, SimConfig, SimIndex, SimMatch};
pub use sig::{hamming, set_hash, simhash, SimQuery};
