//! The flat banded SimHash index.
//!
//! Layout (all contiguous, no per-entry allocation on the read path):
//!
//! ```text
//! sigs:        [u64; n]                  one signature per indexed text
//! shingle_pool:[u64; Σ shingles]         all shingle sets, back to back
//! shingle_off: [u32; n+1]                text i's shingles = pool[off[i]..off[i+1]]
//! postings:    [u32; bands * n]          per-band doc-id lists, bucket-sorted
//! bucket_off:  [u32; bands * (buckets+1)] per-band prefix offsets into postings
//! template:    [u32; n]                  connected-components template id
//! ```
//!
//! A query extracts one `64/bands`-bit key per band from its signature,
//! slices that band's bucket out of `postings`, unions the `bands`
//! slices, ranks by Hamming distance, and re-ranks the closest survivors
//! by exact n-gram Jaccard.

use crate::cluster;
use crate::sig::{hamming, SimQuery};
use smishing_textnlp::ngram::jaccard;

/// Tuning knobs for the similarity index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Character n-gram size for shingling.
    pub ngram: usize,
    /// Number of signature bands; must divide 64. Candidate generation is
    /// complete up to Hamming distance `bands - 1`.
    pub bands: u32,
    /// Maximum Hamming distance for a candidate to be rankable.
    pub max_hamming: u32,
    /// Minimum exact n-gram Jaccard for a ranked candidate to be accepted
    /// as a match.
    pub min_jaccard: f64,
    /// Stricter Jaccard floor for template-clustering edges, so transitive
    /// chaining cannot weld unrelated templates together.
    pub cluster_jaccard: f64,
    /// How many Hamming-ranked candidates get the exact-Jaccard re-rank.
    pub rerank: usize,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            ngram: 4,
            bands: 16,
            max_hamming: 20,
            min_jaccard: 0.30,
            cluster_jaccard: 0.40,
            rerank: 48,
        }
    }
}

/// One accepted near-duplicate match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimMatch {
    /// Index of the matched text (== intel entry id when built over a
    /// snapshot's entries).
    pub id: u32,
    /// Hamming distance between query and matched signatures.
    pub hamming: u32,
    /// Exact n-gram Jaccard similarity in `[0, 1]`.
    pub jaccard: f64,
}

/// Result of a near query: accepted matches plus per-stage candidate
/// accounting — how many docs the banded generator produced, how many
/// survived the Hamming filter, and how many got the exact-Jaccard
/// re-rank. `candidates` is the load-shedding signal the bench
/// histograms track; the stage counts let a request trace show where a
/// slow similarity probe spent its work.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NearResult {
    /// Accepted matches, best first (Hamming asc, then Jaccard desc).
    pub matches: Vec<SimMatch>,
    /// Distinct candidates produced by the banded generator.
    pub candidates: usize,
    /// Candidates within `max_hamming` of the query signature.
    pub ranked: usize,
    /// Hamming-ranked candidates that received the exact-Jaccard re-rank
    /// (≤ `rerank`).
    pub reranked: usize,
}

/// One document of a [`SimIndex::rebuild`] call: either new text to
/// shingle and sign from scratch, or a doc id in the previous index whose
/// signature and shingle set carry over unchanged — the reuse that makes
/// an epoch rebuild O(new docs) instead of O(corpus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocInput<'a> {
    /// New text: shingle + sign from scratch.
    Text(&'a str),
    /// Carry over the signature and shingles of doc `id` in the previous
    /// index. Each previous doc may be reused at most once.
    Reuse(u32),
}

/// Immutable banded SimHash index over a corpus of message texts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimIndex {
    cfg: SimConfig,
    n: u32,
    sigs: Vec<u64>,
    shingle_pool: Vec<u64>,
    shingle_off: Vec<u32>,
    postings: Vec<u32>,
    bucket_off: Vec<u32>,
    template: Vec<u32>,
    n_templates: u32,
}

impl SimIndex {
    /// Build the index over `texts` with the default [`SimConfig`].
    pub fn build<'a, I>(texts: I) -> SimIndex
    where
        I: IntoIterator<Item = &'a str>,
    {
        SimIndex::build_with(texts, SimConfig::default())
    }

    /// Build the index over `texts`. Text order defines doc ids, so two
    /// builds over the same sequence are identical — the property that
    /// makes mid-stream republished indexes answer like batch builds.
    pub fn build_with<'a, I>(texts: I, cfg: SimConfig) -> SimIndex
    where
        I: IntoIterator<Item = &'a str>,
    {
        assert!(
            cfg.bands >= 1 && 64 % cfg.bands == 0,
            "bands must divide 64, got {}",
            cfg.bands
        );
        let mut sigs = Vec::new();
        let mut shingle_pool = Vec::new();
        let mut shingle_off = vec![0u32];
        for text in texts {
            let q = SimQuery::of(text, cfg.ngram);
            sigs.push(q.sig);
            shingle_pool.extend_from_slice(&q.shingles);
            shingle_off.push(shingle_pool.len() as u32);
        }
        let mut idx = SimIndex::pack(cfg, sigs, shingle_pool, shingle_off);
        let (template, n_templates) = cluster::connected_templates(&idx);
        idx.template = template;
        idx.n_templates = n_templates;
        idx
    }

    /// Rebuild the index for a new epoch, inheriting `prev`'s
    /// configuration. [`DocInput::Reuse`] docs copy their signature and
    /// shingle set out of `prev` instead of re-shingling, and when *every*
    /// doc of `prev` is reused (pure growth, no eviction) the template
    /// components update incrementally — only edges incident to new docs
    /// are discovered, and the previous partition is re-imposed by
    /// spanning unions. The result is byte-identical to
    /// [`SimIndex::build_with`] over the equivalent text sequence.
    pub fn rebuild<'a, I>(prev: &SimIndex, docs: I) -> SimIndex
    where
        I: IntoIterator<Item = DocInput<'a>>,
    {
        let cfg = prev.cfg;
        let mut sigs = Vec::new();
        let mut shingle_pool = Vec::new();
        let mut shingle_off = vec![0u32];
        let mut old_to_new: Vec<Option<u32>> = vec![None; prev.n as usize];
        let mut fresh: Vec<u32> = Vec::new();
        for doc in docs {
            let id = sigs.len() as u32;
            match doc {
                DocInput::Text(text) => {
                    let q = SimQuery::of(text, cfg.ngram);
                    sigs.push(q.sig);
                    shingle_pool.extend_from_slice(&q.shingles);
                    fresh.push(id);
                }
                DocInput::Reuse(old) => {
                    sigs.push(prev.sig(old));
                    shingle_pool.extend_from_slice(prev.shingles_of(old));
                    debug_assert!(
                        old_to_new[old as usize].is_none(),
                        "prev doc {old} reused twice"
                    );
                    old_to_new[old as usize] = Some(id);
                }
            }
            shingle_off.push(shingle_pool.len() as u32);
        }

        let mut idx = SimIndex::pack(cfg, sigs, shingle_pool, shingle_off);
        let all_reused = old_to_new.iter().all(|m| m.is_some());
        let (template, n_templates) = if all_reused {
            cluster::incremental_templates(&idx, prev, &old_to_new, &fresh)
        } else {
            // Some previous doc was evicted: its unions are no longer
            // valid, so rediscover components from scratch (shingling —
            // the expensive part — was still reused above).
            cluster::connected_templates(&idx)
        };
        idx.template = template;
        idx.n_templates = n_templates;
        idx
    }

    /// Pack signatures + shingles into the flat layout: counting-sorted
    /// per-band postings with prefix offsets. Templates are left empty.
    fn pack(
        cfg: SimConfig,
        sigs: Vec<u64>,
        shingle_pool: Vec<u64>,
        shingle_off: Vec<u32>,
    ) -> SimIndex {
        let n = sigs.len();
        let bands = cfg.bands as usize;
        let width = 64 / bands;
        let buckets = 1usize << width;
        let mut bucket_off = vec![0u32; bands * (buckets + 1)];
        let mut postings = vec![0u32; bands * n];
        for b in 0..bands {
            let base = b * (buckets + 1);
            for &s in &sigs {
                bucket_off[base + band_key(s, b, width) + 1] += 1;
            }
            for k in 0..buckets {
                bucket_off[base + k + 1] += bucket_off[base + k];
            }
            let mut cursor: Vec<u32> = bucket_off[base..base + buckets].to_vec();
            for (id, &s) in sigs.iter().enumerate() {
                let k = band_key(s, b, width);
                postings[b * n + cursor[k] as usize] = id as u32;
                cursor[k] += 1;
            }
        }
        SimIndex {
            cfg,
            n: n as u32,
            sigs,
            shingle_pool,
            shingle_off,
            postings,
            bucket_off,
            template: Vec::new(),
            n_templates: 0,
        }
    }

    /// Number of indexed texts.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Whether the index holds no texts.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Hamming radius within which banded candidate generation is provably
    /// complete (pigeonhole over the bands).
    pub fn guarantee_radius(&self) -> u32 {
        self.cfg.bands - 1
    }

    /// Signature of doc `id`.
    pub fn sig(&self, id: u32) -> u64 {
        self.sigs[id as usize]
    }

    /// Shingle set of doc `id` (sorted, deduplicated).
    pub fn shingles_of(&self, id: u32) -> &[u64] {
        let (a, b) = (
            self.shingle_off[id as usize] as usize,
            self.shingle_off[id as usize + 1] as usize,
        );
        &self.shingle_pool[a..b]
    }

    /// Template (connected-component) id of doc `id`.
    pub fn template_of(&self, id: u32) -> u32 {
        self.template[id as usize]
    }

    /// Number of distinct template ids.
    pub fn template_count(&self) -> u32 {
        self.n_templates
    }

    /// Prepare a query against this index's shingling configuration.
    pub fn query(&self, text: &str) -> SimQuery {
        SimQuery::of(text, self.cfg.ngram)
    }

    /// Union of the query signature's band buckets: every doc sharing at
    /// least one full band with `sig`, sorted and deduplicated. Superset
    /// of all docs within [`Self::guarantee_radius`] of `sig`.
    pub fn candidates(&self, sig: u64) -> Vec<u32> {
        let n = self.n as usize;
        if n == 0 {
            return Vec::new();
        }
        let bands = self.cfg.bands as usize;
        let width = 64 / bands;
        let buckets = 1usize << width;
        let mut out = Vec::new();
        for b in 0..bands {
            let base = b * (buckets + 1);
            let k = band_key(sig, b, width);
            let (lo, hi) = (
                self.bucket_off[base + k] as usize,
                self.bucket_off[base + k + 1] as usize,
            );
            out.extend_from_slice(&self.postings[b * n + lo..b * n + hi]);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Top-`k` accepted near-duplicates of `q`: banded candidates, Hamming
    /// filter at `max_hamming`, exact-Jaccard re-rank of the closest
    /// `rerank`, acceptance at `min_jaccard`.
    pub fn nearest(&self, q: &SimQuery, k: usize) -> NearResult {
        if q.is_empty() || self.n == 0 || k == 0 {
            return NearResult::default();
        }
        let cand = self.candidates(q.sig);
        let candidates = cand.len();
        let mut ranked: Vec<(u32, u32)> = cand
            .into_iter()
            .filter_map(|id| {
                let d = hamming(q.sig, self.sigs[id as usize]);
                (d <= self.cfg.max_hamming).then_some((d, id))
            })
            .collect();
        let n_ranked = ranked.len();
        ranked.sort_unstable();
        ranked.truncate(self.cfg.rerank);
        let n_reranked = ranked.len();
        let mut matches: Vec<SimMatch> = ranked
            .into_iter()
            .filter_map(|(d, id)| {
                let j = jaccard(&q.shingles, self.shingles_of(id));
                (j >= self.cfg.min_jaccard).then_some(SimMatch {
                    id,
                    hamming: d,
                    jaccard: j,
                })
            })
            .collect();
        matches.sort_by(|a, b| {
            a.hamming
                .cmp(&b.hamming)
                .then(b.jaccard.total_cmp(&a.jaccard))
                .then(a.id.cmp(&b.id))
        });
        matches.truncate(k);
        NearResult {
            matches,
            candidates,
            ranked: n_ranked,
            reranked: n_reranked,
        }
    }
}

/// The `band`-th `width`-bit key of `sig`.
fn band_key(sig: u64, band: usize, width: usize) -> usize {
    ((sig >> (band * width)) & ((1u64 << width) - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "USPS: your parcel is held at the depot, pay the customs fee at https://a.example/1 to release it",
            "USPS: your parcel is held at the depot, pay the customs fee at https://b.example/2 to release it",
            "USPS: your parcel is held at the depot, pay the release fee at https://c.example/3 to release it",
            "Chase alert: your account has been locked, verify your identity at https://d.example/4 immediately",
            "Chase alert: your account has been locked, confirm your identity at https://e.example/5 immediately",
            "Hi grandma, this is my new number, my old phone broke, text me back when you can",
        ]
    }

    #[test]
    fn builds_are_deterministic() {
        let texts = corpus();
        let a = SimIndex::build(texts.iter().copied());
        let b = SimIndex::build(texts.iter().copied());
        assert_eq!(a, b);
        assert_eq!(a.len(), texts.len());
    }

    #[test]
    fn identical_text_is_its_own_nearest_match() {
        // Docs 0 and 1 differ only in URL, so they are shingle-identical;
        // the top match for either is the shingle-equal doc with the
        // lowest id, at Hamming 0 / Jaccard 1.
        let texts = corpus();
        let idx = SimIndex::build(texts.iter().copied());
        for (i, t) in texts.iter().enumerate() {
            let q = idx.query(t);
            let r = idx.nearest(&q, 1);
            let m = r.matches.first().expect("self-match");
            assert_eq!(m.hamming, 0, "{t}");
            assert!((m.jaccard - 1.0).abs() < 1e-12, "{t}");
            assert_eq!(idx.shingles_of(m.id), &q.shingles[..], "{t}");
            assert!(m.id as usize <= i);
        }
    }

    #[test]
    fn rotated_url_variant_matches_its_family() {
        let texts = corpus();
        let idx = SimIndex::build(texts.iter().copied());
        // Same template, fresh URL never indexed.
        let probe = "USPS: your parcel is held at the depot, pay the customs fee at https://zz.example/99 to release it";
        let r = idx.nearest(&idx.query(probe), 3);
        assert!(!r.matches.is_empty());
        assert!(r.matches.iter().all(|m| m.id <= 2), "{:?}", r.matches);
        assert!(r.candidates >= r.matches.len());
    }

    #[test]
    fn stage_accounting_is_monotone() {
        let texts = corpus();
        let idx = SimIndex::build(texts.iter().copied());
        let probe = "USPS: your parcel is held at the depot, pay the customs fee at https://zz.example/99 to release it";
        let r = idx.nearest(&idx.query(probe), 3);
        // Each stage can only shrink the set.
        assert!(r.candidates >= r.ranked, "{r:?}");
        assert!(r.ranked >= r.reranked, "{r:?}");
        assert!(r.reranked >= r.matches.len(), "{r:?}");
        assert!(r.reranked <= idx.config().rerank, "{r:?}");
        assert!(r.ranked > 0, "template family must survive Hamming");
        let empty = idx.nearest(&idx.query(""), 3);
        assert_eq!((empty.candidates, empty.ranked, empty.reranked), (0, 0, 0));
    }

    #[test]
    fn unrelated_text_is_rejected() {
        let idx = SimIndex::build(corpus().iter().copied());
        let r = idx.nearest(&idx.query("lunch tomorrow at the usual place?"), 3);
        assert!(r.matches.is_empty(), "{:?}", r.matches);
    }

    #[test]
    fn empty_query_and_empty_index() {
        let idx = SimIndex::build(corpus().iter().copied());
        assert!(idx
            .nearest(&idx.query("https://only.a.url/x"), 3)
            .matches
            .is_empty());
        let empty = SimIndex::build(std::iter::empty());
        assert!(empty.is_empty());
        assert!(empty
            .nearest(&idx.query("anything at all"), 3)
            .matches
            .is_empty());
    }

    #[test]
    fn postings_partition_every_band() {
        let texts = corpus();
        let idx = SimIndex::build(texts.iter().copied());
        let n = idx.len();
        let bands = idx.config().bands as usize;
        let buckets = 1usize << (64 / bands);
        for b in 0..bands {
            let base = b * (buckets + 1);
            assert_eq!(idx.bucket_off[base], 0);
            assert_eq!(idx.bucket_off[base + buckets] as usize, n);
            let mut seen: Vec<u32> = idx.postings[b * n..(b + 1) * n].to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..n as u32).collect::<Vec<_>>(), "band {b}");
        }
    }

    #[test]
    fn candidates_cover_guarantee_radius_brute_force() {
        let texts = corpus();
        let idx = SimIndex::build(texts.iter().copied());
        let r = idx.guarantee_radius();
        for i in 0..idx.len() as u32 {
            let sig = idx.sig(i);
            let cand = idx.candidates(sig);
            for j in 0..idx.len() as u32 {
                if crate::sig::hamming(sig, idx.sig(j)) <= r {
                    assert!(cand.binary_search(&j).is_ok(), "doc {j} within {r} of {i}");
                }
            }
        }
    }

    #[test]
    fn templates_group_families() {
        let texts = corpus();
        let idx = SimIndex::build(texts.iter().copied());
        assert_eq!(idx.template_of(0), idx.template_of(1));
        assert_eq!(idx.template_of(0), idx.template_of(2));
        assert_eq!(idx.template_of(3), idx.template_of(4));
        assert_ne!(idx.template_of(0), idx.template_of(3));
        assert_ne!(idx.template_of(0), idx.template_of(5));
        assert_eq!(idx.template_count(), 3);
    }

    #[test]
    fn bands_four_also_covers_its_radius() {
        let cfg = SimConfig {
            bands: 4,
            ..SimConfig::default()
        };
        let texts = corpus();
        let idx = SimIndex::build_with(texts.iter().copied(), cfg);
        assert_eq!(idx.guarantee_radius(), 3);
        let probe = idx.query(texts[1]);
        let r = idx.nearest(&probe, 1);
        // Doc 0 is shingle-identical to doc 1 (URL-only difference) and
        // wins the tie by id.
        assert_eq!(r.matches.first().map(|m| m.id), Some(0));
        assert_eq!(r.matches.first().map(|m| m.hamming), Some(0));
    }
}
