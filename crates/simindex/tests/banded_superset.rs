//! The banded candidate generator's completeness contract, property-tested:
//! for any query, the band-bucket union contains *every* indexed document
//! within the pigeonhole guarantee radius (`bands − 1` differing bits), i.e.
//! banded candidates ⊇ the brute-force linear scan at that radius — over
//! corpora produced by real pipeline runs across shard counts {1, 4} and
//! fault profiles {none, mild} (the same grid `index_equivalence.rs` pins
//! for the exact indexes), and for both the default and a coarse 4-band
//! configuration.

use proptest::prelude::*;
use smishing_core::exec::ExecPlan;
use smishing_core::pipeline::Pipeline;
use smishing_fault::FaultPlan;
use smishing_obs::Obs;
use smishing_simindex::{hamming, SimConfig, SimIndex};
use smishing_worldsim::{World, WorldConfig};
use std::collections::HashSet;
use std::sync::OnceLock;

/// (shards, mild faults?) — the grid the satellite pins.
const CONFIGS: [(usize, bool); 4] = [(1, false), (4, false), (1, true), (4, true)];

struct Built {
    texts: Vec<String>,
    default_idx: SimIndex,
    coarse_idx: SimIndex,
}

fn built(cfg_idx: usize) -> &'static Built {
    static CELLS: [OnceLock<Built>; 4] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    CELLS[cfg_idx].get_or_init(|| {
        let (shards, faulty) = CONFIGS[cfg_idx];
        let mut world = World::generate(WorldConfig {
            scale: 0.01,
            seed: 11,
            ..WorldConfig::default()
        });
        if faulty {
            world.set_fault_plan(&FaultPlan::mild(0xFA11));
        }
        let pipeline = Pipeline {
            exec: ExecPlan {
                shards,
                ..ExecPlan::default()
            },
            ..Pipeline::default()
        };
        let out = pipeline.run(&world, &Obs::noop());
        let texts: Vec<String> = out.records.iter().map(|r| r.curated.text.clone()).collect();
        let default_idx = SimIndex::build(texts.iter().map(|s| s.as_str()));
        let coarse_idx = SimIndex::build_with(
            texts.iter().map(|s| s.as_str()),
            SimConfig {
                bands: 4,
                ..SimConfig::default()
            },
        );
        Built {
            texts,
            default_idx,
            coarse_idx,
        }
    })
}

/// The oracle: every indexed document within `radius` bits of `sig`.
fn brute_force_within(idx: &SimIndex, sig: u64, radius: u32) -> Vec<u32> {
    (0..idx.len() as u32)
        .filter(|&i| hamming(sig, idx.sig(i)) <= radius)
        .collect()
}

/// Banded candidates must be a superset of the brute-force scan at the
/// guarantee radius, and everything `nearest` returns must have come from
/// the candidate set while obeying the configured filters.
fn assert_superset(idx: &SimIndex, text: &str) {
    let q = idx.query(text);
    if q.is_empty() {
        return;
    }
    let radius = idx.guarantee_radius();
    let cands: HashSet<u32> = idx.candidates(q.sig).into_iter().collect();
    for id in brute_force_within(idx, q.sig, radius) {
        assert!(
            cands.contains(&id),
            "doc {id} lies within guarantee radius {radius} but the banded \
             generator never surfaced it"
        );
    }
    let r = idx.nearest(&q, 5);
    assert!(
        r.candidates >= cands.len().min(1),
        "candidate count reported"
    );
    for m in &r.matches {
        assert!(cands.contains(&m.id), "match {} not a candidate", m.id);
        assert!(m.hamming <= idx.config().max_hamming);
        assert!(m.jaccard >= idx.config().min_jaccard);
    }
}

/// A deterministic sweep: every seventh corpus text, verbatim, on every
/// config — the non-fuzzed floor under the property below.
#[test]
fn corpus_texts_are_always_covered() {
    for cfg_idx in 0..CONFIGS.len() {
        let b = built(cfg_idx);
        assert!(!b.texts.is_empty(), "pipeline produced a corpus");
        for text in b.texts.iter().step_by(7) {
            assert_superset(&b.default_idx, text);
            assert_superset(&b.coarse_idx, text);
        }
    }
}

/// Shard count and mild faults must not change the similarity index at
/// all: the engine's byte-identity invariant extends to signatures,
/// postings, and template assignments.
#[test]
fn sharding_and_mild_faults_never_change_the_index() {
    assert_eq!(built(0).default_idx, built(1).default_idx, "shards 1 vs 4");
    assert_eq!(
        built(2).default_idx,
        built(3).default_idx,
        "mild: shards 1 vs 4"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzzed queries — verbatim, token-appended, and URL-rotated variants
    /// of real corpus texts — never escape the banded superset guarantee.
    #[test]
    fn banded_candidates_cover_the_guarantee_radius(
        cfg_idx in 0usize..CONFIGS.len(),
        pick in 0usize..4096usize,
        salt in 0u64..u64::MAX,
    ) {
        let b = built(cfg_idx);
        prop_assume!(!b.texts.is_empty());
        let base = &b.texts[pick % b.texts.len()];
        let query = match salt % 3 {
            0 => base.clone(),
            // An appended token perturbs the signature a few bits.
            1 => format!("{base} urgent{salt:x}"),
            // Rotating the URL models a campaign moving infrastructure.
            _ => base
                .split_whitespace()
                .map(|w| {
                    if w.contains("://") || w.starts_with("www.") {
                        format!("https://rot-{salt:x}.example/p")
                    } else {
                        w.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join(" "),
        };
        assert_superset(&b.default_idx, &query);
        assert_superset(&b.coarse_idx, &query);
    }
}
