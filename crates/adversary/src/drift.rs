//! Per-epoch drift scorecard: how the triage ladder degrades and recovers
//! while campaigns rotate out from under it.
//!
//! [`drift_scorecard`] replays the adversarial stream through the
//! incremental epoch engine (`SnapshotPlan::every(epoch_posts)` →
//! [`IntelSnapshot::build_incremental`] → [`IntelHub::publish_arc`]) and,
//! at every boundary:
//!
//! 1. **probes** the waves landing at that boundary *before* their reports
//!    are ingested, attributing each rotated message to the ladder rung
//!    that resolved it ([`RungCounts`]) — this is the defender's blind
//!    spot, measured;
//! 2. **checks re-acquisition** of every still-dark wave by querying its
//!    probe URLs against the fresh snapshot, recording time-to-reacquire
//!    in epochs once an exact rung answers.
//!
//! The expected shape — pinned by tests and the CI drift soak — is the
//! paper's arms-race story told in numbers: the exact rung collapses on
//! rotated indicators, the similarity rung holds recall up via the lure
//! text, and each wave is re-acquired one epoch later once victims report
//! the fresh infrastructure. Respelled apexes never even go dark, because
//! host folding (`webinfra::fold_host` + punycode decode) normalizes them
//! to the indexed apex.

use crate::AdversaryWorld;
use smishing_core::curation::CurationOptions;
use smishing_core::exec::{ingest, ExecPlan, SnapshotPlan};
use smishing_intel::{
    rung_of, BuildOptions, IntelHub, IntelSnapshot, Rung, RungCounts, SnapshotDelta, Triage,
    TriageConfig, TriageVerdict,
};
use smishing_obs::Obs;
use smishing_worldsim::World;
use std::fmt::Write as _;
use std::sync::Arc;

/// Knobs for [`drift_scorecard`].
#[derive(Debug, Clone)]
pub struct DriftOptions {
    /// Epoch length in posts. `None` derives it from `target_epochs`.
    pub epoch_posts: Option<u64>,
    /// When `epoch_posts` is `None`: split the base stream into this many
    /// epochs.
    pub target_epochs: u64,
    /// Aging window passed to the snapshot builder (`None` = keep all).
    pub window_secs: Option<u64>,
    /// Triage call threshold.
    pub threshold: f64,
    /// Whether the triage model retrains on each republish.
    pub train_model: bool,
}

impl Default for DriftOptions {
    fn default() -> Self {
        DriftOptions {
            epoch_posts: None,
            target_epochs: 8,
            window_secs: None,
            threshold: 0.5,
            train_model: true,
        }
    }
}

/// One epoch boundary's drift measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochDrift {
    /// Epoch index (boundary at `epoch * epoch_posts` posts).
    pub epoch: u64,
    /// Posts ingested when the boundary fired.
    pub at_posts: u64,
    /// Rotation waves landing at this boundary.
    pub rotations: usize,
    /// Rotated probe messages triaged (pre-ingest).
    pub probes: usize,
    /// Ladder-rung attribution of those probes.
    pub rungs: RungCounts,
    /// Previously-dark waves whose infrastructure the fresh snapshot now
    /// answers exactly.
    pub reacquired: usize,
    /// Waves still dark after this boundary.
    pub outstanding: usize,
}

impl EpochDrift {
    /// Share of probes the exact rung caught.
    pub fn exact_recall(&self) -> f64 {
        if self.probes == 0 {
            return 0.0;
        }
        self.rungs.exact as f64 / self.probes as f64
    }

    /// Share of probes an infrastructure rung (exact or near) caught.
    pub fn near_recall(&self) -> f64 {
        if self.probes == 0 {
            return 0.0;
        }
        self.rungs.infra() as f64 / self.probes as f64
    }
}

/// The full drift report for one adversarial run.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftScorecard {
    /// Adversary profile label (`AdversaryPlan::to_string`).
    pub profile: String,
    /// Epoch length in posts.
    pub epoch_posts: u64,
    /// Total rotation waves scheduled.
    pub waves: usize,
    /// Wave posts injected into the stream.
    pub injected_posts: u64,
    /// Per-boundary measurements, in epoch order.
    pub epochs: Vec<EpochDrift>,
    /// Time-to-reacquire, in epochs, for every re-acquired wave
    /// (0 = the rotation never went dark, e.g. folded respellings).
    pub reacquire_epochs: Vec<u64>,
    /// Waves never re-acquired by the end of the stream.
    pub unresolved: usize,
}

impl DriftScorecard {
    /// Total probes across all epochs.
    pub fn total_probes(&self) -> usize {
        self.epochs.iter().map(|e| e.probes).sum()
    }

    /// Rung attribution summed over all epochs.
    pub fn rungs_total(&self) -> RungCounts {
        let mut total = RungCounts::default();
        for e in &self.epochs {
            total.merge(&e.rungs);
        }
        total
    }

    /// Mean time-to-reacquire in epochs (`None` when nothing rotated or
    /// nothing was re-acquired).
    pub fn mean_time_to_reacquire(&self) -> Option<f64> {
        if self.reacquire_epochs.is_empty() {
            return None;
        }
        Some(self.reacquire_epochs.iter().sum::<u64>() as f64 / self.reacquire_epochs.len() as f64)
    }

    /// Smallest per-epoch near-rung recall over boundaries that probed
    /// anything.
    pub fn min_near_recall(&self) -> f64 {
        self.epochs
            .iter()
            .filter(|e| e.probes > 0)
            .map(|e| e.near_recall())
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// [`Self::min_near_recall`] restricted to *warm* boundaries (epoch
    /// ≥ 2) — the floor the CI drift soak gates on. Epoch 1 probes a
    /// store built from a single epoch of reports; at small scales the
    /// similarity tier legitimately has nothing near the rotated lures
    /// yet, so the cold boundary measures corpus size, not the ladder.
    pub fn warm_min_near_recall(&self) -> f64 {
        self.epochs
            .iter()
            .filter(|e| e.epoch >= 2 && e.probes > 0)
            .map(|e| e.near_recall())
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Render the scorecard as an aligned text table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "drift scorecard  profile={}  epoch_posts={}  waves={}  injected={}",
            self.profile, self.epoch_posts, self.waves, self.injected_posts
        );
        let _ = writeln!(
            s,
            "{:>5} {:>9} {:>4} {:>6} {:>6} {:>5} {:>5} {:>4} {:>6} {:>5} {:>6} {:>6}",
            "epoch",
            "posts",
            "rot",
            "probes",
            "exact",
            "near",
            "model",
            "miss",
            "reacq",
            "dark",
            "ex-rec",
            "nr-rec"
        );
        for e in &self.epochs {
            let _ = writeln!(
                s,
                "{:>5} {:>9} {:>4} {:>6} {:>6} {:>5} {:>5} {:>4} {:>6} {:>5} {:>6.3} {:>6.3}",
                e.epoch,
                e.at_posts,
                e.rotations,
                e.probes,
                e.rungs.exact,
                e.rungs.near,
                e.rungs.model,
                e.rungs.miss,
                e.reacquired,
                e.outstanding,
                e.exact_recall(),
                e.near_recall()
            );
        }
        match self.mean_time_to_reacquire() {
            Some(tta) => {
                let _ = writeln!(
                    s,
                    "mean_time_to_reacquire_epochs={tta:.2}  unresolved={}  min_near_recall={:.3}",
                    self.unresolved,
                    self.min_near_recall()
                );
            }
            None => {
                let _ = writeln!(s, "no waves re-acquired  unresolved={}", self.unresolved);
            }
        }
        s
    }
}

/// Does the fresh snapshot answer any of the wave's probe URLs exactly?
fn wave_visible(triage: &mut Triage, probe_urls: &[String]) -> bool {
    probe_urls
        .iter()
        .any(|u| matches!(triage.query_url(u), TriageVerdict::Hit(_)))
}

/// Run the adversarial stream through the incremental epoch engine and
/// score per-epoch drift. `None` when the world's plan schedules no waves.
pub fn drift_scorecard(world: &World, opts: &DriftOptions, obs: &Obs) -> Option<DriftScorecard> {
    let epoch_posts = opts
        .epoch_posts
        .unwrap_or_else(|| (world.posts.len() as u64 / opts.target_epochs.max(1)).max(1));
    let adv = AdversaryWorld::build(world, epoch_posts);
    if adv.waves.is_empty() {
        return None;
    }

    let hub = IntelHub::new();
    let mut triage = Triage::with_config(
        hub.reader(),
        TriageConfig {
            threshold: opts.threshold,
            train_model: opts.train_model,
            model_seed: world.config.seed,
            ..TriageConfig::default()
        },
    );
    let build_opts = BuildOptions {
        window_secs: opts.window_secs,
        ..BuildOptions::default()
    };
    let exec = ExecPlan::sequential().with_snapshots(SnapshotPlan::every(epoch_posts));

    let mut prev: Option<Arc<IntelSnapshot>> = None;
    let mut epochs: Vec<EpochDrift> = Vec::new();
    // (wave index, epoch it rotated at) for waves still dark.
    let mut dark: Vec<(usize, u64)> = Vec::new();
    let mut reacquire_epochs: Vec<u64> = Vec::new();

    let result = ingest(
        world,
        adv.stream(),
        &CurationOptions::default(),
        &exec,
        obs,
        |snap| {
            let built = IntelSnapshot::build_incremental(
                &snap.output,
                prev.as_deref(),
                SnapshotDelta::new(&snap.curated_delta),
                build_opts,
            );
            let arc = Arc::new(built);
            hub.publish_arc(arc.clone());
            prev = Some(arc);

            let epoch = snap.at_posts / epoch_posts;
            let mut row = EpochDrift {
                epoch,
                at_posts: snap.at_posts,
                rotations: 0,
                probes: 0,
                rungs: RungCounts::default(),
                reacquired: 0,
                outstanding: 0,
            };

            // Re-acquisition first: waves from earlier epochs whose reports
            // the just-published snapshot has now indexed.
            dark.retain(|&(wi, rotated_at)| {
                if wave_visible(&mut triage, &adv.waves[wi].probe_urls) {
                    reacquire_epochs.push(epoch - rotated_at);
                    row.reacquired += 1;
                    false
                } else {
                    true
                }
            });

            // Probe this boundary's waves before their reports enter the
            // stream: what would the ladder say about the rotated blast?
            for (wi, wave) in adv.waves.iter().enumerate() {
                if wave.epoch != epoch {
                    continue;
                }
                row.rotations += 1;
                for m in &wave.messages {
                    let sender = m.sender.display_string();
                    let v = triage.triage(Some(&sender), &m.text);
                    row.rungs.record(rung_of(&v, opts.threshold));
                    row.probes += 1;
                }
                if wave_visible(&mut triage, &wave.probe_urls) {
                    // Folded respellings (and sender-only waves) never go
                    // dark: the rotation is re-acquired instantly.
                    reacquire_epochs.push(0);
                    row.reacquired += 1;
                } else {
                    dark.push((wi, epoch));
                }
            }
            row.outstanding = dark.len();
            epochs.push(row);
        },
    );

    // Final partial epoch: publish the tail and give still-dark waves one
    // last re-acquisition check.
    if !result.curated_delta.is_empty() {
        let built = IntelSnapshot::build_incremental(
            &result.output,
            prev.as_deref(),
            SnapshotDelta::new(&result.curated_delta),
            build_opts,
        );
        hub.publish_arc(Arc::new(built));
        let epoch = result.posts_ingested.div_ceil(epoch_posts);
        dark.retain(|&(wi, rotated_at)| {
            if wave_visible(&mut triage, &adv.waves[wi].probe_urls) {
                reacquire_epochs.push(epoch - rotated_at);
                if let Some(last) = epochs.last_mut() {
                    last.reacquired += 1;
                    last.outstanding = last.outstanding.saturating_sub(1);
                }
                false
            } else {
                true
            }
        });
    }

    let injected_posts = result.posts_ingested - world.posts.len() as u64;
    let card = DriftScorecard {
        profile: adv.plan.to_string(),
        epoch_posts,
        waves: adv.waves.len(),
        injected_posts,
        epochs,
        reacquire_epochs,
        unresolved: dark.len(),
    };

    // Export the scorecard's floor numbers into the run report so CI
    // (the `drift-soak` job) can gate on them without parsing the table.
    let rungs = card.rungs_total();
    obs.counter("adversary.drift.waves", &[])
        .add(card.waves as u64);
    obs.counter("adversary.drift.injected_posts", &[])
        .add(card.injected_posts);
    obs.counter("adversary.drift.probes", &[])
        .add(card.total_probes() as u64);
    obs.counter("adversary.drift.rung_exact", &[])
        .add(rungs.exact as u64);
    obs.counter("adversary.drift.rung_near", &[])
        .add(rungs.near as u64);
    obs.counter("adversary.drift.rung_model", &[])
        .add(rungs.model as u64);
    obs.counter("adversary.drift.rung_miss", &[])
        .add(rungs.miss as u64);
    obs.gauge("adversary.drift.unresolved", &[])
        .set(card.unresolved as i64);
    obs.gauge("adversary.drift.min_near_recall_x1000", &[])
        .set((card.min_near_recall() * 1000.0) as i64);
    obs.gauge("adversary.drift.warm_min_near_recall_x1000", &[])
        .set((card.warm_min_near_recall() * 1000.0) as i64);
    if let Some(tta) = card.mean_time_to_reacquire() {
        obs.gauge("adversary.drift.mean_tta_x1000", &[])
            .set((tta * 1000.0) as i64);
    }
    Some(card)
}

/// Convenience: is the rung an infrastructure rung?
pub fn is_infra_rung(r: Rung) -> bool {
    matches!(r, Rung::Exact | Rung::Near)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smishing_types::AdversaryPlan;
    use smishing_worldsim::WorldConfig;

    fn drift_world(seed: u64, profile: &str) -> World {
        World::generate(WorldConfig {
            adversary: AdversaryPlan::profile(profile).unwrap(),
            ..WorldConfig::test_scale(seed)
        })
    }

    #[test]
    fn empty_plan_has_no_scorecard() {
        let w = World::generate(WorldConfig::test_scale(41));
        assert!(drift_scorecard(&w, &DriftOptions::default(), &Obs::noop()).is_none());
    }

    #[test]
    fn rotation_degrades_exact_rung_and_near_rung_recovers() {
        let w = drift_world(42, "rotation");
        let opts = DriftOptions {
            target_epochs: 5,
            ..DriftOptions::default()
        };
        let s = drift_scorecard(&w, &opts, &Obs::noop()).expect("waves scheduled");
        assert!(s.waves > 0 && s.injected_posts > 0);

        // Rung attribution partitions the probes.
        assert_eq!(s.rungs_total().total(), s.total_probes());
        assert!(s.total_probes() > 0);

        // Fresh-domain + fresh-sender rotation must blind the exact rung on
        // at least part of the probes, and the similarity rung must catch
        // rotated lure texts the exact rung lost.
        let t = s.rungs_total();
        assert!(
            t.exact < s.total_probes(),
            "rotated indicators cannot all hit exact pivots: {t:?}"
        );
        assert!(t.near > 0, "near rung catches rotated lures: {t:?}");
        let exact_recall = t.exact as f64 / s.total_probes() as f64;
        let near_recall = t.infra() as f64 / s.total_probes() as f64;
        assert!(
            near_recall > exact_recall,
            "near rung recovers recall: {near_recall} vs {exact_recall}"
        );

        // Every wave is re-acquired within a finite number of epochs.
        assert_eq!(s.unresolved, 0, "{}", s.render());
        assert_eq!(s.reacquire_epochs.len(), s.waves);
        let tta = s.mean_time_to_reacquire().expect("waves re-acquired");
        assert!(tta >= 0.0 && tta.is_finite());
        assert!(
            s.reacquire_epochs.iter().all(|&e| e <= 2),
            "reports of the rotated blast re-acquire within two epochs: {:?}",
            s.reacquire_epochs
        );
    }

    #[test]
    fn scorecard_is_deterministic_for_a_fixed_seed() {
        let w = drift_world(43, "rotation");
        let opts = DriftOptions {
            target_epochs: 4,
            ..DriftOptions::default()
        };
        let a = drift_scorecard(&w, &opts, &Obs::noop()).unwrap();
        let b = drift_scorecard(&w, &opts, &Obs::noop()).unwrap();
        assert_eq!(a, b);
        assert!(!a.render().is_empty());
    }

    #[test]
    fn respell_waves_never_go_dark() {
        let w = drift_world(44, "respell");
        let opts = DriftOptions {
            target_epochs: 4,
            ..DriftOptions::default()
        };
        let s = drift_scorecard(&w, &opts, &Obs::noop()).expect("waves scheduled");
        // Host folding (homoglyph + punycode decode) keeps respelled apexes
        // on the indexed identity: re-acquisition is instantaneous for the
        // respelled share of waves.
        assert!(
            s.reacquire_epochs.contains(&0),
            "folded respellings are visible at rotation time: {:?}",
            s.reacquire_epochs
        );
    }
}
