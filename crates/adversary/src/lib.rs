//! # smishing-adversary
//!
//! A deterministic, seeded campaign-evolution engine. The base world
//! (`smishing-worldsim`) is immutable once generated; real smishing
//! operations are not — they rotate URLs and sender pools on a cadence,
//! re-spell brand apexes as IDN/homoglyph look-alikes, and hide landing
//! pages behind fresh shortener chains precisely to outrun blocklists.
//!
//! This crate models that arms race *on the stream*, not in the world:
//!
//! - [`AdversaryWorld::build`] precomputes epoch-aligned [`RotationWave`]s
//!   for a drifting subset of campaigns, drawing every choice from an RNG
//!   stream isolated from world generation (`world_seed ^ plan.seed ^`
//!   [`WAVE_STREAM`]), and registers the rotated infrastructure (WHOIS,
//!   CT, short links) into the world's service simulators so enrichment
//!   sees it like any other campaign's.
//! - [`AdversaryStream`] wraps [`ReportStream::replay`] and injects wave
//!   `k`'s reports as soon as `k * epoch_posts` posts have been yielded —
//!   immediately *after* the ingest engine's snapshot marker at the same
//!   count, so epoch `k`'s published intel never contains wave `k`.
//! - [`drift::drift_scorecard`] replays the adversarial stream through the
//!   incremental epoch engine and scores, per epoch, which triage-ladder
//!   rung caught each rotated probe and how many epochs each wave stayed
//!   dark ([`drift::EpochDrift`]).
//!
//! With an empty [`AdversaryPlan`] the engine builds no waves and the
//! stream is byte-identical to the plain replay — the same contract the
//! world generator keeps for `template_variants`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;

pub use drift::{drift_scorecard, DriftOptions, DriftScorecard, EpochDrift};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use smishing_telecom::NumberFactory;
use smishing_types::{AdversaryPlan, CampaignId, PostId, SenderId, SmsMessage, UnixTime};
use smishing_webinfra::punycode::encode_host;
use smishing_worldsim::domaingen::{gen_domain, gen_path, gen_short_code};
use smishing_worldsim::reporting::{build_report_post, pick_forum_for};
use smishing_worldsim::{Campaign, Post, ReportStream, World};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Stream separator for the wave RNG: keeps rotation draws out of the
/// world's and the funnel graft's RNG streams.
pub const WAVE_STREAM: u64 = 0xAD5A_11E5_C0DE_D00D;

/// Most messages a single wave re-issues (and probes).
const WAVE_MSG_CAP: usize = 3;

/// How one rotation wave replaces a campaign's indicators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Fresh registered domain + path; WHOIS/CT records appear like any
    /// newly stood-up campaign's.
    FreshDomain,
    /// The same apex re-spelled with a Cyrillic confusable, emitted either
    /// as the raw homoglyph host or its punycode (`xn--`) ACE form.
    Respell,
    /// A two-hop shortener chain in front of the unchanged landing page.
    ShortenChain,
    /// Indicators unchanged except the sender pool (sender-only plans).
    SenderOnly,
}

impl Strategy {
    /// Short lowercase label for reports and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::FreshDomain => "fresh-domain",
            Strategy::Respell => "respell",
            Strategy::ShortenChain => "shorten-chain",
            Strategy::SenderOnly => "sender-only",
        }
    }
}

/// One precomputed rotation: campaign `campaign` re-blasts its lure at
/// epoch boundary `epoch` under fresh indicators.
#[derive(Debug, Clone)]
pub struct RotationWave {
    /// The rotating campaign.
    pub campaign: CampaignId,
    /// Epoch boundary (in units of `epoch_posts`) after which the wave's
    /// reports enter the stream.
    pub epoch: u64,
    /// How many rotations this campaign has done before this one.
    pub generation: u64,
    /// The strategy this wave used.
    pub strategy: Strategy,
    /// The URL as written in the rotated SMS.
    pub url: String,
    /// URLs whose indexing counts as re-acquiring the wave (the SMS URL
    /// plus, for shortened waves, the unchanged landing URL).
    pub probe_urls: Vec<String>,
    /// The rotated messages (base message ids, mutated indicators).
    pub messages: Vec<SmsMessage>,
    /// Report posts for the rotated messages. Ids and timestamps are
    /// placeholders; [`AdversaryStream`] re-stamps both at injection.
    pub posts: Vec<Post>,
}

/// The wave schedule for one world under one [`AdversaryPlan`].
///
/// Construction is a pure function of `(world, plan, epoch_posts)`; the
/// only side effect is registering rotated infrastructure into
/// `world.services`, which an empty plan skips entirely.
#[derive(Debug)]
pub struct AdversaryWorld<'w> {
    world: &'w World,
    /// The plan this schedule was built from.
    pub plan: AdversaryPlan,
    /// Posts per epoch the waves are aligned to.
    pub epoch_posts: u64,
    /// Waves sorted by `(epoch, campaign)`.
    pub waves: Vec<RotationWave>,
}

/// Eligible base material: a campaign plus up to [`WAVE_MSG_CAP`] of its
/// messages whose text carries the campaign URL inline.
fn eligible(world: &World) -> Vec<(&Campaign, Vec<&SmsMessage>)> {
    let mut out = Vec::new();
    for c in &world.campaigns {
        let Some(plan) = &c.url_plan else { continue };
        // Funnels drip their payload conversationally; blast-rotation is a
        // baseline-archetype behavior. wa.me links have nothing to rotate.
        if plan.whatsapp || c.archetype.is_funnel() {
            continue;
        }
        let msgs: Vec<&SmsMessage> = world
            .messages
            .iter()
            .filter(|m| m.campaign == c.id)
            .filter(|m| m.url.as_deref().is_some_and(|u| m.text.contains(u)))
            .take(WAVE_MSG_CAP)
            .collect();
        if !msgs.is_empty() {
            out.push((c, msgs));
        }
    }
    out
}

/// Re-spell the first confusable-mappable character of the host's first
/// label with its Cyrillic look-alike. `None` when nothing maps.
fn respell_host(host: &str) -> Option<String> {
    let first_len = host.find('.').unwrap_or(host.len());
    let mut done = false;
    let spoofed: String = host
        .char_indices()
        .map(|(i, ch)| {
            if done || i >= first_len {
                return ch;
            }
            let swap = match ch {
                'a' => Some('а'),
                'e' => Some('е'),
                'o' => Some('о'),
                'p' => Some('р'),
                'c' => Some('с'),
                'x' => Some('х'),
                'y' => Some('у'),
                'i' => Some('і'),
                's' => Some('ѕ'),
                'j' => Some('ј'),
                'h' => Some('һ'),
                'd' => Some('ԁ'),
                'q' => Some('ԛ'),
                'w' => Some('ԝ'),
                _ => None,
            };
            match swap {
                Some(s) => {
                    done = true;
                    s
                }
                None => ch,
            }
        })
        .collect();
    done.then_some(spoofed)
}

/// Shortener hosts the chain strategy rotates through — all in
/// `webinfra`'s catalog, so curation expands them like organic links.
const CHAIN_HOSTS: &[&str] = &["bit.ly", "is.gd", "tinyurl.com", "rb.gy"];

impl<'w> AdversaryWorld<'w> {
    /// Precompute the wave schedule for `world.config.adversary`.
    ///
    /// `epoch_posts` is the stream's snapshot interval; waves land on its
    /// boundaries. An empty plan (or one with no rotation strategies and
    /// `drifting_share == 0`) yields no waves and touches nothing.
    pub fn build(world: &'w World, epoch_posts: u64) -> AdversaryWorld<'w> {
        let plan = world.config.adversary.clone();
        let mut aw = AdversaryWorld {
            world,
            plan,
            epoch_posts: epoch_posts.max(1),
            waves: Vec::new(),
        };
        let plan = &aw.plan;
        if plan.is_empty() || !plan.any_strategy() || plan.drifting_share <= 0.0 {
            return aw;
        }
        let n_epochs = world.posts.len() as u64 / aw.epoch_posts;
        if n_epochs < 2 {
            return aw;
        }

        let mut rng = StdRng::seed_from_u64(world.config.seed ^ plan.seed ^ WAVE_STREAM);
        let mut pool = eligible(world);
        if pool.is_empty() {
            return aw;
        }
        pool.shuffle(&mut rng);
        let n_drift = ((pool.len() as f64 * plan.drifting_share.clamp(0.0, 1.0)).ceil() as usize)
            .clamp(1, pool.len());
        pool.truncate(n_drift);

        let mut strategies: Vec<Strategy> = Vec::new();
        if plan.rotate_url {
            strategies.push(Strategy::FreshDomain);
        }
        if plan.respell {
            strategies.push(Strategy::Respell);
        }
        if plan.shorten {
            strategies.push(Strategy::ShortenChain);
        }
        if strategies.is_empty() {
            strategies.push(Strategy::SenderOnly);
        }

        let cadence = plan.cadence_epochs.max(1);
        let factory = NumberFactory::new();
        for (rank, (campaign, msgs)) in pool.iter().enumerate() {
            let boundaries = (1..n_epochs).filter(|k| k.is_multiple_of(cadence));
            for (generation, epoch) in boundaries.enumerate() {
                let generation = generation as u64;
                let strategy = strategies[(rank as u64 + generation) as usize % strategies.len()];
                let wave = build_wave(
                    aw.world, campaign, msgs, epoch, generation, strategy, plan, &factory, &mut rng,
                );
                aw.waves.push(wave);
            }
        }
        aw.waves.sort_by_key(|w| (w.epoch, w.campaign.0));
        aw
    }

    /// Boundaries the stream spans (floor of base posts / `epoch_posts`).
    pub fn n_epochs(&self) -> u64 {
        self.world.posts.len() as u64 / self.epoch_posts
    }

    /// Waves landing at epoch boundary `epoch`.
    pub fn waves_at(&self, epoch: u64) -> impl Iterator<Item = &RotationWave> {
        self.waves.iter().filter(move |w| w.epoch == epoch)
    }

    /// The adversarial post stream: base replay plus injected waves.
    pub fn stream(&self) -> AdversaryStream<'_, 'w> {
        self.stream_counted(None)
    }

    /// Like [`Self::stream`], but incrementing `injected` for every wave
    /// post yielded (live gauges, e.g. the serve `health` line).
    pub fn stream_counted(&self, injected: Option<Arc<AtomicU64>>) -> AdversaryStream<'_, 'w> {
        let next_id = self
            .world
            .posts
            .iter()
            .map(|p| p.id.0 + 1)
            .max()
            .unwrap_or(0);
        AdversaryStream {
            base: ReportStream::replay(self.world),
            waves: &self.waves,
            epoch_posts: self.epoch_posts,
            yielded: 0,
            next_wave: 0,
            pending: VecDeque::new(),
            next_id,
            last_at: UnixTime(0),
            injected,
        }
    }
}

/// Build one wave: rotated URL/sender, mutated messages, report posts.
#[allow(clippy::too_many_arguments)]
fn build_wave(
    world: &World,
    campaign: &Campaign,
    msgs: &[&SmsMessage],
    epoch: u64,
    generation: u64,
    strategy: Strategy,
    plan: &AdversaryPlan,
    factory: &NumberFactory,
    rng: &mut StdRng,
) -> RotationWave {
    let url_plan = campaign.url_plan.as_ref().expect("eligible campaign");
    let services = &world.services;
    let stood_up = campaign.schedule.start;
    let landing = url_plan.landing_url(0);

    // Respelling an apex hidden behind a shortener would change the visible
    // host class entirely; real operators re-spell direct links. Fall back
    // to a fresh domain for shortened campaigns.
    let strategy = if strategy == Strategy::Respell && url_plan.shortener.is_some() {
        Strategy::FreshDomain
    } else {
        strategy
    };

    let (url, mut probe_urls) = match strategy {
        Strategy::FreshDomain => {
            let domain = gen_domain(campaign.brand.map(|b| b.name), rng);
            services.whois.register(&domain, "NameCheap", stood_up, 365);
            if let Some(ca) = smishing_webinfra::ca_policy("Let's Encrypt") {
                services.ctlog.provision(
                    &domain,
                    &ca,
                    stood_up,
                    UnixTime(stood_up.0 + 90 * 86_400),
                );
            }
            let url = format!("https://{domain}{}", gen_path(rng));
            (url.clone(), vec![url])
        }
        Strategy::Respell => {
            let spoofed = respell_host(&url_plan.domain).unwrap_or_else(|| {
                // No confusable-mappable character: punycode the plain apex
                // path below still folds to the same identity.
                url_plan.domain.clone()
            });
            // Alternate between the raw homoglyph spelling and its ACE form
            // across generations; both must fold to the clean apex.
            let host = if generation.is_multiple_of(2) {
                spoofed
            } else {
                encode_host(&spoofed).unwrap_or(spoofed)
            };
            let url = format!("https://{host}{}", url_plan.paths[0]);
            (url.clone(), vec![url, landing.clone()])
        }
        Strategy::ShortenChain => {
            let hop1 = CHAIN_HOSTS[rng.gen_range(0..CHAIN_HOSTS.len())];
            let hop2 = CHAIN_HOSTS[rng.gen_range(0..CHAIN_HOSTS.len())];
            let code1 = gen_short_code(rng);
            let code2 = gen_short_code(rng);
            let mid = format!("https://{hop2}/{code2}");
            let minted = UnixTime(stood_up.0 - 3600);
            let life = Some(45 * 86_400);
            services
                .short_links
                .register(hop2, &code2, &landing, minted, life);
            services
                .short_links
                .register(hop1, &code1, &mid, minted, life);
            let url = format!("https://{hop1}/{code1}");
            (url.clone(), vec![url, mid, landing.clone()])
        }
        Strategy::SenderOnly => {
            let url = msgs[0].url.clone().expect("eligible message");
            (url.clone(), vec![url])
        }
    };
    probe_urls.dedup();

    let sender = plan
        .rotate_sender
        .then(|| SenderId::MalformedPhone(factory.bad_format(rng)));

    let mut messages = Vec::with_capacity(msgs.len());
    let mut posts = Vec::new();
    for base in msgs {
        let old = base.url.as_deref().expect("eligible message");
        let mut m = (*base).clone();
        m.text = base.text.replace(old, &url);
        m.truth.english_text = base.truth.english_text.replace(old, &url);
        m.url = Some(url.clone());
        if let Some(s) = &sender {
            m.sender = s.clone();
        }
        // 2–3 reports per rotated message: a re-blast hits the same victim
        // pool again, so the report volume matches the original wave's.
        let n_reports = 2 + usize::from(rng.gen_bool(0.5));
        for _ in 0..n_reports {
            let forum = pick_forum_for(m.received, rng);
            posts.push(build_report_post(PostId(0), &m, forum, rng));
        }
        messages.push(m);
    }

    RotationWave {
        campaign: campaign.id,
        epoch,
        generation,
        strategy,
        url,
        probe_urls,
        messages,
        posts,
    }
}

/// Iterator over the adversarial stream: the base replay with wave posts
/// spliced in at epoch boundaries.
///
/// Injected posts get fresh ids past the base world's maximum and the
/// timestamp of the last base post yielded, so arrival order stays
/// monotone. Counting is over *total* posts yielded (base + injected) —
/// exactly what the ingest engine's [`SnapshotPlan`] counts, so wave `k`
/// always lands after the snapshot marker at `k * epoch_posts`.
///
/// [`SnapshotPlan`]: smishing_core::exec::SnapshotPlan
#[derive(Debug)]
pub struct AdversaryStream<'a, 'w> {
    base: ReportStream<'w>,
    waves: &'a [RotationWave],
    epoch_posts: u64,
    yielded: u64,
    next_wave: usize,
    pending: VecDeque<Post>,
    next_id: u64,
    last_at: UnixTime,
    injected: Option<Arc<AtomicU64>>,
}

impl AdversaryStream<'_, '_> {
    /// Total posts yielded so far (base + injected).
    pub fn position(&self) -> u64 {
        self.yielded
    }

    fn enqueue_due_waves(&mut self) {
        while self.next_wave < self.waves.len()
            && self.waves[self.next_wave].epoch * self.epoch_posts <= self.yielded
        {
            for post in &self.waves[self.next_wave].posts {
                let mut p = post.clone();
                p.id = PostId(self.next_id);
                self.next_id += 1;
                p.posted_at = self.last_at;
                self.pending.push_back(p);
            }
            self.next_wave += 1;
        }
    }
}

impl Iterator for AdversaryStream<'_, '_> {
    type Item = Post;

    fn next(&mut self) -> Option<Post> {
        self.enqueue_due_waves();
        if let Some(p) = self.pending.pop_front() {
            self.yielded += 1;
            if let Some(c) = &self.injected {
                c.fetch_add(1, Ordering::Relaxed);
            }
            return Some(p);
        }
        let p = self.base.next()?;
        self.last_at = p.posted_at;
        self.yielded += 1;
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smishing_types::Archetype;
    use smishing_worldsim::WorldConfig;

    fn world(seed: u64, plan: AdversaryPlan) -> World {
        World::generate(WorldConfig {
            adversary: plan,
            ..WorldConfig::test_scale(seed)
        })
    }

    #[test]
    fn empty_plan_stream_is_byte_identical_to_replay() {
        let w = world(31, AdversaryPlan::none());
        let aw = AdversaryWorld::build(&w, 500);
        assert!(aw.waves.is_empty());
        let adv: Vec<Post> = aw.stream().collect();
        let plain: Vec<Post> = ReportStream::replay(&w).collect();
        assert_eq!(adv.len(), plain.len());
        for (a, b) in adv.iter().zip(&plain) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.posted_at, b.posted_at);
            assert_eq!(a.reported_message, b.reported_message);
        }
    }

    #[test]
    fn waves_are_deterministic_and_epoch_aligned() {
        let plan = AdversaryPlan::profile("full").unwrap();
        let w = world(32, plan.clone());
        let e = (w.posts.len() / 6).max(1) as u64;
        let a = AdversaryWorld::build(&w, e);
        let b = AdversaryWorld::build(&w, e);
        assert!(!a.waves.is_empty());
        assert_eq!(a.waves.len(), b.waves.len());
        for (x, y) in a.waves.iter().zip(&b.waves) {
            assert_eq!(x.campaign, y.campaign);
            assert_eq!(x.url, y.url);
            assert_eq!(x.strategy, y.strategy);
        }
        for wv in &a.waves {
            assert!(wv.epoch >= 1 && wv.epoch < a.n_epochs());
            assert!(!wv.messages.is_empty() && !wv.posts.is_empty());
            for m in &wv.messages {
                assert!(m.text.contains(&wv.url), "rotated URL is inline");
            }
        }
        let strategies: std::collections::HashSet<_> =
            a.waves.iter().map(|w| w.strategy.label()).collect();
        assert!(strategies.len() >= 2, "full profile mixes strategies");
    }

    #[test]
    fn injection_lands_right_after_the_epoch_boundary() {
        let plan = AdversaryPlan::profile("rotation").unwrap();
        let w = world(33, plan);
        let e = (w.posts.len() / 5).max(1) as u64;
        let aw = AdversaryWorld::build(&w, e);
        assert!(!aw.waves.is_empty());
        let base_max = w.posts.iter().map(|p| p.id.0).max().unwrap();
        let injected_flag = Arc::new(AtomicU64::new(0));
        let posts: Vec<Post> = aw.stream_counted(Some(injected_flag.clone())).collect();
        assert_eq!(
            posts.len(),
            w.posts.len() + aw.waves.iter().map(|wv| wv.posts.len()).sum::<usize>()
        );
        assert_eq!(
            injected_flag.load(Ordering::Relaxed),
            (posts.len() - w.posts.len()) as u64
        );
        // Wave posts appear at their boundary: position of first injected id
        // must be exactly at a multiple of `e`.
        let first_injected = posts.iter().position(|p| p.id.0 > base_max).unwrap() as u64;
        assert_eq!(first_injected % e, 0, "first wave at an epoch boundary");
        // Arrival order stays monotone and ids unique.
        let mut seen = std::collections::HashSet::new();
        let mut last = UnixTime(i64::MIN);
        for p in &posts {
            assert!(seen.insert(p.id));
            assert!(p.posted_at >= last);
            last = p.posted_at;
        }
    }

    #[test]
    fn respelled_hosts_fold_back_to_the_campaign_apex() {
        assert_eq!(
            respell_host("secure-hsbc.com"),
            Some("ѕecure-hsbc.com".into())
        );
        assert_eq!(respell_host("zz-42.net"), None);
        let plan = AdversaryPlan::profile("respell").unwrap();
        let w = world(34, plan);
        let e = (w.posts.len() / 6).max(1) as u64;
        let aw = AdversaryWorld::build(&w, e);
        let mut checked = 0;
        for wv in aw.waves.iter().filter(|w| w.strategy == Strategy::Respell) {
            let c = &w.campaigns[wv.campaign.0 as usize];
            let apex = &c.url_plan.as_ref().unwrap().domain;
            let parsed = smishing_webinfra::parse_url(&wv.url).expect("respelled URL parses");
            assert_eq!(&parsed.host, apex, "folds to the clean apex");
            checked += 1;
        }
        assert!(checked > 0, "respell waves exist");
    }

    #[test]
    fn funnel_campaigns_do_not_rotate() {
        let plan = AdversaryPlan::profile("full").unwrap();
        let w = world(35, plan);
        assert!(w.campaigns.iter().any(|c| c.archetype.is_funnel()));
        let e = (w.posts.len() / 6).max(1) as u64;
        let aw = AdversaryWorld::build(&w, e);
        for wv in &aw.waves {
            let c = &w.campaigns[wv.campaign.0 as usize];
            assert_eq!(c.archetype, Archetype::Baseline, "wa.me funnels excluded");
        }
    }
}
