//! Shared fixtures for the benchmark harness.
//!
//! Benchmarks measure the *analysis* cost over a pre-built world and
//! pipeline output, so the (deterministic, cached) generation cost does not
//! pollute the numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use smishing_core::pipeline::{Pipeline, PipelineOutput};
use smishing_worldsim::{World, WorldConfig};
use std::sync::OnceLock;

/// The benchmark world scale (~2% of paper volume: fast but non-trivial).
pub const BENCH_SCALE: f64 = 0.02;

/// A cached world at [`BENCH_SCALE`].
pub fn bench_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::generate(WorldConfig {
            scale: BENCH_SCALE,
            ..WorldConfig::default()
        })
    })
}

/// A cached pipeline output over [`bench_world`].
pub fn bench_output() -> &'static PipelineOutput<'static> {
    static OUT: OnceLock<PipelineOutput<'static>> = OnceLock::new();
    OUT.get_or_init(|| Pipeline::default().run(bench_world(), &smishing_obs::Obs::noop()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert!(!bench_output().records.is_empty());
    }
}
