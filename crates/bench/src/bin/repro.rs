//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p smishing-bench --bin repro -- [scale] [seed] \
//!     [--metrics-json PATH] [--fault-profile none|mild|harsh[:SEED]]
//! ```
//!
//! Prints each experiment's regenerated table, the paper's expectation, and
//! the shape-check verdicts. The output of this binary (at scale 0.25) is
//! the basis of EXPERIMENTS.md. Every run also writes a `smishing-obs/v1`
//! run report (per-stage wall time, per-service enrichment call counts and
//! latency quantiles) to `repro-run-report.json`, or to the path given
//! with `--metrics-json`.
//!
//! With a non-`none` `--fault-profile` the run doubles as a chaos
//! exercise: services fail deterministically, degraded records are kept
//! (never dropped), and the exit code reflects survival rather than the
//! shape checks — under injected faults some tables legitimately shift,
//! so verdicts are printed but do not fail the run.

use smishing_core::experiment::run_all_observed;
use smishing_core::pipeline::Pipeline;
use smishing_fault::FaultPlan;
use smishing_obs::Obs;
use smishing_worldsim::{World, WorldConfig};
use std::io::Write;
use std::time::Instant;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut metrics_json = String::from("repro-run-report.json");
    let mut fault_plan = FaultPlan::none();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--metrics-json" {
            match argv.next() {
                Some(path) => metrics_json = path,
                None => {
                    eprintln!("--metrics-json needs a value");
                    std::process::exit(2);
                }
            }
        } else if arg == "--fault-profile" {
            match argv.next().map(|v| v.parse()) {
                Some(Ok(plan)) => fault_plan = plan,
                Some(Err(e)) => {
                    eprintln!("--fault-profile: {e}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--fault-profile needs a value");
                    std::process::exit(2);
                }
            }
        } else {
            positional.push(arg);
        }
    }
    let scale: f64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let seed: u64 = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF15F);

    let strict = fault_plan.is_none();

    let obs = Obs::enabled();
    eprintln!("# Reproduction run: scale {scale}, seed {seed:#x}");
    let t0 = Instant::now();
    let mut world = obs.histogram("repro.world_gen.wall_ns", &[]).time(|| {
        World::generate(WorldConfig {
            scale,
            seed,
            ..WorldConfig::default()
        })
    });
    if !strict {
        world.set_fault_plan(&fault_plan);
        eprintln!(
            "chaos: fault plan installed (seed {:#x}); shape verdicts are informational",
            fault_plan.seed
        );
    }
    let world = world;
    eprintln!(
        "world: {} campaigns / {} messages / {} posts in {:.1?}",
        world.campaigns.len(),
        world.messages.len(),
        world.posts.len(),
        t0.elapsed()
    );

    let t1 = Instant::now();
    let output = Pipeline::default().run_observed(&world, &obs);
    eprintln!(
        "pipeline: {} curated / {} unique records in {:.1?}",
        output.curated_total.len(),
        output.records.len(),
        t1.elapsed()
    );

    let t2 = Instant::now();
    let results = run_all_observed(&output, &obs);
    eprintln!(
        "analyses: {} experiments in {:.1?}\n",
        results.len(),
        t2.elapsed()
    );

    let mut passed = 0;
    let mut failed = 0;
    for r in &results {
        println!("\n================================================================");
        println!("Experiment {}", r.id);
        println!("Paper: {}", r.paper);
        println!("----------------------------------------------------------------");
        println!("{}", r.table);
        for (desc, ok) in &r.checks {
            println!("  [{}] {desc}", if *ok { "PASS" } else { "FAIL" });
            if *ok {
                passed += 1;
            } else {
                failed += 1;
            }
        }
    }
    println!("\n================================================================");
    println!(
        "Shape checks: {passed} passed, {failed} failed (total wall time {:.1?})",
        t0.elapsed()
    );

    let report = obs.json_report();
    match std::fs::File::create(&metrics_json).and_then(|mut f| f.write_all(report.as_bytes())) {
        Ok(()) => eprintln!("metrics: wrote run report to {metrics_json}"),
        Err(e) => {
            eprintln!("metrics: failed to write {metrics_json}: {e}");
            std::process::exit(1);
        }
    }

    // Under injected faults the run verifies survival — completion with
    // honest degradation accounting — not table shapes.
    if strict && failed > 0 {
        std::process::exit(1);
    }
}
