//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p smishing-bench --bin repro -- [scale] [seed]
//! ```
//!
//! Prints each experiment's regenerated table, the paper's expectation, and
//! the shape-check verdicts. The output of this binary (at scale 0.25) is
//! the basis of EXPERIMENTS.md.

use smishing_core::experiment::run_all;
use smishing_core::pipeline::Pipeline;
use smishing_worldsim::{World, WorldConfig};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF15F);

    eprintln!("# Reproduction run: scale {scale}, seed {seed:#x}");
    let t0 = Instant::now();
    let world = World::generate(WorldConfig {
        scale,
        seed,
        ..WorldConfig::default()
    });
    eprintln!(
        "world: {} campaigns / {} messages / {} posts in {:.1?}",
        world.campaigns.len(),
        world.messages.len(),
        world.posts.len(),
        t0.elapsed()
    );

    let t1 = Instant::now();
    let output = Pipeline::default().run(&world);
    eprintln!(
        "pipeline: {} curated / {} unique records in {:.1?}",
        output.curated_total.len(),
        output.records.len(),
        t1.elapsed()
    );

    let t2 = Instant::now();
    let results = run_all(&output);
    eprintln!(
        "analyses: {} experiments in {:.1?}\n",
        results.len(),
        t2.elapsed()
    );

    let mut passed = 0;
    let mut failed = 0;
    for r in &results {
        println!("\n================================================================");
        println!("Experiment {}", r.id);
        println!("Paper: {}", r.paper);
        println!("----------------------------------------------------------------");
        println!("{}", r.table);
        for (desc, ok) in &r.checks {
            println!("  [{}] {desc}", if *ok { "PASS" } else { "FAIL" });
            if *ok {
                passed += 1;
            } else {
                failed += 1;
            }
        }
    }
    println!("\n================================================================");
    println!(
        "Shape checks: {passed} passed, {failed} failed (total wall time {:.1?})",
        t0.elapsed()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
