//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p smishing-bench --bin repro -- [scale] [seed] \
//!     [--shards N] [--metrics-json PATH] \
//!     [--fault-profile none|mild|harsh[:SEED]]
//! ```
//!
//! Prints each experiment's regenerated table, the paper's expectation, and
//! the shape-check verdicts. The output of this binary (at scale 0.25) is
//! the basis of EXPERIMENTS.md. Every run also writes a `smishing-obs/v1`
//! run report (per-stage wall time, per-service enrichment call counts and
//! latency quantiles) to `repro-run-report.json`, or to the path given
//! with `--metrics-json`.
//!
//! `repro` accepts the shared [`RunConfig`] flags, so `--shards N` runs
//! the batch pipeline through the execution core at a different worker
//! topology — the rendered tables are byte-identical at any shard count
//! (the CI parity job diffs `--shards 1` against `--shards 4`).
//!
//! With a non-`none` `--fault-profile` the run doubles as a chaos
//! exercise: services fail deterministically, degraded records are kept
//! (never dropped), and the exit code reflects survival rather than the
//! shape checks — under injected faults some tables legitimately shift,
//! so verdicts are printed but do not fail the run.

use smishing_core::experiment::run_all;
use smishing_core::runcfg::{parse_seed, RunConfig};
use smishing_obs::Obs;
use smishing_worldsim::{World, WorldConfig};
use std::time::Instant;

fn main() {
    let mut cfg = RunConfig {
        scale: 0.25,
        sinks: smishing_core::runcfg::ObsSinks {
            metrics_json: Some(String::from("repro-run-report.json")),
            ..Default::default()
        },
        ..RunConfig::default()
    };
    let mut positional: Vec<String> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match cfg.parse_flag(&arg, &mut || argv.next()) {
            Ok(true) => {}
            Ok(false) if !arg.starts_with("--") => positional.push(arg),
            Ok(false) => {
                eprintln!(
                    "unknown flag {arg}\nusage: repro [scale] [seed] {}",
                    RunConfig::FLAGS_USAGE
                );
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(s) = positional.first() {
        match s.parse() {
            Ok(v) => cfg.scale = v,
            Err(e) => {
                eprintln!("bad scale {s}: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(s) = positional.get(1) {
        match parse_seed(s) {
            Ok(v) => cfg.seed = v,
            Err(e) => {
                eprintln!("bad seed {s}: {e}");
                std::process::exit(2);
            }
        }
    }

    let strict = cfg.faults.is_none();

    let obs = Obs::enabled();
    eprintln!(
        "# Reproduction run: scale {}, seed {:#x}, {} shards",
        cfg.scale, cfg.seed, cfg.exec.shards
    );
    let t0 = Instant::now();
    let mut world = obs.histogram("repro.world_gen.wall_ns", &[]).time(|| {
        World::generate(WorldConfig {
            scale: cfg.scale,
            seed: cfg.seed,
            adversary: cfg.adversary.clone(),
            ..WorldConfig::default()
        })
    });
    if !strict {
        world.set_fault_plan(&cfg.faults);
        eprintln!(
            "chaos: fault plan installed (seed {:#x}); shape verdicts are informational",
            cfg.faults.seed
        );
    }
    let world = world;
    eprintln!(
        "world: {} campaigns / {} messages / {} posts in {:.1?}",
        world.campaigns.len(),
        world.messages.len(),
        world.posts.len(),
        t0.elapsed()
    );

    let t1 = Instant::now();
    let output = cfg.pipeline().run(&world, &obs);
    eprintln!(
        "pipeline: {} curated / {} unique records in {:.1?}",
        output.curated_total.len(),
        output.records.len(),
        t1.elapsed()
    );

    let t2 = Instant::now();
    let results = run_all(&output, &obs);
    eprintln!(
        "analyses: {} experiments in {:.1?}\n",
        results.len(),
        t2.elapsed()
    );

    let mut passed = 0;
    let mut failed = 0;
    for r in &results {
        println!("\n================================================================");
        println!("Experiment {}", r.id);
        println!("Paper: {}", r.paper);
        println!("----------------------------------------------------------------");
        println!("{}", r.table);
        for (desc, ok) in &r.checks {
            println!("  [{}] {desc}", if *ok { "PASS" } else { "FAIL" });
            if *ok {
                passed += 1;
            } else {
                failed += 1;
            }
        }
    }
    println!("\n================================================================");
    println!(
        "Shape checks: {passed} passed, {failed} failed (total wall time {:.1?})",
        t0.elapsed()
    );

    if let Err(e) = cfg.emit_metrics(&obs) {
        eprintln!("metrics: {e}");
        std::process::exit(1);
    }

    // Under injected faults the run verifies survival — completion with
    // honest degradation accounting — not table shapes.
    if strict && failed > 0 {
        std::process::exit(1);
    }
}
