//! Adversarial-drift benchmark + the CI drift-soak artifact.
//!
//! Two measurements:
//!
//! * A criterion pair on the adversary engine itself — `wave_schedule`
//!   (build the full rotation schedule for a world) and
//!   `adversarial_stream` vs `base_replay` (drain the injected stream vs
//!   the plain one) — the injection layer must stay cheap relative to
//!   ingest, since `serve --stream` pays it on the publisher thread.
//! * The drift soak: a 16-epoch `rotation`-profile stream at scale 0.02
//!   scored by `drift_scorecard`. Asserts the rung attribution sums to
//!   the probe count and that every warm epoch (≥ 2) with rotations kept
//!   a nonzero near-rung recall, then writes the scorecard's gauges
//!   (`adversary.drift.warm_min_near_recall_x1000`, `.mean_tta_x1000`,
//!   `.unresolved`, per-rung counters) plus the render to
//!   `target/drift-run-report.json` for the CI `drift-soak` job to gate
//!   on. `SMISHING_BENCH_QUICK=1` skips criterion and shrinks the soak;
//!   `SMISHING_DRIFT_SOAK=1` skips criterion but keeps the full soak.

use criterion::{criterion_group, Criterion};
use smishing_adversary::{drift_scorecard, AdversaryWorld, DriftOptions};
use smishing_obs::Obs;
use smishing_types::AdversaryPlan;
use smishing_worldsim::{ReportStream, World, WorldConfig};
use std::hint::black_box;
use std::io::Write;

const SEED: u64 = 0xD21F;
const EPOCHS: u64 = 16;

fn bench_world(quick: bool) -> World {
    World::generate(WorldConfig {
        scale: if quick { 0.01 } else { 0.02 },
        seed: SEED,
        adversary: AdversaryPlan::profile("rotation").expect("known profile"),
        ..WorldConfig::default()
    })
}

fn bench_drift(c: &mut Criterion) {
    let world = bench_world(false);
    let epoch_posts = (world.posts.len() as u64 / EPOCHS).max(1);
    let mut g = c.benchmark_group("drift");
    g.bench_function("wave_schedule", |b| {
        b.iter(|| black_box(AdversaryWorld::build(&world, epoch_posts).waves.len()))
    });
    let adv = AdversaryWorld::build(&world, epoch_posts);
    g.bench_function("adversarial_stream", |b| {
        b.iter(|| black_box(adv.stream().count()))
    });
    g.bench_function("base_replay", |b| {
        b.iter(|| black_box(ReportStream::replay(&world).count()))
    });
    g.finish();
}

/// The drift soak, written as one run-report artifact.
fn drift_report(quick: bool) {
    let world = bench_world(quick);
    let obs = Obs::enabled();
    let epochs = if quick { 8 } else { EPOCHS };
    let opts = DriftOptions {
        target_epochs: epochs,
        ..DriftOptions::default()
    };
    let card = drift_scorecard(&world, &opts, &obs).expect("rotation profile schedules waves");
    eprint!("{}", card.render());

    // Accounting closure: every probe landed on exactly one rung.
    assert_eq!(
        card.rungs_total().total(),
        card.total_probes(),
        "rung attribution must sum to the probe count"
    );
    // The arms-race floor: rotation kills the exact rung by design, so
    // the similarity rung has to hold recall up at every *warm* boundary
    // (epoch ≥ 2) that probed anything. Epoch 1 probes a store built
    // from a single epoch of reports; at soak scales the similarity tier
    // may legitimately have nothing near the rotated lures yet.
    for e in &card.epochs {
        if e.probes > 0 && e.epoch >= 2 {
            assert!(
                e.near_recall() > 0.0,
                "epoch {}: near rung caught nothing of {} probes",
                e.epoch,
                e.probes
            );
        }
    }
    eprintln!(
        "soak: {} waves over {} epochs, {} injected posts, \
         warm min near recall {:.3}, unresolved {}",
        card.waves,
        card.epochs.len(),
        card.injected_posts,
        card.warm_min_near_recall(),
        card.unresolved,
    );

    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").to_string());
    let path = format!("{target}/drift-run-report.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(obs.json_report().as_bytes())) {
        Ok(()) => eprintln!("wrote drift run report to {path}"),
        Err(e) => eprintln!("could not write drift run report to {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_drift
}

fn main() {
    // SMISHING_BENCH_QUICK=1 skips criterion and shrinks the soak (local
    // smoke); SMISHING_DRIFT_SOAK=1 also skips criterion but keeps the
    // full 16-epoch scale-0.02 soak (the CI drift-soak job).
    let quick = std::env::var_os("SMISHING_BENCH_QUICK").is_some();
    let soak = std::env::var_os("SMISHING_DRIFT_SOAK").is_some();
    if !quick && !soak {
        benches();
    }
    drift_report(quick && !soak);
}
