//! Epoch-lifecycle benchmark for the incremental intel store.
//!
//! Two measurements:
//!
//! * A criterion pair on one mid-stream epoch — `incremental_republish`
//!   (fold the aligned snapshot's curated delta into the previous store)
//!   vs `full_rebuild` (from-scratch build of the same state) — the
//!   direct O(delta) vs O(history) comparison.
//! * A multi-epoch soak: the infinite feed replays the world's reports
//!   with fresh post ids and advancing timestamps, an aligned snapshot
//!   fires every quarter lap (constant delta per epoch), and each epoch
//!   is republished incrementally *and* rebuilt from scratch. Per-epoch
//!   wall times land in `intel.epoch.incremental_build_ns` /
//!   `intel.epoch.full_build_ns`; every epoch also asserts the two
//!   builds are byte-identical, so the soak doubles as an equivalence
//!   battery. A half-span aging window keeps the store churning —
//!   entries age out as the soak lap moves past them and resurrect when
//!   it comes back around — which is exactly the steady state a
//!   long-lived server sees.
//!
//! Exported gauges: `intel.epoch.late_vs_early_x1000` (late-epoch median
//! over early-epoch median incremental latency — ~1000 means republish
//! cost stayed flat while history grew), `intel.epoch.full_vs_incremental_x1000`
//! (median from-scratch/incremental speedup), and `intel.epoch.rss_bytes`
//! (process RSS after the soak). The report is written to
//! `target/intel-epochs-run-report.json`; `SMISHING_BENCH_QUICK=1`
//! skips criterion and shrinks the soak (the CI epoch-soak job does).

use criterion::{criterion_group, Criterion};
use smishing_core::exec::{ingest, ExecPlan, SnapshotPlan};
use smishing_core::CurationOptions;
use smishing_intel::{process_rss_bytes, BuildOptions, IntelSnapshot, SnapshotDelta};
use smishing_obs::Obs;
use smishing_worldsim::{ReportStream, World, WorldConfig};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

const SEED: u64 = 0xE90C;

fn bench_world(quick: bool) -> World {
    World::generate(WorldConfig {
        scale: if quick { 0.01 } else { 0.02 },
        seed: SEED,
        ..WorldConfig::default()
    })
}

fn median(xs: &[u64]) -> u64 {
    let mut v = xs.to_vec();
    v.sort_unstable();
    v[v.len() / 2]
}

/// Criterion pair: replay the stream to a mid-run aligned snapshot, keep
/// the chained previous store, and time the two ways of reaching the
/// same published state.
fn bench_intel_epochs(c: &mut Criterion) {
    let world = bench_world(false);
    let curation = CurationOptions::default();
    let every = (world.posts.len() as u64 / 8).max(1);
    let plan = ExecPlan::default().with_snapshots(SnapshotPlan::every(every));
    let opts = BuildOptions::default();
    let mut prev: Option<IntelSnapshot> = None;
    let mut fixture = None;
    let _ = ingest(
        &world,
        ReportStream::replay(&world),
        &curation,
        &plan,
        &Obs::noop(),
        |s| {
            let inc = IntelSnapshot::build_incremental(
                &s.output,
                prev.as_ref(),
                SnapshotDelta::new(&s.curated_delta),
                opts,
            );
            if let Some(p) = prev.take() {
                // Keep the *latest* interior epoch: largest history,
                // same-sized delta — the steepest O(delta) vs O(history)
                // contrast the stream offers.
                fixture = Some((s, p));
            }
            prev = Some(inc);
        },
    );
    let (snap, fix_prev) = fixture.expect("at least two aligned snapshots");

    let mut g = c.benchmark_group("intel_epochs");
    g.bench_function("incremental_republish", |b| {
        b.iter(|| {
            black_box(IntelSnapshot::build_incremental(
                &snap.output,
                Some(&fix_prev),
                SnapshotDelta::new(&snap.curated_delta),
                opts,
            ))
        })
    });
    g.bench_function("full_rebuild", |b| {
        b.iter(|| black_box(IntelSnapshot::build_full(&snap.output, opts)))
    });
    g.finish();
}

/// The multi-epoch soak + per-epoch equivalence battery, written as one
/// run-report artifact.
fn epoch_report(quick: bool) {
    let world = bench_world(quick);
    let obs = Obs::enabled();
    let curation = CurationOptions::default();
    let lap = world.posts.len() as u64;
    let every = (lap / 4).max(1);
    let epochs: u64 = if quick { 12 } else { 32 };
    let budget = (epochs * every) as usize;
    let span = {
        let min = world.posts.iter().map(|p| p.posted_at.0).min().unwrap_or(0);
        let max = world.posts.iter().map(|p| p.posted_at.0).max().unwrap_or(1);
        (max - min).max(2) as u64
    };
    // Half-span window: as the soak lap advances, entries last reported
    // more than half a history span ago age out and resurrect when the
    // loop re-reports them — continuous eviction churn at steady state.
    let opts = BuildOptions {
        window_secs: Some(span / 2),
        ..BuildOptions::default()
    };
    let plan = ExecPlan::default().with_snapshots(SnapshotPlan::every(every));
    let inc_ns = obs.histogram("intel.epoch.incremental_build_ns", &[]);
    let full_ns = obs.histogram("intel.epoch.full_build_ns", &[]);
    let mut prev: Option<IntelSnapshot> = None;
    let mut inc_walls: Vec<u64> = Vec::new();
    let mut speedups: Vec<u64> = Vec::new();
    let result = ingest(
        &world,
        ReportStream::soak(&world).take(budget),
        &curation,
        &plan,
        &Obs::noop(),
        |s| {
            let t = Instant::now();
            let snap = IntelSnapshot::build_incremental(
                &s.output,
                prev.as_ref(),
                SnapshotDelta::new(&s.curated_delta),
                opts,
            );
            let inc = t.elapsed().as_nanos() as u64;
            let t = Instant::now();
            let oracle = IntelSnapshot::build_full(&s.output, opts);
            let full = t.elapsed().as_nanos() as u64;
            assert!(
                snap == oracle,
                "incremental build diverged from from-scratch at {} posts",
                s.at_posts
            );
            inc_ns.record(inc);
            full_ns.record(full);
            inc_walls.push(inc);
            speedups.push((full as f64 / inc.max(1) as f64 * 1000.0) as u64);
            eprintln!(
                "epoch {:>3} @ {:>7} posts: delta {:>5} | inc {:>8.2}ms vs full {:>8.2}ms \
                 ({:>5.1}x) | {} entries, {} evicted",
                inc_walls.len(),
                s.at_posts,
                s.curated_delta.len(),
                inc as f64 / 1e6,
                full as f64 / 1e6,
                full as f64 / inc.max(1) as f64,
                snap.len(),
                snap.evicted_count(),
            );
            prev = Some(snap);
        },
    );

    // Flatness: epoch 1 is a cold full build (nothing to fold into), so
    // early = epochs 2..4. With constant deltas, late-vs-early near 1000
    // means republish cost did not grow with history.
    let early = median(&inc_walls[1..inc_walls.len().min(4)]);
    let late = median(&inc_walls[inc_walls.len().saturating_sub(3)..]);
    let flat = (late as f64 / early.max(1) as f64 * 1000.0) as i64;
    let speedup = median(&speedups[1..]) as i64;
    let rss = process_rss_bytes();
    obs.counter("intel.epoch.epochs", &[])
        .add(inc_walls.len() as u64);
    obs.counter("intel.epoch.posts", &[])
        .add(result.posts_ingested);
    obs.gauge("intel.epoch.late_vs_early_x1000", &[]).set(flat);
    obs.gauge("intel.epoch.full_vs_incremental_x1000", &[])
        .set(speedup);
    obs.gauge("intel.epoch.rss_bytes", &[]).set(rss as i64);
    eprintln!(
        "soak: {} epochs over {} posts ({:.1} laps) — early inc median {:.2}ms, \
         late {:.2}ms (late/early {:.2}), full/inc speedup {:.1}x, rss {:.1} MiB",
        inc_walls.len(),
        result.posts_ingested,
        result.posts_ingested as f64 / lap as f64,
        early as f64 / 1e6,
        late as f64 / 1e6,
        flat as f64 / 1000.0,
        speedup as f64 / 1000.0,
        rss as f64 / (1024.0 * 1024.0),
    );

    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").to_string());
    let path = format!("{target}/intel-epochs-run-report.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(obs.json_report().as_bytes())) {
        Ok(()) => eprintln!("wrote epoch run report to {path}"),
        Err(e) => eprintln!("could not write epoch run report to {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_intel_epochs
}

fn main() {
    let quick = std::env::var_os("SMISHING_BENCH_QUICK").is_some();
    if !quick {
        benches();
    }
    epoch_report(quick);
}
