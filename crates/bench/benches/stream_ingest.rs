//! Streaming ingest vs the batch pipeline: the same world, end to end,
//! through the shared execution core at 1/2/4/8 shards (stream frontend)
//! and through `Pipeline::run` (batch frontend, sequential and sharded).
//! The engine pays for channels, marker alignment and winner retraction;
//! the shards buy back curation and enrichment parallelism.
//!
//! Besides the criterion groups, every invocation runs one instrumented
//! attribution pass plus a min-of-3 batch-parallel timing comparison
//! (shards 1 vs 4) and writes both into
//! `target/stream-ingest-run-report.json`. Set `SMISHING_BENCH_QUICK=1`
//! to skip the criterion groups and produce only that artifact (the CI
//! parity job does).

use criterion::{criterion_group, Criterion};
use smishing_core::exec::ExecPlan;
use smishing_core::pipeline::Pipeline;
use smishing_core::CurationOptions;
use smishing_obs::Obs;
use smishing_stream::{ingest, SnapshotPlan};
use smishing_worldsim::{ReportStream, World, WorldConfig};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

fn bench_world() -> World {
    World::generate(WorldConfig {
        scale: 0.02,
        ..WorldConfig::default()
    })
}

fn bench_stream_ingest(c: &mut Criterion) {
    let world = bench_world();
    let mut g = c.benchmark_group("stream_ingest");
    g.sample_size(10);

    g.bench_function("batch_sequential", |b| {
        let p = Pipeline {
            curation: CurationOptions::default(),
            exec: ExecPlan::sequential(),
        };
        b.iter(|| black_box(p.run(&world, &Obs::noop())))
    });

    g.bench_function("batch_4_shards", |b| {
        let p = Pipeline {
            curation: CurationOptions::default(),
            exec: ExecPlan::sharded(4),
        };
        b.iter(|| black_box(p.run(&world, &Obs::noop())))
    });

    for shards in [1usize, 2, 4, 8] {
        let plan = ExecPlan::sharded(shards);
        g.bench_function(format!("stream_{shards}_shards"), |b| {
            b.iter(|| {
                black_box(ingest(
                    &world,
                    ReportStream::replay(&world),
                    &CurationOptions::default(),
                    &plan,
                    &Obs::noop(),
                    |_| {},
                ))
            })
        });
    }

    // The cost of observing the stream: four snapshots over the run.
    let step = (world.posts.len() as u64 / 4).max(1);
    let plan = ExecPlan::sharded(4).with_snapshots(SnapshotPlan::every(step));
    g.bench_function("stream_4_shards_snapshots", |b| {
        b.iter(|| {
            black_box(ingest(
                &world,
                ReportStream::replay(&world),
                &CurationOptions::default(),
                &plan,
                &Obs::noop(),
                |s| {
                    black_box(s.at_posts);
                },
            ))
        })
    });

    g.finish();
}

/// Min-of-3 wall time of one batch run at the given shard count.
fn time_batch(world: &World, shards: usize) -> u64 {
    let p = Pipeline {
        curation: CurationOptions::default(),
        exec: ExecPlan {
            curators: if shards == 1 { 1 } else { 2 },
            shards,
            ..ExecPlan::default()
        },
    };
    (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(p.run(world, &Obs::noop()));
            t.elapsed().as_nanos() as u64
        })
        .min()
        .expect("three runs")
}

/// One instrumented streaming pass (stage attribution) plus the
/// batch-parallel timing comparison, written as one JSON artifact.
fn attribution_report() {
    let world = bench_world();
    let step = (world.posts.len() as u64 / 4).max(1);
    let obs = Obs::enabled();
    let result = ingest(
        &world,
        ReportStream::replay(&world),
        &CurationOptions::default(),
        &ExecPlan::sharded(4).with_snapshots(SnapshotPlan::every(step)),
        &obs,
        |_| {},
    );
    black_box(result.posts_ingested);

    // Batch-parallel timings through the same engine: the CI parity job
    // reads these to confirm sharding is not pathological.
    let seq_ns = time_batch(&world, 1);
    let par_ns = time_batch(&world, 4);
    obs.histogram("bench.batch.sequential.wall_ns", &[])
        .record(seq_ns);
    obs.histogram("bench.batch.4_shards.wall_ns", &[])
        .record(par_ns);
    eprintln!(
        "batch wall time (min of 3): sequential {:.1}ms, 4 shards {:.1}ms ({:.2}x)",
        seq_ns as f64 / 1e6,
        par_ns as f64 / 1e6,
        seq_ns as f64 / par_ns.max(1) as f64
    );

    // Benches run with the package dir as cwd; resolve the workspace
    // target dir explicitly so the artifact lands where CI expects it.
    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").to_string());
    let path = format!("{target}/stream-ingest-run-report.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(obs.json_report().as_bytes())) {
        Ok(()) => eprintln!("wrote attribution run report to {path}"),
        Err(e) => eprintln!("could not write attribution run report to {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_stream_ingest
}

fn main() {
    // Quick mode: skip the criterion groups, keep the report artifact.
    if std::env::var_os("SMISHING_BENCH_QUICK").is_none() {
        benches();
    }
    attribution_report();
}
