//! Streaming ingest vs the batch pipeline: the same world, end to end,
//! through `smishing_stream::ingest` at 1/2/4/8 shards and through
//! `Pipeline::run`. The streaming engine pays for channels, marker
//! alignment and winner retraction; the shards buy back curation and
//! enrichment parallelism.

use criterion::{criterion_group, criterion_main, Criterion};
use smishing_core::pipeline::Pipeline;
use smishing_obs::Obs;
use smishing_stream::{ingest, ingest_observed, SnapshotPlan, StreamConfig};
use smishing_worldsim::{ReportStream, World, WorldConfig};
use std::hint::black_box;
use std::io::Write;

fn bench_stream_ingest(c: &mut Criterion) {
    let world = World::generate(WorldConfig {
        scale: 0.02,
        ..WorldConfig::default()
    });
    let mut g = c.benchmark_group("stream_ingest");
    g.sample_size(10);

    g.bench_function("batch_pipeline", |b| {
        b.iter(|| black_box(Pipeline::default().run(&world)))
    });

    for shards in [1usize, 2, 4, 8] {
        let cfg = StreamConfig {
            shards,
            ..Default::default()
        };
        g.bench_function(format!("stream_{shards}_shards"), |b| {
            b.iter(|| {
                black_box(ingest(
                    &world,
                    ReportStream::replay(&world),
                    &cfg,
                    &SnapshotPlan::none(),
                    |_| {},
                ))
            })
        });
    }

    // The cost of observing the stream: four snapshots over the run.
    let cfg = StreamConfig {
        shards: 4,
        ..Default::default()
    };
    let step = (world.posts.len() as u64 / 4).max(1);
    g.bench_function("stream_4_shards_snapshots", |b| {
        b.iter(|| {
            black_box(ingest(
                &world,
                ReportStream::replay(&world),
                &cfg,
                &SnapshotPlan::every(step),
                |s| {
                    black_box(s.at_posts);
                },
            ))
        })
    });

    g.finish();

    // One fully instrumented pass: attribute the streaming wall time to
    // its stages (per-shard enrichment, backpressure waits, snapshot
    // merges) and leave the run report next to criterion's output.
    let obs = Obs::enabled();
    let result = ingest_observed(
        &world,
        ReportStream::replay(&world),
        &cfg,
        &SnapshotPlan::every(step),
        &obs,
        |_| {},
    );
    black_box(result.posts_ingested);
    let path = "target/stream-ingest-run-report.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(obs.json_report().as_bytes())) {
        Ok(()) => eprintln!("wrote attribution run report to {path}"),
        Err(e) => eprintln!("could not write attribution run report to {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_stream_ingest
}
criterion_main!(benches);
