//! One benchmark per paper table/figure: how long each analysis takes over
//! the collected dataset (the pipeline output is pre-built and cached).
//!
//! Bench ids follow DESIGN.md's experiment index: `t01_overview` regenerates
//! Table 1, `f02_timestamps` Figure 2, and so on.

use criterion::{criterion_group, criterion_main, Criterion};
use smishing_bench::bench_output;
use smishing_core::analysis::{
    asn, av, brands, categories, countries, extraction, irr, languages, lures, methods, overview,
    registrars, sender_info, shorteners, timestamps, tlds, tls,
};
use smishing_core::casestudy;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let out = bench_output();
    let mut g = c.benchmark_group("tables");

    g.bench_function("t01_overview", |b| {
        b.iter(|| black_box(overview::overview(out).totals()))
    });
    g.bench_function("t02_methods", |b| {
        b.iter(|| black_box(methods::methods_table()))
    });
    g.bench_function("t03_t04_sender_info", |b| {
        b.iter(|| black_box(sender_info::sender_info(out).number_types.total()))
    });
    g.bench_function("t05_shorteners", |b| {
        b.iter(|| black_box(shorteners::shortener_use(out).services.total()))
    });
    g.bench_function("t06_t16_tlds", |b| {
        b.iter(|| black_box(tlds::tld_use(out).smishing_tlds.total()))
    });
    g.bench_function("t07_tls", |b| {
        b.iter(|| black_box(tls::tls_use(out).mean_certs()))
    });
    g.bench_function("t08_asn", |b| {
        b.iter(|| black_box(asn::asn_use(out).resolving_domains))
    });
    g.bench_function("t09_t18_av", |b| {
        b.iter(|| black_box(av::av_detection(out).vt.n))
    });
    g.bench_function("t10_categories", |b| {
        b.iter(|| black_box(categories::categories(out).counts.total()))
    });
    g.bench_function("t11_languages", |b| {
        b.iter(|| black_box(languages::languages(out).counts.total()))
    });
    g.bench_function("t12_brands", |b| {
        b.iter(|| black_box(brands::brands(out).counts.total()))
    });
    g.bench_function("t13_lures", |b| b.iter(|| black_box(lures::lures(out).n)));
    g.bench_function("t14_f03_countries", |b| {
        b.iter(|| black_box(countries::countries(out).all.total()))
    });
    g.bench_function("t15_twitter_years", |b| {
        b.iter(|| black_box(overview::twitter_by_year(out).len()))
    });
    g.bench_function("t17_registrars", |b| {
        b.iter(|| black_box(registrars::registrars(out).counts.total()))
    });
    g.bench_function("t19_casestudy", |b| {
        b.iter(|| black_box(casestudy::case_study(out, 100, 1).findings.len()))
    });
    g.bench_function("f02_timestamps", |b| {
        b.iter(|| black_box(timestamps::send_times(out, true).usable))
    });
    g.bench_function("irr_kappa", |b| {
        b.iter(|| black_box(irr::irr_study(out, 150, 1).human_human.scam_types))
    });
    g.bench_function("cur_extractors", |b| {
        b.iter(|| black_box(extraction::extractor_comparison(out, 100).llm.url_exact))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables
}
criterion_main!(benches);
