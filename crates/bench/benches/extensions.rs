//! Benchmarks for the extension subsystems: detection models, campaign
//! linking, the mitigation what-if study and domain freshness.

use criterion::{criterion_group, criterion_main, Criterion};
use smishing_bench::{bench_output, bench_world};
use smishing_core::analysis::freshness::domain_freshness;
use smishing_core::analysis::linking::{link_campaigns, LinkingPivots};
use smishing_core::analysis::mitigation::mitigation_study;
use smishing_detect::{binary_study, featurize, multiclass_study_grouped, NaiveBayes};
use std::hint::black_box;

fn bench_extensions(c: &mut Criterion) {
    let world = bench_world();
    let out = bench_output();
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);

    // Detection.
    let texts: Vec<String> = world.messages.iter().map(|m| m.text.clone()).collect();
    g.bench_function("detect_binary_study", |b| {
        b.iter(|| black_box(binary_study(&texts, 1).map(|s| s.report.accuracy)))
    });
    let labeled: Vec<(String, smishing_types::ScamType, u32)> = world
        .messages
        .iter()
        .map(|m| (m.text.clone(), m.truth.scam_type, m.campaign.0))
        .collect();
    g.bench_function("detect_multiclass_grouped", |b| {
        b.iter(|| black_box(multiclass_study_grouped(&labeled, 1).map(|s| s.report.accuracy)))
    });
    g.bench_function("detect_featurize", |b| {
        b.iter(|| {
            black_box(featurize(
                "URGENT: your N3tfl!x account is locked, pay £4.99 at https://bit.ly/x9 now",
            ))
        })
    });
    // Inference throughput: train once, predict many.
    let samples: Vec<(Vec<String>, smishing_types::ScamType)> = world
        .messages
        .iter()
        .map(|m| (featurize(&m.text), m.truth.scam_type))
        .collect();
    let model = NaiveBayes::train(&samples, 1.0).expect("trainable");
    let probe =
        featurize("Your parcel is held at the depot, pay the fee at https://cutt.ly/ab now");
    g.bench_function("detect_nb_predict", |b| {
        b.iter(|| black_box(model.predict(&probe)))
    });

    // Linking.
    g.bench_function("linking_all_pivots", |b| {
        b.iter(|| black_box(link_campaigns(out, LinkingPivots::ALL).pair_f1()))
    });
    g.bench_function("linking_domain_only", |b| {
        b.iter(|| {
            black_box(
                link_campaigns(
                    out,
                    LinkingPivots {
                        domain: true,
                        sender: false,
                        skeleton: false,
                    },
                )
                .pair_f1(),
            )
        })
    });

    // Mitigation.
    g.bench_function("mitigation_study", |b| {
        b.iter(|| black_box(mitigation_study(out).levers.len()))
    });
    g.bench_function("domain_freshness", |b| {
        b.iter(|| black_box(domain_freshness(out).nrd_coverage(30)))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_extensions
}
criterion_main!(benches);
