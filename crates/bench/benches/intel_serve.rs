//! Closed-loop load generator for the `smishing-intel` serving layer.
//!
//! Builds the intelligence store from a batch run, then replays a seeded
//! stream of mixed queries against [`Triage`] — known-infrastructure
//! hits (clean *and* defanged spellings), guaranteed misses, similarity
//! (`near`) probes against the SimHash tier, and raw-SMS triage calls
//! that fall through to the model — measuring per-query latency into
//! `smishing-obs` histograms (`intel.serve.*` plus `intel.near.lookup_ns`
//! and the `intel.near.candidates` candidate-set-size distribution) and
//! reporting throughput plus p50/p90/p99 per class.
//!
//! Every invocation also runs the ground-truth triage evaluation
//! (precision/recall vs the campaign-held-out model baseline, per seed)
//! and writes everything into `target/intel-serve-run-report.json`. Set
//! `SMISHING_BENCH_QUICK=1` to skip the criterion groups and shrink the
//! closed loop (the CI serve-smoke job does).

use criterion::{criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smishing_core::pipeline::Pipeline;
use smishing_intel::{evaluate_triage, IntelHub, IntelSnapshot, Triage};
use smishing_obs::Obs;
use smishing_worldsim::{World, WorldConfig};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

const SEED: u64 = 0x1A7E;

fn bench_world() -> World {
    World::generate(WorldConfig {
        scale: 0.02,
        seed: SEED,
        // Probes feed the ground-truth probe-recall gauges in the report;
        // they never enter the report stream, so the store is unchanged.
        template_variants: 0.25,
        ..WorldConfig::default()
    })
}

/// The seeded query mix: (hit keys, miss keys, near texts, triage texts).
struct QueryMix {
    hit_urls: Vec<String>,
    hit_senders: Vec<String>,
    miss_urls: Vec<String>,
    near_texts: Vec<String>,
    texts: Vec<String>,
}

fn build_mix(world: &World, snap: &IntelSnapshot, rng: &mut StdRng) -> QueryMix {
    let mut hit_urls = Vec::new();
    let mut hit_senders = Vec::new();
    for e in snap.entries() {
        if let Some(u) = e.url {
            let clean = snap.resolve(u).to_string();
            // Every other hit uses a defanged spelling — same verdict,
            // full normalization cost.
            if hit_urls.len() % 2 == 0 {
                hit_urls.push(clean);
            } else {
                hit_urls.push(
                    clean
                        .replacen("https://", "hxxps://", 1)
                        .replacen("http://", "hxxp://", 1)
                        .replace('.', "[.]"),
                );
            }
        }
        if let Some(s) = e.sender {
            hit_senders.push(snap.resolve(s).to_string());
        }
    }
    let miss_urls = (0..4096)
        .map(|i| {
            format!(
                "https://never-reported-{i}-{:x}.example/x",
                rng.r#gen::<u32>()
            )
        })
        .collect();
    // Similarity probes: indexed lure texts (every one signs to a
    // non-empty shingle set, so the banded candidate path always runs).
    let near_texts: Vec<String> = snap
        .entries()
        .iter()
        .enumerate()
        .filter(|(id, _)| !snap.sim().shingles_of(*id as u32).is_empty())
        .step_by(2)
        .map(|(_, e)| e.text.clone())
        .collect();
    // Triage bodies: real smishing texts (some resolve via the index,
    // the rest exercise extraction + model scoring).
    let texts = world
        .messages
        .iter()
        .step_by(3)
        .map(|m| m.text.clone())
        .collect();
    QueryMix {
        hit_urls,
        hit_senders,
        miss_urls,
        near_texts,
        texts,
    }
}

/// Drive `n` queries through the triage head: ~35% URL hits, ~10% sender
/// hits, ~35% misses, ~10% similarity (`near`) probes, ~10% full triage.
/// Returns (hits, misses, near_hits, triaged).
fn closed_loop(
    triage: &mut Triage,
    mix: &QueryMix,
    n: u64,
    obs: &Obs,
    rng: &mut StdRng,
) -> (u64, u64, u64, u64) {
    let lookup_ns = obs.histogram("intel.serve.lookup_ns", &[]);
    let triage_ns = obs.histogram("intel.serve.triage_ns", &[]);
    let near_ns = obs.histogram("intel.near.lookup_ns", &[]);
    let near_cand = obs.histogram("intel.near.candidates", &[]);
    let (mut hits, mut misses, mut near_hits, mut triaged) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..n {
        let roll: u32 = rng.gen_range(0..100);
        if roll < 35 {
            let q = &mix.hit_urls[rng.gen_range(0..mix.hit_urls.len())];
            let t = Instant::now();
            let v = triage.query_url(q);
            lookup_ns.record(t.elapsed().as_nanos() as u64);
            debug_assert!(v.attribution().is_some(), "seeded hit missed: {q}");
            hits += u64::from(v.attribution().is_some());
        } else if roll < 45 {
            let q = &mix.hit_senders[rng.gen_range(0..mix.hit_senders.len())];
            let t = Instant::now();
            let v = triage.query_sender(q);
            lookup_ns.record(t.elapsed().as_nanos() as u64);
            hits += u64::from(v.attribution().is_some());
        } else if roll < 80 {
            let q = &mix.miss_urls[rng.gen_range(0..mix.miss_urls.len())];
            let t = Instant::now();
            let v = triage.query_url(q);
            lookup_ns.record(t.elapsed().as_nanos() as u64);
            misses += u64::from(v.attribution().is_none());
        } else if roll < 90 && !mix.near_texts.is_empty() {
            let q = &mix.near_texts[rng.gen_range(0..mix.near_texts.len())];
            let t = Instant::now();
            let (v, candidates) = triage.query_near_with(q);
            near_ns.record(t.elapsed().as_nanos() as u64);
            near_cand.record(candidates as u64);
            near_hits += u64::from(v.near().is_some());
        } else {
            let q = &mix.texts[rng.gen_range(0..mix.texts.len())];
            let t = Instant::now();
            let v = triage.triage(None, q);
            triage_ns.record(t.elapsed().as_nanos() as u64);
            triaged += 1;
            black_box(v.score());
        }
    }
    (hits, misses, near_hits, triaged)
}

fn bench_intel_serve(c: &mut Criterion) {
    let world = bench_world();
    let out = Pipeline::default().run(&world, &Obs::noop());
    let hub = IntelHub::new();
    hub.publish(IntelSnapshot::build(&out));
    let snap = hub.latest().expect("published");
    let mut rng = StdRng::seed_from_u64(SEED);
    let mix = build_mix(&world, &snap, &mut rng);
    let mut triage = Triage::new(hub.reader());
    triage.snapshot(); // train the model outside the timed region

    let mut g = c.benchmark_group("intel_serve");
    g.bench_function("lookup_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % mix.hit_urls.len();
            black_box(triage.query_url(&mix.hit_urls[i]))
        })
    });
    g.bench_function("lookup_miss_cached", |b| {
        b.iter(|| black_box(triage.query_url(&mix.miss_urls[0])))
    });
    g.bench_function("near_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % mix.near_texts.len();
            black_box(triage.query_near(&mix.near_texts[i]))
        })
    });
    g.bench_function("triage_model", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % mix.texts.len();
            black_box(triage.triage(None, &mix.texts[i]))
        })
    });
    g.finish();
}

/// The closed-loop run + ground-truth scorecard, written as one artifact.
fn serve_report(quick: bool) {
    let world = bench_world();
    let obs = Obs::enabled();
    let out = Pipeline::default().run(&world, &Obs::noop());
    let hub = IntelHub::new();
    hub.publish(IntelSnapshot::build(&out));
    let snap = hub.latest().expect("published");
    let mut rng = StdRng::seed_from_u64(SEED);
    let mix = build_mix(&world, &snap, &mut rng);
    let mut triage = Triage::new(hub.reader());
    triage.snapshot(); // train before the loop

    let n: u64 = if quick { 50_000 } else { 2_000_000 };
    let t = Instant::now();
    let (hits, misses, near_hits, triaged) = closed_loop(&mut triage, &mix, n, &obs, &mut rng);
    let wall = t.elapsed();
    let qps = n as f64 / wall.as_secs_f64();
    obs.counter("intel.serve.queries", &[]).add(n);
    obs.counter("intel.serve.hits", &[]).add(hits);
    obs.counter("intel.serve.misses", &[]).add(misses);
    obs.counter("intel.serve.near_hits", &[]).add(near_hits);
    obs.counter("intel.serve.triaged", &[]).add(triaged);
    obs.gauge("intel.serve.qps", &[]).set(qps as i64);

    let lookup = obs.histogram("intel.serve.lookup_ns", &[]);
    eprintln!(
        "closed loop: {n} queries in {:.2}s — {qps:.0} q/s ({hits} hits / {misses} misses / {near_hits} near hits / {triaged} triaged)",
        wall.as_secs_f64()
    );
    eprintln!(
        "lookup latency: p50 {:.1}us  p90 {:.1}us  p99 {:.1}us",
        lookup.quantile(0.50) / 1e3,
        lookup.quantile(0.90) / 1e3,
        lookup.quantile(0.99) / 1e3,
    );
    let near = obs.histogram("intel.near.lookup_ns", &[]);
    let cand = obs.histogram("intel.near.candidates", &[]);
    eprintln!(
        "near latency: p50 {:.1}us  p90 {:.1}us  p99 {:.1}us | candidates p50 {:.0} p99 {:.0}",
        near.quantile(0.50) / 1e3,
        near.quantile(0.90) / 1e3,
        near.quantile(0.99) / 1e3,
        cand.quantile(0.50),
        cand.quantile(0.99),
    );

    // Ground-truth scorecard per seed: full stack vs the campaign-held-out
    // baseline, exported as permille gauges so the run report carries it.
    if let Some(e) = evaluate_triage(&world, &out, SEED) {
        let permille = |v: f64| (v * 1000.0).round() as i64;
        obs.gauge("intel.eval.triage_precision_permille", &[])
            .set(permille(e.triage_precision));
        obs.gauge("intel.eval.triage_recall_permille", &[])
            .set(permille(e.triage_recall));
        obs.gauge("intel.eval.baseline_precision_permille", &[])
            .set(permille(e.baseline_precision));
        obs.gauge("intel.eval.baseline_recall_permille", &[])
            .set(permille(e.baseline_recall));
        obs.gauge("intel.eval.attribution_accuracy_permille", &[])
            .set(permille(e.attribution_accuracy));
        obs.gauge("intel.eval.probe_exact_recall_permille", &[])
            .set(permille(e.probe_exact_recall));
        obs.gauge("intel.eval.probe_near_recall_permille", &[])
            .set(permille(e.probe_near_recall));
        eprintln!(
            "scorecard: triage P {:.3} R {:.3} | baseline P {:.3} R {:.3} | attribution {:.3}",
            e.triage_precision,
            e.triage_recall,
            e.baseline_precision,
            e.baseline_recall,
            e.attribution_accuracy
        );
        eprintln!(
            "rotated probes: {} probes | exact-ladder recall {:.3} | near recall {:.3}",
            e.probe_n, e.probe_exact_recall, e.probe_near_recall
        );
    }

    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").to_string());
    let path = format!("{target}/intel-serve-run-report.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(obs.json_report().as_bytes())) {
        Ok(()) => eprintln!("wrote serve run report to {path}"),
        Err(e) => eprintln!("could not write serve run report to {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_intel_serve
}

fn main() {
    let quick = std::env::var_os("SMISHING_BENCH_QUICK").is_some();
    if !quick {
        benches();
    }
    serve_report(quick);
}
