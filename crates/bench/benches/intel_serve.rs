//! Closed-loop load generator for the `smishing-intel` serving layer.
//!
//! Builds the intelligence store from a batch run, then replays a seeded
//! stream of mixed queries against [`Triage`] — known-infrastructure
//! hits (clean *and* defanged spellings), guaranteed misses, similarity
//! (`near`) probes against the SimHash tier, and raw-SMS triage calls
//! that fall through to the model — measuring per-query latency into
//! `smishing-obs` histograms (`intel.serve.*` plus `intel.near.lookup_ns`
//! and the `intel.near.candidates` candidate-set-size distribution) and
//! reporting throughput plus p50/p90/p99 per class.
//!
//! Every invocation also runs the ground-truth triage evaluation
//! (precision/recall vs the campaign-held-out model baseline, per seed)
//! and writes everything into `target/intel-serve-run-report.json`. Set
//! `SMISHING_BENCH_QUICK=1` to skip the criterion groups and shrink the
//! closed loop (the CI serve-smoke job does).

use criterion::{criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smishing_core::pipeline::Pipeline;
use smishing_intel::{
    evaluate_triage, serve_workers, IntelHub, IntelSnapshot, ServeOptions, Triage, TriageConfig,
    WorkerPlan,
};
use smishing_obs::{Obs, Tracer, TracerConfig};
use smishing_types::AdversaryPlan;
use smishing_worldsim::{World, WorldConfig};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

const SEED: u64 = 0x1A7E;

fn bench_world() -> World {
    // `SMISHING_BENCH_ADVERSARY=PROFILE[:SEED]` builds the store from an
    // adversarial world so the CI drift-soak job can gate serve latency
    // on the drifted path with the same report shape the baseline has;
    // unset keeps the baseline world (the serve-smoke job).
    let adversary = std::env::var("SMISHING_BENCH_ADVERSARY")
        .ok()
        .map(|s| {
            s.parse::<AdversaryPlan>()
                .expect("SMISHING_BENCH_ADVERSARY must be PROFILE[:SEED]")
        })
        .unwrap_or_default();
    World::generate(WorldConfig {
        scale: 0.02,
        seed: SEED,
        // Probes feed the ground-truth probe-recall gauges in the report;
        // they never enter the report stream, so the store is unchanged.
        template_variants: 0.25,
        adversary,
        ..WorldConfig::default()
    })
}

/// The seeded query mix: (hit keys, miss keys, near texts, triage texts).
struct QueryMix {
    hit_urls: Vec<String>,
    hit_senders: Vec<String>,
    miss_urls: Vec<String>,
    near_texts: Vec<String>,
    texts: Vec<String>,
}

fn build_mix(world: &World, snap: &IntelSnapshot, rng: &mut StdRng) -> QueryMix {
    let mut hit_urls = Vec::new();
    let mut hit_senders = Vec::new();
    for e in snap.entries() {
        if let Some(u) = e.url {
            let clean = snap.resolve(u).to_string();
            // Every other hit uses a defanged spelling — same verdict,
            // full normalization cost.
            if hit_urls.len() % 2 == 0 {
                hit_urls.push(clean);
            } else {
                hit_urls.push(
                    clean
                        .replacen("https://", "hxxps://", 1)
                        .replacen("http://", "hxxp://", 1)
                        .replace('.', "[.]"),
                );
            }
        }
        if let Some(s) = e.sender {
            hit_senders.push(snap.resolve(s).to_string());
        }
    }
    let miss_urls = (0..4096)
        .map(|i| {
            format!(
                "https://never-reported-{i}-{:x}.example/x",
                rng.r#gen::<u32>()
            )
        })
        .collect();
    // Similarity probes: indexed lure texts (every one signs to a
    // non-empty shingle set, so the banded candidate path always runs).
    let near_texts: Vec<String> = snap
        .entries()
        .iter()
        .enumerate()
        .filter(|(id, _)| !snap.sim().shingles_of(*id as u32).is_empty())
        .step_by(2)
        .map(|(_, e)| e.text.clone())
        .collect();
    // Triage bodies: real smishing texts (some resolve via the index,
    // the rest exercise extraction + model scoring).
    let texts = world
        .messages
        .iter()
        .step_by(3)
        .map(|m| m.text.clone())
        .collect();
    QueryMix {
        hit_urls,
        hit_senders,
        miss_urls,
        near_texts,
        texts,
    }
}

/// Drive `n` queries through the triage head: ~35% URL hits, ~10% sender
/// hits, ~35% misses, ~10% similarity (`near`) probes, ~10% full triage.
/// With a `tracer`, every query goes through the serve plane's tail
/// sampling (default 1-in-64) exactly like `smish serve` does, and the
/// latencies land in `intel.serve.traced.*` / `intel.near.traced.*`
/// histograms so the sampling overhead is directly comparable.
/// Returns (hits, misses, near_hits, triaged).
fn closed_loop(
    triage: &mut Triage,
    mix: &QueryMix,
    n: u64,
    obs: &Obs,
    rng: &mut StdRng,
    mut tracer: Option<&mut Tracer>,
) -> (u64, u64, u64, u64) {
    let (lu, tr, ne, nc) = if tracer.is_some() {
        (
            "intel.serve.traced.lookup_ns",
            "intel.serve.traced.triage_ns",
            "intel.near.traced.lookup_ns",
            "intel.near.traced.candidates",
        )
    } else {
        (
            "intel.serve.lookup_ns",
            "intel.serve.triage_ns",
            "intel.near.lookup_ns",
            "intel.near.candidates",
        )
    };
    let lookup_ns = obs.histogram(lu, &[]);
    let triage_ns = obs.histogram(tr, &[]);
    let near_ns = obs.histogram(ne, &[]);
    let near_cand = obs.histogram(nc, &[]);
    let (mut hits, mut misses, mut near_hits, mut triaged) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..n {
        let roll: u32 = rng.gen_range(0..100);
        if roll < 35 {
            let q = &mix.hit_urls[rng.gen_range(0..mix.hit_urls.len())];
            let mut tb = tracer.as_deref_mut().and_then(|tc| tc.begin(q));
            let t = Instant::now();
            let v = triage.query_url_traced(q, tb.as_mut());
            let ns = t.elapsed().as_nanos() as u64;
            lookup_ns.record(ns);
            if let (Some(tc), Some(tb)) = (tracer.as_deref_mut(), tb) {
                tc.exemplar(lu, tb.id(), ns);
                tc.finish(tb.finish("hit"));
            }
            debug_assert!(v.attribution().is_some(), "seeded hit missed: {q}");
            hits += u64::from(v.attribution().is_some());
        } else if roll < 45 {
            let q = &mix.hit_senders[rng.gen_range(0..mix.hit_senders.len())];
            let mut tb = tracer.as_deref_mut().and_then(|tc| tc.begin(q));
            let t = Instant::now();
            let v = triage.query_sender_traced(q, tb.as_mut());
            let ns = t.elapsed().as_nanos() as u64;
            lookup_ns.record(ns);
            if let (Some(tc), Some(tb)) = (tracer.as_deref_mut(), tb) {
                tc.exemplar(lu, tb.id(), ns);
                tc.finish(tb.finish("hit"));
            }
            hits += u64::from(v.attribution().is_some());
        } else if roll < 80 {
            let q = &mix.miss_urls[rng.gen_range(0..mix.miss_urls.len())];
            let mut tb = tracer.as_deref_mut().and_then(|tc| tc.begin(q));
            let t = Instant::now();
            let v = triage.query_url_traced(q, tb.as_mut());
            let ns = t.elapsed().as_nanos() as u64;
            lookup_ns.record(ns);
            if let (Some(tc), Some(tb)) = (tracer.as_deref_mut(), tb) {
                tc.exemplar(lu, tb.id(), ns);
                tc.finish(tb.finish("miss"));
            }
            misses += u64::from(v.attribution().is_none());
        } else if roll < 90 && !mix.near_texts.is_empty() {
            let q = &mix.near_texts[rng.gen_range(0..mix.near_texts.len())];
            let mut tb = tracer.as_deref_mut().and_then(|tc| tc.begin(q));
            let t = Instant::now();
            let (v, candidates) = triage.query_near_traced(q, tb.as_mut());
            let ns = t.elapsed().as_nanos() as u64;
            near_ns.record(ns);
            near_cand.record(candidates as u64);
            if let (Some(tc), Some(tb)) = (tracer.as_deref_mut(), tb) {
                tc.exemplar(ne, tb.id(), ns);
                tc.finish(tb.finish("near"));
            }
            near_hits += u64::from(v.near().is_some());
        } else {
            let q = &mix.texts[rng.gen_range(0..mix.texts.len())];
            let mut tb = tracer.as_deref_mut().and_then(|tc| tc.begin(q));
            let t = Instant::now();
            let v = triage.triage_traced(None, q, tb.as_mut());
            let ns = t.elapsed().as_nanos() as u64;
            triage_ns.record(ns);
            if let (Some(tc), Some(tb)) = (tracer.as_deref_mut(), tb) {
                tc.exemplar(tr, tb.id(), ns);
                tc.finish(tb.finish("triaged"));
            }
            triaged += 1;
            black_box(v.score());
        }
    }
    (hits, misses, near_hits, triaged)
}

/// Render the seeded mix as serve-protocol request lines — the same
/// ~35/10/35/10/10 hit/sender/miss/near/triage blend `closed_loop`
/// drives, but as the line protocol the worker plane speaks.
fn build_script(mix: &QueryMix, n: u64, rng: &mut StdRng) -> String {
    let mut s = String::new();
    for _ in 0..n {
        let roll: u32 = rng.gen_range(0..100);
        if roll < 35 {
            s.push_str("url ");
            s.push_str(&mix.hit_urls[rng.gen_range(0..mix.hit_urls.len())]);
        } else if roll < 45 {
            s.push_str("sender ");
            s.push_str(&mix.hit_senders[rng.gen_range(0..mix.hit_senders.len())]);
        } else if roll < 80 {
            s.push_str("url ");
            s.push_str(&mix.miss_urls[rng.gen_range(0..mix.miss_urls.len())]);
        } else if roll < 90 && !mix.near_texts.is_empty() {
            s.push_str("near ");
            s.push_str(&mix.near_texts[rng.gen_range(0..mix.near_texts.len())]);
        } else {
            s.push_str("msg ");
            s.push_str(&mix.texts[rng.gen_range(0..mix.texts.len())]);
        }
        s.push('\n');
    }
    s
}

/// Replay the scripted mix through [`serve_workers`] at 1/2/4/8 workers
/// and export the throughput curve as `intel.serve.scale.qps` gauges
/// (labeled by worker count — `qps` in the name means `smish perfdiff`
/// gates them as higher-better once baselined) plus an informational
/// speedup-vs-one-worker gauge. The queue depth covers the whole script:
/// an in-memory replay outruns any worker pool, and shed requests cost
/// nothing, so admission sheds here would fake a speedup.
fn scaling_curve(hub: &IntelHub, mix: &QueryMix, obs: &Obs, quick: bool, rng: &mut StdRng) {
    let script_n: u64 = if quick { 8_000 } else { 200_000 };
    let script = build_script(mix, script_n, rng);
    let mut qps_one = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        // Skip model training: it runs lazily per worker instance, so a
        // bigger pool would pay more one-off startup inside the timed
        // region and the curve would understate real scaling.
        let cfg = TriageConfig {
            train_model: false,
            ..TriageConfig::default()
        };
        let t = Instant::now();
        let session = serve_workers(
            hub,
            cfg,
            script.as_bytes(),
            std::io::sink(),
            &Obs::noop(),
            ServeOptions::default(),
            &WorkerPlan::new(workers, script_n as usize),
        )
        .expect("scaling run");
        let wall = t.elapsed();
        assert_eq!(session.stats.shed, 0, "scaling run must not shed");
        let qps = session.stats.queries as f64 / wall.as_secs_f64();
        if workers == 1 {
            qps_one = qps;
        }
        let speedup = if qps_one > 0.0 { qps / qps_one } else { 1.0 };
        let label = workers.to_string();
        obs.gauge("intel.serve.scale.qps", &[("workers", &label)])
            .set(qps as i64);
        obs.gauge("intel.serve.scale.speedup_x1000", &[("workers", &label)])
            .set((speedup * 1000.0).round() as i64);
        eprintln!(
            "scaling: workers={workers} — {} queries in {:.2}s, {qps:.0} q/s ({speedup:.2}x vs 1 worker)",
            session.stats.queries,
            wall.as_secs_f64(),
        );
    }
}

fn bench_intel_serve(c: &mut Criterion) {
    let world = bench_world();
    let out = Pipeline::default().run(&world, &Obs::noop());
    let hub = IntelHub::new();
    hub.publish(IntelSnapshot::build(&out));
    let snap = hub.latest().expect("published");
    let mut rng = StdRng::seed_from_u64(SEED);
    let mix = build_mix(&world, &snap, &mut rng);
    let mut triage = Triage::new(hub.reader());
    triage.snapshot(); // train the model outside the timed region

    let mut g = c.benchmark_group("intel_serve");
    g.bench_function("lookup_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % mix.hit_urls.len();
            black_box(triage.query_url(&mix.hit_urls[i]))
        })
    });
    // Same hit path through the serve plane's tail sampler (default
    // 1-in-64): the delta vs `lookup_hit` is the tracing overhead the
    // acceptance bar holds under 5% on p99.
    g.bench_function("lookup_hit_traced", |b| {
        let mut tracer = Tracer::new(TracerConfig::default());
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % mix.hit_urls.len();
            let q = &mix.hit_urls[i];
            let mut tb = tracer.begin(q);
            let v = triage.query_url_traced(q, tb.as_mut());
            if let Some(tb) = tb {
                tracer.finish(tb.finish("hit"));
            }
            black_box(v)
        })
    });
    g.bench_function("lookup_miss_cached", |b| {
        b.iter(|| black_box(triage.query_url(&mix.miss_urls[0])))
    });
    g.bench_function("near_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % mix.near_texts.len();
            black_box(triage.query_near(&mix.near_texts[i]))
        })
    });
    g.bench_function("triage_model", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % mix.texts.len();
            black_box(triage.triage(None, &mix.texts[i]))
        })
    });
    g.finish();
}

/// The closed-loop run + ground-truth scorecard, written as one artifact.
fn serve_report(quick: bool) {
    let world = bench_world();
    let obs = Obs::enabled();
    let out = Pipeline::default().run(&world, &Obs::noop());
    let hub = IntelHub::new();
    hub.publish(IntelSnapshot::build(&out));
    let snap = hub.latest().expect("published");
    let mut rng = StdRng::seed_from_u64(SEED);
    let mix = build_mix(&world, &snap, &mut rng);
    let mut triage = Triage::new(hub.reader());
    triage.snapshot(); // train before the loop

    let n: u64 = if quick { 50_000 } else { 2_000_000 };
    // Clone the rng so the traced re-run below replays the *identical*
    // query sequence — any latency delta is tracing, not the mix.
    let mut rng_traced = rng.clone();
    let t = Instant::now();
    let (hits, misses, near_hits, triaged) =
        closed_loop(&mut triage, &mix, n, &obs, &mut rng, None);
    let wall = t.elapsed();
    let qps = n as f64 / wall.as_secs_f64();
    obs.counter("intel.serve.queries", &[]).add(n);
    obs.counter("intel.serve.hits", &[]).add(hits);
    obs.counter("intel.serve.misses", &[]).add(misses);
    obs.counter("intel.serve.near_hits", &[]).add(near_hits);
    obs.counter("intel.serve.triaged", &[]).add(triaged);
    obs.gauge("intel.serve.qps", &[]).set(qps as i64);

    let lookup = obs.histogram("intel.serve.lookup_ns", &[]);
    eprintln!(
        "closed loop: {n} queries in {:.2}s — {qps:.0} q/s ({hits} hits / {misses} misses / {near_hits} near hits / {triaged} triaged)",
        wall.as_secs_f64()
    );
    eprintln!(
        "lookup latency: p50 {:.1}us  p90 {:.1}us  p99 {:.1}us",
        lookup.quantile(0.50) / 1e3,
        lookup.quantile(0.90) / 1e3,
        lookup.quantile(0.99) / 1e3,
    );
    let near = obs.histogram("intel.near.lookup_ns", &[]);
    let cand = obs.histogram("intel.near.candidates", &[]);
    eprintln!(
        "near latency: p50 {:.1}us  p90 {:.1}us  p99 {:.1}us | candidates p50 {:.0} p99 {:.0}",
        near.quantile(0.50) / 1e3,
        near.quantile(0.90) / 1e3,
        near.quantile(0.99) / 1e3,
        cand.quantile(0.50),
        cand.quantile(0.99),
    );

    // Traced re-run: identical query sequence through the serve plane's
    // default 1-in-64 tail sampler. The ratio gauge is informational
    // (×1000); the regression gate bites on the traced `*_ns` histogram
    // quantiles themselves, which are lower-better like any latency.
    let mut tracer = Tracer::new(TracerConfig::default());
    let t = Instant::now();
    closed_loop(
        &mut triage,
        &mix,
        n,
        &obs,
        &mut rng_traced,
        Some(&mut tracer),
    );
    let wall_traced = t.elapsed();
    tracer.export(&obs);
    let traced = obs.histogram("intel.serve.traced.lookup_ns", &[]);
    let (base_p99, traced_p99) = (lookup.quantile(0.99), traced.quantile(0.99));
    let overhead = if base_p99 > 0.0 {
        traced_p99 / base_p99
    } else {
        1.0
    };
    obs.gauge("intel.serve.traced_p99_ratio_x1000", &[])
        .set((overhead * 1000.0).round() as i64);
    eprintln!(
        "traced loop: {n} queries in {:.2}s — lookup p99 {:.1}us vs {:.1}us untraced ({:+.1}% with 1-in-{} sampling)",
        wall_traced.as_secs_f64(),
        traced_p99 / 1e3,
        base_p99 / 1e3,
        (overhead - 1.0) * 100.0,
        TracerConfig::default().sample_every,
    );

    scaling_curve(&hub, &mix, &obs, quick, &mut rng);

    // Ground-truth scorecard per seed: full stack vs the campaign-held-out
    // baseline, exported as permille gauges so the run report carries it.
    if let Some(e) = evaluate_triage(&world, &out, SEED) {
        let permille = |v: f64| (v * 1000.0).round() as i64;
        obs.gauge("intel.eval.triage_precision_permille", &[])
            .set(permille(e.triage_precision));
        obs.gauge("intel.eval.triage_recall_permille", &[])
            .set(permille(e.triage_recall));
        obs.gauge("intel.eval.baseline_precision_permille", &[])
            .set(permille(e.baseline_precision));
        obs.gauge("intel.eval.baseline_recall_permille", &[])
            .set(permille(e.baseline_recall));
        obs.gauge("intel.eval.attribution_accuracy_permille", &[])
            .set(permille(e.attribution_accuracy));
        obs.gauge("intel.eval.probe_exact_recall_permille", &[])
            .set(permille(e.probe_exact_recall));
        obs.gauge("intel.eval.probe_near_recall_permille", &[])
            .set(permille(e.probe_near_recall));
        eprintln!(
            "scorecard: triage P {:.3} R {:.3} | baseline P {:.3} R {:.3} | attribution {:.3}",
            e.triage_precision,
            e.triage_recall,
            e.baseline_precision,
            e.baseline_recall,
            e.attribution_accuracy
        );
        eprintln!(
            "rotated probes: {} probes | exact-ladder recall {:.3} | near recall {:.3}",
            e.probe_n, e.probe_exact_recall, e.probe_near_recall
        );
    }

    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").to_string());
    let path = format!("{target}/intel-serve-run-report.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(obs.json_report().as_bytes())) {
        Ok(()) => eprintln!("wrote serve run report to {path}"),
        Err(e) => eprintln!("could not write serve run report to {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_intel_serve
}

fn main() {
    let quick = std::env::var_os("SMISHING_BENCH_QUICK").is_some();
    if !quick {
        benches();
    }
    serve_report(quick);
}
