//! Ablation benches for the design choices DESIGN.md §4 calls out:
//!
//! 1. extractor choice (naive OCR / block OCR / LLM) — throughput AND yield,
//! 2. dedup keying (exact vs normalized),
//! 3. serial vs parallel curation,
//! 4. Fig. 2 with and without the burst filter,
//! 5. brand NER with and without homoglyph normalization (throughput of the
//!    normalization step itself).

use criterion::{criterion_group, criterion_main, Criterion};
use smishing_bench::{bench_output, bench_world};
use smishing_core::analysis::timestamps;
use smishing_core::curation::{curate_posts, dedup, CurationOptions, DedupMode, ExtractorChoice};
use smishing_textnlp::extract_brand;
use smishing_worldsim::Post;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let world = bench_world();
    let posts: Vec<&Post> = world.posts.iter().take(2000).collect();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // 1. Extractor choice.
    for (name, extractor) in [
        ("curation_naive_ocr", ExtractorChoice::Naive),
        ("curation_vision_ocr", ExtractorChoice::Vision),
        ("curation_llm", ExtractorChoice::Llm),
    ] {
        g.bench_function(name, |b| {
            let opts = CurationOptions {
                extractor,
                ..CurationOptions::default()
            };
            b.iter(|| black_box(curate_posts(&posts, &opts).len()))
        });
    }

    // 2. Dedup keying.
    let curated = curate_posts(&posts, &CurationOptions::default());
    g.bench_function("dedup_exact", |b| {
        b.iter(|| black_box(dedup(&curated, DedupMode::Exact).len()))
    });
    g.bench_function("dedup_normalized", |b| {
        b.iter(|| black_box(dedup(&curated, DedupMode::Normalized).len()))
    });

    // 3. Serial vs parallel curation.
    g.bench_function("curation_serial", |b| {
        let opts = CurationOptions {
            workers: 1,
            ..CurationOptions::default()
        };
        b.iter(|| black_box(curate_posts(&posts, &opts).len()))
    });
    g.bench_function("curation_parallel_4", |b| {
        let opts = CurationOptions {
            workers: 4,
            ..CurationOptions::default()
        };
        b.iter(|| black_box(curate_posts(&posts, &opts).len()))
    });

    // 4. Burst filter on/off (Fig. 2 ablation).
    let out = bench_output();
    g.bench_function("fig2_with_burst_filter", |b| {
        b.iter(|| black_box(timestamps::send_times(out, true).usable))
    });
    g.bench_function("fig2_without_burst_filter", |b| {
        b.iter(|| black_box(timestamps::send_times(out, false).usable))
    });

    // 5. Brand NER on evasive vs plain text (the normalization ablation).
    g.bench_function("ner_evasive_text", |b| {
        b.iter(|| black_box(extract_brand("Your N3tfl!x account is on h0ld t0day")))
    });
    g.bench_function("ner_plain_text", |b| {
        b.iter(|| black_box(extract_brand("Your Netflix account is on hold today")))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
