//! Component micro-benchmarks: the hot primitives every pipeline stage
//! leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smishing_avscan::VtScanner;
use smishing_stats::{cohen_kappa, ks_two_sample};
use smishing_telecom::{classify_sender, parse_phone, HlrLookup, NumberFactory, SimulatedHlr};
use smishing_textnlp::annotator::{Annotator, PipelineAnnotator};
use smishing_textnlp::{extract_brand, identify_language, normalize_text};
use smishing_types::{parse_timestamp, SenderId};
use smishing_webinfra::{parse_url, registrable_domain};
use std::hint::black_box;

const SAMPLE_TEXT: &str = "Dear customer, your SBI net banking will be blocked today. \
    Please update your KYC at https://sbi-kyc-verify3.com/login?id=4af1 urgently.";
const SAMPLE_ES: &str = "Correos: su paquete CP472893450GB está retenido. Pague la tasa \
    de €2.99 aquí: https://cutt.ly/xA91bQ2";

fn bench_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");

    g.bench_function("url_parse", |b| {
        b.iter(|| black_box(parse_url("hxxps://sa-krs[.]web[.]app/verify?d=s1")))
    });
    g.bench_function("registrable_domain", |b| {
        b.iter(|| black_box(registrable_domain("secure.login.hsbc.co.uk")))
    });
    g.bench_function("timestamp_parse", |b| {
        b.iter(|| black_box(parse_timestamp("Aug 3, 2021 at 11:34 AM")))
    });
    g.bench_function("sender_classify_and_parse", |b| {
        b.iter(|| {
            black_box(classify_sender("+44 7911 123456"));
            black_box(parse_phone("+44 7911 123456"))
        })
    });
    g.bench_function("langid_en", |b| {
        b.iter(|| black_box(identify_language(SAMPLE_TEXT)))
    });
    g.bench_function("langid_es", |b| {
        b.iter(|| black_box(identify_language(SAMPLE_ES)))
    });
    g.bench_function("normalize_text", |b| {
        b.iter(|| black_box(normalize_text("Your N3tfl!x account w1ll be l0cked t0day!")))
    });
    g.bench_function("brand_ner", |b| {
        b.iter(|| black_box(extract_brand(SAMPLE_TEXT)))
    });
    g.bench_function("full_annotation", |b| {
        let annotator = PipelineAnnotator::new();
        b.iter(|| black_box(annotator.annotate(SAMPLE_ES)))
    });

    let hlr = SimulatedHlr::new(1);
    let factory = NumberFactory::new();
    let mut rng = StdRng::seed_from_u64(1);
    let numbers: Vec<SenderId> = (0..256)
        .filter_map(|_| factory.mobile_any(smishing_types::Country::India, &mut rng))
        .map(SenderId::Phone)
        .collect();
    g.bench_function("hlr_lookup_256", |b| {
        b.iter(|| {
            for n in &numbers {
                black_box(hlr.lookup(n));
            }
        })
    });

    let vt = VtScanner::new(1);
    g.bench_function("virustotal_scan", |b| {
        b.iter(|| black_box(vt.scan("https://evil-campaign.example-login.com/pay")))
    });

    let labels_a: Vec<u8> = (0..150).map(|i| (i % 7) as u8).collect();
    let mut labels_b = labels_a.clone();
    labels_b[3] = 6;
    g.bench_function("cohen_kappa_150", |b| {
        b.iter(|| black_box(cohen_kappa(&labels_a, &labels_b)))
    });

    let s1: Vec<f64> = (0..1000).map(|i| (i as f64 * 7919.0) % 86_400.0).collect();
    let s2: Vec<f64> = (0..1000)
        .map(|i| (i as f64 * 104_729.0) % 86_400.0)
        .collect();
    g.bench_function("ks_two_sample_1k", |b| {
        b.iter(|| black_box(ks_two_sample(&s1, &s2)))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_components
}
criterion_main!(benches);
