//! Streaming ingest for the smishing measurement pipeline.
//!
//! The batch [`Pipeline`](smishing_core::Pipeline) sees the whole report
//! corpus at once. This crate processes the same reports as a live feed:
//!
//! * [`ReportStream`](smishing_worldsim::ReportStream) (in `worldsim`)
//!   replays a world's posts in arrival order, or soaks forever;
//! * [`ingest`] runs the sharded engine — bounded channels with
//!   backpressure, curation workers, analyst shards owning mergeable
//!   per-analysis accumulators ([`AnalysisAccs`]);
//! * [`SnapshotPlan`] injects aligned markers so a consistent
//!   [`StreamSnapshot`] — every table included — renders mid-stream
//!   without pausing ingestion;
//! * [`Checkpoint`] persists a snapshot through the serde dataset layer
//!   and [`resume`] verifies and continues an interrupted run.
//!
//! The determinism contract: for a fixed post sequence the end-of-stream
//! output equals the batch pipeline's exactly, independent of shard
//! count, curator count, channel capacity, and scheduling.

#![warn(missing_docs)]

pub mod accs;
pub mod engine;
pub mod snapshot;

pub use accs::AnalysisAccs;
pub use engine::{
    ingest, ingest_observed, IngestResult, SnapshotPlan, StreamConfig, StreamSnapshot,
};
pub use snapshot::{resume, Checkpoint};
